//! # dbscan-datagen — synthetic workloads for the reproduction
//!
//! The paper evaluates on five datasets "generated synthetically using
//! the IBM synthetic data generator" (Quest / NU-MineBench's
//! synthetic-cluster): c10k, c100k, r10k, r100k, r1m — all with `d = 10`,
//! `eps = 25`, `minpts = 5` (Table I). The original generator is not
//! distributed any more, so this crate implements the same *kind* of
//! workload: Gaussian clusters with uniformly placed centers plus
//! uniform background noise, parameterized so that the paper's `eps`
//! and `minpts` are meaningful (cluster members are dense at eps = 25,
//! noise is not). Deterministic per seed.
//!
//! [`catalog`] pins the five named datasets with fixed seeds and
//! provides scaled-down variants so benches can run at laptop speed.

pub mod catalog;
pub mod cluster_gen;
pub mod io;
pub mod normal;
pub mod skewed;

pub use catalog::{DatasetSpec, StandardDataset};
pub use cluster_gen::{ClusterGenerator, GeneratorParams, GroundTruth};
pub use io::{
    dataset_from_csv, dataset_to_csv, parse_csv_row, read_dataset_from_dfs, write_dataset_to_dfs,
};
pub use normal::NormalSampler;
pub use skewed::{SkewedGenerator, SkewedParams};
