//! Gaussian sampling via the Box–Muller transform.
//!
//! Implemented locally (a dozen lines) instead of pulling `rand_distr`,
//! keeping the dependency set to the sanctioned list.

use rand::Rng;

/// A standard-normal sampler that caches the second Box–Muller variate.
#[derive(Debug, Default, Clone)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// New sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// One sample from N(0, 1).
    pub fn standard(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two independent standard normals
        let u1: f64 = loop {
            let u: f64 = rng.random();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// One sample from N(mean, sigma^2).
    pub fn sample(&mut self, rng: &mut impl Rng, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close_to_standard_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = NormalSampler::new();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| s.standard(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn mean_and_sigma_are_applied() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = NormalSampler::new();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sigma {}", var.sqrt());
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = NormalSampler::new();
            (0..10).map(|_| s.standard(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn all_samples_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = NormalSampler::new();
        for _ in 0..10_000 {
            assert!(s.standard(&mut rng).is_finite());
        }
    }
}
