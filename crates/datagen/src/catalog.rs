//! The five named datasets of the paper's Table I.
//!
//! | Name  | Points    | d  | eps | minpts |
//! |-------|-----------|----|-----|--------|
//! | c10k  | 10,000    | 10 | 25  | 5      |
//! | c100k | 102,400   | 10 | 25  | 5      |
//! | r10k  | 10,000    | 10 | 25  | 5      |
//! | r100k | 102,400   | 10 | 25  | 5      |
//! | r1m   | 1,024,000 | 10 | 25  | 5      |
//!
//! The paper says both groups come from the same IBM generator; we give
//! the `c` (clean) series few, well-separated clusters with little noise
//! and the `r` (rough) series more, smaller clusters with substantially
//! more noise — which reproduces the paper's observation that the `r`
//! datasets yield many more partial clusters (Fig. 6).

use crate::cluster_gen::{ClusterGenerator, GeneratorParams, GroundTruth};
use dbscan_spatial::Dataset;

/// The five datasets of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandardDataset {
    /// 10k points, clean cluster structure.
    C10k,
    /// 102,400 points, clean cluster structure.
    C100k,
    /// 10k points, rough structure (more clusters + noise).
    R10k,
    /// 102,400 points, rough structure.
    R100k,
    /// 1,024,000 points, rough structure.
    R1m,
}

/// A fully-pinned dataset description (what Table I reports, plus the
/// generator parameters we chose).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Table I name.
    pub name: &'static str,
    /// DBSCAN radius from Table I.
    pub eps: f64,
    /// DBSCAN density threshold from Table I.
    pub min_pts: usize,
    /// Generator parameters (n, d, clusters, noise, seed).
    pub params: GeneratorParams,
}

impl StandardDataset {
    /// All five, in Table I order.
    pub const ALL: [StandardDataset; 5] = [
        StandardDataset::C10k,
        StandardDataset::C100k,
        StandardDataset::R10k,
        StandardDataset::R100k,
        StandardDataset::R1m,
    ];

    /// Parse a Table I name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "c10k" => Some(StandardDataset::C10k),
            "c100k" => Some(StandardDataset::C100k),
            "r10k" => Some(StandardDataset::R10k),
            "r100k" => Some(StandardDataset::R100k),
            "r1m" => Some(StandardDataset::R1m),
            _ => None,
        }
    }

    /// The pinned spec for this dataset.
    pub fn spec(self) -> DatasetSpec {
        let (name, n, rough, seed) = match self {
            StandardDataset::C10k => ("c10k", 10_000, false, 0xC10C),
            StandardDataset::C100k => ("c100k", 102_400, false, 0xC100),
            StandardDataset::R10k => ("r10k", 10_000, true, 0x0010),
            StandardDataset::R100k => ("r100k", 102_400, true, 0x0100),
            StandardDataset::R1m => ("r1m", 1_024_000, true, 0x1000),
        };
        let mut params = GeneratorParams::new(n, 10, 0, seed);
        if rough {
            params.num_clusters = (n / 800).max(4);
            params.sigma = 8.0;
            params.noise_fraction = 0.15;
        } else {
            params.num_clusters = (n / 1600).max(4);
            params.sigma = 8.0;
            params.noise_fraction = 0.05;
        }
        if self == StandardDataset::R1m {
            // r1m is processed with 64-512 partitions plus the
            // small-partial-cluster filter (paper §V-E). Its clusters
            // must be large enough that a 1/512 index slice of a
            // cluster still carries evidence; ~26 clusters of ~33k
            // points puts the partial-cluster counts in the growing
            // regime the paper's Fig. 6b annotates (1875 ... 7532).
            params.num_clusters = 26;
        }
        DatasetSpec { name, eps: 25.0, min_pts: 5, params }
    }

    /// Generate the dataset (deterministic).
    pub fn generate(self) -> (Dataset, GroundTruth) {
        ClusterGenerator::new(self.spec().params).generate()
    }

    /// A scaled-down variant: same structure and parameters, `1/factor`
    /// of the points and clusters. Used by the Criterion benches so
    /// `cargo bench` stays laptop-fast; the figure binaries run full
    /// scale.
    pub fn scaled_spec(self, factor: usize) -> DatasetSpec {
        let mut spec = self.spec();
        let factor = factor.max(1);
        spec.params.n = (spec.params.n / factor).max(256);
        spec.params.num_clusters = (spec.params.num_clusters / factor).max(4);
        spec
    }
}

impl DatasetSpec {
    /// Generate this spec's dataset.
    pub fn generate(&self) -> (Dataset, GroundTruth) {
        ClusterGenerator::new(self.params.clone()).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match_paper() {
        assert_eq!(StandardDataset::C10k.spec().params.n, 10_000);
        assert_eq!(StandardDataset::C100k.spec().params.n, 102_400);
        assert_eq!(StandardDataset::R10k.spec().params.n, 10_000);
        assert_eq!(StandardDataset::R100k.spec().params.n, 102_400);
        assert_eq!(StandardDataset::R1m.spec().params.n, 1_024_000);
    }

    #[test]
    fn table1_common_parameters() {
        for d in StandardDataset::ALL {
            let s = d.spec();
            assert_eq!(s.params.dim, 10);
            assert_eq!(s.eps, 25.0);
            assert_eq!(s.min_pts, 5);
        }
    }

    #[test]
    fn names_roundtrip() {
        for d in StandardDataset::ALL {
            assert_eq!(StandardDataset::from_name(d.spec().name), Some(d));
        }
        assert_eq!(StandardDataset::from_name("x"), None);
    }

    #[test]
    fn rough_series_has_more_clusters_and_noise() {
        let c = StandardDataset::C10k.spec();
        let r = StandardDataset::R10k.spec();
        assert!(r.params.num_clusters > c.params.num_clusters);
        assert!(r.params.noise_fraction > c.params.noise_fraction);
    }

    #[test]
    fn generate_small_dataset() {
        let (ds, gt) = StandardDataset::C10k.scaled_spec(10).generate();
        assert_eq!(ds.len(), 1000);
        assert_eq!(ds.dim(), 10);
        assert!(gt.num_clusters() >= 4);
    }

    #[test]
    fn scaled_spec_floors() {
        let s = StandardDataset::C10k.scaled_spec(1_000_000);
        assert_eq!(s.params.n, 256);
        assert!(s.params.num_clusters >= 4);
    }

    #[test]
    fn specs_are_deterministic() {
        let (a, _) = StandardDataset::R10k.scaled_spec(20).generate();
        let (b, _) = StandardDataset::R10k.scaled_spec(20).generate();
        assert_eq!(a, b);
    }
}
