//! Skewed workloads: a Gaussian hotspot over a uniform background.
//!
//! The equal-count partitioning of the paper is only stressed when
//! per-point query cost varies with index position. This generator
//! produces exactly that regime: a tight Gaussian **hotspot** holding a
//! configurable fraction of the points, plus a sparse **uniform
//! background** filling the rest of the cube. By default the hotspot
//! block is emitted *first* (contiguously), so point index correlates
//! with spatial density and equal-count index ranges are genuinely
//! imbalanced — the scenario the cost planner
//! (`dbscan-core::partitioned::planner`) exists for. Set
//! [`SkewedParams::shuffle`] to destroy that correlation and get the
//! "skew hidden by shuffling" control arm.
//!
//! Deterministic per seed, like every generator in this crate.

use crate::normal::NormalSampler;
use dbscan_spatial::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of a skewed dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewedParams {
    /// Total number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Fraction of points in the hotspot, in `(0, 1]`.
    pub hotspot_fraction: f64,
    /// Per-axis standard deviation of the hotspot Gaussian.
    pub hotspot_sigma: f64,
    /// Side length of the bounding hyper-cube the background fills.
    pub side: f64,
    /// RNG seed.
    pub seed: u64,
    /// Shuffle the emitted rows (default `false`: hotspot first, so
    /// index order carries the skew to equal-count partitioning).
    pub shuffle: bool,
}

impl SkewedParams {
    /// Defaults tuned to the paper's scale: a quarter of the points in
    /// a `sigma = 5` hotspot at the cube center, the rest uniform over
    /// `[0, 1000]^d`. At `eps = 25` a hotspot query scans hundreds of
    /// candidates while a background query scans a handful.
    pub fn new(n: usize, dim: usize, seed: u64) -> Self {
        SkewedParams {
            n,
            dim,
            hotspot_fraction: 0.25,
            hotspot_sigma: 5.0,
            side: 1000.0,
            seed,
            shuffle: false,
        }
    }
}

/// The generator itself.
#[derive(Debug, Clone)]
pub struct SkewedGenerator {
    params: SkewedParams,
}

impl SkewedGenerator {
    /// Create with the given parameters.
    ///
    /// # Panics
    /// Panics on nonsensical parameters (zero dim, fraction outside
    /// `(0, 1]`, non-positive sigma/side).
    pub fn new(params: SkewedParams) -> Self {
        assert!(params.dim > 0, "dimension must be positive");
        assert!(
            params.hotspot_fraction > 0.0 && params.hotspot_fraction <= 1.0,
            "hotspot fraction must be in (0, 1]"
        );
        assert!(params.hotspot_sigma > 0.0, "sigma must be positive");
        assert!(params.side > 0.0, "side must be positive");
        SkewedGenerator { params }
    }

    /// The parameters.
    pub fn params(&self) -> &SkewedParams {
        &self.params
    }

    /// Generate the dataset plus a per-point hotspot flag (`true` for
    /// hotspot members), indexed by point.
    pub fn generate(&self) -> (Dataset, Vec<bool>) {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut normal = NormalSampler::new();

        let hot_n = ((p.n as f64 * p.hotspot_fraction).round() as usize).min(p.n);
        let center = vec![p.side / 2.0; p.dim];

        let mut rows: Vec<(bool, Vec<f64>)> = Vec::with_capacity(p.n);
        for _ in 0..hot_n {
            let row: Vec<f64> =
                center.iter().map(|&m| normal.sample(&mut rng, m, p.hotspot_sigma)).collect();
            rows.push((true, row));
        }
        for _ in hot_n..p.n {
            let row: Vec<f64> = (0..p.dim).map(|_| rng.random_range(0.0..p.side)).collect();
            rows.push((false, row));
        }
        if p.shuffle {
            rows.shuffle(&mut rng);
        }

        let mut ds = Dataset::empty(p.dim);
        let mut hotspot = Vec::with_capacity(p.n);
        for (is_hot, row) in rows {
            ds.push(&row);
            hotspot.push(is_hot);
        }
        (ds, hotspot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_spatial::{BkdTree, SpatialIndex};
    use std::sync::Arc;

    fn small() -> SkewedParams {
        SkewedParams::new(2000, 2, 7)
    }

    #[test]
    fn generates_requested_size_and_split() {
        let (ds, hot) = SkewedGenerator::new(small()).generate();
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.dim(), 2);
        assert_eq!(hot.iter().filter(|&&h| h).count(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, ha) = SkewedGenerator::new(small()).generate();
        let (b, hb) = SkewedGenerator::new(small()).generate();
        assert_eq!(a, b);
        assert_eq!(ha, hb);
        let mut other = small();
        other.seed = 8;
        let (c, _) = SkewedGenerator::new(other).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn hotspot_is_contiguous_prefix_by_default() {
        let (_, hot) = SkewedGenerator::new(small()).generate();
        assert!(hot[..500].iter().all(|&h| h), "hotspot must be the index prefix");
        assert!(hot[500..].iter().all(|&h| !h));
    }

    #[test]
    fn shuffle_destroys_the_prefix() {
        let mut p = small();
        p.shuffle = true;
        let (_, hot) = SkewedGenerator::new(p).generate();
        assert!(!hot[..500].iter().all(|&h| h), "shuffled hotspot still a prefix");
        assert_eq!(hot.iter().filter(|&&h| h).count(), 500);
    }

    #[test]
    fn hotspot_queries_cost_more_than_background() {
        // the property the cost planner exploits: at eps = 25 a hotspot
        // point sees most of the hotspot, a background point almost
        // nothing
        let (ds, hot) = SkewedGenerator::new(small()).generate();
        let ds = Arc::new(ds);
        let tree = BkdTree::build(Arc::clone(&ds));
        let mean = |flag: bool| {
            let (mut sum, mut cnt) = (0usize, 0usize);
            for (id, row) in ds.iter() {
                if hot[id.idx()] == flag {
                    sum += tree.count_within(row, 25.0);
                    cnt += 1;
                }
            }
            sum as f64 / cnt as f64
        };
        let (hot_mean, bg_mean) = (mean(true), mean(false));
        assert!(
            hot_mean > 20.0 * bg_mean,
            "hotspot {hot_mean} vs background {bg_mean}: not skewed enough"
        );
    }

    #[test]
    #[should_panic(expected = "hotspot fraction")]
    fn rejects_bad_fraction() {
        let mut p = small();
        p.hotspot_fraction = 0.0;
        let _ = SkewedGenerator::new(p);
    }
}
