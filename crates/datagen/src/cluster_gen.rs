//! The synthetic-cluster generator (our stand-in for IBM Quest).
//!
//! `k` Gaussian clusters with centers drawn uniformly in `[0, side]^d`
//! (rejected if too close to an existing center, so clusters are
//! separated at the paper's `eps` scale), plus a uniform noise fraction.
//! Points are emitted in shuffled order so index-range partitioning does
//! not trivially align with cluster structure — the regime in which the
//! paper's SEED mechanism actually has work to do.

use crate::normal::NormalSampler;
use dbscan_spatial::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of one synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorParams {
    /// Total number of points (cluster members + noise).
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of Gaussian clusters.
    pub num_clusters: usize,
    /// Per-axis standard deviation of each cluster.
    pub sigma: f64,
    /// Fraction of points drawn uniformly as noise, in `[0, 1)`.
    pub noise_fraction: f64,
    /// Side length of the bounding hyper-cube.
    pub side: f64,
    /// Minimum distance between cluster centers (0 disables the check).
    pub min_center_distance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorParams {
    /// Reasonable defaults matched to the paper's `eps = 25`: cluster
    /// members are dense at that radius, noise is not.
    pub fn new(n: usize, dim: usize, num_clusters: usize, seed: u64) -> Self {
        GeneratorParams {
            n,
            dim,
            num_clusters: num_clusters.max(1),
            sigma: 8.0,
            noise_fraction: 0.05,
            side: 1000.0,
            min_center_distance: 150.0,
            seed,
        }
    }
}

/// Which cluster (or noise) each generated point came from — ground
/// truth for validating clusterings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// `Some(cluster)` for members, `None` for noise, indexed by point.
    pub source: Vec<Option<u32>>,
}

impl GroundTruth {
    /// Number of generated noise points.
    pub fn noise_count(&self) -> usize {
        self.source.iter().filter(|s| s.is_none()).count()
    }

    /// Number of distinct generating clusters.
    pub fn num_clusters(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for s in self.source.iter().flatten() {
            seen.insert(*s);
        }
        seen.len()
    }
}

/// The generator itself.
#[derive(Debug, Clone)]
pub struct ClusterGenerator {
    params: GeneratorParams,
}

impl ClusterGenerator {
    /// Create with the given parameters.
    ///
    /// # Panics
    /// Panics on nonsensical parameters (zero dim, noise fraction ≥ 1).
    pub fn new(params: GeneratorParams) -> Self {
        assert!(params.dim > 0, "dimension must be positive");
        assert!((0.0..1.0).contains(&params.noise_fraction), "noise fraction must be in [0, 1)");
        assert!(params.sigma > 0.0, "sigma must be positive");
        assert!(params.side > 0.0, "side must be positive");
        ClusterGenerator { params }
    }

    /// The parameters.
    pub fn params(&self) -> &GeneratorParams {
        &self.params
    }

    /// Generate the dataset and its ground truth.
    pub fn generate(&self) -> (Dataset, GroundTruth) {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(p.seed);
        let mut normal = NormalSampler::new();

        let centers = self.place_centers(&mut rng);
        let noise_n = (p.n as f64 * p.noise_fraction).round() as usize;
        let member_n = p.n - noise_n;

        // labelled rows, then shuffled so point index carries no cluster info
        let mut rows: Vec<(Option<u32>, Vec<f64>)> = Vec::with_capacity(p.n);
        for i in 0..member_n {
            let c = i % centers.len();
            let row: Vec<f64> =
                centers[c].iter().map(|&m| normal.sample(&mut rng, m, p.sigma)).collect();
            rows.push((Some(c as u32), row));
        }
        for _ in 0..noise_n {
            let row: Vec<f64> = (0..p.dim).map(|_| rng.random_range(0.0..p.side)).collect();
            rows.push((None, row));
        }
        rows.shuffle(&mut rng);

        let mut ds = Dataset::empty(p.dim);
        let mut source = Vec::with_capacity(p.n);
        for (label, row) in rows {
            ds.push(&row);
            source.push(label);
        }
        (ds, GroundTruth { source })
    }

    fn place_centers(&self, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let p = &self.params;
        let mut centers: Vec<Vec<f64>> = Vec::with_capacity(p.num_clusters);
        let mut attempts = 0usize;
        while centers.len() < p.num_clusters {
            let cand: Vec<f64> = (0..p.dim).map(|_| rng.random_range(0.0..p.side)).collect();
            attempts += 1;
            let ok = p.min_center_distance <= 0.0
                || attempts > 1000 * p.num_clusters // give up separating, accept
                || centers.iter().all(|c| {
                    dbscan_spatial::euclidean(c, &cand) >= p.min_center_distance
                });
            if ok {
                centers.push(cand);
            }
        }
        centers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_spatial::{KdTree, SpatialIndex};
    use std::sync::Arc;

    fn small_params() -> GeneratorParams {
        GeneratorParams::new(2000, 10, 3, 42)
    }

    #[test]
    fn generates_requested_size_and_dim() {
        let (ds, gt) = ClusterGenerator::new(small_params()).generate();
        assert_eq!(ds.len(), 2000);
        assert_eq!(ds.dim(), 10);
        assert_eq!(gt.source.len(), 2000);
        assert_eq!(gt.num_clusters(), 3);
    }

    #[test]
    fn noise_fraction_respected() {
        let (_, gt) = ClusterGenerator::new(small_params()).generate();
        let frac = gt.noise_count() as f64 / 2000.0;
        assert!((frac - 0.05).abs() < 0.01, "noise fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, _) = ClusterGenerator::new(small_params()).generate();
        let (b, _) = ClusterGenerator::new(small_params()).generate();
        assert_eq!(a, b);
        let mut other = small_params();
        other.seed = 43;
        let (c, _) = ClusterGenerator::new(other).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn points_inside_reasonable_bounds() {
        let (ds, _) = ClusterGenerator::new(small_params()).generate();
        let (lo, hi) = ds.bounds().unwrap();
        for k in 0..ds.dim() {
            // Gaussians can leak past the cube, but not far (5 sigma)
            assert!(lo[k] > -60.0, "axis {k} lo {}", lo[k]);
            assert!(hi[k] < 1060.0, "axis {k} hi {}", hi[k]);
        }
    }

    #[test]
    fn cluster_members_are_dense_at_paper_eps() {
        // the property that makes Table I's eps=25/minpts=5 meaningful
        let (ds, gt) = ClusterGenerator::new(small_params()).generate();
        let ds = Arc::new(ds);
        let tree = KdTree::build(Arc::clone(&ds));
        let mut dense = 0usize;
        let mut members = 0usize;
        for (id, row) in ds.iter() {
            if gt.source[id.idx()].is_some() {
                members += 1;
                if tree.count_within(row, 25.0) >= 5 {
                    dense += 1;
                }
            }
        }
        assert!(
            dense as f64 >= 0.95 * members as f64,
            "only {dense}/{members} cluster members are core-dense"
        );
    }

    #[test]
    fn noise_is_sparse_at_paper_eps() {
        let (ds, gt) = ClusterGenerator::new(small_params()).generate();
        let ds = Arc::new(ds);
        let tree = KdTree::build(Arc::clone(&ds));
        let mut sparse = 0usize;
        let mut noise = 0usize;
        for (id, row) in ds.iter() {
            if gt.source[id.idx()].is_none() {
                noise += 1;
                if tree.count_within(row, 25.0) < 5 {
                    sparse += 1;
                }
            }
        }
        assert!(
            sparse as f64 >= 0.9 * noise as f64,
            "only {sparse}/{noise} noise points are sparse"
        );
    }

    #[test]
    fn shuffling_decouples_index_from_cluster() {
        let (_, gt) = ClusterGenerator::new(small_params()).generate();
        // the first 50 points must not all come from the same source
        let firsts: std::collections::HashSet<_> = gt.source[..50].iter().cloned().collect();
        assert!(firsts.len() > 1, "points not shuffled");
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn rejects_bad_noise_fraction() {
        let mut p = small_params();
        p.noise_fraction = 1.0;
        let _ = ClusterGenerator::new(p);
    }

    #[test]
    fn single_cluster_no_noise() {
        let mut p = small_params();
        p.num_clusters = 1;
        p.noise_fraction = 0.0;
        let (ds, gt) = ClusterGenerator::new(p).generate();
        assert_eq!(ds.len(), 2000);
        assert_eq!(gt.noise_count(), 0);
        assert_eq!(gt.num_clusters(), 1);
    }
}
