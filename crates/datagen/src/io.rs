//! CSV serialization of datasets, including to/from the mini-DFS — the
//! paper's pipeline "reads an input file from HDFS and generates RDDs".

use dbscan_spatial::Dataset;
use minidfs::{DfsCluster, DfsResult};
use std::io::Write;

/// Render a dataset as CSV text (one point per line, full precision).
pub fn dataset_to_csv(ds: &Dataset) -> String {
    let mut out = String::with_capacity(ds.len() * ds.dim() * 8);
    for (_, row) in ds.iter() {
        let mut first = true;
        for v in row {
            if !first {
                out.push(',');
            }
            first = false;
            // Ryu-style shortest roundtrip via Display on f64
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

/// Parse one CSV row into coordinates. Returns `None` on any malformed
/// field (callers decide whether to skip or fail).
pub fn parse_csv_row(line: &str) -> Option<Vec<f64>> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let mut row = Vec::new();
    for field in line.split(',') {
        row.push(field.trim().parse::<f64>().ok()?);
    }
    Some(row)
}

/// Parse CSV text into a dataset.
///
/// # Panics
/// Panics on inconsistent row dimensionality or malformed numbers.
pub fn dataset_from_csv(text: &str) -> Dataset {
    let rows: Vec<Vec<f64>> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_csv_row(l).unwrap_or_else(|| panic!("malformed CSV row: {l:?}")))
        .collect();
    if rows.is_empty() {
        Dataset::empty(1)
    } else {
        Dataset::from_rows(rows)
    }
}

/// Write a dataset as a CSV file into the DFS.
pub fn write_dataset_to_dfs(dfs: &DfsCluster, path: &str, ds: &Dataset) -> DfsResult<()> {
    let mut w = dfs.create(path)?;
    // stream through the DfsWriter so multi-block files exercise the
    // block-split path
    for (_, row) in ds.iter() {
        let mut line = String::new();
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v}"));
        }
        line.push('\n');
        w.write_all(line.as_bytes()).map_err(|_| minidfs::DfsError::NoDatanodesAvailable)?;
    }
    w.close()
}

/// Read a CSV dataset back from the DFS.
pub fn read_dataset_from_dfs(dfs: &DfsCluster, path: &str) -> DfsResult<Dataset> {
    let bytes = dfs.read_file(path)?;
    let text = String::from_utf8_lossy(&bytes);
    Ok(dataset_from_csv(&text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidfs::DfsConfig;

    fn small() -> Dataset {
        Dataset::from_rows(vec![vec![1.5, -2.0], vec![0.25, 1e-3], vec![123456.789, 0.0]])
    }

    #[test]
    fn csv_roundtrip_preserves_values() {
        let ds = small();
        let back = dataset_from_csv(&dataset_to_csv(&ds));
        assert_eq!(ds, back);
    }

    #[test]
    fn parse_row_handles_whitespace() {
        assert_eq!(parse_csv_row(" 1.0 , 2.5 "), Some(vec![1.0, 2.5]));
        assert_eq!(parse_csv_row(""), None);
        assert_eq!(parse_csv_row("1.0,abc"), None);
    }

    #[test]
    fn empty_csv_gives_empty_dataset() {
        let ds = dataset_from_csv("\n\n");
        assert!(ds.is_empty());
    }

    #[test]
    fn dfs_roundtrip_multi_block() {
        let dfs = DfsCluster::new(DfsConfig { num_datanodes: 2, replication: 1, block_size: 16 })
            .unwrap();
        let ds = small();
        write_dataset_to_dfs(&dfs, "/ds.csv", &ds).unwrap();
        assert!(dfs.stat("/ds.csv").unwrap().num_blocks > 1, "exercises block splitting");
        let back = read_dataset_from_dfs(&dfs, "/ds.csv").unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn malformed_csv_panics() {
        let _ = dataset_from_csv("1.0,2.0\nbad,row\n");
    }
}
