//! Job counters (Hadoop's `Counters`): built-in I/O accounting plus
//! user-defined named counters usable from mappers and reducers.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counter set shared across all tasks of a job.
#[derive(Debug, Default)]
pub struct Counters {
    /// Records consumed by mappers.
    pub map_input_records: AtomicU64,
    /// Records emitted by mappers.
    pub map_output_records: AtomicU64,
    /// Records remaining after map-side combining (0 if no combiner).
    pub combined_records: AtomicU64,
    /// Bytes written to spill files.
    pub spilled_bytes: AtomicU64,
    /// Bytes read back during the shuffle.
    pub shuffled_bytes: AtomicU64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: AtomicU64,
    /// Records produced by reducers.
    pub reduce_output_records: AtomicU64,
    custom: Mutex<BTreeMap<String, u64>>,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment a user-defined named counter.
    pub fn incr(&self, name: &str, by: u64) {
        *self.custom.lock().entry(name.to_string()).or_insert(0) += by;
    }

    /// Read a user-defined named counter (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.custom.lock().get(name).copied().unwrap_or(0)
    }

    /// Snapshot of all user-defined counters.
    pub fn custom_snapshot(&self) -> BTreeMap<String, u64> {
        self.custom.lock().clone()
    }

    pub(crate) fn add(&self, field: &AtomicU64, by: u64) {
        field.fetch_add(by, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_counters_accumulate() {
        let c = Counters::new();
        c.add(&c.map_input_records, 5);
        c.add(&c.map_input_records, 3);
        assert_eq!(c.map_input_records.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn custom_counters() {
        let c = Counters::new();
        assert_eq!(c.get("noise"), 0);
        c.incr("noise", 2);
        c.incr("noise", 1);
        c.incr("core", 7);
        assert_eq!(c.get("noise"), 3);
        let snap = c.custom_snapshot();
        assert_eq!(snap["core"], 7);
        assert_eq!(snap.len(), 2);
    }
}
