//! Error type for MapReduce jobs.

/// Result alias.
pub type MrResult<T> = Result<T, MrError>;

/// Job-level failures.
#[derive(Debug)]
pub enum MrError {
    /// A task exhausted its retry budget.
    TaskFailed {
        /// "map" or "reduce".
        phase: &'static str,
        /// Task index within the phase.
        task: usize,
        /// Attempts made.
        attempts: usize,
        /// Last error message.
        message: String,
    },
    /// Spill-file I/O failed.
    Io(std::io::Error),
    /// (De)serialization of intermediate records failed.
    Serde(serde_json::Error),
    /// Invalid job configuration.
    InvalidConfig(String),
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::TaskFailed { phase, task, attempts, message } => {
                write!(f, "{phase} task {task} failed after {attempts} attempts: {message}")
            }
            MrError::Io(e) => write!(f, "spill i/o error: {e}"),
            MrError::Serde(e) => write!(f, "intermediate serialization error: {e}"),
            MrError::InvalidConfig(m) => write!(f, "invalid job config: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<std::io::Error> for MrError {
    fn from(e: std::io::Error) -> Self {
        MrError::Io(e)
    }
}

impl From<serde_json::Error> for MrError {
    fn from(e: serde_json::Error) -> Self {
        MrError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_phase_and_task() {
        let e = MrError::TaskFailed { phase: "map", task: 2, attempts: 3, message: "x".into() };
        assert!(e.to_string().contains("map task 2"));
    }

    #[test]
    fn io_error_converts() {
        let e: MrError = std::io::Error::other("disk").into();
        assert!(matches!(e, MrError::Io(_)));
    }
}
