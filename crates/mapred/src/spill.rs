//! Spill files: the physical intermediate data path.
//!
//! Map output is sorted by key, serialized as JSON lines and written
//! through a buffered writer to a real file; reducers read it back with
//! a buffered reader. This is deliberately *not* an in-memory handoff —
//! the whole point of the MapReduce baseline is to pay the disk I/O and
//! serialization cost the paper attributes MapReduce's slowness to.

use crate::counters::Counters;
use crate::error::MrResult;
use crate::traits::{MrKey, MrValue};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Path of the spill file for `(map task, reduce partition)`.
pub fn spill_path(dir: &Path, map_task: usize, reduce_part: usize) -> PathBuf {
    dir.join(format!("map-{map_task:05}-part-{reduce_part:05}.jsonl"))
}

/// Write one sorted bucket to disk. Returns bytes written.
pub fn write_spill<K: MrKey, V: MrValue>(
    path: &Path,
    pairs: &[(K, V)],
    counters: &Counters,
) -> MrResult<u64> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    let mut bytes = 0u64;
    for pair in pairs {
        let line = serde_json::to_string(pair)?;
        bytes += line.len() as u64 + 1;
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    counters.add(&counters.spilled_bytes, bytes);
    Ok(bytes)
}

/// Read a spill file back (the reducer's "remote" fetch).
pub fn read_spill<K: MrKey, V: MrValue>(path: &Path, counters: &Counters) -> MrResult<Vec<(K, V)>> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut line = String::new();
    let mut out = Vec::new();
    let mut bytes = 0u64;
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        bytes += n as u64;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        out.push(serde_json::from_str::<(K, V)>(trimmed)?);
    }
    counters.add(&counters.shuffled_bytes, bytes);
    Ok(out)
}

/// Merge several key-sorted runs into one key-sorted vector.
pub fn merge_sorted_runs<K: Ord, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    // simple concatenate + stable sort: equivalent result to a k-way
    // merge, and `sort_by` is near-linear on already-sorted runs
    let mut all: Vec<(K, V)> = runs.into_iter().flatten().collect();
    all.sort_by(|a, b| a.0.cmp(&b.0));
    all
}

/// Group a key-sorted vector into `(key, values)` groups.
pub fn group_sorted<K: PartialEq, V>(sorted: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in sorted {
        match groups.last_mut() {
            Some((gk, vs)) if *gk == k => vs.push(v),
            _ => groups.push((k, vec![v])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("mapred-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn spill_roundtrip() {
        let dir = tmp_dir();
        let path = spill_path(&dir, 0, 0);
        let c = Counters::new();
        let pairs = vec![("a".to_string(), 1u64), ("b".to_string(), 2)];
        let bytes = write_spill(&path, &pairs, &c).unwrap();
        assert!(bytes > 0);
        assert!(path.exists(), "spill file is physically on disk");
        let back: Vec<(String, u64)> = read_spill(&path, &c).unwrap();
        assert_eq!(back, pairs);
        assert!(c.spilled_bytes.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert!(c.shuffled_bytes.load(std::sync::atomic::Ordering::Relaxed) > 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_spill_roundtrip() {
        let dir = tmp_dir();
        let path = spill_path(&dir, 1, 2);
        let c = Counters::new();
        write_spill::<String, u64>(&path, &[], &c).unwrap();
        let back: Vec<(String, u64)> = read_spill(&path, &c).unwrap();
        assert!(back.is_empty());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn merge_and_group() {
        let runs = vec![vec![(1, 'a'), (3, 'c')], vec![(1, 'b'), (2, 'x')]];
        let merged = merge_sorted_runs(runs);
        assert_eq!(merged.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![1, 1, 2, 3]);
        let groups = group_sorted(merged);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (1, vec!['a', 'b']));
        assert_eq!(groups[1], (2, vec!['x']));
    }

    #[test]
    fn group_empty() {
        assert!(group_sorted::<i32, i32>(Vec::new()).is_empty());
    }

    #[test]
    fn spill_path_is_unique_per_task_pair() {
        let d = PathBuf::from("/tmp");
        assert_ne!(spill_path(&d, 1, 2), spill_path(&d, 2, 1));
    }
}
