//! The job runner: map phase → (disk) shuffle → sort/merge → reduce.

use crate::config::JobConfig;
use crate::counters::Counters;
use crate::emitter::Emitter;
use crate::error::{MrError, MrResult};
use crate::spill::{group_sorted, merge_sorted_runs, read_spill, spill_path, write_spill};
use crate::traits::{Combiner, Mapper, Reducer};
use parking_lot::Mutex;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock breakdown of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseMetrics {
    /// Map phase (including partition/sort/spill).
    pub map: Duration,
    /// Shuffle reads + merge/sort, summed over reduce tasks.
    pub shuffle_sort: Duration,
    /// Reduce phase wall time.
    pub reduce: Duration,
    /// Whole job.
    pub total: Duration,
    /// Failed map attempts (then retried).
    pub map_retries: usize,
    /// Failed reduce attempts (then retried).
    pub reduce_retries: usize,
}

/// Output of a finished job.
pub struct JobResult<Out> {
    /// Reducer outputs, concatenated in reduce-partition order.
    pub outputs: Vec<Out>,
    /// The job's counters.
    pub counters: Arc<Counters>,
    /// Phase timings.
    pub metrics: PhaseMetrics,
    /// Busy time of each successful map task (feeds makespan
    /// simulation for core counts beyond the host's).
    pub map_task_times: Vec<Duration>,
    /// Busy time of each successful reduce task (including its shuffle
    /// reads).
    pub reduce_task_times: Vec<Duration>,
}

static JOB_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Type-erased map-side combiner hook.
type CombineFn<K, V> = Arc<dyn Fn(&K, Vec<V>) -> Vec<V> + Send + Sync>;

/// A configured MapReduce job, ready to run on input splits.
pub struct MapReduceJob<M, R>
where
    M: Mapper,
{
    mapper: Arc<M>,
    reducer: Arc<R>,
    combiner: Option<CombineFn<M::KOut, M::VOut>>,
    config: JobConfig,
}

impl<M, R> MapReduceJob<M, R>
where
    M: Mapper + 'static,
    R: Reducer<KIn = M::KOut, VIn = M::VOut> + 'static,
{
    /// Assemble a job.
    pub fn new(mapper: M, reducer: R, config: JobConfig) -> Self {
        MapReduceJob {
            mapper: Arc::new(mapper),
            reducer: Arc::new(reducer),
            combiner: None,
            config,
        }
    }

    /// Install a map-side combiner (Hadoop's `setCombinerClass`): each
    /// map task folds its values per key before spilling, shrinking
    /// intermediate files and shuffle reads.
    pub fn with_combiner<C>(mut self, combiner: C) -> Self
    where
        C: Combiner<K = M::KOut, V = M::VOut> + 'static,
    {
        let c = Arc::new(combiner);
        self.combiner = Some(Arc::new(move |k: &M::KOut, vs| c.combine(k, vs)));
        self
    }

    /// Run over pre-formed input splits (one map task per split).
    pub fn run(&self, splits: Vec<Vec<M::In>>) -> MrResult<JobResult<R::Out>> {
        let job_start = Instant::now();
        let counters = Arc::new(Counters::new());
        let num_maps = splits.len();
        let num_reduces = self.config.num_reducers.max(1);

        let job_dir = self.config.spill_root.join(format!(
            "mapred-job-{}-{}",
            std::process::id(),
            JOB_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&job_dir)?;
        let result = self.run_inner(splits, num_maps, num_reduces, &job_dir, &counters, job_start);
        // always clean the intermediate files, like a finished Hadoop job
        let _ = std::fs::remove_dir_all(&job_dir);
        result
    }

    fn run_inner(
        &self,
        splits: Vec<Vec<M::In>>,
        num_maps: usize,
        num_reduces: usize,
        job_dir: &Path,
        counters: &Arc<Counters>,
        job_start: Instant,
    ) -> MrResult<JobResult<R::Out>> {
        // ---------------- map phase ----------------
        let map_start = Instant::now();
        let splits = Arc::new(splits);
        let next_map = AtomicUsize::new(0);
        let map_error: Mutex<Option<MrError>> = Mutex::new(None);
        let map_retries = AtomicUsize::new(0);
        let map_task_times: Mutex<Vec<Duration>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..self.config.map_slots.max(1) {
                scope.spawn(|| loop {
                    let task = next_map.fetch_add(1, Ordering::Relaxed);
                    if task >= num_maps || map_error.lock().is_some() {
                        return;
                    }
                    let mut attempt = 0;
                    loop {
                        let attempt_start = Instant::now();
                        match self.try_map_task(
                            task,
                            attempt,
                            &splits[task],
                            num_reduces,
                            job_dir,
                            counters,
                        ) {
                            Ok(()) => {
                                map_task_times.lock().push(attempt_start.elapsed());
                                break;
                            }
                            Err(msg) => {
                                map_retries.fetch_add(1, Ordering::Relaxed);
                                attempt += 1;
                                if attempt >= self.config.max_task_attempts {
                                    *map_error.lock() = Some(MrError::TaskFailed {
                                        phase: "map",
                                        task,
                                        attempts: attempt,
                                        message: msg,
                                    });
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = map_error.into_inner() {
            return Err(e);
        }
        let map_time = map_start.elapsed();

        // ---------------- shuffle + reduce phase ----------------
        let reduce_start = Instant::now();
        let next_reduce = AtomicUsize::new(0);
        let reduce_error: Mutex<Option<MrError>> = Mutex::new(None);
        let reduce_retries = AtomicUsize::new(0);
        let shuffle_nanos = AtomicU64::new(0);
        let reduce_task_times: Mutex<Vec<Duration>> = Mutex::new(Vec::new());
        let outputs: Mutex<Vec<Option<Vec<R::Out>>>> =
            Mutex::new((0..num_reduces).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..self.config.reduce_slots.max(1) {
                scope.spawn(|| loop {
                    let part = next_reduce.fetch_add(1, Ordering::Relaxed);
                    if part >= num_reduces || reduce_error.lock().is_some() {
                        return;
                    }
                    let mut attempt = 0;
                    loop {
                        let attempt_start = Instant::now();
                        match self.try_reduce_task(
                            part,
                            attempt,
                            num_maps,
                            job_dir,
                            counters,
                            &shuffle_nanos,
                        ) {
                            Ok(out) => {
                                reduce_task_times.lock().push(attempt_start.elapsed());
                                outputs.lock()[part] = Some(out);
                                break;
                            }
                            Err(msg) => {
                                reduce_retries.fetch_add(1, Ordering::Relaxed);
                                attempt += 1;
                                if attempt >= self.config.max_task_attempts {
                                    *reduce_error.lock() = Some(MrError::TaskFailed {
                                        phase: "reduce",
                                        task: part,
                                        attempts: attempt,
                                        message: msg,
                                    });
                                    return;
                                }
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = reduce_error.into_inner() {
            return Err(e);
        }
        let reduce_time = reduce_start.elapsed();

        let outputs: Vec<R::Out> = outputs
            .into_inner()
            .into_iter()
            .flat_map(|o| o.expect("all reduce partitions completed"))
            .collect();

        Ok(JobResult {
            outputs,
            counters: Arc::clone(counters),
            metrics: PhaseMetrics {
                map: map_time,
                shuffle_sort: Duration::from_nanos(shuffle_nanos.load(Ordering::Relaxed)),
                reduce: reduce_time,
                total: job_start.elapsed(),
                map_retries: map_retries.load(Ordering::Relaxed),
                reduce_retries: reduce_retries.load(Ordering::Relaxed),
            },
            map_task_times: map_task_times.into_inner(),
            reduce_task_times: reduce_task_times.into_inner(),
        })
    }

    /// One map attempt: run the mapper, partition, sort, spill to disk.
    fn try_map_task(
        &self,
        task: usize,
        attempt: usize,
        split: &[M::In],
        num_reduces: usize,
        job_dir: &Path,
        counters: &Counters,
    ) -> Result<(), String> {
        if self.config.should_fail(0, task, attempt) {
            return Err(format!("injected map failure (task {task} attempt {attempt})"));
        }
        let mapper = Arc::clone(&self.mapper);
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
            let mut emitter = Emitter::new();
            for record in split {
                counters.add(&counters.map_input_records, 1);
                mapper.map(record.clone(), &mut emitter, counters);
            }
            let mut pairs = emitter.into_pairs();
            counters.add(&counters.map_output_records, pairs.len() as u64);
            if let Some(combine) = &self.combiner {
                // map-side combine: sort, group per key, fold
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
                let mut combined = Vec::with_capacity(pairs.len());
                for (k, vs) in group_sorted(pairs) {
                    for v in combine(&k, vs) {
                        combined.push((k.clone(), v));
                    }
                }
                pairs = combined;
                counters.add(&counters.combined_records, pairs.len() as u64);
            }

            // partition by key hash, sort each bucket, spill to disk
            let hasher = BuildHasherDefault::<DefaultHasher>::default();
            let mut buckets: Vec<Vec<(M::KOut, M::VOut)>> = vec![Vec::new(); num_reduces];
            for (k, v) in pairs {
                let b = (hasher.hash_one(&k) % num_reduces as u64) as usize;
                buckets[b].push((k, v));
            }
            for (r, mut bucket) in buckets.into_iter().enumerate() {
                bucket.sort_by(|a, b| a.0.cmp(&b.0));
                write_spill(&spill_path(job_dir, task, r), &bucket, counters)
                    .map_err(|e| e.to_string())?;
            }
            Ok(())
        }));
        match run {
            Ok(r) => r,
            Err(_) => Err("map task panicked".to_string()),
        }
    }

    /// One reduce attempt: fetch spills, merge, group, reduce.
    #[allow(clippy::too_many_arguments)]
    fn try_reduce_task(
        &self,
        part: usize,
        attempt: usize,
        num_maps: usize,
        job_dir: &Path,
        counters: &Counters,
        shuffle_nanos: &AtomicU64,
    ) -> Result<Vec<R::Out>, String> {
        if self.config.should_fail(1, part, attempt) {
            return Err(format!("injected reduce failure (part {part} attempt {attempt})"));
        }
        let reducer = Arc::clone(&self.reducer);
        let fetch_latency = self.config.fetch_latency;
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<R::Out>, String> {
            let shuffle_start = Instant::now();
            let mut runs: Vec<Vec<(R::KIn, R::VIn)>> = Vec::with_capacity(num_maps);
            for m in 0..num_maps {
                if !fetch_latency.is_zero() {
                    std::thread::sleep(fetch_latency);
                }
                runs.push(
                    read_spill(&spill_path(job_dir, m, part), counters)
                        .map_err(|e| e.to_string())?,
                );
            }
            let merged = merge_sorted_runs(runs);
            let groups = group_sorted(merged);
            shuffle_nanos.fetch_add(shuffle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);

            let mut out = Vec::new();
            for (k, vs) in groups {
                counters.add(&counters.reduce_input_groups, 1);
                reducer.reduce(k, vs, &mut out, counters);
            }
            counters.add(&counters.reduce_output_records, out.len() as u64);
            Ok(out)
        }));
        match run {
            Ok(r) => r,
            Err(_) => Err("reduce task panicked".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tokenize;

    impl Mapper for Tokenize {
        type In = String;
        type KOut = String;
        type VOut = u64;

        fn map(&self, record: String, emit: &mut Emitter<String, u64>, _c: &Counters) {
            for w in record.split_whitespace() {
                emit.emit(w.to_string(), 1);
            }
        }
    }

    struct Sum;

    impl Reducer for Sum {
        type KIn = String;
        type VIn = u64;
        type Out = (String, u64);

        fn reduce(
            &self,
            key: String,
            values: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _c: &Counters,
        ) {
            out.push((key, values.iter().sum()));
        }
    }

    fn wordcount(splits: Vec<Vec<String>>, cfg: JobConfig) -> JobResult<(String, u64)> {
        MapReduceJob::new(Tokenize, Sum, cfg).run(splits).unwrap()
    }

    fn splits_of(text: &[&str], n: usize) -> Vec<Vec<String>> {
        let lines: Vec<String> = text.iter().map(|s| s.to_string()).collect();
        let chunk = lines.len().div_ceil(n.max(1)).max(1);
        lines.chunks(chunk).map(|c| c.to_vec()).collect()
    }

    #[test]
    fn wordcount_end_to_end() {
        let r = wordcount(splits_of(&["a b a", "c b", "a"], 2), JobConfig::with_slots(2));
        let mut out = r.outputs;
        out.sort_unstable();
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
        assert_eq!(r.counters.map_input_records.load(Ordering::Relaxed), 3);
        assert_eq!(r.counters.map_output_records.load(Ordering::Relaxed), 6);
        assert!(r.counters.spilled_bytes.load(Ordering::Relaxed) > 0, "intermediates hit disk");
        assert!(r.counters.shuffled_bytes.load(Ordering::Relaxed) > 0, "reducers read disk");
        assert_eq!(r.counters.reduce_input_groups.load(Ordering::Relaxed), 3);
        assert!(r.metrics.total >= r.metrics.map);
    }

    #[test]
    fn result_is_independent_of_parallelism_and_reducers() {
        let text = &["x y z", "y z z", "w", "x x x x"];
        let mut base = wordcount(splits_of(text, 1), JobConfig::with_slots(1)).outputs;
        base.sort_unstable();
        for slots in [2, 3, 4] {
            let mut out = wordcount(splits_of(text, slots), JobConfig::with_slots(slots)).outputs;
            out.sort_unstable();
            assert_eq!(out, base, "slots={slots}");
        }
    }

    #[test]
    fn empty_input_runs_fine() {
        let r = wordcount(vec![], JobConfig::with_slots(2));
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn empty_splits_run_fine() {
        let r = wordcount(vec![vec![], vec![]], JobConfig::with_slots(2));
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn injected_failures_are_retried() {
        let cfg = JobConfig::with_slots(2).with_faults(1.0, 1);
        let r = wordcount(splits_of(&["a a", "b"], 2), cfg);
        let mut out = r.outputs;
        out.sort_unstable();
        assert_eq!(out, vec![("a".into(), 2), ("b".into(), 1)]);
        assert!(r.metrics.map_retries >= 2, "every map's first attempt failed");
        assert!(r.metrics.reduce_retries >= 1);
    }

    #[test]
    fn exhausted_retries_abort_job() {
        let cfg =
            JobConfig { max_task_attempts: 2, ..JobConfig::with_slots(1).with_faults(1.0, 10) };
        let err = MapReduceJob::new(Tokenize, Sum, cfg)
            .run(splits_of(&["a"], 1))
            .err()
            .expect("job must fail");
        assert!(matches!(err, MrError::TaskFailed { phase: "map", .. }));
    }

    struct PanickyMapper;

    impl Mapper for PanickyMapper {
        type In = String;
        type KOut = String;
        type VOut = u64;

        fn map(&self, _r: String, _e: &mut Emitter<String, u64>, _c: &Counters) {
            panic!("mapper bug");
        }
    }

    #[test]
    fn mapper_panic_is_task_failure_not_crash() {
        let cfg = JobConfig { max_task_attempts: 2, ..JobConfig::with_slots(1) };
        let err = MapReduceJob::new(PanickyMapper, Sum, cfg)
            .run(vec![vec!["x".to_string()]])
            .err()
            .expect("job must fail");
        match err {
            MrError::TaskFailed { message, .. } => assert!(message.contains("panicked")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn spill_dir_is_cleaned_up() {
        let root = std::env::temp_dir();
        let count_jobs = || -> usize {
            std::fs::read_dir(&root)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with("mapred-job-"))
                .count()
        };
        let before = count_jobs();
        let _ = wordcount(splits_of(&["a b"], 1), JobConfig::with_slots(1));
        assert_eq!(before, count_jobs(), "job directory removed after completion");
    }

    #[test]
    fn fetch_latency_slows_shuffle() {
        let fast = wordcount(splits_of(&["a b c d"], 2), JobConfig::with_slots(2));
        let slow = wordcount(
            splits_of(&["a b c d"], 2),
            JobConfig::with_slots(2).fetch_latency(Duration::from_millis(5)),
        );
        assert!(slow.metrics.shuffle_sort > fast.metrics.shuffle_sort);
    }

    #[test]
    fn values_arrive_grouped_per_key() {
        struct CollectAll;
        impl Reducer for CollectAll {
            type KIn = String;
            type VIn = u64;
            type Out = (String, Vec<u64>);

            fn reduce(&self, k: String, vs: Vec<u64>, out: &mut Vec<Self::Out>, _c: &Counters) {
                out.push((k, vs));
            }
        }
        let r = MapReduceJob::new(Tokenize, CollectAll, JobConfig::with_slots(3))
            .run(splits_of(&["k k", "k"], 3))
            .unwrap();
        assert_eq!(r.outputs.len(), 1, "one group for the single key");
        assert_eq!(r.outputs[0].1.len(), 3);
    }
}

#[cfg(test)]
mod combiner_tests {
    use super::*;

    struct Tokenize;

    impl Mapper for Tokenize {
        type In = String;
        type KOut = String;
        type VOut = u64;

        fn map(&self, record: String, emit: &mut Emitter<String, u64>, _c: &Counters) {
            for w in record.split_whitespace() {
                emit.emit(w.to_string(), 1);
            }
        }
    }

    struct Sum;

    impl Reducer for Sum {
        type KIn = String;
        type VIn = u64;
        type Out = (String, u64);

        fn reduce(
            &self,
            key: String,
            values: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _c: &Counters,
        ) {
            out.push((key, values.iter().sum()));
        }
    }

    struct SumCombiner;

    impl Combiner for SumCombiner {
        type K = String;
        type V = u64;

        fn combine(&self, _key: &String, values: Vec<u64>) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    fn splits() -> Vec<Vec<String>> {
        vec![vec!["a a a b".to_string(), "a b".to_string()], vec!["b b b a".to_string()]]
    }

    #[test]
    fn combiner_preserves_results() {
        let plain =
            MapReduceJob::new(Tokenize, Sum, JobConfig::with_slots(2)).run(splits()).unwrap();
        let combined = MapReduceJob::new(Tokenize, Sum, JobConfig::with_slots(2))
            .with_combiner(SumCombiner)
            .run(splits())
            .unwrap();
        let sort = |mut v: Vec<(String, u64)>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sort(plain.outputs), sort(combined.outputs));
    }

    #[test]
    fn combiner_shrinks_spilled_data() {
        let plain =
            MapReduceJob::new(Tokenize, Sum, JobConfig::with_slots(2)).run(splits()).unwrap();
        let combined = MapReduceJob::new(Tokenize, Sum, JobConfig::with_slots(2))
            .with_combiner(SumCombiner)
            .run(splits())
            .unwrap();
        let spilled =
            |r: &JobResult<(String, u64)>| r.counters.spilled_bytes.load(Ordering::Relaxed);
        assert!(
            spilled(&combined) < spilled(&plain),
            "combined {} vs plain {}",
            spilled(&combined),
            spilled(&plain)
        );
        // 10 map-output records fold into 2 keys x 2 map tasks = 4
        assert_eq!(combined.counters.map_output_records.load(Ordering::Relaxed), 10);
        assert_eq!(combined.counters.combined_records.load(Ordering::Relaxed), 4);
        assert_eq!(plain.counters.combined_records.load(Ordering::Relaxed), 0);
    }
}
