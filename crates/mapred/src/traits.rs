//! Mapper / Reducer traits — Hadoop's `map()` and `reduce()` methods.

use crate::counters::Counters;
use crate::emitter::Emitter;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Bounds every intermediate key must satisfy: serializable for the
/// spill files, ordered for the sort phase, hashable for partitioning.
pub trait MrKey:
    Serialize + DeserializeOwned + Ord + std::hash::Hash + Clone + Send + Sync + 'static
{
}
impl<T: Serialize + DeserializeOwned + Ord + std::hash::Hash + Clone + Send + Sync + 'static> MrKey
    for T
{
}

/// Bounds every intermediate value must satisfy.
pub trait MrValue: Serialize + DeserializeOwned + Clone + Send + Sync + 'static {}
impl<T: Serialize + DeserializeOwned + Clone + Send + Sync + 'static> MrValue for T {}

/// The user's map function.
pub trait Mapper: Send + Sync {
    /// Input record type (one element of an input split).
    type In: Clone + Send + Sync + 'static;
    /// Intermediate key.
    type KOut: MrKey;
    /// Intermediate value.
    type VOut: MrValue;

    /// Process one record, emitting any number of `(key, value)` pairs.
    fn map(
        &self,
        record: Self::In,
        emit: &mut Emitter<Self::KOut, Self::VOut>,
        counters: &Counters,
    );
}

/// An optional map-side combiner (Hadoop's `job.setCombinerClass`):
/// folds each map task's values per key *before* they are spilled,
/// shrinking the intermediate files. Must be semantically idempotent
/// with the reducer (`reduce(combine(xs) ++ combine(ys)) ==
/// reduce(xs ++ ys)`).
pub trait Combiner: Send + Sync {
    /// Intermediate key.
    type K: MrKey;
    /// Intermediate value.
    type V: MrValue;

    /// Fold one key's local values into (usually fewer) values.
    fn combine(&self, key: &Self::K, values: Vec<Self::V>) -> Vec<Self::V>;
}

/// The user's reduce function.
pub trait Reducer: Send + Sync {
    /// Intermediate key (must match the mapper's `KOut`).
    type KIn: MrKey;
    /// Intermediate value (must match the mapper's `VOut`).
    type VIn: MrValue;
    /// Final output record.
    type Out: Send + 'static;

    /// Process one key group; push results into `out`.
    fn reduce(
        &self,
        key: Self::KIn,
        values: Vec<Self::VIn>,
        out: &mut Vec<Self::Out>,
        counters: &Counters,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tokenize;

    impl Mapper for Tokenize {
        type In = String;
        type KOut = String;
        type VOut = u64;

        fn map(&self, record: String, emit: &mut Emitter<String, u64>, _c: &Counters) {
            for w in record.split_whitespace() {
                emit.emit(w.to_string(), 1);
            }
        }
    }

    struct Sum;

    impl Reducer for Sum {
        type KIn = String;
        type VIn = u64;
        type Out = (String, u64);

        fn reduce(
            &self,
            key: String,
            values: Vec<u64>,
            out: &mut Vec<(String, u64)>,
            _c: &Counters,
        ) {
            out.push((key, values.iter().sum()));
        }
    }

    #[test]
    fn traits_are_object_safe_enough_for_direct_use() {
        let c = Counters::new();
        let mut e = Emitter::new();
        Tokenize.map("a b a".into(), &mut e, &c);
        assert_eq!(e.len(), 3);
        let mut out = Vec::new();
        Sum.reduce("a".into(), vec![1, 1], &mut out, &c);
        assert_eq!(out, vec![("a".to_string(), 2)]);
    }
}
