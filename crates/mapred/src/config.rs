//! Job configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Configuration of one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Concurrent map slots ("cores" in Fig. 7).
    pub map_slots: usize,
    /// Concurrent reduce slots.
    pub reduce_slots: usize,
    /// Number of reduce partitions.
    pub num_reducers: usize,
    /// Directory for intermediate spill files; a per-job subdirectory is
    /// created inside and removed when the job finishes.
    pub spill_root: PathBuf,
    /// Simulated network latency added to every remote spill-file fetch
    /// (models the reducers' RPC reads from map workers' local disks).
    pub fetch_latency: Duration,
    /// Maximum attempts per task (1 = no retry).
    pub max_task_attempts: usize,
    /// Probability that a task attempt fails (injected, deterministic in
    /// `seed`); the first `max_injected_failures` attempts are eligible.
    pub task_failure_prob: f64,
    /// Number of attempts per task eligible for injected failure.
    pub max_injected_failures: usize,
    /// Seed for deterministic injection decisions.
    pub seed: u64,
}

impl JobConfig {
    /// A job with `slots` concurrent map/reduce slots and `slots`
    /// reducers — the "p cores" setup of the paper's Fig. 7.
    pub fn with_slots(slots: usize) -> Self {
        let slots = slots.max(1);
        JobConfig {
            map_slots: slots,
            reduce_slots: slots,
            num_reducers: slots,
            spill_root: std::env::temp_dir(),
            fetch_latency: Duration::ZERO,
            max_task_attempts: 4,
            task_failure_prob: 0.0,
            max_injected_failures: 0,
            seed: 0x5eed,
        }
    }

    /// Builder-style: number of reduce partitions.
    pub fn num_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n.max(1);
        self
    }

    /// Builder-style: spill directory root.
    pub fn spill_root(mut self, p: impl Into<PathBuf>) -> Self {
        self.spill_root = p.into();
        self
    }

    /// Builder-style: simulated remote-fetch latency.
    pub fn fetch_latency(mut self, d: Duration) -> Self {
        self.fetch_latency = d;
        self
    }

    /// Builder-style: fault injection.
    pub fn with_faults(mut self, prob: f64, max_failures: usize) -> Self {
        self.task_failure_prob = prob;
        self.max_injected_failures = max_failures;
        self
    }

    /// Deterministic injected-failure decision for a task attempt.
    pub(crate) fn should_fail(&self, phase: u64, task: usize, attempt: usize) -> bool {
        if attempt >= self.max_injected_failures || self.task_failure_prob <= 0.0 {
            return false;
        }
        if self.task_failure_prob >= 1.0 {
            return true;
        }
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(phase)
            .wrapping_add((task as u64) << 24)
            .wrapping_add(attempt as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) < self.task_failure_prob
    }
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig::with_slots(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_slots_sets_all_parallelism() {
        let c = JobConfig::with_slots(8);
        assert_eq!(c.map_slots, 8);
        assert_eq!(c.reduce_slots, 8);
        assert_eq!(c.num_reducers, 8);
    }

    #[test]
    fn zero_slots_clamped() {
        let c = JobConfig::with_slots(0);
        assert_eq!(c.map_slots, 1);
    }

    #[test]
    fn fault_injection_deterministic() {
        let c = JobConfig::with_slots(1).with_faults(0.5, 1);
        for t in 0..20 {
            assert_eq!(c.should_fail(0, t, 0), c.should_fail(0, t, 0));
            assert!(!c.should_fail(0, t, 1), "only first attempt eligible");
        }
    }

    #[test]
    fn always_fail_prob_one() {
        let c = JobConfig::with_slots(1).with_faults(1.0, 2);
        assert!(c.should_fail(1, 0, 0));
        assert!(c.should_fail(1, 0, 1));
        assert!(!c.should_fail(1, 0, 2));
    }
}
