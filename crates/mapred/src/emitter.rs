//! The mapper's output collector.

/// Collects `(key, value)` pairs emitted by a map task.
#[derive(Debug)]
pub struct Emitter<K, V> {
    pairs: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    /// New empty collector.
    pub fn new() -> Self {
        Emitter { pairs: Vec::new() }
    }

    /// Emit one pair (Hadoop's `context.write`).
    pub fn emit(&mut self, key: K, value: V) {
        self.pairs.push((key, value));
    }

    /// Number of pairs emitted so far.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consume the collector.
    pub(crate) fn into_pairs(self) -> Vec<(K, V)> {
        self.pairs
    }
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_in_order() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        e.emit(1, "a");
        e.emit(2, "b");
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![(1, "a"), (2, "b")]);
    }
}
