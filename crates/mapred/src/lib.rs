//! # mapred — a Hadoop-MapReduce-like engine
//!
//! The paper compares its Spark DBSCAN against "our own DBSCAN with
//! MapReduce approach" (Fig. 7) and attributes MapReduce's slowness to
//! the data path: "map's intermediate results should be written to local
//! disks and then they are remotely read \[by\] reduce workers, and disk
//! I/O operations are very expensive". This crate reproduces that data
//! path physically:
//!
//! * **Map phase**: map tasks run on a slot pool; their output is
//!   partitioned by key hash, **sorted by key**, serialized (serde_json)
//!   and **spilled to real local files** — one spill file per
//!   `(map task, reduce partition)`.
//! * **Shuffle**: each reduce task reads its column of spill files back
//!   from disk (optionally with simulated remote-read latency) and
//!   deserializes them.
//! * **Sort/merge + reduce**: runs are merged by key, grouped, and fed
//!   to the reducer.
//! * **Task retry**: map and reduce attempts are retried on failure
//!   (including injected failures), the fault-tolerance behaviour the
//!   paper credits frameworks with.
//! * **Counters and phase metrics**: records and bytes spilled/shuffled,
//!   and wall time per phase, so Fig. 7's cost structure is inspectable.

pub mod config;
pub mod counters;
pub mod emitter;
pub mod error;
pub mod job;
pub mod spill;
pub mod traits;

pub use config::JobConfig;
pub use counters::Counters;
pub use emitter::Emitter;
pub use error::{MrError, MrResult};
pub use job::{JobResult, MapReduceJob, PhaseMetrics};
pub use traits::{Combiner, Mapper, Reducer};
