//! Property tests for the dimension-monomorphized and lane-blocked
//! kernels: the specialized `D = 2..=6` paths and the SoA lane kernels
//! must be **byte-identical** to the generic dynamic-length loops —
//! same matched rows, same `f64` bits, same early-exit row — and the
//! indexes wired through them must still agree with each other.

use dbscan_spatial::{
    count_block_soa, scan_block, scan_block_generic, scan_block_soa, transpose_block, BkdTree,
    BruteForceIndex, Dataset, Metric, PointId, QueryScratch, SpatialIndex, LANE_WIDTHS,
    SPECIALIZED_DIMS,
};
use proptest::prelude::*;
use std::sync::Arc;

const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

fn sorted(mut v: Vec<PointId>) -> Vec<PointId> {
    v.sort_unstable();
    v
}

fn dataset_strategy(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The core claim of the kernel module: for every dim (specialized
    /// or not) and every metric, the dispatching scan and the generic
    /// scan report exactly the same row set.
    #[test]
    fn scan_block_matches_generic_any_dim(
        dim in 1usize..=6,
        seed_rows in dataset_strategy(6),
        q6 in prop::collection::vec(-60.0f64..60.0, 6..=6),
        eps in 0.0f64..60.0,
        metric_idx in 0usize..3,
    ) {
        let metric = METRICS[metric_idx];
        let block: Vec<f64> =
            seed_rows.iter().flat_map(|r| r[..dim].iter().copied()).collect();
        let q = &q6[..dim];
        let thr = metric.threshold(eps);
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        scan_block(metric, dim, q, &block, thr, |i| { fast.push(i); true });
        scan_block_generic(metric, dim, q, &block, thr, |i| { slow.push(i); true });
        prop_assert_eq!(fast, slow);
    }

    /// Distances along both paths are bit-identical, not merely close:
    /// the specialized kernels accumulate in the same order as the
    /// generic loops, so clustering results cannot drift by dimension.
    #[test]
    fn reduced_distances_are_bit_identical(
        a in prop::collection::vec(-1e6f64..1e6, 1..=6),
        b6 in prop::collection::vec(-1e6f64..1e6, 6..=6),
        metric_idx in 0usize..3,
    ) {
        let metric = METRICS[metric_idx];
        let b = &b6[..a.len()];
        let via_dispatch = metric.reduced_distance(&a, b);
        let via_generic = dbscan_spatial::kernel::reduced_generic(metric, &a, b);
        prop_assert_eq!(via_dispatch.to_bits(), via_generic.to_bits());
    }

    /// Early exit fires at the same row on both paths.
    #[test]
    fn early_exit_agrees_with_generic(
        dim in 1usize..=5,
        seed_rows in dataset_strategy(5),
        eps in 0.0f64..80.0,
        cap in 1usize..8,
    ) {
        let block: Vec<f64> =
            seed_rows.iter().flat_map(|r| r[..dim].iter().copied()).collect();
        let q = vec![0.0; dim];
        let thr = Metric::Euclidean.threshold(eps);
        let run = |generic: bool| {
            let mut hits = Vec::new();
            let mut n = 0usize;
            let cb = |i: usize| {
                hits.push(i);
                n += 1;
                n < cap
            };
            let finished = if generic {
                scan_block_generic(Metric::Euclidean, dim, &q, &block, thr, cb)
            } else {
                scan_block(Metric::Euclidean, dim, &q, &block, thr, cb)
            };
            (finished, hits)
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// End-to-end through the tree: the bucketed kd-tree (whose leaf
    /// scans dispatch to the specialized kernels) agrees with the
    /// brute-force oracle on exactly the specialized dims, plus one
    /// fallback dim, for every metric.
    #[test]
    fn bkdtree_matches_bruteforce_specialized_dims(
        seed_rows in dataset_strategy(7),
        eps in 0.0f64..40.0,
        bucket in 1usize..=16,
        metric_idx in 0usize..3,
    ) {
        let metric = METRICS[metric_idx];
        for dim in SPECIALIZED_DIMS.iter().copied().chain([7usize]) {
            let rows: Vec<Vec<f64>> =
                seed_rows.iter().map(|r| r[..dim].to_vec()).collect();
            let ds = Arc::new(Dataset::from_rows(rows));
            let bkd = BkdTree::build_with(ds.clone(), metric, bucket);
            let bf = BruteForceIndex::with_metric(ds.clone(), metric);
            let mut scratch = QueryScratch::new();
            let mut out = Vec::new();
            for (_, row) in ds.iter().take(30) {
                out.clear();
                bkd.range_into_scratch(row, eps, &mut scratch, &mut out);
                prop_assert_eq!(sorted(out.clone()), sorted(bf.range(row, eps)));
                prop_assert_eq!(bkd.count_within(row, eps), bf.count_within(row, eps));
            }
        }
    }

    /// SoA transposition is lossless: every coordinate lands at its
    /// dimension-major slot with identical bits, and transposing back
    /// reproduces the row-major block exactly.
    #[test]
    fn soa_transpose_round_trips_losslessly(
        dim in 1usize..=6,
        seed_rows in dataset_strategy(6),
    ) {
        let block: Vec<f64> =
            seed_rows.iter().flat_map(|r| r[..dim].iter().copied()).collect();
        let rows = block.len() / dim;
        let mut soa = vec![0.0f64; block.len()];
        transpose_block(&block, dim, &mut soa);
        for i in 0..rows {
            for k in 0..dim {
                prop_assert_eq!(block[i * dim + k].to_bits(), soa[k * rows + i].to_bits());
            }
        }
        // round trip: the SoA block viewed as a rows-per-"row" matrix
        // transposes back to the original
        let mut back = vec![0.0f64; block.len()];
        transpose_block(&soa, rows, &mut back);
        for (a, b) in block.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The lane-blocked SoA scan reports exactly the rows the scalar
    /// scan reports, in the same order, for every dim, metric and lane
    /// width — including the early-exit row when the callback stops.
    #[test]
    fn soa_scan_is_bit_identical_to_scalar(
        dim in 1usize..=6,
        seed_rows in dataset_strategy(6),
        q6 in prop::collection::vec(-60.0f64..60.0, 6..=6),
        eps in 0.0f64..60.0,
        metric_idx in 0usize..3,
        cap_raw in 0usize..8,
    ) {
        let cap = (cap_raw > 0).then_some(cap_raw);
        let metric = METRICS[metric_idx];
        let block: Vec<f64> =
            seed_rows.iter().flat_map(|r| r[..dim].iter().copied()).collect();
        let rows = block.len() / dim;
        let mut soa = vec![0.0f64; block.len()];
        transpose_block(&block, dim, &mut soa);
        let q = &q6[..dim];
        let thr = metric.threshold(eps);
        let scalar = {
            let mut hits = Vec::new();
            let finished = scan_block(metric, dim, q, &block, thr, |i| {
                hits.push(i);
                cap.is_none_or(|c| hits.len() < c)
            });
            (finished, hits)
        };
        for lanes in LANE_WIDTHS {
            let mut hits = Vec::new();
            let finished = scan_block_soa(metric, dim, q, &soa, rows, thr, lanes, |i| {
                hits.push(i);
                cap.is_none_or(|c| hits.len() < c)
            });
            prop_assert_eq!(&(finished, hits), &scalar, "lanes={}", lanes);
        }
    }

    /// The count-only kernel is exact below its cap and agrees with the
    /// scalar match count; once capped it reports at least the cap.
    #[test]
    fn soa_count_is_exact_below_cap(
        dim in 1usize..=6,
        seed_rows in dataset_strategy(6),
        q6 in prop::collection::vec(-60.0f64..60.0, 6..=6),
        eps in 0.0f64..60.0,
        metric_idx in 0usize..3,
        cap in 1usize..200,
    ) {
        let metric = METRICS[metric_idx];
        let block: Vec<f64> =
            seed_rows.iter().flat_map(|r| r[..dim].iter().copied()).collect();
        let rows = block.len() / dim;
        let mut soa = vec![0.0f64; block.len()];
        transpose_block(&block, dim, &mut soa);
        let q = &q6[..dim];
        let thr = metric.threshold(eps);
        let mut exact = 0usize;
        scan_block(metric, dim, q, &block, thr, |_| { exact += 1; true });
        for lanes in LANE_WIDTHS {
            let mut n = 0usize;
            let capped = count_block_soa(metric, dim, q, &soa, rows, thr, lanes, cap, &mut n);
            prop_assert_eq!(capped, exact >= cap, "lanes={}", lanes);
            if capped {
                prop_assert!(n >= cap);
                prop_assert!(n <= exact, "no row is ever counted twice");
            } else {
                prop_assert_eq!(n, exact, "below the cap the count must be exact");
            }
        }
    }
}
