//! Property tests: every index must agree with the brute-force oracle,
//! and pruned kd-tree queries must be subsets of exact ones.

use dbscan_spatial::{
    BkdTree, BruteForceIndex, Dataset, GridIndex, KdTree, Metric, PointId, PruneConfig,
    QueryScratch, RTree, SpatialIndex,
};
use proptest::prelude::*;
use std::sync::Arc;

fn sorted(mut v: Vec<PointId>) -> Vec<PointId> {
    v.sort_unstable();
    v
}

fn dataset_strategy(dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_matches_bruteforce_2d(rows in dataset_strategy(2), eps in 0.0f64..30.0, qx in -60.0f64..60.0, qy in -60.0f64..60.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let kd = KdTree::build(ds.clone());
        let bf = BruteForceIndex::new(ds);
        let q = [qx, qy];
        prop_assert_eq!(sorted(kd.range(&q, eps)), sorted(bf.range(&q, eps)));
    }

    #[test]
    fn kdtree_matches_bruteforce_5d(rows in dataset_strategy(5), eps in 0.0f64..40.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let kd = KdTree::build(ds.clone());
        let bf = BruteForceIndex::new(ds.clone());
        // query from every dataset point: the access pattern DBSCAN uses
        for (_, row) in ds.iter() {
            prop_assert_eq!(sorted(kd.range(row, eps)), sorted(bf.range(row, eps)));
        }
    }

    #[test]
    fn kdtree_count_matches_len(rows in dataset_strategy(3), eps in 0.0f64..20.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let kd = KdTree::build(ds.clone());
        for (_, row) in ds.iter() {
            prop_assert_eq!(kd.count_within(row, eps), kd.range(row, eps).len());
        }
    }

    #[test]
    fn pruned_is_subset_and_capped(rows in dataset_strategy(3), eps in 0.0f64..25.0, cap in 1usize..10) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let kd = KdTree::build(ds.clone());
        for (_, row) in ds.iter() {
            let exact = sorted(kd.range(row, eps));
            let mut pruned = Vec::new();
            kd.range_pruned(row, eps, PruneConfig::cap_neighbors(cap), &mut pruned);
            prop_assert!(pruned.len() <= cap.max(exact.len()));
            prop_assert!(pruned.len() <= exact.len());
            for p in &pruned {
                prop_assert!(exact.binary_search(p).is_ok());
            }
            // the cap only truncates, it never loses matches below the cap
            prop_assert_eq!(pruned.len(), exact.len().min(cap));
        }
    }

    #[test]
    fn rtree_matches_bruteforce(rows in dataset_strategy(4), eps in 0.0f64..40.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let rt = RTree::build(ds.clone());
        let bf = BruteForceIndex::new(ds.clone());
        for (_, row) in ds.iter() {
            prop_assert_eq!(sorted(rt.range(row, eps)), sorted(bf.range(row, eps)));
        }
    }

    #[test]
    fn rtree_and_kdtree_agree(rows in dataset_strategy(3), eps in 0.0f64..30.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let rt = RTree::build(ds.clone());
        let kd = KdTree::build(ds.clone());
        for (_, row) in ds.iter().take(25) {
            prop_assert_eq!(sorted(rt.range(row, eps)), sorted(kd.range(row, eps)));
        }
    }

    #[test]
    fn grid_matches_bruteforce(rows in dataset_strategy(2), eps in 0.01f64..10.0, cell in 0.5f64..5.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let g = GridIndex::build(ds.clone(), cell);
        let bf = BruteForceIndex::new(ds.clone());
        for (_, row) in ds.iter().take(20) {
            prop_assert_eq!(sorted(g.range(row, eps)), sorted(bf.range(row, eps)));
        }
    }

    #[test]
    fn nearest_agrees_with_exhaustive_scan(rows in dataset_strategy(3), q in prop::collection::vec(-60.0f64..60.0, 3..=3)) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let kd = KdTree::build(ds.clone());
        let (_, d) = kd.nearest(&q).unwrap();
        let best = ds
            .iter()
            .map(|(_, row)| dbscan_spatial::euclidean(&q, row))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - best).abs() < 1e-9);
    }

    // ---- bucketed kd-tree ------------------------------------------------

    #[test]
    fn bkdtree_matches_bruteforce_any_dim(
        dim in 1usize..=10,
        bucket in 1usize..=32,
        seed_rows in dataset_strategy(10),
        eps in 0.0f64..40.0,
    ) {
        // truncate the 10-d rows to the sampled dimension so one
        // strategy covers dims 1..=10
        let rows: Vec<Vec<f64>> = seed_rows.into_iter().map(|mut r| { r.truncate(dim); r }).collect();
        let ds = Arc::new(Dataset::from_rows(rows));
        let bkd = BkdTree::build_with(ds.clone(), Metric::Euclidean, bucket);
        let bf = BruteForceIndex::new(ds.clone());
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        for (_, row) in ds.iter() {
            out.clear();
            bkd.range_into_scratch(row, eps, &mut scratch, &mut out);
            prop_assert_eq!(sorted(out.clone()), sorted(bf.range(row, eps)));
        }
    }

    #[test]
    fn bkdtree_handles_duplicate_heavy_data(
        distinct in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3..=3), 1..8),
        copies in prop::collection::vec(0usize..8, 1..8),
        bucket in 1usize..=16,
        eps in 0.0f64..15.0,
    ) {
        // every distinct row duplicated `copies[i % len]` extra times:
        // exercises leaves full of identical coordinates
        let mut rows = Vec::new();
        for (i, r) in distinct.iter().enumerate() {
            for _ in 0..=copies[i % copies.len()] {
                rows.push(r.clone());
            }
        }
        let ds = Arc::new(Dataset::from_rows(rows));
        let bkd = BkdTree::build_with(ds.clone(), Metric::Euclidean, bucket);
        let bf = BruteForceIndex::new(ds.clone());
        for (_, row) in ds.iter() {
            prop_assert_eq!(sorted(bkd.range(row, eps)), sorted(bf.range(row, eps)));
        }
    }

    #[test]
    fn bkdtree_pruned_is_subset_of_exact(
        rows in dataset_strategy(4),
        eps in 0.0f64..30.0,
        cap in 1usize..10,
        bucket in 1usize..=32,
    ) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let bkd = BkdTree::build_with(ds.clone(), Metric::Euclidean, bucket);
        let mut scratch = QueryScratch::new();
        let mut pruned = Vec::new();
        for (_, row) in ds.iter() {
            let exact = sorted(bkd.range(row, eps));
            pruned.clear();
            bkd.range_pruned_scratch(row, eps, PruneConfig::cap_neighbors(cap), &mut scratch, &mut pruned);
            prop_assert_eq!(pruned.len(), exact.len().min(cap));
            for p in &pruned {
                prop_assert!(exact.binary_search(p).is_ok());
            }
        }
    }

    #[test]
    fn bkdtree_count_at_least_matches_threshold(
        rows in dataset_strategy(3),
        eps in 0.0f64..25.0,
        k in 0usize..12,
        bucket in 1usize..=16,
    ) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let bkd = BkdTree::build_with(ds.clone(), Metric::Euclidean, bucket);
        let mut scratch = QueryScratch::new();
        for (_, row) in ds.iter() {
            let expect = bkd.range(row, eps).len() >= k;
            prop_assert_eq!(bkd.count_at_least(row, eps, k, &mut scratch), expect);
        }
    }

    #[test]
    fn bkdtree_and_kdtree_agree(rows in dataset_strategy(6), eps in 0.0f64..35.0) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let bkd = BkdTree::build(ds.clone());
        let kd = KdTree::build(ds.clone());
        for (_, row) in ds.iter().take(30) {
            prop_assert_eq!(sorted(bkd.range(row, eps)), sorted(kd.range(row, eps)));
        }
    }

    #[test]
    fn bkdtree_nearest_agrees_with_exhaustive_scan(
        rows in dataset_strategy(4),
        q in prop::collection::vec(-60.0f64..60.0, 4..=4),
        bucket in 1usize..=16,
    ) {
        let ds = Arc::new(Dataset::from_rows(rows));
        let bkd = BkdTree::build_with(ds.clone(), Metric::Euclidean, bucket);
        let (_, d) = bkd.nearest(&q).unwrap();
        let best = ds
            .iter()
            .map(|(_, row)| dbscan_spatial::euclidean(&q, row))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((d - best).abs() < 1e-9);
    }
}
