//! Axis-aligned bounding boxes.
//!
//! Used by the kd-tree for subtree pruning: a subtree whose bounding box
//! lies entirely outside the query ball can be skipped, and one entirely
//! inside can be reported wholesale.

use crate::metric::Metric;

/// An axis-aligned box `[lo, hi]` in `d` dimensions (inclusive bounds).
#[derive(Debug, Clone, PartialEq)]
pub struct Aabb {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Aabb {
    /// Create a box from inclusive lower/upper corners.
    ///
    /// # Panics
    /// Panics if the corners have different lengths or `lo[k] > hi[k]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        for k in 0..lo.len() {
            assert!(lo[k] <= hi[k], "inverted bounds on axis {k}");
        }
        Aabb { lo, hi }
    }

    /// The smallest box containing every point of `points` (row-major with
    /// dimension `dim`). Returns `None` for an empty slice.
    pub fn from_points(dim: usize, points: &[f64]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut lo = points[..dim].to_vec();
        let mut hi = lo.clone();
        for row in points.chunks_exact(dim).skip(1) {
            for (k, &v) in row.iter().enumerate() {
                if v < lo[k] {
                    lo[k] = v;
                }
                if v > hi[k] {
                    hi[k] = v;
                }
            }
        }
        Some(Aabb { lo, hi })
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Inclusive lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether the point lies inside (inclusive).
    pub fn contains(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dim());
        p.iter().zip(self.lo.iter().zip(self.hi.iter())).all(|(&v, (&l, &h))| v >= l && v <= h)
    }

    /// Reduced-space distance from `p` to the nearest point of the box
    /// (0 when `p` is inside). A lower bound used for pruning.
    pub fn min_reduced_distance(&self, p: &[f64], metric: Metric) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        match metric {
            Metric::Euclidean => self.axis_deltas(p).map(|d| d * d).sum(),
            Metric::Manhattan => self.axis_deltas(p).map(f64::abs).sum(),
            Metric::Chebyshev => self.axis_deltas(p).map(f64::abs).fold(0.0, f64::max),
        }
    }

    /// Per-axis clamped deltas from `p` to the box.
    fn axis_deltas<'a>(&'a self, p: &'a [f64]) -> impl Iterator<Item = f64> + 'a {
        p.iter().zip(self.lo.iter().zip(self.hi.iter())).map(|(&v, (&l, &h))| clamp_delta(v, l, h))
    }

    /// Reduced-space distance from `p` to the farthest point of the box.
    /// An upper bound: if it is within the query radius the whole subtree
    /// matches and can be reported without per-point checks.
    pub fn max_reduced_distance(&self, p: &[f64], metric: Metric) -> f64 {
        debug_assert_eq!(p.len(), self.dim());
        let axis_far =
            |k: usize| -> f64 { (p[k] - self.lo[k]).abs().max((p[k] - self.hi[k]).abs()) };
        match metric {
            Metric::Euclidean => (0..p.len())
                .map(|k| {
                    let d = axis_far(k);
                    d * d
                })
                .sum(),
            Metric::Manhattan => (0..p.len()).map(axis_far).sum(),
            Metric::Chebyshev => (0..p.len()).map(axis_far).fold(0.0, f64::max),
        }
    }
}

#[inline]
fn clamp_delta(v: f64, lo: f64, hi: f64) -> f64 {
    if v < lo {
        lo - v
    } else if v > hi {
        v - hi
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn contains_inclusive_edges() {
        let b = unit_box();
        assert!(b.contains(&[0.0, 0.0]));
        assert!(b.contains(&[1.0, 1.0]));
        assert!(b.contains(&[0.5, 0.5]));
        assert!(!b.contains(&[1.0001, 0.5]));
        assert!(!b.contains(&[0.5, -0.0001]));
    }

    #[test]
    fn min_distance_zero_inside() {
        let b = unit_box();
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert_eq!(b.min_reduced_distance(&[0.5, 0.5], m), 0.0);
        }
    }

    #[test]
    fn min_distance_outside_euclidean() {
        let b = unit_box();
        // point (2, 2): nearest box point is (1,1); squared dist = 2
        assert_eq!(b.min_reduced_distance(&[2.0, 2.0], Metric::Euclidean), 2.0);
    }

    #[test]
    fn max_distance_dominates_min() {
        let b = unit_box();
        let p = [3.0, -1.0];
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert!(b.max_reduced_distance(&p, m) >= b.min_reduced_distance(&p, m));
        }
    }

    #[test]
    fn max_distance_from_inside() {
        let b = unit_box();
        // from the center, farthest corner is at squared distance 0.5
        assert!((b.max_reduced_distance(&[0.5, 0.5], Metric::Euclidean) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [0.0, 0.0, 2.0, -1.0, 1.0, 5.0];
        let b = Aabb::from_points(2, &pts).unwrap();
        assert_eq!(b.lo(), &[0.0, -1.0]);
        assert_eq!(b.hi(), &[2.0, 5.0]);
        for row in pts.chunks_exact(2) {
            assert!(b.contains(row));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(3, &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn new_rejects_inverted_bounds() {
        let _ = Aabb::new(vec![1.0], vec![0.0]);
    }
}
