//! Bucketed kd-tree — the cache-conscious successor to [`crate::KdTree`].
//!
//! The node-per-point kd-tree pays one pointer chase *and* one random
//! dataset row fetch per visited node. This structure removes both costs:
//!
//! * **Leaf buckets**: recursion stops at `bucket_size` points (default
//!   16). A leaf owns a *contiguous block* of the tree's own coordinate
//!   array, scanned linearly with [`crate::squared_euclidean`] — the
//!   branch-free kernel the compiler auto-vectorizes.
//! * **Implicit layout**: points are permuted into tree order at build
//!   time (`ids[pos] = original id`), so the whole traversal touches
//!   memory front-to-back. Internal nodes store only `(axis, split,
//!   right-child index)` in a flat `Vec`; the left child is the next
//!   node (`self + 1`), so descent never fetches dataset rows.
//! * **Zero-allocation queries**: traversal is iterative over a
//!   caller-provided reusable [`QueryScratch`]; the steady state neither
//!   allocates nor recurses.
//! * **Split policy**: widest-spread axis with a median split
//!   (`select_nth_unstable`), which prunes better than the classic
//!   depth-cycling axis on skewed data and keeps the tree count-balanced
//!   regardless of coordinate distribution (duplicates included).
//! * **Parallel build**: sibling subtrees above [`PAR_CUTOFF`] points
//!   are built on scoped threads and spliced.
//!
//! Query results are mapped back through the permutation, so callers see
//! original [`PointId`]s — the index is a drop-in [`SpatialIndex`].
//! [`PruneConfig`] keeps the node-per-point semantics: pruned results
//! are always a subset of the exact result.

use crate::dataset::Dataset;
use crate::index::SpatialIndex;
use crate::kdtree::PruneConfig;
use crate::kernel::{KernelConfig, KernelCounters, KernelLayout};
use crate::metric::Metric;
use crate::point::PointId;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

/// Leaf capacity used by [`BkdTree::build`].
pub const DEFAULT_BUCKET_SIZE: usize = 16;

/// Subtrees at least this large are built on their own scoped thread.
pub const PAR_CUTOFF: usize = 8 * 1024;

/// How the bulk build is run. The resulting tree is **structurally
/// identical** for every setting: median selection processes the same
/// sub-slices in the same way no matter which thread handles them, so
/// only wall-clock time changes. That invariant is what lets the driver
/// scale the build without perturbing a single downstream byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Worker threads the recursion may fan out to. `0` means "auto"
    /// (the host's available parallelism); `1` disables forking.
    pub threads: usize,
    /// Leaf capacity (see [`DEFAULT_BUCKET_SIZE`]).
    pub bucket_size: usize,
    /// Subtrees smaller than this build sequentially; this is also the
    /// shard boundary of [`BuildReport`], so the shard decomposition
    /// depends only on the data, never on `threads`.
    pub par_cutoff: usize,
    /// Query-kernel configuration the built tree will scan leaves with
    /// (data layout, lane width, frontier batching). Like `threads`,
    /// every value yields byte-identical query results; under
    /// [`KernelLayout::Lanes`] the build additionally materializes the
    /// dimension-major leaf blocks.
    pub kernel: KernelConfig,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            threads: 0,
            bucket_size: DEFAULT_BUCKET_SIZE,
            par_cutoff: PAR_CUTOFF,
            kernel: KernelConfig::default(),
        }
    }
}

impl BuildConfig {
    /// Default configuration with the thread count taken from the
    /// `DBSCAN_BUILD_THREADS` environment variable when set (the CI
    /// thread matrix runs the whole suite under 1 and 8) and the kernel
    /// knobs from [`KernelConfig::from_env`].
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(t) =
            std::env::var("DBSCAN_BUILD_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok())
        {
            cfg.threads = t;
        }
        cfg.kernel = KernelConfig::from_env();
        cfg
    }

    /// Set the worker thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the leaf capacity.
    pub fn with_bucket_size(mut self, bucket_size: usize) -> Self {
        self.bucket_size = bucket_size;
        self
    }

    /// Set the sequential cutoff / shard boundary.
    pub fn with_par_cutoff(mut self, par_cutoff: usize) -> Self {
        self.par_cutoff = par_cutoff;
        self
    }

    /// Set the query-kernel configuration.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// The resolved worker count (`threads`, or the host parallelism
    /// when `threads == 0`).
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            t => t,
        }
    }

    /// Fork-depth budget: the recursion forks while `depth < budget`,
    /// giving at most `2^budget >= threads` concurrent builders.
    fn fork_budget(&self) -> usize {
        let t = self.effective_threads().max(1);
        (usize::BITS - (t - 1).leading_zeros()) as usize
    }
}

/// One sequentially-built subtree of the bulk build — the unit of work
/// the fork-join recursion dispatches. The decomposition is a pure
/// function of the data and [`BuildConfig::par_cutoff`]: a shard is a
/// maximal subtree with fewer than `par_cutoff` points (or the whole
/// tree when it is already that small).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildShard {
    /// First tree-order position of the shard's point range.
    pub offset: usize,
    /// Points in the shard.
    pub len: usize,
    /// Measured wall time of the shard's sequential build.
    pub nanos: u64,
}

/// Instrumentation of one bulk build: the thread-count-independent
/// shard decomposition plus measured per-phase times, enough to model
/// the fork-join makespan at any worker count from a 1-thread run.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Worker threads the build actually used.
    pub threads: usize,
    /// Sequentially-built shards, in tree order (left to right).
    pub shards: Vec<BuildShard>,
    /// Split work (axis selection + median partition) of internal nodes
    /// above the cutoff, summed per recursion depth; depth `d` has at
    /// most `2^d` such nodes running concurrently.
    pub internal_nanos_by_depth: Vec<u64>,
    /// Tree-order coordinate materialization (embarrassingly parallel).
    pub coords_nanos: u64,
    /// Dimension-major (SoA) leaf-block materialization — `0` under
    /// [`KernelLayout::Scalar`]. Measured separately from
    /// `coords_nanos` and excluded from
    /// [`BuildReport::modeled_makespan_nanos`], which models the
    /// layout-independent part of the build.
    pub soa_nanos: u64,
    /// Whole build.
    pub total_nanos: u64,
}

impl BuildReport {
    /// Total measured shard time.
    pub fn shard_total_nanos(&self) -> u64 {
        self.shards.iter().map(|s| s.nanos).sum()
    }

    /// Total measured internal (above-cutoff split) time.
    pub fn internal_total_nanos(&self) -> u64 {
        self.internal_nanos_by_depth.iter().sum()
    }

    /// Critical-path makespan of this build on `k` workers, modeled
    /// from per-phase measurements: internal levels run at the lesser
    /// of their fan-out and `k`, shards are LPT-scheduled onto `k`
    /// workers, and the coordinate gather divides evenly. With `k = 1`
    /// this reproduces the measured total; the level-barrier assumption
    /// makes larger `k` conservative (real fork-join overlaps levels).
    pub fn modeled_makespan_nanos(&self, k: usize) -> u64 {
        let k = k.max(1);
        let internal: u64 = self
            .internal_nanos_by_depth
            .iter()
            .enumerate()
            .map(|(d, &ns)| ns / (1u64 << d.min(62)).min(k as u64))
            .sum();
        internal
            + lpt_makespan_nanos(self.shards.iter().map(|s| s.nanos), k)
            + self.coords_nanos / k as u64
    }
}

/// Longest-processing-time-first schedule length of `durs` on `k`
/// workers (the same model the engine's stage metrics use).
pub fn lpt_makespan_nanos(durs: impl Iterator<Item = u64>, k: usize) -> u64 {
    let mut durs: Vec<u64> = durs.collect();
    durs.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; k.max(1)];
    for d in durs {
        let min = loads.iter_mut().min().expect("at least one worker");
        *min += d;
    }
    loads.into_iter().max().unwrap_or(0)
}

const LEAF: u32 = u32::MAX;

/// One flat tree node. Internal nodes keep the split inline so descent
/// is pure `Vec` indexing; leaves address a contiguous coordinate block.
#[derive(Debug, Clone, Copy)]
struct BNode {
    /// `LEAF` for leaves, otherwise the split axis.
    axis: u32,
    /// Internal: flat index of the right child (the left child is always
    /// `self + 1`). Leaf: start of the point range in tree order.
    a: u32,
    /// Internal: unused. Leaf: end (exclusive) of the point range.
    b: u32,
    /// Internal: split coordinate. Leaf: unused.
    split: f64,
}

impl BNode {
    #[inline]
    fn is_leaf(self) -> bool {
        self.axis == LEAF
    }
}

/// Reusable per-task traversal state. One instance per worker thread (or
/// per call site) makes the steady-state query path allocation-free: the
/// stacks grow to the tree depth once and are reused afterwards.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// DFS stack of node indices (range traversal).
    stack: Vec<u32>,
    /// DFS stack of (reduced-space lower bound, node) for nearest search.
    bounded: Vec<(f64, u32)>,
    /// Buffers of [`BkdTree::query_batch`], grown to the batch
    /// high-water mark and reused.
    batch: BatchScratch,
    /// Kernel instrumentation accumulated by every scratch-taking query
    /// on this tree; the caller owns the reset/read cycle.
    pub counters: KernelCounters,
}

impl QueryScratch {
    /// Fresh scratch; buffers are grown lazily by the first queries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current capacity of the traversal stack — exposed so tests can
    /// assert the steady state stops allocating.
    pub fn stack_capacity(&self) -> usize {
        self.stack.capacity()
    }
}

/// [`BkdTree::query_batch`] working set: the epoch-stamped reachability
/// marks of the batch-AABB descent plus the (leaf, query) pair arrays
/// the leaf-major scan phase runs over.
#[derive(Debug, Default)]
struct BatchScratch {
    /// `node_stamp[n] == epoch` ⇔ node `n` is reachable from the
    /// current batch's bounding box.
    node_stamp: Vec<u32>,
    epoch: u32,
    /// Batch bounding box, `lo` then `hi` (`dim` each).
    aabb: Vec<f64>,
    /// Leaf node of each discovered (leaf, query) pair, in per-query
    /// discovery order.
    pair_leaf: Vec<u32>,
    /// Query (batch position) of each pair.
    pair_query: Vec<u32>,
    /// Per query: (first pair index, pair count).
    query_pairs: Vec<(u32, u32)>,
    /// Pair indices reordered leaf-major for the scan phase.
    order: Vec<u32>,
    /// Per pair: (offset, len) of its hits in `arena`.
    pair_hits: Vec<(u32, u32)>,
    /// Hit storage of the scan phase, reassembled per query afterwards.
    arena: Vec<PointId>,
}

thread_local! {
    /// Fallback scratch for the plain [`SpatialIndex`] entry points,
    /// which have no scratch parameter. Per-thread, so the trait methods
    /// are also allocation-free after warm-up.
    static TLS_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// A leaf-bucketed kd-tree over a shared [`Dataset`], with points stored
/// in tree order for linear leaf scans.
#[derive(Debug, Clone)]
pub struct BkdTree {
    dataset: Arc<Dataset>,
    /// Flat nodes; the root is node 0 (empty for an empty dataset).
    nodes: Vec<BNode>,
    /// Tree-order copy of the coordinates (row-major, `dim` per point).
    coords: Vec<f64>,
    /// Dimension-major (SoA) copy of each leaf's coordinate block: leaf
    /// `[start, end)` owns `soa[start * d..end * d]`, transposed so
    /// coordinate `k` of the leaf's point `i` sits at
    /// `start * d + k * (end - start) + i`. Empty under
    /// [`KernelLayout::Scalar`].
    soa: Vec<f64>,
    /// `ids[pos]` = original dataset index of tree-order position `pos`.
    ids: Vec<u32>,
    metric: Metric,
    bucket_size: usize,
    /// Leaf-scan kernel configuration the tree was built for.
    kernel: KernelConfig,
}

impl BkdTree {
    /// Build over every point with the Euclidean metric and the default
    /// bucket size.
    pub fn build(dataset: Arc<Dataset>) -> Self {
        Self::build_with(dataset, Metric::Euclidean, DEFAULT_BUCKET_SIZE)
    }

    /// Build with an explicit metric.
    pub fn build_with_metric(dataset: Arc<Dataset>, metric: Metric) -> Self {
        Self::build_with(dataset, metric, DEFAULT_BUCKET_SIZE)
    }

    /// Build with full control over metric and leaf capacity.
    pub fn build_with(dataset: Arc<Dataset>, metric: Metric, bucket_size: usize) -> Self {
        let cfg = BuildConfig::default().with_bucket_size(bucket_size);
        Self::build_with_config(dataset, metric, cfg)
    }

    /// Build under an explicit [`BuildConfig`].
    pub fn build_with_config(dataset: Arc<Dataset>, metric: Metric, cfg: BuildConfig) -> Self {
        Self::build_with_report(dataset, metric, cfg).0
    }

    /// Build under an explicit [`BuildConfig`] and return the
    /// [`BuildReport`] instrumentation alongside the tree.
    pub fn build_with_report(
        dataset: Arc<Dataset>,
        metric: Metric,
        cfg: BuildConfig,
    ) -> (Self, BuildReport) {
        let total = Instant::now();
        let bucket_size = cfg.bucket_size.max(1);
        let cutoff = cfg.par_cutoff.max(1);
        let threads = cfg.effective_threads().max(1);
        let n = dataset.len();
        let d = dataset.dim();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let (nodes, mut report) = if n == 0 {
            (Vec::new(), BuildReport::default())
        } else {
            build_rec(&dataset, &mut ids, 0, 0, bucket_size, cutoff, cfg.fork_budget())
        };
        report.threads = threads;
        // materialize the permuted coordinate blocks the leaves scan;
        // each worker gathers a disjoint contiguous chunk
        let t = Instant::now();
        let mut coords = vec![0.0f64; n * d];
        if n > 0 && d > 0 {
            let chunk = n.div_ceil(threads);
            if threads <= 1 {
                gather_coords(&dataset, &ids, &mut coords, d);
            } else {
                std::thread::scope(|s| {
                    for (cc, ic) in coords.chunks_mut(chunk * d).zip(ids.chunks(chunk)) {
                        s.spawn(|| gather_coords(&dataset, ic, cc, d));
                    }
                });
            }
        }
        report.coords_nanos = t.elapsed().as_nanos() as u64;
        // materialize the dimension-major leaf blocks the lane-blocked
        // kernels scan; per-leaf transposes over disjoint ranges, so the
        // leaf list chunks across the same workers
        let t = Instant::now();
        let soa = if cfg.kernel.layout == KernelLayout::Lanes && n > 0 && d > 0 {
            build_soa(&nodes, &coords, d, threads)
        } else {
            Vec::new()
        };
        report.soa_nanos = t.elapsed().as_nanos() as u64;
        report.total_nanos = total.elapsed().as_nanos() as u64;
        (
            BkdTree { dataset, nodes, coords, soa, ids, metric, bucket_size, kernel: cfg.kernel },
            report,
        )
    }

    /// Whether two trees are structurally identical: same flat node
    /// array (splits compared bitwise), same tree-order permutation,
    /// same permuted coordinates. The parallel build must satisfy this
    /// against the sequential build for every thread count. The kernel
    /// configuration (and the SoA mirror it may add) is deliberately
    /// excluded: it is derived data, a pure per-leaf transpose of
    /// `coords`.
    pub fn same_structure(&self, other: &Self) -> bool {
        self.ids == other.ids
            && self.coords.len() == other.coords.len()
            && self.coords.iter().zip(&other.coords).all(|(a, b)| a.to_bits() == b.to_bits())
            && self.nodes.len() == other.nodes.len()
            && self.nodes.iter().zip(&other.nodes).all(|(a, b)| {
                a.axis == b.axis
                    && a.a == b.a
                    && a.b == b.b
                    && a.split.to_bits() == b.split.to_bits()
            })
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Leaf capacity this tree was built with.
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// The kernel configuration this tree was built for.
    pub fn kernel_config(&self) -> KernelConfig {
        self.kernel
    }

    /// The `[start, end)` tree-order point range of every leaf, in flat
    /// node order (which tiles `[0, len)` ascending). Exposed for the
    /// perf suite's leaf-scan microbenchmarks and the layout property
    /// tests.
    pub fn leaf_ranges(&self) -> Vec<(usize, usize)> {
        self.nodes.iter().filter(|n| n.is_leaf()).map(|n| (n.a as usize, n.b as usize)).collect()
    }

    /// Row-major coordinate block of leaf `[start, end)`.
    pub fn leaf_coords(&self, start: usize, end: usize) -> &[f64] {
        let d = self.dataset.dim().max(1);
        &self.coords[start * d..end * d]
    }

    /// Dimension-major (SoA) coordinate block of leaf `[start, end)`;
    /// `None` under [`KernelLayout::Scalar`], which keeps no SoA mirror.
    pub fn leaf_soa(&self, start: usize, end: usize) -> Option<&[f64]> {
        if self.soa.is_empty() {
            return None;
        }
        let d = self.dataset.dim().max(1);
        Some(&self.soa[start * d..end * d])
    }

    /// The build permutation: `tree_order()[pos]` is the original id of
    /// the point stored at tree-order position `pos`.
    pub fn tree_order(&self) -> &[u32] {
        &self.ids
    }

    /// Maximum node depth (root = 1); 0 for an empty tree. Iterative —
    /// safe for any tree shape.
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut deepest = 0usize;
        let mut stack: Vec<(u32, usize)> = vec![(0, 1)];
        while let Some((at, d)) = stack.pop() {
            deepest = deepest.max(d);
            let node = self.nodes[at as usize];
            if !node.is_leaf() {
                stack.push((at + 1, d + 1));
                stack.push((node.a, d + 1));
            }
        }
        deepest
    }

    /// Logical size in bytes of the serialized tree (what broadcasting
    /// it would ship in a real cluster): nodes + permuted coordinates +
    /// the id permutation.
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<BNode>()
            + self.coords.len() * std::mem::size_of::<f64>()
            + self.soa.len() * std::mem::size_of::<f64>()
            + self.ids.len() * std::mem::size_of::<u32>()
            + std::mem::size_of::<Self>()
    }

    /// Bytes a broadcast of this tree logically ships. Unlike
    /// [`BkdTree::size_bytes`] this excludes the SoA leaf mirror: the
    /// mirror is a local transposition of `coords`, rebuildable on the
    /// receiving side, so the shipped payload — and with it the trace —
    /// is identical across kernel layouts.
    pub fn shipped_bytes(&self) -> usize {
        self.size_bytes() - self.soa.len() * std::mem::size_of::<f64>()
    }

    /// Scan leaf `[start, end)` against `query`, dispatching on the
    /// tree's configured leaf layout. Both arms report matches in the
    /// same row order with bit-identical distances.
    #[inline]
    fn scan_leaf<F: FnMut(usize) -> bool>(
        &self,
        start: usize,
        end: usize,
        d: usize,
        query: &[f64],
        thr: f64,
        on_match: F,
    ) -> bool {
        match self.kernel.layout {
            KernelLayout::Scalar => crate::kernel::scan_block(
                self.metric,
                d,
                query,
                &self.coords[start * d..end * d],
                thr,
                on_match,
            ),
            KernelLayout::Lanes => crate::kernel::scan_block_soa(
                self.metric,
                d,
                query,
                &self.soa[start * d..end * d],
                end - start,
                thr,
                self.kernel.lanes,
                on_match,
            ),
        }
    }

    /// Exact eps-range query through caller-provided scratch. `out` is
    /// appended to, not cleared (buffer-reuse contract of
    /// [`SpatialIndex::range_into`]).
    pub fn range_into_scratch(
        &self,
        query: &[f64],
        eps: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<PointId>,
    ) {
        self.range_pruned_scratch(query, eps, PruneConfig::EXACT, scratch, out);
    }

    /// Pruned ("pruning branches") range query through caller-provided
    /// scratch; the result is a subset of the exact result. Returns the
    /// number of tree nodes visited.
    pub fn range_pruned_scratch(
        &self,
        query: &[f64],
        eps: f64,
        cfg: PruneConfig,
        scratch: &mut QueryScratch,
        out: &mut Vec<PointId>,
    ) -> usize {
        debug_assert_eq!(query.len(), self.dataset.dim());
        if self.nodes.is_empty() {
            return 0;
        }
        let d = self.dataset.dim().max(1);
        let thr = self.metric.threshold(eps);
        let metric = self.metric;
        let mut visited = 0usize;
        let mut reported = 0usize;
        let QueryScratch { stack, counters, .. } = scratch;
        stack.clear();
        stack.push(0);
        'walk: while let Some(at) = stack.pop() {
            if let Some(maxv) = cfg.max_visited {
                if visited >= maxv {
                    counters.early_exits += 1;
                    break;
                }
            }
            visited += 1;
            let node = self.nodes[at as usize];
            if node.is_leaf() {
                let (start, end) = (node.a as usize, node.b as usize);
                counters.blocks_scanned += 1;
                counters.rows_scanned += (end - start) as u64;
                let finished = self.scan_leaf(start, end, d, query, thr, |i| {
                    out.push(PointId(self.ids[start + i]));
                    reported += 1;
                    cfg.max_neighbors.is_none_or(|maxn| reported < maxn)
                });
                if !finished {
                    counters.early_exits += 1;
                    break 'walk;
                }
            } else {
                let delta = query[node.axis as usize] - node.split;
                let (near, far) = if delta <= 0.0 { (at + 1, node.a) } else { (node.a, at + 1) };
                // push far first so the near side is explored first —
                // matters once budgets cut the walk short
                if metric.axis_bound(delta) <= thr {
                    stack.push(far);
                }
                stack.push(near);
            }
        }
        counters.range_hits += reported as u64;
        visited
    }

    /// [`crate::KdTree::range_pruned`]-compatible entry point using the
    /// per-thread fallback scratch.
    pub fn range_pruned(
        &self,
        query: &[f64],
        eps: f64,
        cfg: PruneConfig,
        out: &mut Vec<PointId>,
    ) -> usize {
        TLS_SCRATCH.with(|s| self.range_pruned_scratch(query, eps, cfg, &mut s.borrow_mut(), out))
    }

    /// Does `query` have at least `k` neighbours within `eps`? Stops the
    /// traversal as soon as the `k`-th match is found, so deciding
    /// core-point status for dense neighbourhoods touches a fraction of
    /// the tree an exact count would.
    pub fn count_at_least(
        &self,
        query: &[f64],
        eps: f64,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> bool {
        debug_assert_eq!(query.len(), self.dataset.dim());
        if k == 0 {
            return true;
        }
        if self.nodes.is_empty() {
            return false;
        }
        self.count_up_to(query, eps, k, scratch) >= k
    }

    /// Count neighbours of `query` within `eps`, stopping the traversal
    /// once `cap` are found. The result is **exact whenever it is below
    /// `cap`**; once the cap is reached the traversal stops (under the
    /// lane-blocked layout at lane-group granularity, so the returned
    /// value may overshoot) — the contract the executor's `min_pts`
    /// fast path needs: a non-core point gets its true neighbour count,
    /// a core point only proves `>= cap`.
    pub fn count_up_to(
        &self,
        query: &[f64],
        eps: f64,
        cap: usize,
        scratch: &mut QueryScratch,
    ) -> usize {
        debug_assert_eq!(query.len(), self.dataset.dim());
        if cap == 0 || self.nodes.is_empty() {
            return 0;
        }
        let d = self.dataset.dim().max(1);
        let thr = self.metric.threshold(eps);
        let metric = self.metric;
        let lanes = self.kernel.lanes;
        let soa_path = self.kernel.layout == KernelLayout::Lanes;
        let mut count = 0usize;
        let QueryScratch { stack, counters, .. } = scratch;
        stack.clear();
        stack.push(0);
        while let Some(at) = stack.pop() {
            let node = self.nodes[at as usize];
            if node.is_leaf() {
                let (start, end) = (node.a as usize, node.b as usize);
                counters.blocks_scanned += 1;
                counters.rows_scanned += (end - start) as u64;
                let before = count;
                let capped = if soa_path {
                    crate::kernel::count_block_soa(
                        metric,
                        d,
                        query,
                        &self.soa[start * d..end * d],
                        end - start,
                        thr,
                        lanes,
                        cap,
                        &mut count,
                    )
                } else {
                    !crate::kernel::scan_block(
                        metric,
                        d,
                        query,
                        &self.coords[start * d..end * d],
                        thr,
                        |_| {
                            count += 1;
                            count < cap
                        },
                    )
                };
                counters.range_hits += (count - before) as u64;
                if capped {
                    counters.early_exits += 1;
                    return count;
                }
            } else {
                let delta = query[node.axis as usize] - node.split;
                let (near, far) = if delta <= 0.0 { (at + 1, node.a) } else { (node.a, at + 1) };
                if metric.axis_bound(delta) <= thr {
                    stack.push(far);
                }
                stack.push(near);
            }
        }
        count
    }

    /// Exact eps-range queries for a whole frontier chunk at once.
    /// `queries` are dataset row ids; after the call `out` holds every
    /// query's neighbours concatenated and `spans[i] = (offset, len)`
    /// addresses query `i`'s slice (both buffers are cleared first).
    ///
    /// Per query, the result — contents *and order* — is byte-identical
    /// to [`BkdTree::range_into_scratch`] on the same id: phase 1
    /// replays each query's exact near-first traversal (so the
    /// (leaf, query) pair list is in scalar visit order) and the leaf
    /// scans report rows in row order. What batching adds is shared
    /// work: a batch-bounding-box descent stamps the reachable subtree
    /// once (phase 0), so every per-query descent short-circuits
    /// far-side `axis_bound` tests outside the batch region with one
    /// memory read — an unstamped node is unreachable for *every* query
    /// in the batch — and the scans run leaf-major (phase 2), so a leaf
    /// block shared by many frontier queries stays resident while they
    /// all scan it.
    ///
    /// Only exact queries batch soundly (pruned configurations carry
    /// per-query traversal state), which is why the executor falls back
    /// to scalar queries under a non-exact [`PruneConfig`].
    pub fn query_batch(
        &self,
        queries: &[u32],
        eps: f64,
        scratch: &mut QueryScratch,
        out: &mut Vec<PointId>,
        spans: &mut Vec<(u32, u32)>,
    ) {
        out.clear();
        spans.clear();
        if queries.is_empty() {
            return;
        }
        if self.nodes.is_empty() {
            spans.resize(queries.len(), (0, 0));
            return;
        }
        let d = self.dataset.dim().max(1);
        let thr = self.metric.threshold(eps);
        let metric = self.metric;
        let QueryScratch { stack, batch, counters, .. } = scratch;
        let BatchScratch {
            node_stamp,
            epoch,
            aabb,
            pair_leaf,
            pair_query,
            query_pairs,
            order,
            pair_hits,
            arena,
        } = batch;

        // phase 0: stamp every node reachable from the batch's bounding
        // box. For the box [lo, hi] on a split axis, the left subtree
        // (values <= split) is reachable iff some query q satisfies
        // axis_bound(max(q - split, 0)) <= thr, which is minimized at
        // q = lo; symmetrically the right subtree at q = hi. axis_bound
        // is monotone in |delta|, so the stamped set is a superset of
        // every per-query reachable set.
        aabb.clear();
        aabb.resize(2 * d, 0.0);
        let (lo, hi) = aabb.split_at_mut(d);
        lo.fill(f64::INFINITY);
        hi.fill(f64::NEG_INFINITY);
        for &q in queries {
            for (k, &v) in self.dataset.row(q as usize).iter().enumerate() {
                lo[k] = lo[k].min(v);
                hi[k] = hi[k].max(v);
            }
        }
        if node_stamp.len() != self.nodes.len() || *epoch == u32::MAX {
            node_stamp.clear();
            node_stamp.resize(self.nodes.len(), 0);
            *epoch = 0;
        }
        *epoch += 1;
        let epoch = *epoch;
        stack.clear();
        stack.push(0);
        while let Some(at) = stack.pop() {
            node_stamp[at as usize] = epoch;
            let node = self.nodes[at as usize];
            if node.is_leaf() {
                continue;
            }
            let axis = node.axis as usize;
            if metric.axis_bound((lo[axis] - node.split).max(0.0)) <= thr {
                stack.push(at + 1);
            }
            if metric.axis_bound((node.split - hi[axis]).max(0.0)) <= thr {
                stack.push(node.a);
            }
        }

        // phase 1: per-query discovery — the exact scalar traversal
        // (near child first; a query's near child is always inside the
        // box, hence always stamped), consulting the stamp before the
        // far-side bound test. Unstamped ⇒ unreachable for this query
        // too, so push decisions — and therefore leaf visit order —
        // match the scalar walk exactly.
        pair_leaf.clear();
        pair_query.clear();
        query_pairs.clear();
        for (qi, &q) in queries.iter().enumerate() {
            let first = pair_leaf.len() as u32;
            let query = self.dataset.row(q as usize);
            stack.clear();
            stack.push(0);
            while let Some(at) = stack.pop() {
                let node = self.nodes[at as usize];
                if node.is_leaf() {
                    pair_leaf.push(at);
                    pair_query.push(qi as u32);
                } else {
                    let delta = query[node.axis as usize] - node.split;
                    let (near, far) =
                        if delta <= 0.0 { (at + 1, node.a) } else { (node.a, at + 1) };
                    if node_stamp[far as usize] == epoch && metric.axis_bound(delta) <= thr {
                        stack.push(far);
                    }
                    stack.push(near);
                }
            }
            query_pairs.push((first, pair_leaf.len() as u32 - first));
        }

        // phase 2: leaf-major scans — pairs grouped by leaf so a shared
        // block is scanned back to back by every query touching it
        order.clear();
        order.extend(0..pair_leaf.len() as u32);
        order.sort_unstable_by_key(|&pid| (pair_leaf[pid as usize], pid));
        pair_hits.clear();
        pair_hits.resize(pair_leaf.len(), (0, 0));
        arena.clear();
        for &pid in order.iter() {
            let node = self.nodes[pair_leaf[pid as usize] as usize];
            let (start, end) = (node.a as usize, node.b as usize);
            let row = self.dataset.row(queries[pair_query[pid as usize] as usize] as usize);
            counters.blocks_scanned += 1;
            counters.rows_scanned += (end - start) as u64;
            let off = arena.len() as u32;
            self.scan_leaf(start, end, d, row, thr, |i| {
                arena.push(PointId(self.ids[start + i]));
                true
            });
            pair_hits[pid as usize] = (off, arena.len() as u32 - off);
        }
        counters.range_hits += arena.len() as u64;

        // phase 3: reassemble per query, pairs back in discovery order
        for &(first, cnt) in query_pairs.iter() {
            let off = out.len() as u32;
            for pid in first..first + cnt {
                let (hoff, hlen) = pair_hits[pid as usize];
                out.extend_from_slice(&arena[hoff as usize..(hoff + hlen) as usize]);
            }
            spans.push((off, out.len() as u32 - off));
        }
    }

    /// Nearest neighbour of `query` (ties broken arbitrarily); `None`
    /// for an empty tree. Returns `(id, distance)`. Iterative, through
    /// caller-provided scratch.
    pub fn nearest_scratch(
        &self,
        query: &[f64],
        scratch: &mut QueryScratch,
    ) -> Option<(PointId, f64)> {
        if self.nodes.is_empty() {
            return None;
        }
        let d = self.dataset.dim().max(1);
        let metric = self.metric;
        let mut best = (PointId(0), f64::INFINITY);
        let stack = &mut scratch.bounded;
        stack.clear();
        stack.push((0.0, 0));
        while let Some((bound, at)) = stack.pop() {
            if bound > best.1 {
                continue; // the whole subtree is provably farther
            }
            let node = self.nodes[at as usize];
            if node.is_leaf() {
                let (start, end) = (node.a as usize, node.b as usize);
                let block = &self.coords[start * d..end * d];
                for (i, row) in block.chunks_exact(d).enumerate() {
                    let dist = metric.reduced_distance(query, row);
                    if dist < best.1 {
                        best = (PointId(self.ids[start + i]), dist);
                    }
                }
            } else {
                let delta = query[node.axis as usize] - node.split;
                let (near, far) = if delta <= 0.0 { (at + 1, node.a) } else { (node.a, at + 1) };
                stack.push((metric.axis_bound(delta), far));
                stack.push((bound, near));
            }
        }
        best.1 = match self.metric {
            Metric::Euclidean => best.1.sqrt(),
            _ => best.1,
        };
        Some(best)
    }

    /// Nearest neighbour using the per-thread fallback scratch.
    pub fn nearest(&self, query: &[f64]) -> Option<(PointId, f64)> {
        TLS_SCRATCH.with(|s| self.nearest_scratch(query, &mut s.borrow_mut()))
    }
}

impl SpatialIndex for BkdTree {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn range_into(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        TLS_SCRATCH.with(|s| self.range_into_scratch(query, eps, &mut s.borrow_mut(), out));
    }

    fn count_within(&self, query: &[f64], eps: f64) -> usize {
        // counting traversal: no neighbour list materialized
        debug_assert_eq!(query.len(), self.dataset.dim());
        if self.nodes.is_empty() {
            return 0;
        }
        let d = self.dataset.dim().max(1);
        let thr = self.metric.threshold(eps);
        let metric = self.metric;
        let mut count = 0usize;
        TLS_SCRATCH.with(|s| {
            let stack = &mut s.borrow_mut().stack;
            stack.clear();
            stack.push(0);
            while let Some(at) = stack.pop() {
                let node = self.nodes[at as usize];
                if node.is_leaf() {
                    let (start, end) = (node.a as usize, node.b as usize);
                    self.scan_leaf(start, end, d, query, thr, |_| {
                        count += 1;
                        true
                    });
                } else {
                    let delta = query[node.axis as usize] - node.split;
                    let (near, far) =
                        if delta <= 0.0 { (at + 1, node.a) } else { (node.a, at + 1) };
                    if metric.axis_bound(delta) <= thr {
                        stack.push(far);
                    }
                    stack.push(near);
                }
            }
        });
        count
    }

    fn name(&self) -> &'static str {
        "bucketed kd-tree"
    }
}

/// Gather the tree-order coordinate rows for one contiguous id chunk.
fn gather_coords(ds: &Dataset, ids: &[u32], out: &mut [f64], d: usize) {
    for (slot, &id) in out.chunks_exact_mut(d).zip(ids) {
        slot.copy_from_slice(ds.row(id as usize));
    }
}

/// Materialize the dimension-major mirror of every leaf's coordinate
/// block. Leaf ranges tile `[0, n)` contiguously in flat node order, so
/// the leaf list chunks across workers and each worker transposes a
/// disjoint `soa` slice.
fn build_soa(nodes: &[BNode], coords: &[f64], d: usize, threads: usize) -> Vec<f64> {
    let mut soa = vec![0.0f64; coords.len()];
    let leaves: Vec<(usize, usize)> =
        nodes.iter().filter(|n| n.is_leaf()).map(|n| (n.a as usize, n.b as usize)).collect();
    if threads <= 1 || leaves.len() < 2 {
        transpose_leaves(&leaves, coords, d, &mut soa, 0);
    } else {
        let per = leaves.len().div_ceil(threads);
        std::thread::scope(|s| {
            let mut rest: &mut [f64] = &mut soa;
            let mut consumed = 0usize;
            for chunk in leaves.chunks(per) {
                let start = chunk.first().expect("non-empty chunk").0;
                let end = chunk.last().expect("non-empty chunk").1;
                debug_assert_eq!(start, consumed, "leaves must tile [0, n) in node order");
                let (mine, tail) = rest.split_at_mut((end - start) * d);
                rest = tail;
                consumed = end;
                s.spawn(move || transpose_leaves(chunk, coords, d, mine, start));
            }
        });
    }
    soa
}

/// Transpose a run of leaves into an `out` slice that starts at
/// tree-order position `base`.
fn transpose_leaves(
    leaves: &[(usize, usize)],
    coords: &[f64],
    d: usize,
    out: &mut [f64],
    base: usize,
) {
    for &(start, end) in leaves {
        crate::kernel::transpose_block(
            &coords[start * d..end * d],
            d,
            &mut out[(start - base) * d..(end - base) * d],
        );
    }
}

/// Build the subtree over `ids` (a sub-slice of the global permutation,
/// starting at tree-order position `off`). Returns nodes with indices
/// relative to the returned vec (leaf point ranges are absolute) plus
/// the shard/internal instrumentation of this subtree.
///
/// Subtrees below `cutoff` are **shards**: built sequentially in one
/// timed unit. Nodes at or above `cutoff` are **internal**: their split
/// work is timed per recursion depth, and the recursion forks onto a
/// scoped thread while `par > 0`. The node layout is identical either
/// way — `select_nth_unstable_by` is deterministic for a given input
/// slice, and both children see the exact slices the sequential
/// recursion would, so the thread count can never change the tree.
fn build_rec(
    ds: &Dataset,
    ids: &mut [u32],
    off: usize,
    depth: usize,
    bucket: usize,
    cutoff: usize,
    par: usize,
) -> (Vec<BNode>, BuildReport) {
    let len = ids.len();
    if len < cutoff || len <= bucket {
        let t = Instant::now();
        let nodes = build_seq(ds, ids, off, bucket);
        let shard = BuildShard { offset: off, len, nanos: t.elapsed().as_nanos() as u64 };
        return (nodes, BuildReport { shards: vec![shard], ..BuildReport::default() });
    }
    let t = Instant::now();
    let axis = widest_axis(ds, ids);
    let mid = len / 2;
    ids.select_nth_unstable_by(mid, |&p, &q| {
        let vp = ds.row(p as usize)[axis];
        let vq = ds.row(q as usize)[axis];
        vp.partial_cmp(&vq).unwrap_or(std::cmp::Ordering::Equal)
    });
    let split = ds.row(ids[mid] as usize)[axis];
    let split_nanos = t.elapsed().as_nanos() as u64;
    // left gets [0, mid) with values <= split, right gets [mid, len)
    // with values >= split; both strictly shrink, so the build
    // terminates even when every coordinate is identical
    let (lo, hi) = ids.split_at_mut(mid);
    let ((left, lrep), (mut right, rrep)) = if par > 0 {
        std::thread::scope(|s| {
            let lh = s.spawn(|| build_rec(ds, lo, off, depth + 1, bucket, cutoff, par - 1));
            let r = build_rec(ds, hi, off + mid, depth + 1, bucket, cutoff, par - 1);
            (lh.join().expect("subtree builder"), r)
        })
    } else {
        (
            build_rec(ds, lo, off, depth + 1, bucket, cutoff, par),
            build_rec(ds, hi, off + mid, depth + 1, bucket, cutoff, par),
        )
    };
    let report = merge_reports(depth, split_nanos, lrep, rrep);

    let mut nodes = Vec::with_capacity(1 + left.len() + right.len());
    let right_at = 1 + left.len() as u32;
    nodes.push(BNode { axis: axis as u32, a: right_at, b: 0, split });
    // splice the children, shifting their internal child links (leaf
    // ranges are already absolute)
    nodes.extend(left.into_iter().map(|mut n| {
        if !n.is_leaf() {
            n.a += 1;
        }
        n
    }));
    for n in &mut right {
        if !n.is_leaf() {
            n.a += right_at;
        }
    }
    nodes.extend(right);
    (nodes, report)
}

/// Combine child reports under an internal node: shards stay in tree
/// order (left before right), per-depth internal times add up.
fn merge_reports(
    depth: usize,
    split_nanos: u64,
    mut l: BuildReport,
    r: BuildReport,
) -> BuildReport {
    if l.internal_nanos_by_depth.len() < r.internal_nanos_by_depth.len() {
        l.internal_nanos_by_depth.resize(r.internal_nanos_by_depth.len(), 0);
    }
    for (a, b) in l.internal_nanos_by_depth.iter_mut().zip(&r.internal_nanos_by_depth) {
        *a += b;
    }
    if l.internal_nanos_by_depth.len() <= depth {
        l.internal_nanos_by_depth.resize(depth + 1, 0);
    }
    l.internal_nanos_by_depth[depth] += split_nanos;
    l.shards.extend(r.shards);
    l
}

/// The plain sequential recursion (subtrees below the cutoff).
fn build_seq(ds: &Dataset, ids: &mut [u32], off: usize, bucket: usize) -> Vec<BNode> {
    let len = ids.len();
    if len <= bucket {
        return vec![BNode { axis: LEAF, a: off as u32, b: (off + len) as u32, split: 0.0 }];
    }
    let axis = widest_axis(ds, ids);
    let mid = len / 2;
    ids.select_nth_unstable_by(mid, |&p, &q| {
        let vp = ds.row(p as usize)[axis];
        let vq = ds.row(q as usize)[axis];
        vp.partial_cmp(&vq).unwrap_or(std::cmp::Ordering::Equal)
    });
    let split = ds.row(ids[mid] as usize)[axis];
    let (lo, hi) = ids.split_at_mut(mid);
    let left = build_seq(ds, lo, off, bucket);
    let mut right = build_seq(ds, hi, off + mid, bucket);

    let mut nodes = Vec::with_capacity(1 + left.len() + right.len());
    let right_at = 1 + left.len() as u32;
    nodes.push(BNode { axis: axis as u32, a: right_at, b: 0, split });
    nodes.extend(left.into_iter().map(|mut n| {
        if !n.is_leaf() {
            n.a += 1;
        }
        n
    }));
    for n in &mut right {
        if !n.is_leaf() {
            n.a += right_at;
        }
    }
    nodes.extend(right);
    nodes
}

/// Axis with the widest coordinate spread over `ids`.
fn widest_axis(ds: &Dataset, ids: &[u32]) -> usize {
    let d = ds.dim();
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for &id in ids {
        for (axis, &v) in ds.row(id as usize).iter().enumerate() {
            lo[axis] = lo[axis].min(v);
            hi[axis] = hi[axis].max(v);
        }
    }
    let mut best = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for axis in 0..d {
        let spread = hi[axis] - lo[axis];
        if spread > best_spread {
            best_spread = spread;
            best = axis;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;

    fn grid_dataset() -> Arc<Dataset> {
        let rows = (0..5).flat_map(|x| (0..5).map(move |y| vec![x as f64, y as f64])).collect();
        Arc::new(Dataset::from_rows(rows))
    }

    fn sorted(mut v: Vec<PointId>) -> Vec<PointId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries_safely() {
        let t = BkdTree::build(Arc::new(Dataset::empty(2)));
        let mut s = QueryScratch::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.range(&[0.0, 0.0], 1.0).is_empty());
        assert!(t.nearest_scratch(&[0.0, 0.0], &mut s).is_none());
        assert_eq!(t.depth(), 0);
        assert!(!t.count_at_least(&[0.0, 0.0], 1.0, 1, &mut s));
        assert!(t.count_at_least(&[0.0, 0.0], 1.0, 0, &mut s), "k=0 is vacuously true");
    }

    #[test]
    fn single_point() {
        let t = BkdTree::build(Arc::new(Dataset::from_rows(vec![vec![1.0, 1.0]])));
        assert_eq!(t.range(&[1.0, 1.0], 0.0), vec![PointId(0)]);
        assert!(t.range(&[2.0, 1.0], 0.5).is_empty());
        assert_eq!(t.nearest(&[5.0, 5.0]).unwrap().0, PointId(0));
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn matches_brute_force_on_grid_all_bucket_sizes() {
        let ds = grid_dataset();
        let bf = BruteForceIndex::new(ds.clone());
        for bucket in [1, 2, 4, 8, 32] {
            let t = BkdTree::build_with(ds.clone(), Metric::Euclidean, bucket);
            for eps in [0.0, 0.5, 1.0, 1.5, 2.5, 10.0] {
                for (id, _) in ds.iter() {
                    let q = ds.point(id).to_vec();
                    assert_eq!(
                        sorted(t.range(&q, eps)),
                        sorted(bf.range(&q, eps)),
                        "bucket={bucket} eps={eps} q={q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn permutation_is_consistent() {
        let ds = grid_dataset();
        let t = BkdTree::build(ds.clone());
        // tree_order is a permutation of 0..n
        let mut perm = t.tree_order().to_vec();
        perm.sort_unstable();
        assert_eq!(perm, (0..ds.len() as u32).collect::<Vec<_>>());
        // the permuted coordinate blocks match the original rows
        let d = ds.dim();
        for (pos, &id) in t.tree_order().iter().enumerate() {
            assert_eq!(&t.coords[pos * d..(pos + 1) * d], ds.row(id as usize));
        }
    }

    #[test]
    fn duplicate_points_all_reported() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![3.0]; 70]));
        let t = BkdTree::build_with(ds, Metric::Euclidean, 4);
        assert_eq!(t.range(&[3.0], 0.0).len(), 70);
    }

    #[test]
    fn depth_is_logarithmic() {
        let rows = (0..4096).map(|i| vec![i as f64]).collect();
        let t = BkdTree::build(Arc::new(Dataset::from_rows(rows)));
        // 4096 points / 16-point buckets = 256 leaves -> depth 9
        assert!(t.depth() <= 10, "depth {} too large", t.depth());
    }

    #[test]
    fn pruned_is_subset_of_exact() {
        let ds = grid_dataset();
        let t = BkdTree::build_with(ds.clone(), Metric::Euclidean, 4);
        let exact = sorted(t.range(&[2.0, 2.0], 2.0));
        let mut s = QueryScratch::new();
        let mut pruned = Vec::new();
        t.range_pruned_scratch(
            &[2.0, 2.0],
            2.0,
            PruneConfig::cap_neighbors(3),
            &mut s,
            &mut pruned,
        );
        assert_eq!(pruned.len(), 3);
        for p in &pruned {
            assert!(exact.contains(p));
        }
    }

    #[test]
    fn visit_budget_limits_traversal() {
        let ds = grid_dataset();
        let t = BkdTree::build_with(ds, Metric::Euclidean, 2);
        let mut s = QueryScratch::new();
        let mut out = Vec::new();
        let cfg = PruneConfig { max_neighbors: None, max_visited: Some(3) };
        let visited = t.range_pruned_scratch(&[2.0, 2.0], 100.0, cfg, &mut s, &mut out);
        assert!(visited <= 3);
    }

    #[test]
    fn count_at_least_matches_range_threshold() {
        let ds = grid_dataset();
        let t = BkdTree::build_with(ds.clone(), Metric::Euclidean, 4);
        let mut s = QueryScratch::new();
        for eps in [0.5, 1.0, 1.5, 3.0] {
            for (id, _) in ds.iter() {
                let q = ds.point(id).to_vec();
                let n = t.range(&q, eps).len();
                for k in 0..n + 2 {
                    assert_eq!(
                        t.count_at_least(&q, eps, k, &mut s),
                        n >= k,
                        "eps={eps} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn nearest_finds_closest_grid_point() {
        let ds = grid_dataset();
        let t = BkdTree::build(ds.clone());
        let (id, d) = t.nearest(&[3.2, 1.9]).unwrap();
        assert_eq!(ds.point(id), &[3.0, 2.0]);
        assert!((d - (0.2f64 * 0.2 + 0.1 * 0.1).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn nearest_matches_brute_force_scan() {
        let rows: Vec<Vec<f64>> =
            (0..300).map(|i| vec![(i as f64 * 7.3) % 31.0, (i as f64 * 3.7) % 17.0]).collect();
        let ds = Arc::new(Dataset::from_rows(rows));
        let t = BkdTree::build_with(ds.clone(), Metric::Euclidean, 8);
        let mut s = QueryScratch::new();
        for q in [[0.0, 0.0], [15.5, 8.2], [31.0, 17.0], [-3.0, 40.0]] {
            let (_, d) = t.nearest_scratch(&q, &mut s).unwrap();
            let best = (0..ds.len())
                .map(|i| crate::metric::euclidean(&q, ds.row(i)))
                .fold(f64::INFINITY, f64::min);
            assert!((d - best).abs() < 1e-9, "q={q:?}: got {d}, want {best}");
        }
    }

    #[test]
    fn manhattan_tree_matches_brute_force() {
        let ds = grid_dataset();
        let t = BkdTree::build_with(ds.clone(), Metric::Manhattan, 4);
        let bf = BruteForceIndex::with_metric(ds.clone(), Metric::Manhattan);
        for eps in [1.0, 2.0, 3.0] {
            let q = [2.0, 2.0];
            assert_eq!(sorted(t.range(&q, eps)), sorted(bf.range(&q, eps)));
        }
    }

    #[test]
    fn parallel_build_matches_sequential_layout_semantics() {
        // above PAR_CUTOFF the build forks; results must be identical to
        // querying brute force
        let n = PAR_CUTOFF * 2 + 37;
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| vec![(i as f64 * 37.0) % 997.0, (i as f64 * 61.0) % 499.0]).collect();
        let ds = Arc::new(Dataset::from_rows(rows));
        let t = BkdTree::build(ds.clone());
        assert_eq!(t.len(), n);
        let mut perm = t.tree_order().to_vec();
        perm.sort_unstable();
        assert_eq!(perm.len(), n);
        assert!(perm.windows(2).all(|w| w[0] < w[1]), "permutation has duplicates");
        let bf = BruteForceIndex::new(ds.clone());
        let mut s = QueryScratch::new();
        for id in (0..n).step_by(997) {
            let q = ds.row(id).to_vec();
            let mut got = Vec::new();
            t.range_into_scratch(&q, 5.0, &mut s, &mut got);
            assert_eq!(sorted(got), sorted(bf.range(&q, 5.0)), "id={id}");
        }
    }

    #[test]
    fn steady_state_queries_do_not_allocate() {
        let rows: Vec<Vec<f64>> =
            (0..2000).map(|i| vec![(i as f64 * 13.0) % 101.0, (i as f64 * 29.0) % 103.0]).collect();
        let ds = Arc::new(Dataset::from_rows(rows));
        let t = BkdTree::build(ds.clone());
        let mut s = QueryScratch::new();
        let mut out = Vec::new();
        // warm-up: grow scratch and output buffers to their high-water marks
        for id in 0..200 {
            out.clear();
            t.range_into_scratch(ds.row(id), 10.0, &mut s, &mut out);
        }
        let stack_cap = s.stack_capacity();
        let out_cap = out.capacity();
        assert!(stack_cap > 0);
        // steady state: capacities must not move across many more queries
        for id in 0..2000 {
            out.clear();
            t.range_into_scratch(ds.row(id), 10.0, &mut s, &mut out);
            t.count_at_least(ds.row(id), 10.0, 5, &mut s);
        }
        assert_eq!(s.stack_capacity(), stack_cap, "traversal stack reallocated");
        assert_eq!(out.capacity(), out_cap, "output buffer reallocated");
    }

    #[test]
    fn spatial_index_trait_entry_points() {
        let ds = grid_dataset();
        let t = BkdTree::build(ds.clone());
        let idx: &dyn SpatialIndex = &t;
        assert_eq!(idx.name(), "bucketed kd-tree");
        assert_eq!(idx.count_within(&[2.0, 2.0], 1.0), idx.range(&[2.0, 2.0], 1.0).len());
        assert_eq!(idx.dataset().len(), 25);
    }

    #[test]
    fn size_bytes_accounts_for_coords() {
        let t = BkdTree::build(grid_dataset());
        assert!(t.size_bytes() >= 25 * 2 * std::mem::size_of::<f64>());
    }

    fn scatter_dataset(n: usize) -> Arc<Dataset> {
        let rows =
            (0..n).map(|i| vec![(i as f64 * 37.0) % 211.0, (i as f64 * 53.0) % 197.0]).collect();
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn parallel_build_is_structurally_identical() {
        let ds = scatter_dataset(3000);
        let base = BuildConfig::default().with_bucket_size(8).with_par_cutoff(64);
        let (seq, _) =
            BkdTree::build_with_report(ds.clone(), Metric::Euclidean, base.with_threads(1));
        for threads in [2, 3, 8] {
            let (par, _) = BkdTree::build_with_report(
                ds.clone(),
                Metric::Euclidean,
                base.with_threads(threads),
            );
            assert!(seq.same_structure(&par), "threads={threads}: tree structure diverged");
            assert_eq!(
                sorted(seq.range(&[100.0, 100.0], 30.0)),
                sorted(par.range(&[100.0, 100.0], 30.0)),
            );
        }
    }

    #[test]
    fn build_report_accounts_for_the_whole_tree() {
        let ds = scatter_dataset(2000);
        let cfg = BuildConfig::default().with_bucket_size(8).with_par_cutoff(128).with_threads(1);
        let (t, rep) = BkdTree::build_with_report(ds.clone(), Metric::Euclidean, cfg);
        // shards tile [0, n) exactly, in tree order
        let mut at = 0usize;
        for s in &rep.shards {
            assert_eq!(s.offset, at, "shards must tile the permutation contiguously");
            assert!(s.len < 128, "shard at {} has len {} >= cutoff", s.offset, s.len);
            at += s.len;
        }
        assert_eq!(at, ds.len());
        assert!(rep.shards.len() > 1, "n=2000 cutoff=128 must split into many shards");
        assert!(!rep.internal_nanos_by_depth.is_empty(), "internal depths must be timed");
        // the modeled makespan at k=1 is the full serial critical path,
        // monotonically non-increasing in k
        let m1 = rep.modeled_makespan_nanos(1);
        assert_eq!(m1, rep.internal_total_nanos() + rep.shard_total_nanos() + rep.coords_nanos);
        assert!(rep.modeled_makespan_nanos(8) <= m1);
        assert!(t.len() == ds.len());
    }

    #[test]
    fn build_config_from_env_parses_threads() {
        // no env set in tests: default is auto
        assert_eq!(BuildConfig::default().threads, 0);
        assert!(BuildConfig::default().effective_threads() >= 1);
        assert_eq!(BuildConfig::default().with_threads(1).fork_budget(), 0);
        assert_eq!(BuildConfig::default().with_threads(2).fork_budget(), 1);
        assert_eq!(BuildConfig::default().with_threads(8).fork_budget(), 3);
        assert_eq!(BuildConfig::default().with_threads(5).fork_budget(), 3);
    }

    #[test]
    fn soa_mirror_transposes_every_leaf() {
        let ds = scatter_dataset(1500);
        let d = ds.dim();
        for threads in [1, 4] {
            let cfg = BuildConfig::default().with_bucket_size(8).with_threads(threads);
            let t = BkdTree::build_with_config(ds.clone(), Metric::Euclidean, cfg);
            assert_eq!(t.kernel_config().layout, KernelLayout::Lanes);
            let mut covered = 0usize;
            for (start, end) in t.leaf_ranges() {
                assert_eq!(start, covered, "leaves tile [0, n) in node order");
                covered = end;
                let rows = end - start;
                let block = t.leaf_coords(start, end);
                let soa = t.leaf_soa(start, end).expect("lanes layout keeps an SoA mirror");
                for i in 0..rows {
                    for k in 0..d {
                        assert_eq!(block[i * d + k].to_bits(), soa[k * rows + i].to_bits());
                    }
                }
            }
            assert_eq!(covered, ds.len());
        }
    }

    #[test]
    fn scalar_layout_keeps_no_soa_and_matches_lanes() {
        let ds = scatter_dataset(800);
        let lanes = BkdTree::build(ds.clone());
        let scalar = BkdTree::build_with_config(
            ds.clone(),
            Metric::Euclidean,
            BuildConfig::default().with_kernel(KernelConfig::scalar()),
        );
        assert!(scalar.leaf_soa(0, 1).is_none());
        assert!(lanes.same_structure(&scalar), "layout is derived data, structure identical");
        let mut s = QueryScratch::new();
        for id in (0..ds.len()).step_by(37) {
            let q = ds.row(id);
            for eps in [0.0, 5.0, 40.0] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                lanes.range_into_scratch(q, eps, &mut s, &mut a);
                scalar.range_into_scratch(q, eps, &mut s, &mut b);
                // order and contents must match exactly, not just as sets
                assert_eq!(a, b, "id={id} eps={eps}");
            }
        }
    }

    #[test]
    fn count_up_to_is_exact_below_cap() {
        let ds = scatter_dataset(600);
        for kernel in [KernelConfig::default(), KernelConfig::scalar()] {
            let t = BkdTree::build_with_config(
                ds.clone(),
                Metric::Euclidean,
                BuildConfig::default().with_kernel(kernel),
            );
            let mut s = QueryScratch::new();
            for id in (0..ds.len()).step_by(41) {
                let q = ds.row(id);
                for eps in [3.0, 15.0, 60.0] {
                    let n = t.range(q, eps).len();
                    // cap above the true count: exact
                    assert_eq!(t.count_up_to(q, eps, n + 3, &mut s), n, "{kernel:?}");
                    // cap at/below: must report at least the cap
                    for cap in [1, n.max(1)] {
                        let got = t.count_up_to(q, eps, cap, &mut s);
                        assert!(got >= cap.min(n), "{kernel:?} cap={cap} n={n} got={got}");
                        assert!((got >= cap) == (n >= cap), "{kernel:?} cap={cap} n={n} got={got}");
                    }
                }
            }
        }
    }

    #[test]
    fn query_batch_matches_per_query_results_exactly() {
        let ds = scatter_dataset(900);
        for kernel in [KernelConfig::default(), KernelConfig::scalar()] {
            let t = BkdTree::build_with_config(
                ds.clone(),
                Metric::Euclidean,
                BuildConfig::default().with_kernel(kernel),
            );
            let mut s = QueryScratch::new();
            let mut out = Vec::new();
            let mut spans = Vec::new();
            for eps in [0.0, 8.0, 30.0] {
                // several reuses of the same scratch, varied batch makeup
                for round in 0..3u32 {
                    let queries: Vec<u32> =
                        (0..ds.len() as u32).filter(|q| (q + round) % 7 == 0).collect();
                    t.query_batch(&queries, eps, &mut s, &mut out, &mut spans);
                    assert_eq!(spans.len(), queries.len());
                    for (i, &q) in queries.iter().enumerate() {
                        let (off, len) = spans[i];
                        let got = &out[off as usize..(off + len) as usize];
                        let mut want = Vec::new();
                        t.range_into_scratch(ds.row(q as usize), eps, &mut s, &mut want);
                        assert_eq!(got, &want[..], "{kernel:?} eps={eps} q={q}");
                    }
                }
            }
        }
    }

    #[test]
    fn query_batch_handles_empty_inputs() {
        let t = BkdTree::build(Arc::new(Dataset::empty(2)));
        let mut s = QueryScratch::new();
        let (mut out, mut spans) = (vec![PointId(9)], vec![(7u32, 7u32)]);
        t.query_batch(&[], 1.0, &mut s, &mut out, &mut spans);
        assert!(out.is_empty() && spans.is_empty());
        let ds = grid_dataset();
        let t = BkdTree::build(ds);
        t.query_batch(&[], 1.0, &mut s, &mut out, &mut spans);
        assert!(out.is_empty() && spans.is_empty());
    }

    #[test]
    fn query_counters_are_layout_invariant() {
        let ds = scatter_dataset(700);
        let lanes = BkdTree::build(ds.clone());
        let scalar = BkdTree::build_with_config(
            ds.clone(),
            Metric::Euclidean,
            BuildConfig::default().with_kernel(KernelConfig::scalar()),
        );
        let run = |t: &BkdTree| {
            let mut s = QueryScratch::new();
            let mut out = Vec::new();
            for id in 0..ds.len() {
                out.clear();
                t.range_into_scratch(ds.row(id), 12.0, &mut s, &mut out);
            }
            s.counters
        };
        let (a, b) = (run(&lanes), run(&scalar));
        assert_eq!(a, b, "blocks/rows/hits are defined over visited leaves, not layout");
        assert!(!a.is_zero());
        assert_eq!(a.early_exits, 0, "exact queries never exit early");
        // batched queries visit the same (leaf, query) pairs
        let queries: Vec<u32> = (0..ds.len() as u32).collect();
        let mut s = QueryScratch::new();
        let (mut out, mut spans) = (Vec::new(), Vec::new());
        lanes.query_batch(&queries, 12.0, &mut s, &mut out, &mut spans);
        assert_eq!(s.counters, a, "batching must not change what gets scanned");
    }
}
