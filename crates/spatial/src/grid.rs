//! Uniform grid index — ablation baseline.
//!
//! Buckets points into axis-aligned cells of side `cell`, answering a
//! range query with radius `eps <= cell` by scanning the 3^d neighbouring
//! cells. Excellent in low dimensions; degrades exponentially with `d`,
//! which is exactly the contrast the ablation bench (A2) demonstrates
//! against the kd-tree on the paper's d=10 data.

use crate::dataset::Dataset;
use crate::index::SpatialIndex;
use crate::metric::Metric;
use crate::point::PointId;
use std::collections::HashMap;
use std::sync::Arc;

/// A uniform grid over a [`Dataset`].
#[derive(Debug, Clone)]
pub struct GridIndex {
    dataset: Arc<Dataset>,
    cell: f64,
    cells: HashMap<Vec<i64>, Vec<u32>>,
    metric: Metric,
}

impl GridIndex {
    /// Build with the given cell side length (must be positive and should
    /// be at least the largest query radius you intend to use — larger
    /// radii still return correct results but scan more than 3^d cells).
    pub fn build(dataset: Arc<Dataset>, cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut cells: HashMap<Vec<i64>, Vec<u32>> = HashMap::new();
        for (id, row) in dataset.iter() {
            cells.entry(cell_of(row, cell)).or_default().push(id.0);
        }
        GridIndex { dataset, cell, cells, metric: Metric::Euclidean }
    }

    /// Cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

fn cell_of(row: &[f64], cell: f64) -> Vec<i64> {
    row.iter().map(|&v| (v / cell).floor() as i64).collect()
}

impl SpatialIndex for GridIndex {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn range_into(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        debug_assert_eq!(query.len(), self.dataset.dim());
        let thr = self.metric.threshold(eps);
        let reach = (eps / self.cell).ceil() as i64;
        let center = cell_of(query, self.cell);
        // enumerate the (2*reach+1)^d neighbouring cells with an odometer
        let d = center.len();
        let mut offset = vec![-reach; d];
        loop {
            let key: Vec<i64> = center.iter().zip(&offset).map(|(c, o)| c + o).collect();
            if let Some(ids) = self.cells.get(&key) {
                for &i in ids {
                    let row = self.dataset.row(i as usize);
                    if self.metric.reduced_distance(query, row) <= thr {
                        out.push(PointId(i));
                    }
                }
            }
            // increment odometer
            let mut k = 0;
            loop {
                if k == d {
                    return;
                }
                offset[k] += 1;
                if offset[k] <= reach {
                    break;
                }
                offset[k] = -reach;
                k += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "uniform-grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;

    fn cloud() -> Arc<Dataset> {
        let rows = (0..30).map(|i| vec![(i % 6) as f64 * 0.7, (i / 6) as f64 * 1.3]).collect();
        Arc::new(Dataset::from_rows(rows))
    }

    fn sorted(mut v: Vec<PointId>) -> Vec<PointId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force() {
        let ds = cloud();
        let g = GridIndex::build(ds.clone(), 1.0);
        let bf = BruteForceIndex::new(ds.clone());
        for eps in [0.3, 0.9, 1.0, 2.2] {
            for (_, row) in ds.iter() {
                assert_eq!(sorted(g.range(row, eps)), sorted(bf.range(row, eps)));
            }
        }
    }

    #[test]
    fn radius_larger_than_cell_still_correct() {
        let ds = cloud();
        let g = GridIndex::build(ds.clone(), 0.5);
        let bf = BruteForceIndex::new(ds.clone());
        assert_eq!(sorted(g.range(&[1.0, 1.0], 3.0)), sorted(bf.range(&[1.0, 1.0], 3.0)));
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let ds =
            Arc::new(Dataset::from_rows(vec![vec![-0.1, -0.1], vec![0.1, 0.1], vec![-5.0, -5.0]]));
        let g = GridIndex::build(ds, 1.0);
        let r = g.range(&[0.0, 0.0], 0.5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn occupied_cells_counts_buckets() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![0.1, 0.1], vec![0.2, 0.2], vec![5.0, 5.0]]));
        let g = GridIndex::build(ds, 1.0);
        assert_eq!(g.occupied_cells(), 2);
        assert_eq!(g.cell_size(), 1.0);
    }

    #[test]
    fn empty_dataset() {
        let g = GridIndex::build(Arc::new(Dataset::empty(2)), 1.0);
        assert!(g.range(&[0.0, 0.0], 1.0).is_empty());
        assert_eq!(g.occupied_cells(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        let _ = GridIndex::build(Arc::new(Dataset::empty(2)), 0.0);
    }
}
