//! Linear-scan index — the `O(n^2)` baseline the paper contrasts the
//! kd-tree against, and the ground truth oracle for property tests.

use crate::dataset::Dataset;
use crate::index::SpatialIndex;
use crate::metric::Metric;
use crate::point::PointId;
use std::sync::Arc;

/// Exhaustive-scan range queries over a [`Dataset`].
#[derive(Debug, Clone)]
pub struct BruteForceIndex {
    dataset: Arc<Dataset>,
    metric: Metric,
}

impl BruteForceIndex {
    /// Build (trivially) over `dataset` with the Euclidean metric.
    pub fn new(dataset: Arc<Dataset>) -> Self {
        Self::with_metric(dataset, Metric::Euclidean)
    }

    /// Build with an explicit metric.
    pub fn with_metric(dataset: Arc<Dataset>, metric: Metric) -> Self {
        BruteForceIndex { dataset, metric }
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// One whole-matrix scan. All metric dispatch happens **once per
    /// scan**, never once per row: specialized dims go through the
    /// fixed-`D` kernels and the generic fallback resolves
    /// [`crate::kernel::metric_kernel`] up front, so the row loop is a
    /// bare distance-and-compare.
    #[inline]
    fn scan<F: FnMut(usize) -> bool>(&self, query: &[f64], eps: f64, on_match: F) {
        crate::kernel::scan_block(
            self.metric,
            self.dataset.dim(),
            query,
            self.dataset.flat(),
            self.metric.threshold(eps),
            on_match,
        );
    }
}

impl SpatialIndex for BruteForceIndex {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn range_into(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        self.scan(query, eps, |i| {
            out.push(PointId(i as u32));
            true
        });
    }

    fn count_within(&self, query: &[f64], eps: f64) -> usize {
        let mut count = 0usize;
        self.scan(query, eps, |_| {
            count += 1;
            true
        });
        count
    }

    fn name(&self) -> &'static str {
        "brute-force"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset() -> Arc<Dataset> {
        Arc::new(Dataset::from_rows((0..10).map(|i| vec![i as f64]).collect()))
    }

    #[test]
    fn finds_inclusive_radius() {
        let idx = BruteForceIndex::new(line_dataset());
        let r = idx.range(&[5.0], 2.0);
        let ids: Vec<u32> = r.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn zero_radius_matches_exact_point_only() {
        let idx = BruteForceIndex::new(line_dataset());
        assert_eq!(idx.range(&[5.0], 0.0), vec![PointId(5)]);
        assert!(idx.range(&[5.5], 0.0).is_empty());
    }

    #[test]
    fn count_matches_range_len() {
        let idx = BruteForceIndex::new(line_dataset());
        for eps in [0.0, 0.5, 1.0, 3.7, 100.0] {
            assert_eq!(idx.count_within(&[4.2], eps), idx.range(&[4.2], eps).len());
        }
    }

    #[test]
    fn empty_dataset_returns_nothing() {
        let idx = BruteForceIndex::new(Arc::new(Dataset::empty(3)));
        assert!(idx.range(&[0.0, 0.0, 0.0], 10.0).is_empty());
    }

    #[test]
    fn manhattan_metric_respected() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]));
        let idx = BruteForceIndex::with_metric(ds, Metric::Manhattan);
        // L1 distance from origin to (1,1) is 2
        assert_eq!(idx.range(&[0.0, 0.0], 1.9).len(), 1);
        assert_eq!(idx.range(&[0.0, 0.0], 2.0).len(), 2);
        assert_eq!(idx.metric(), Metric::Manhattan);
    }

    #[test]
    fn range_into_appends_without_clearing() {
        let idx = BruteForceIndex::new(line_dataset());
        let mut buf = vec![PointId(99)];
        idx.range_into(&[0.0], 0.5, &mut buf);
        assert_eq!(buf, vec![PointId(99), PointId(0)]);
    }

    #[test]
    fn hoisted_kernel_fn_matches_per_row_dispatch() {
        // the once-per-scan resolved kernel function is the same
        // computation the enum dispatch performs row by row
        let a = [1.5, -2.25, 3.0];
        let b = [-0.5, 4.0, 7.125];
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let f = crate::kernel::metric_kernel(m);
            assert_eq!(f(&a, &b).to_bits(), m.reduced_distance(&a, &b).to_bits());
        }
    }
}
