//! Global point identifiers.
//!
//! The paper's partitioning scheme is *index-range based*: partition `i`
//! owns the contiguous block of global indices `[i*n/p, (i+1)*n/p)` and a
//! point is a SEED exactly when "the current point's index is beyond the
//! range of \[the\] current partition". Point ids are therefore first-class
//! in this reproduction and every structure refers to points by `PointId`.

use serde::{Deserialize, Serialize};

/// Global, zero-based index of a point within a [`crate::Dataset`].
///
/// `u32` bounds datasets at ~4.3 billion points, far above the paper's
/// largest dataset (r1m, 1,024,000 points), while halving index memory
/// versus `usize` on 64-bit hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PointId(pub u32);

impl PointId {
    /// The index as a `usize`, for slice addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for PointId {
    #[inline]
    fn from(v: u32) -> Self {
        PointId(v)
    }
}

impl From<PointId> for u32 {
    #[inline]
    fn from(v: PointId) -> Self {
        v.0
    }
}

impl std::fmt::Display for PointId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        let id = PointId::from(42u32);
        assert_eq!(u32::from(id), 42);
        assert_eq!(id.idx(), 42usize);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PointId(1) < PointId(2));
        assert_eq!(PointId(7), PointId(7));
    }

    #[test]
    fn display_is_bare_index() {
        assert_eq!(PointId(123).to_string(), "123");
    }
}
