//! Spatial substrate for the scalable-DBSCAN reproduction.
//!
//! The paper relies on a Java kd-tree (Bentley 1975) to reduce the cost of
//! every eps-neighborhood query from `O(n)` to roughly `O(log n)`
//! (worst case `O(n^(1-1/d) + k)` for range search). This crate provides:
//!
//! * [`Dataset`] — a dense, cache-friendly `n x d` point matrix with stable
//!   global point indices (`u32`), the unit of work the whole pipeline
//!   shares.
//! * [`BkdTree`] — the **default index**: a leaf-bucketed kd-tree whose
//!   points are permuted into tree order at build, so each leaf scans a
//!   contiguous coordinate block linearly. Queries are iterative over a
//!   reusable [`QueryScratch`] (zero allocation in steady state) and
//!   include `count_at_least` early-exit counting.
//! * [`KdTree`] — the classic node-per-point kd-tree supporting exact
//!   eps range queries, counted queries, and nearest-neighbour search.
//!   Kept as the A2 ablation arm the bucketed tree is measured against.
//! * [`PruneConfig`] / pruned queries — the paper's "kd-tree with pruning
//!   branches" used for the 1M-point runs: caps the number of reported
//!   neighbours and prunes subtrees aggressively.
//! * [`BruteForceIndex`] — the `O(n^2)` linear-scan baseline.
//! * [`RTree`] — a packed R-tree (the paper's reference \[2\] family) with
//!   whole-subtree reporting, for the index ablation.
//! * [`GridIndex`] — a uniform-grid index used for ablation studies.
//!
//! All indexes implement the [`SpatialIndex`] trait so the clustering code
//! is generic over the index choice.

pub mod aabb;
pub mod bkdtree;
pub mod bruteforce;
pub mod dataset;
pub mod grid;
pub mod index;
pub mod kdtree;
pub mod kernel;
pub mod metric;
pub mod point;
pub mod rtree;

pub use aabb::Aabb;
pub use bkdtree::{
    lpt_makespan_nanos, BkdTree, BuildConfig, BuildReport, BuildShard, QueryScratch,
};
pub use bruteforce::BruteForceIndex;
pub use dataset::Dataset;
pub use grid::GridIndex;
pub use index::SpatialIndex;
pub use kdtree::{KdTree, PruneConfig};
pub use kernel::{
    count_block_soa, metric_kernel, scan_block, scan_block_generic, scan_block_soa,
    transpose_block, KernelConfig, KernelCounters, KernelLayout, DEFAULT_LANES, LANE_WIDTHS,
    SPECIALIZED_DIMS,
};
pub use metric::{chebyshev, euclidean, manhattan, squared_euclidean, Metric};
pub use point::PointId;
pub use rtree::RTree;
