//! kd-tree (Bentley 1975) — the paper's spatial index.
//!
//! * Construction selects the median by `select_nth_unstable` at every
//!   level, giving a count-balanced tree in `O(n log n)` time and depth
//!   `O(log n)` even for adversarial inputs.
//! * Exact eps range queries prune subtrees with the splitting-plane
//!   bound; complexity is between `O(log n)` and `O(n^(1-1/d) + k)` per
//!   query, matching the bounds quoted in the paper (Kakde 2005).
//! * [`PruneConfig`] implements the paper's "kd-tree with pruning
//!   branches" used for the 1M-point experiments: the traversal stops
//!   early once enough neighbours are found and/or a node-visit budget is
//!   exhausted, trading exactness for speed. Pruned results are always a
//!   subset of the exact result (property-tested).

use crate::dataset::Dataset;
use crate::index::SpatialIndex;
use crate::metric::Metric;
use crate::point::PointId;
use std::sync::Arc;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Point stored at this node.
    id: u32,
    /// Splitting axis (depth % dim).
    axis: u32,
    /// Flat index of the left child, `NIL` if absent.
    left: u32,
    /// Flat index of the right child, `NIL` if absent.
    right: u32,
}

/// Early-termination knobs for approximate ("pruning branches") queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneConfig {
    /// Stop after reporting this many neighbours (`None` = unlimited).
    pub max_neighbors: Option<usize>,
    /// Stop after visiting this many tree nodes (`None` = unlimited).
    pub max_visited: Option<usize>,
}

impl PruneConfig {
    /// No pruning: equivalent to the exact query.
    pub const EXACT: PruneConfig = PruneConfig { max_neighbors: None, max_visited: None };

    /// The setting used for the paper's r1m runs: cap the neighbour list.
    pub fn cap_neighbors(k: usize) -> Self {
        PruneConfig { max_neighbors: Some(k), max_visited: None }
    }
}

/// A balanced kd-tree over a shared [`Dataset`].
#[derive(Debug, Clone)]
pub struct KdTree {
    dataset: Arc<Dataset>,
    nodes: Vec<Node>,
    root: u32,
    metric: Metric,
}

impl KdTree {
    /// Build over every point of `dataset` with the Euclidean metric.
    pub fn build(dataset: Arc<Dataset>) -> Self {
        Self::build_with_metric(dataset, Metric::Euclidean)
    }

    /// Build with an explicit metric.
    pub fn build_with_metric(dataset: Arc<Dataset>, metric: Metric) -> Self {
        let n = dataset.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(n);
        let root = if n == 0 { NIL } else { build_recursive(&dataset, &mut ids, 0, &mut nodes) };
        KdTree { dataset, nodes, root, metric }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Maximum node depth (root = 1); 0 for an empty tree. A balanced
    /// build keeps this at `O(log n)`. Iterative, so even a degenerate
    /// (path-shaped) tree cannot overflow the call stack.
    pub fn depth(&self) -> usize {
        if self.root == NIL {
            return 0;
        }
        let mut deepest = 0usize;
        let mut stack: Vec<(u32, usize)> = vec![(self.root, 1)];
        while let Some((at, d)) = stack.pop() {
            deepest = deepest.max(d);
            let n = self.nodes[at as usize];
            if n.left != NIL {
                stack.push((n.left, d + 1));
            }
            if n.right != NIL {
                stack.push((n.right, d + 1));
            }
        }
        deepest
    }

    /// Logical size in bytes of the serialized tree (what broadcasting it
    /// would ship in a real cluster).
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>() + std::mem::size_of::<Self>()
    }

    /// Approximate range query with early termination (the paper's
    /// "pruning branches"). The result is a subset of the exact result.
    /// Returns the number of tree nodes visited.
    pub fn range_pruned(
        &self,
        query: &[f64],
        eps: f64,
        cfg: PruneConfig,
        out: &mut Vec<PointId>,
    ) -> usize {
        debug_assert_eq!(query.len(), self.dataset.dim());
        if self.root == NIL {
            return 0;
        }
        let mut walker = Walker {
            tree: self,
            query,
            thr: self.metric.threshold(eps),
            cfg,
            visited: 0,
            reported: 0,
            out,
        };
        walker.visit(self.root);
        walker.visited
    }

    /// Nearest neighbour of `query` (ties broken arbitrarily); `None` for
    /// an empty tree. Returns `(id, distance)`. Iterative over an
    /// explicit `(lower bound, node)` stack — the same shape as
    /// [`crate::BkdTree::nearest_scratch`] — so deep trees cannot
    /// overflow the call stack, and far subtrees pruned at *pop* time
    /// benefit from the best-so-far found after they were pushed.
    pub fn nearest(&self, query: &[f64]) -> Option<(PointId, f64)> {
        if self.root == NIL {
            return None;
        }
        let mut best = (PointId(0), f64::INFINITY);
        let mut stack: Vec<(f64, u32)> = vec![(0.0, self.root)];
        while let Some((bound, at)) = stack.pop() {
            if bound >= best.1 {
                continue; // the whole subtree is provably farther
            }
            let node = self.nodes[at as usize];
            let row = self.dataset.row(node.id as usize);
            let d = self.metric.reduced_distance(query, row);
            if d < best.1 {
                best = (PointId(node.id), d);
            }
            let axis = node.axis as usize;
            let delta = query[axis] - row[axis];
            let (near, far) =
                if delta <= 0.0 { (node.left, node.right) } else { (node.right, node.left) };
            if far != NIL {
                stack.push((self.metric.axis_bound(delta), far));
            }
            if near != NIL {
                stack.push((bound, near));
            }
        }
        best.1 = match self.metric {
            Metric::Euclidean => best.1.sqrt(),
            _ => best.1,
        };
        Some(best)
    }
}

fn build_recursive(ds: &Dataset, ids: &mut [u32], depth: usize, nodes: &mut Vec<Node>) -> u32 {
    debug_assert!(!ids.is_empty());
    let axis = depth % ds.dim();
    let mid = ids.len() / 2;
    ids.select_nth_unstable_by(mid, |&a, &b| {
        let va = ds.row(a as usize)[axis];
        let vb = ds.row(b as usize)[axis];
        va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let me = nodes.len() as u32;
    nodes.push(Node { id: ids[mid], axis: axis as u32, left: NIL, right: NIL });
    // split_at_mut to satisfy the borrow checker: [0, mid) left, (mid, len) right
    let (lo, rest) = ids.split_at_mut(mid);
    let hi = &mut rest[1..];
    let left = if lo.is_empty() { NIL } else { build_recursive(ds, lo, depth + 1, nodes) };
    let right = if hi.is_empty() { NIL } else { build_recursive(ds, hi, depth + 1, nodes) };
    nodes[me as usize].left = left;
    nodes[me as usize].right = right;
    me
}

/// Range-query traversal state, shared by exact and pruned queries
/// (the exact query is a pruned query with no limits).
struct Walker<'a> {
    tree: &'a KdTree,
    query: &'a [f64],
    thr: f64,
    cfg: PruneConfig,
    visited: usize,
    reported: usize,
    out: &'a mut Vec<PointId>,
}

impl Walker<'_> {
    /// Returns `false` once a budget is exhausted so ancestors stop too.
    fn visit(&mut self, at: u32) -> bool {
        if let Some(maxv) = self.cfg.max_visited {
            if self.visited >= maxv {
                return false;
            }
        }
        self.visited += 1;
        let node = self.tree.nodes[at as usize];
        let row = self.tree.dataset.row(node.id as usize);
        if self.tree.metric.reduced_distance(self.query, row) <= self.thr {
            self.out.push(PointId(node.id));
            self.reported += 1;
            if let Some(maxn) = self.cfg.max_neighbors {
                if self.reported >= maxn {
                    return false;
                }
            }
        }
        let axis = node.axis as usize;
        let delta = self.query[axis] - row[axis];
        let (near, far) =
            if delta <= 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NIL && !self.visit(near) {
            return false;
        }
        if far != NIL && self.tree.metric.axis_bound(delta) <= self.thr && !self.visit(far) {
            return false;
        }
        true
    }
}

impl SpatialIndex for KdTree {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn range_into(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        self.range_pruned(query, eps, PruneConfig::EXACT, out);
    }

    fn name(&self) -> &'static str {
        "kd-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;

    fn grid_dataset() -> Arc<Dataset> {
        // 5x5 integer grid
        let rows = (0..5).flat_map(|x| (0..5).map(move |y| vec![x as f64, y as f64])).collect();
        Arc::new(Dataset::from_rows(rows))
    }

    fn sorted(mut v: Vec<PointId>) -> Vec<PointId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_queries_safely() {
        let t = KdTree::build(Arc::new(Dataset::empty(2)));
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.range(&[0.0, 0.0], 1.0).is_empty());
        assert!(t.nearest(&[0.0, 0.0]).is_none());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(Arc::new(Dataset::from_rows(vec![vec![1.0, 1.0]])));
        assert_eq!(t.range(&[1.0, 1.0], 0.0), vec![PointId(0)]);
        assert!(t.range(&[2.0, 1.0], 0.5).is_empty());
        assert_eq!(t.nearest(&[5.0, 5.0]).unwrap().0, PointId(0));
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let ds = grid_dataset();
        let t = KdTree::build(ds.clone());
        let bf = BruteForceIndex::new(ds.clone());
        for eps in [0.0, 0.5, 1.0, 1.5, 2.5, 10.0] {
            for (id, _) in ds.iter() {
                let q = ds.point(id).to_vec();
                assert_eq!(
                    sorted(t.range(&q, eps)),
                    sorted(bf.range(&q, eps)),
                    "eps={eps} q={q:?}"
                );
            }
        }
    }

    #[test]
    fn count_within_matches_range() {
        let ds = grid_dataset();
        let t = KdTree::build(ds.clone());
        assert_eq!(t.count_within(&[2.0, 2.0], 1.0), t.range(&[2.0, 2.0], 1.0).len());
    }

    #[test]
    fn duplicate_points_all_reported() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![3.0]; 7]));
        let t = KdTree::build(ds);
        assert_eq!(t.range(&[3.0], 0.0).len(), 7);
    }

    #[test]
    fn depth_is_logarithmic() {
        let rows = (0..1024).map(|i| vec![i as f64]).collect();
        let t = KdTree::build(Arc::new(Dataset::from_rows(rows)));
        // perfectly balanced depth for 1024 is 11; allow a little slack
        assert!(t.depth() <= 12, "depth {} too large", t.depth());
    }

    #[test]
    fn depth_is_logarithmic_with_duplicate_coordinate() {
        // all points share axis-0 values — median split must still balance
        let rows = (0..512).map(|i| vec![1.0, i as f64]).collect();
        let t = KdTree::build(Arc::new(Dataset::from_rows(rows)));
        assert!(t.depth() <= 11, "depth {} too large", t.depth());
    }

    #[test]
    fn pruned_is_subset_of_exact() {
        let ds = grid_dataset();
        let t = KdTree::build(ds.clone());
        let exact = sorted(t.range(&[2.0, 2.0], 2.0));
        let mut pruned = Vec::new();
        t.range_pruned(&[2.0, 2.0], 2.0, PruneConfig::cap_neighbors(3), &mut pruned);
        assert_eq!(pruned.len(), 3);
        for p in &pruned {
            assert!(exact.contains(p));
        }
    }

    #[test]
    fn pruned_with_no_limits_is_exact() {
        let ds = grid_dataset();
        let t = KdTree::build(ds.clone());
        let mut out = Vec::new();
        let visited = t.range_pruned(&[2.0, 2.0], 1.5, PruneConfig::EXACT, &mut out);
        assert!(visited > 0);
        assert_eq!(sorted(out), sorted(t.range(&[2.0, 2.0], 1.5)));
    }

    #[test]
    fn visit_budget_limits_traversal() {
        let ds = grid_dataset();
        let t = KdTree::build(ds);
        let mut out = Vec::new();
        let cfg = PruneConfig { max_neighbors: None, max_visited: Some(4) };
        let visited = t.range_pruned(&[2.0, 2.0], 100.0, cfg, &mut out);
        assert!(visited <= 4);
        assert!(out.len() <= 4);
    }

    #[test]
    fn nearest_finds_closest_grid_point() {
        let ds = grid_dataset();
        let t = KdTree::build(ds.clone());
        let (id, d) = t.nearest(&[3.2, 1.9]).unwrap();
        assert_eq!(ds.point(id), &[3.0, 2.0]);
        assert!((d - ((0.2f64 * 0.2 + 0.1 * 0.1).sqrt())).abs() < 1e-9);
    }

    #[test]
    fn manhattan_tree_matches_brute_force() {
        let ds = grid_dataset();
        let t = KdTree::build_with_metric(ds.clone(), Metric::Manhattan);
        let bf = BruteForceIndex::with_metric(ds.clone(), Metric::Manhattan);
        for eps in [1.0, 2.0, 3.0] {
            let q = [2.0, 2.0];
            assert_eq!(sorted(t.range(&q, eps)), sorted(bf.range(&q, eps)));
        }
    }

    #[test]
    fn query_point_not_in_dataset() {
        let ds = grid_dataset();
        let t = KdTree::build(ds);
        let r = t.range(&[2.5, 2.5], 0.8);
        // the 4 surrounding grid points are at distance sqrt(0.5) ≈ 0.707
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn size_bytes_positive() {
        let t = KdTree::build(grid_dataset());
        assert!(t.size_bytes() > 25 * std::mem::size_of::<u32>());
    }
}
