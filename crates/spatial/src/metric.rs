//! Distance metrics.
//!
//! DBSCAN's eps-neighborhood is defined by a metric; the paper (like the
//! original Ester et al. formulation) uses Euclidean distance. We keep the
//! squared form on the hot path to avoid `sqrt` per candidate and only
//! compare against `eps^2`.

/// A distance metric over equal-length coordinate slices.
///
/// Implementations must satisfy the metric axioms for the exact kd-tree
/// query logic to remain correct (in particular the coordinate-plane
/// pruning bound must be a lower bound on the true distance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// Standard L2 distance (the paper's metric).
    #[default]
    Euclidean,
    /// L1 (city-block) distance.
    Manhattan,
    /// L∞ (maximum coordinate difference) distance.
    Chebyshev,
}

impl Metric {
    /// Distance between `a` and `b`.
    #[inline]
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => euclidean(a, b),
            Metric::Manhattan => manhattan(a, b),
            Metric::Chebyshev => chebyshev(a, b),
        }
    }

    /// A monotone transform of the distance that is cheaper to compute,
    /// paired with [`Metric::threshold`] for comparisons.
    ///
    /// For Euclidean this is the *squared* distance; for the others it is
    /// the distance itself. Dispatches to a dimension-monomorphized kernel
    /// for small `d` (see [`crate::kernel`]); the result is bit-identical
    /// to the generic loop either way.
    #[inline]
    pub fn reduced_distance(self, a: &[f64], b: &[f64]) -> f64 {
        crate::kernel::reduced_distance_dispatch(self, a, b)
    }

    /// Transform a radius into the reduced-distance space of
    /// [`Metric::reduced_distance`].
    #[inline]
    pub fn threshold(self, eps: f64) -> f64 {
        match self {
            Metric::Euclidean => eps * eps,
            _ => eps,
        }
    }

    /// Lower bound on the distance contributed by a single coordinate
    /// difference `delta`, in reduced-distance space. Used by the kd-tree
    /// to decide whether the far child can contain matches.
    #[inline]
    pub fn axis_bound(self, delta: f64) -> f64 {
        match self {
            Metric::Euclidean => delta * delta,
            Metric::Manhattan | Metric::Chebyshev => delta.abs(),
        }
    }
}

/// Squared Euclidean distance. The hot-path kernel: branch-free and
/// auto-vectorizable for fixed small `d`.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean (L2) distance.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum()
}

/// Chebyshev (L∞) distance.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_matches_hand_computation() {
        assert_eq!(squared_euclidean(&A, &B), 9.0 + 16.0);
        assert!((euclidean(&A, &B) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        assert_eq!(manhattan(&A, &B), 7.0);
    }

    #[test]
    fn chebyshev_matches_hand_computation() {
        assert_eq!(chebyshev(&A, &B), 4.0);
    }

    #[test]
    fn zero_distance_to_self() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert_eq!(m.distance(&A, &A), 0.0);
            assert_eq!(m.reduced_distance(&A, &A), 0.0);
        }
    }

    #[test]
    fn reduced_distance_is_consistent_with_threshold() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let d = m.distance(&A, &B);
            let rd = m.reduced_distance(&A, &B);
            // point is within radius d+tiny, outside radius d-tiny
            assert!(rd <= m.threshold(d + 1e-9));
            assert!(rd > m.threshold(d - 1e-9));
        }
    }

    #[test]
    fn symmetry() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert_eq!(m.distance(&A, &B), m.distance(&B, &A));
        }
    }

    #[test]
    fn axis_bound_is_lower_bound() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            // the distance contributed by axis 0 alone never exceeds total
            let delta = A[0] - B[0];
            assert!(m.axis_bound(delta) <= m.reduced_distance(&A, &B) + 1e-12);
        }
    }

    #[test]
    fn empty_slices_have_zero_distance() {
        assert_eq!(squared_euclidean(&[], &[]), 0.0);
        assert_eq!(manhattan(&[], &[]), 0.0);
        assert_eq!(chebyshev(&[], &[]), 0.0);
    }
}
