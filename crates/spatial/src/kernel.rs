//! Dimension-monomorphized and lane-blocked query kernels.
//!
//! Every distance in [`crate::metric`] is a dynamic-length loop over
//! `&[f64]`: the compiler cannot unroll it, keeps the trip-count check,
//! and emits scalar code. But a dataset's dimensionality is fixed for
//! the lifetime of every query, and the paper's workloads are low-`d`
//! (2–10, with the figures' plots all 2-D). This module monomorphizes
//! the hot loops over a `const D` for the neighborhood-query dimensions
//! (`D = 2..=6`, matching the planner's `MAX_NEIGHBORHOOD_DIM`) and
//! dispatches **once per block scan** on `Dataset::dim`, so the per-row
//! work is a fixed-trip-count, bounds-check-free loop.
//!
//! On top of the row-major kernels sit the **lane-blocked SoA kernels**
//! ([`scan_block_soa`], [`count_block_soa`]): they scan a leaf block
//! stored dimension-major (all `x`s, then all `y`s, …), accumulating a
//! whole group of `LANES` points into a fixed-width `[f64; LANES]`
//! stack buffer that LLVM auto-vectorizes on stable. One lane per
//! point: each point's per-dimension sum runs in the exact sequential
//! coordinate order of the scalar kernels, so every distance is the
//! same `f64` bit for bit — vectorization happens *across* points,
//! never inside one point's accumulation. The threshold test is a
//! branch-free pass packing hit indices left, so dense and sparse
//! blocks cost the same per row.
//!
//! Three invariants make the kernels safe to wire everywhere:
//!
//! * **Bit-identical results.** Fixed-`D`, generic and lane-blocked
//!   paths accumulate in the same coordinate order, so every distance
//!   is the exact same `f64` — all paths return byte-identical
//!   neighborhoods (property-tested in `tests/proptest_kernels.rs`).
//!   The AVX2 specialization vectorizes only *across* points with the
//!   same per-lane IEEE ops (`vsubpd`/`vmulpd`/`vaddpd`, never an FMA
//!   contraction), so it is covered by the same guarantee.
//! * **Same early-exit semantics.** [`scan_block`] and
//!   [`scan_block_soa`] report matches through a callback that can stop
//!   the scan, row by row in row order, so pruned queries
//!   (`max_neighbors`) and `count_at_least` behave exactly like the
//!   generic traversal they replace.
//! * **Count exactness below the cap.** [`count_block_soa`] early-exits
//!   at lane-group granularity only once the cap is reached, so any
//!   returned count *below* the cap is exact — the contract the
//!   executor's `min_pts` fast path relies on.
//!
//! Callers: [`crate::BkdTree`] leaf scans, [`crate::BruteForceIndex`]
//! whole-matrix scans, and [`crate::Metric::reduced_distance`] (single
//! pairs).

use crate::metric::Metric;

/// Dimensions with a monomorphized kernel; anything else takes the
/// generic fallback. Exposed so benches and tests can iterate the
/// dispatch table. Covers every dimension the partition planner builds
/// neighborhood grids for (`MAX_NEIGHBORHOOD_DIM = 6`).
pub const SPECIALIZED_DIMS: [usize; 5] = [2, 3, 4, 5, 6];

/// Lane widths the SoA kernels are monomorphized for.
pub const LANE_WIDTHS: [usize; 3] = [4, 8, 16];

/// Default lane width: 8 points per group is wide enough to fill an
/// AVX2 register file without spilling the accumulators at `d = 6`.
pub const DEFAULT_LANES: usize = 8;

/// How leaf blocks are stored and scanned. Every layout produces
/// bit-identical results; only throughput changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelLayout {
    /// Row-major blocks, one point at a time ([`scan_block`]).
    Scalar,
    /// Dimension-major (SoA) blocks, a lane group of points at a time
    /// ([`scan_block_soa`]).
    Lanes,
}

/// Query-kernel configuration threaded through the resource bundle:
/// data layout, lane width, frontier batching and the `min_pts`
/// count-only fast path. Labels are byte-identical for every value —
/// [`KernelConfig::count_fast_path`] additionally leaves every
/// executor stat untouched and only changes the *kernel counters*
/// (fewer rows scanned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Leaf-block layout and scan strategy.
    pub layout: KernelLayout,
    /// Points per SoA lane group (normalized to one of
    /// [`LANE_WIDTHS`]); ignored under [`KernelLayout::Scalar`].
    pub lanes: usize,
    /// Executor frontier chunk size for batched `query_batch`
    /// expansion; `0` disables batching (one query at a time).
    pub batch: usize,
    /// Decide core-point status with an early-exit count before paying
    /// for the full neighbor list of non-core points.
    pub count_fast_path: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            layout: KernelLayout::Lanes,
            lanes: DEFAULT_LANES,
            batch: 0,
            count_fast_path: false,
        }
    }
}

impl KernelConfig {
    /// The seed-path configuration: row-major scalar scans, no
    /// batching, no fast path — the arm every other configuration is
    /// checked byte-identical against.
    pub fn scalar() -> Self {
        KernelConfig { layout: KernelLayout::Scalar, ..Self::default() }
    }

    /// Set the leaf-block layout.
    pub fn with_layout(mut self, layout: KernelLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Set the SoA lane width (normalized to one of [`LANE_WIDTHS`]).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = normalized_lanes(lanes);
        self
    }

    /// Set the executor frontier batch size (`0` = off).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Enable or disable the `min_pts` count-only fast path.
    pub fn with_count_fast_path(mut self, on: bool) -> Self {
        self.count_fast_path = on;
        self
    }

    /// Defaults overlaid with the environment: `DBSCAN_KERNEL`
    /// (`scalar`/`lanes`), `DBSCAN_KERNEL_LANES` (lane width),
    /// `DBSCAN_QUERY_BATCH` (frontier chunk, `0` = off) and
    /// `DBSCAN_COUNT_FAST_PATH` (`1`/`true`). Unset or unparsable
    /// variables leave the default in place.
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("DBSCAN_KERNEL").ok().as_deref(),
            std::env::var("DBSCAN_KERNEL_LANES").ok().as_deref(),
            std::env::var("DBSCAN_QUERY_BATCH").ok().as_deref(),
            std::env::var("DBSCAN_COUNT_FAST_PATH").ok().as_deref(),
        )
    }

    /// The pure core of [`KernelConfig::from_env`], taking the raw
    /// variable values so tests can exercise the parsing contract
    /// without touching the process environment. Never panics, never
    /// errors: junk keeps the default for that knob.
    pub fn from_env_values(
        layout: Option<&str>,
        lanes: Option<&str>,
        batch: Option<&str>,
        fast: Option<&str>,
    ) -> Self {
        let mut cfg = Self::default();
        match layout.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
            Some("scalar") => cfg.layout = KernelLayout::Scalar,
            Some("lanes") => cfg.layout = KernelLayout::Lanes,
            _ => {}
        }
        if let Some(l) = lanes.and_then(|v| v.trim().parse::<usize>().ok()) {
            cfg.lanes = normalized_lanes(l);
        }
        if let Some(b) = batch.and_then(|v| v.trim().parse::<usize>().ok()) {
            cfg.batch = b;
        }
        match fast.map(|v| v.trim().to_ascii_lowercase()).as_deref() {
            Some("1") | Some("true") => cfg.count_fast_path = true,
            Some("0") | Some("false") => cfg.count_fast_path = false,
            _ => {}
        }
        cfg
    }
}

/// Snap an arbitrary lane request to the nearest monomorphized width.
fn normalized_lanes(lanes: usize) -> usize {
    if lanes <= 4 {
        4
    } else if lanes <= 8 {
        8
    } else {
        16
    }
}

/// Per-run kernel instrumentation, accumulated on
/// [`crate::QueryScratch`] and surfaced on the executor stats. The
/// counters are defined over *visited* leaves — blocks touched by the
/// traversal and the rows those blocks hold — so they are invariant
/// across scalar, lane-blocked and batched configurations (which visit
/// the same leaves in the same order). Only the count fast path, which
/// genuinely prunes traversal, moves them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Leaf blocks scanned (one per leaf per query touching it).
    pub blocks_scanned: u64,
    /// Rows held by the scanned blocks.
    pub rows_scanned: u64,
    /// Rows reported within the query threshold.
    pub range_hits: u64,
    /// Scans stopped before their last block (count caps reached,
    /// pruning budgets exhausted).
    pub early_exits: u64,
}

impl KernelCounters {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.blocks_scanned += other.blocks_scanned;
        self.rows_scanned += other.rows_scanned;
        self.range_hits += other.range_hits;
        self.early_exits += other.early_exits;
    }

    /// Whether nothing was counted.
    pub fn is_zero(&self) -> bool {
        *self == KernelCounters::default()
    }
}

/// Scan a row-major coordinate block (`block.len() == rows * dim`),
/// invoking `on_match(i)` for every row `i` whose reduced distance to
/// `query` is `<= thr` (`thr` in [`Metric::threshold`] space). The
/// callback returns `false` to stop the scan; `scan_block` returns
/// `false` iff it was stopped early.
///
/// Dispatches once on `dim` to a fixed-`D` kernel when one exists.
#[inline]
pub fn scan_block<F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    block: &[f64],
    thr: f64,
    on_match: F,
) -> bool {
    debug_assert!(block.is_empty() || query.len() == dim.max(1));
    debug_assert!(block.len().is_multiple_of(dim.max(1)));
    match dim {
        2 => scan_fixed::<2, F>(metric, query, block, thr, on_match),
        3 => scan_fixed::<3, F>(metric, query, block, thr, on_match),
        4 => scan_fixed::<4, F>(metric, query, block, thr, on_match),
        5 => scan_fixed::<5, F>(metric, query, block, thr, on_match),
        6 => scan_fixed::<6, F>(metric, query, block, thr, on_match),
        _ => scan_block_generic(metric, dim, query, block, thr, on_match),
    }
}

/// The dynamic-length scan [`scan_block`] falls back to — public so the
/// perf suite and the differential property tests can pit the two paths
/// against each other on the same data. The metric's kernel function is
/// resolved once per scan, never once per row.
#[inline]
pub fn scan_block_generic<F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    block: &[f64],
    thr: f64,
    mut on_match: F,
) -> bool {
    let d = dim.max(1);
    let dist = metric_kernel(metric);
    for (i, row) in block.chunks_exact(d).enumerate() {
        if dist(query, row) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

/// The dynamic-length reduced-distance function for `metric`, resolved
/// once so block scans don't re-dispatch the metric per row.
#[inline]
pub fn metric_kernel(metric: Metric) -> fn(&[f64], &[f64]) -> f64 {
    match metric {
        Metric::Euclidean => crate::metric::squared_euclidean,
        Metric::Manhattan => crate::metric::manhattan,
        Metric::Chebyshev => crate::metric::chebyshev,
    }
}

#[inline]
fn scan_fixed<const D: usize, F: FnMut(usize) -> bool>(
    metric: Metric,
    query: &[f64],
    block: &[f64],
    thr: f64,
    on_match: F,
) -> bool {
    let q: &[f64; D] = query.try_into().expect("query length matches dataset dim");
    match metric {
        Metric::Euclidean => {
            scan_rows::<D, _, _>(block, thr, |r| squared_euclidean_fixed(q, r), on_match)
        }
        Metric::Manhattan => scan_rows::<D, _, _>(block, thr, |r| manhattan_fixed(q, r), on_match),
        Metric::Chebyshev => scan_rows::<D, _, _>(block, thr, |r| chebyshev_fixed(q, r), on_match),
    }
}

/// The monomorphized inner loop: fixed trip count per row, no bounds
/// checks (the `&[f64; D]` conversion proves the length to LLVM).
#[inline]
fn scan_rows<const D: usize, G: Fn(&[f64; D]) -> f64, F: FnMut(usize) -> bool>(
    block: &[f64],
    thr: f64,
    dist: G,
    mut on_match: F,
) -> bool {
    for (i, row) in block.chunks_exact(D).enumerate() {
        let row: &[f64; D] = row.try_into().expect("chunks_exact yields D-length rows");
        if dist(row) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

// ---- lane-blocked SoA kernels ------------------------------------------

/// Scan a dimension-major (SoA) coordinate block of `rows` points
/// (`soa[k * rows + i]` = coordinate `k` of point `i`,
/// `soa.len() == rows * dim`), invoking `on_match(i)` for every row
/// within `thr`, **in row order** — the same callback sequence, stops
/// included, as [`scan_block`] over the row-major transpose of the
/// block. Distances are bit-identical to the scalar path: lanes run
/// across points, each point still accumulates coordinate `0..dim`
/// sequentially.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn scan_block_soa<F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    lanes: usize,
    on_match: F,
) -> bool {
    debug_assert_eq!(soa.len(), rows * dim);
    if rows == 0 || dim == 0 {
        return true;
    }
    match normalized_lanes(lanes) {
        4 => scan_soa_dispatch::<4, F>(metric, dim, query, soa, rows, thr, on_match),
        16 => scan_soa_dispatch::<16, F>(metric, dim, query, soa, rows, thr, on_match),
        _ => scan_soa_dispatch::<8, F>(metric, dim, query, soa, rows, thr, on_match),
    }
}

/// Count the rows of a dimension-major block within `thr`, adding to
/// `*count` and stopping (at lane-group granularity) once
/// `*count >= cap`. Returns `true` iff the cap was reached. Any final
/// `*count` **below** `cap` is the exact block count — early exit can
/// only fire at or past the cap.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn count_block_soa(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    lanes: usize,
    cap: usize,
    count: &mut usize,
) -> bool {
    debug_assert_eq!(soa.len(), rows * dim);
    if rows == 0 || dim == 0 {
        return *count >= cap;
    }
    match normalized_lanes(lanes) {
        4 => count_soa_dispatch::<4>(metric, dim, query, soa, rows, thr, cap, count),
        16 => count_soa_dispatch::<16>(metric, dim, query, soa, rows, thr, cap, count),
        _ => count_soa_dispatch::<8>(metric, dim, query, soa, rows, thr, cap, count),
    }
}

/// Pick the widest ISA the host supports at runtime. The AVX2 twin
/// computes each group's threshold mask with explicit 256-bit
/// intrinsics ([`group_mask_avx2`]) — the per-lane operations are the
/// exact IEEE ops of the portable body in the same order, so every bit
/// of every distance is identical to the portable build.
#[inline]
fn scan_soa_dispatch<const L: usize, F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    on_match: F,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if L >= 8 && std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f feature was just detected on this CPU.
            return unsafe {
                scan_soa_lanes_avx512::<L, F>(metric, dim, query, soa, rows, thr, on_match)
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just detected on this CPU.
            return unsafe {
                scan_soa_lanes_avx2::<L, F>(metric, dim, query, soa, rows, thr, on_match)
            };
        }
    }
    scan_soa_lanes::<L, F>(metric, dim, query, soa, rows, thr, on_match)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scan_soa_lanes_avx2<const L: usize, F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    mut on_match: F,
) -> bool {
    let mut base = 0usize;
    while base + L <= rows {
        let mut mask = unsafe { group_mask_avx2::<L>(metric, dim, query, soa, rows, base, thr) };
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            if !on_match(base + j) {
                return false;
            }
            mask &= mask - 1;
        }
        base += L;
    }
    for i in base..rows {
        if reduced_soa_point(metric, dim, query, soa, rows, i) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

/// Within-threshold bitmask of one full lane group, 256 bits at a time:
/// explicit `vsubpd`/`vmulpd`/`vaddpd` (and `vandpd` abs / `vmaxpd`)
/// followed by `vcmppd LE_OQ` + `vmovmskpd`. Each instruction is the
/// per-lane IEEE operation of the scalar kernel — multiply and add stay
/// separate (no FMA contraction) and the accumulation still runs
/// coordinates in ascending order — so every lane's distance, and hence
/// the mask, is bit-identical to the portable path for the finite
/// coordinates datasets hold.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn group_mask_avx2<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    base: usize,
    thr: f64,
) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(L.is_multiple_of(4) && base + L <= rows);
    let t = _mm256_set1_pd(thr);
    let abs_mask = _mm256_set1_pd(f64::from_bits(0x7fff_ffff_ffff_ffff));
    // coordinate-outer so the query broadcast is paid once per group
    // per dimension; the whole group's accumulators live in registers
    // (L <= 16, so at most four of the sixteen ymm registers)
    let n = L / 4;
    let mut acc = [_mm256_setzero_pd(); 4];
    for (k, &q) in query.iter().enumerate().take(dim) {
        let qv = _mm256_set1_pd(q);
        // SAFETY: k < dim and base + L <= rows, so all L lanes lie
        // inside column k of the dim-major block.
        let colp = unsafe { soa.as_ptr().add(k * rows + base) };
        for (c, a) in acc.iter_mut().enumerate().take(n) {
            let col = unsafe { _mm256_loadu_pd(colp.add(4 * c)) };
            let delta = _mm256_sub_pd(qv, col);
            *a = match metric {
                Metric::Euclidean => _mm256_add_pd(*a, _mm256_mul_pd(delta, delta)),
                Metric::Manhattan => _mm256_add_pd(*a, _mm256_and_pd(delta, abs_mask)),
                Metric::Chebyshev => _mm256_max_pd(*a, _mm256_and_pd(delta, abs_mask)),
            };
        }
    }
    let mut mask = 0u32;
    for (c, &a) in acc.iter().enumerate().take(n) {
        let le = _mm256_cmp_pd::<_CMP_LE_OQ>(a, t);
        mask |= (_mm256_movemask_pd(le) as u32) << (4 * c);
    }
    mask
}

/// [`group_mask_avx2`] at AVX-512 width: the accumulators are zmm
/// registers (8 lanes each, so `L = 8` is a single register and
/// `L = 16` two) and the threshold compare lands directly in a mask
/// register via `vcmppd k, ...`. Per-lane operations are the same IEEE
/// sub/mul/add (no FMA) in the same coordinate order — bit-identical
/// to both the portable and the AVX2 paths.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn group_mask_avx512<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    base: usize,
    thr: f64,
) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(L.is_multiple_of(8) && base + L <= rows);
    let t = _mm512_set1_pd(thr);
    let n = L / 8;
    let mut acc = [_mm512_setzero_pd(); 2];
    for (k, &q) in query.iter().enumerate().take(dim) {
        let qv = _mm512_set1_pd(q);
        // SAFETY: k < dim and base + L <= rows, so all L lanes lie
        // inside column k of the dim-major block.
        let colp = unsafe { soa.as_ptr().add(k * rows + base) };
        for (c, a) in acc.iter_mut().enumerate().take(n) {
            let col = unsafe { _mm512_loadu_pd(colp.add(8 * c)) };
            let delta = _mm512_sub_pd(qv, col);
            *a = match metric {
                Metric::Euclidean => _mm512_add_pd(*a, _mm512_mul_pd(delta, delta)),
                Metric::Manhattan => _mm512_add_pd(*a, _mm512_abs_pd(delta)),
                Metric::Chebyshev => _mm512_max_pd(*a, _mm512_abs_pd(delta)),
            };
        }
    }
    let mut mask = 0u32;
    for (c, &a) in acc.iter().enumerate().take(n) {
        mask |= (_mm512_cmp_pd_mask::<_CMP_LE_OQ>(a, t) as u32) << (8 * c);
    }
    mask
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn scan_soa_lanes_avx512<const L: usize, F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    mut on_match: F,
) -> bool {
    let mut base = 0usize;
    while base + L <= rows {
        let mut mask = unsafe { group_mask_avx512::<L>(metric, dim, query, soa, rows, base, thr) };
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            if !on_match(base + j) {
                return false;
            }
            mask &= mask - 1;
        }
        base += L;
    }
    for i in base..rows {
        if reduced_soa_point(metric, dim, query, soa, rows, i) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn count_soa_lanes_avx512<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    cap: usize,
    count: &mut usize,
) -> bool {
    let mut base = 0usize;
    while base + L <= rows {
        let mask = unsafe { group_mask_avx512::<L>(metric, dim, query, soa, rows, base, thr) };
        *count += mask.count_ones() as usize;
        if *count >= cap {
            return true;
        }
        base += L;
    }
    for i in base..rows {
        *count += (reduced_soa_point(metric, dim, query, soa, rows, i) <= thr) as usize;
        if *count >= cap {
            return true;
        }
    }
    false
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn count_soa_dispatch<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    cap: usize,
    count: &mut usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if L >= 8 && std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f feature was just detected on this CPU.
            return unsafe {
                count_soa_lanes_avx512::<L>(metric, dim, query, soa, rows, thr, cap, count)
            };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just detected on this CPU.
            return unsafe {
                count_soa_lanes_avx2::<L>(metric, dim, query, soa, rows, thr, cap, count)
            };
        }
    }
    count_soa_lanes::<L>(metric, dim, query, soa, rows, thr, cap, count)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn count_soa_lanes_avx2<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    cap: usize,
    count: &mut usize,
) -> bool {
    let mut base = 0usize;
    while base + L <= rows {
        let mask = unsafe { group_mask_avx2::<L>(metric, dim, query, soa, rows, base, thr) };
        *count += mask.count_ones() as usize;
        if *count >= cap {
            return true;
        }
        base += L;
    }
    for i in base..rows {
        *count += (reduced_soa_point(metric, dim, query, soa, rows, i) <= thr) as usize;
        if *count >= cap {
            return true;
        }
    }
    false
}

#[inline(always)]
fn scan_soa_lanes<const L: usize, F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    mut on_match: F,
) -> bool {
    let mut base = 0usize;
    while base + L <= rows {
        let acc = group_distances::<L>(metric, dim, query, soa, rows, base);
        // branch-free threshold pass: one compare bit per lane (LLVM
        // lowers the reduction to a vector compare + movemask), then
        // report set bits in row order — the usual all-zero mask skips
        // the emission loop entirely
        let mut mask = 0u32;
        for (j, &a) in acc.iter().enumerate() {
            mask |= u32::from(a <= thr) << j;
        }
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            if !on_match(base + j) {
                return false;
            }
            mask &= mask - 1;
        }
        base += L;
    }
    for i in base..rows {
        if reduced_soa_point(metric, dim, query, soa, rows, i) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn count_soa_lanes<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    thr: f64,
    cap: usize,
    count: &mut usize,
) -> bool {
    let mut base = 0usize;
    while base + L <= rows {
        let acc = group_distances::<L>(metric, dim, query, soa, rows, base);
        let mut mask = 0u32;
        for (j, &a) in acc.iter().enumerate() {
            mask |= u32::from(a <= thr) << j;
        }
        *count += mask.count_ones() as usize;
        if *count >= cap {
            return true;
        }
        base += L;
    }
    for i in base..rows {
        *count += (reduced_soa_point(metric, dim, query, soa, rows, i) <= thr) as usize;
        if *count >= cap {
            return true;
        }
    }
    false
}

/// Reduced distances of one full lane group, one lane per point. The
/// outer loop runs coordinates in ascending order, so each lane's
/// accumulation order matches the scalar kernels exactly; the inner
/// `0..L` loop over a length-proven column slice is what LLVM turns
/// into vector code.
#[inline(always)]
fn group_distances<const L: usize>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    base: usize,
) -> [f64; L] {
    let mut acc = [0.0f64; L];
    match metric {
        Metric::Euclidean => {
            for (k, &q) in query.iter().enumerate().take(dim) {
                let col: &[f64; L] =
                    soa[k * rows + base..k * rows + base + L].try_into().expect("full lane group");
                for j in 0..L {
                    let delta = q - col[j];
                    acc[j] += delta * delta;
                }
            }
        }
        Metric::Manhattan => {
            for (k, &q) in query.iter().enumerate().take(dim) {
                let col: &[f64; L] =
                    soa[k * rows + base..k * rows + base + L].try_into().expect("full lane group");
                for j in 0..L {
                    acc[j] += (q - col[j]).abs();
                }
            }
        }
        Metric::Chebyshev => {
            for (k, &q) in query.iter().enumerate().take(dim) {
                let col: &[f64; L] =
                    soa[k * rows + base..k * rows + base + L].try_into().expect("full lane group");
                for j in 0..L {
                    acc[j] = f64::max(acc[j], (q - col[j]).abs());
                }
            }
        }
    }
    acc
}

/// Reduced distance of one point of a dimension-major block (the
/// remainder rows after the last full lane group). Same coordinate
/// order as the scalar kernels.
#[inline(always)]
fn reduced_soa_point(
    metric: Metric,
    dim: usize,
    query: &[f64],
    soa: &[f64],
    rows: usize,
    i: usize,
) -> f64 {
    let mut acc = 0.0f64;
    match metric {
        Metric::Euclidean => {
            for (k, &q) in query.iter().enumerate().take(dim) {
                let delta = q - soa[k * rows + i];
                acc += delta * delta;
            }
        }
        Metric::Manhattan => {
            for (k, &q) in query.iter().enumerate().take(dim) {
                acc += (q - soa[k * rows + i]).abs();
            }
        }
        Metric::Chebyshev => {
            for (k, &q) in query.iter().enumerate().take(dim) {
                acc = f64::max(acc, (q - soa[k * rows + i]).abs());
            }
        }
    }
    acc
}

/// Transpose one row-major block into dimension-major (SoA) order:
/// `out[k * rows + i] = block[i * dim + k]`. The inverse of the gather
/// the SoA kernels perform; `out.len() == block.len()`.
pub fn transpose_block(block: &[f64], dim: usize, out: &mut [f64]) {
    debug_assert_eq!(block.len(), out.len());
    if dim == 0 {
        return;
    }
    let rows = block.len() / dim;
    for (i, row) in block.chunks_exact(dim).enumerate() {
        for (k, &v) in row.iter().enumerate() {
            out[k * rows + i] = v;
        }
    }
}

/// Reduced distance between a single pair of points, dispatched on
/// length. Accumulation order matches the generic loops exactly, so the
/// result is bit-identical to [`reduced_generic`].
#[inline]
pub fn reduced_distance_dispatch(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match a.len() {
        2 => reduced_fixed::<2>(metric, a, b),
        3 => reduced_fixed::<3>(metric, a, b),
        4 => reduced_fixed::<4>(metric, a, b),
        5 => reduced_fixed::<5>(metric, a, b),
        6 => reduced_fixed::<6>(metric, a, b),
        _ => reduced_generic(metric, a, b),
    }
}

#[inline]
fn reduced_fixed<const D: usize>(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    let a: &[f64; D] = a.try_into().expect("length checked by dispatch");
    let b: &[f64; D] = b.try_into().expect("length checked by dispatch");
    match metric {
        Metric::Euclidean => squared_euclidean_fixed(a, b),
        Metric::Manhattan => manhattan_fixed(a, b),
        Metric::Chebyshev => chebyshev_fixed(a, b),
    }
}

/// The dynamic-length reduced distance (no dispatch) — the reference
/// the specialized kernels must agree with bit for bit.
#[inline]
pub fn reduced_generic(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    metric_kernel(metric)(a, b)
}

/// Squared Euclidean distance over a fixed dimension.
#[inline]
pub fn squared_euclidean_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        let d = a[k] - b[k];
        acc += d * d;
    }
    acc
}

/// Manhattan (L1) distance over a fixed dimension.
#[inline]
pub fn manhattan_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        acc += (a[k] - b[k]).abs();
    }
    acc
}

/// Chebyshev (L∞) distance over a fixed dimension.
#[inline]
pub fn chebyshev_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        acc = f64::max(acc, (a[k] - b[k]).abs());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

    fn block(dim: usize, rows: usize) -> Vec<f64> {
        (0..dim * rows).map(|i| ((i as f64) * 7.31).sin() * 40.0).collect()
    }

    fn soa_of(block: &[f64], dim: usize) -> Vec<f64> {
        let mut out = vec![0.0; block.len()];
        transpose_block(block, dim, &mut out);
        out
    }

    #[test]
    fn dispatch_matches_generic_bit_for_bit() {
        for dim in 1..=8 {
            let data = block(dim, 37);
            let q: Vec<f64> = (0..dim).map(|k| (k as f64) * 3.7 - 1.0).collect();
            for m in METRICS {
                for row in data.chunks_exact(dim) {
                    let a = reduced_distance_dispatch(m, &q, row);
                    let b = reduced_generic(m, &q, row);
                    assert_eq!(a.to_bits(), b.to_bits(), "dim={dim} metric={m:?}");
                }
            }
        }
    }

    #[test]
    fn scan_block_matches_generic_matches() {
        for dim in 1..=8 {
            let data = block(dim, 53);
            let q: Vec<f64> = (0..dim).map(|k| (k as f64) * 1.3).collect();
            for m in METRICS {
                for thr in [0.0, 10.0, 1000.0, f64::INFINITY] {
                    let mut fast = Vec::new();
                    let mut slow = Vec::new();
                    assert!(scan_block(m, dim, &q, &data, thr, |i| {
                        fast.push(i);
                        true
                    }));
                    assert!(scan_block_generic(m, dim, &q, &data, thr, |i| {
                        slow.push(i);
                        true
                    }));
                    assert_eq!(fast, slow, "dim={dim} metric={m:?} thr={thr}");
                }
            }
        }
    }

    #[test]
    fn soa_scan_matches_row_major_scan() {
        for dim in 1..=8 {
            // rows chosen to leave a remainder group at every lane width
            let data = block(dim, 43);
            let soa = soa_of(&data, dim);
            let q: Vec<f64> = (0..dim).map(|k| (k as f64) * 1.3).collect();
            for m in METRICS {
                for thr in [0.0, 10.0, 1000.0, f64::INFINITY] {
                    for lanes in LANE_WIDTHS {
                        let mut row_major = Vec::new();
                        let mut lane = Vec::new();
                        assert!(scan_block(m, dim, &q, &data, thr, |i| {
                            row_major.push(i);
                            true
                        }));
                        assert!(scan_block_soa(m, dim, &q, &soa, 43, thr, lanes, |i| {
                            lane.push(i);
                            true
                        }));
                        assert_eq!(
                            row_major, lane,
                            "dim={dim} metric={m:?} thr={thr} lanes={lanes}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn soa_scan_early_exit_matches_row_major() {
        let data = block(3, 100);
        let soa = soa_of(&data, 3);
        let q = [0.0, 0.0, 0.0];
        for cap in [1usize, 3, 7] {
            let run = |soa_path: bool| {
                let mut hits = Vec::new();
                let cb = |i: usize| {
                    hits.push(i);
                    hits.len() < cap
                };
                let finished = if soa_path {
                    scan_block_soa(Metric::Euclidean, 3, &q, &soa, 100, f64::INFINITY, 8, cb)
                } else {
                    scan_block(Metric::Euclidean, 3, &q, &data, f64::INFINITY, cb)
                };
                (finished, hits)
            };
            assert_eq!(run(true), run(false), "cap={cap}");
        }
    }

    #[test]
    fn count_soa_is_exact_below_cap_and_stops_at_cap() {
        let data = block(2, 77);
        let soa = soa_of(&data, 2);
        let q = [1.0, -2.0];
        for m in METRICS {
            for thr in [0.0, 25.0, 1e6] {
                let mut exact = 0usize;
                scan_block(m, 2, &q, &data, thr, |_| {
                    exact += 1;
                    true
                });
                for lanes in LANE_WIDTHS {
                    // cap above the block count: exact count, no exit
                    let mut n = 0usize;
                    let capped = count_block_soa(m, 2, &q, &soa, 77, thr, lanes, exact + 1, &mut n);
                    assert!(!capped);
                    assert_eq!(n, exact, "metric={m:?} thr={thr} lanes={lanes}");
                    // cap at/below the count: must report reached
                    if exact > 0 {
                        let mut n = 0usize;
                        assert!(count_block_soa(m, 2, &q, &soa, 77, thr, lanes, exact, &mut n));
                        assert!(n >= exact);
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_round_trips_losslessly() {
        for dim in 1..=6 {
            let data = block(dim, 29);
            let soa = soa_of(&data, dim);
            let rows = 29;
            for (i, row) in data.chunks_exact(dim).enumerate() {
                for (k, &v) in row.iter().enumerate() {
                    assert_eq!(v.to_bits(), soa[k * rows + i].to_bits());
                }
            }
        }
    }

    #[test]
    fn early_exit_stops_the_scan() {
        let data = block(2, 100);
        let mut seen = 0usize;
        let finished = scan_block(Metric::Euclidean, 2, &[0.0, 0.0], &data, f64::INFINITY, |_| {
            seen += 1;
            seen < 5
        });
        assert!(!finished);
        assert_eq!(seen, 5);
    }

    #[test]
    fn empty_block_scans_nothing() {
        for dim in [1, 2, 3, 4, 5, 6, 7] {
            let q = vec![0.0; dim];
            assert!(scan_block(Metric::Euclidean, dim, &q, &[], 1.0, |_| panic!("no rows")));
            assert!(scan_block_soa(Metric::Euclidean, dim, &q, &[], 0, 1.0, 8, |_| panic!(
                "no rows"
            )));
        }
    }

    #[test]
    fn specialized_dims_are_dispatched() {
        // sanity: the dispatch table covers exactly what it claims —
        // every neighborhood-grid dimension up to MAX_NEIGHBORHOOD_DIM
        assert_eq!(SPECIALIZED_DIMS.to_vec(), (2..=6).collect::<Vec<_>>());
    }

    #[test]
    fn kernel_config_env_parsing_contract() {
        let d = KernelConfig::default();
        assert_eq!(d.layout, KernelLayout::Lanes);
        assert_eq!(d.lanes, DEFAULT_LANES);
        assert_eq!(d.batch, 0);
        assert!(!d.count_fast_path);
        assert_eq!(KernelConfig::from_env_values(None, None, None, None), d);
        let c =
            KernelConfig::from_env_values(Some(" SCALAR "), Some("5"), Some("32"), Some("true"));
        assert_eq!(c.layout, KernelLayout::Scalar);
        assert_eq!(c.lanes, 8, "5 snaps up to the nearest monomorphized width");
        assert_eq!(c.batch, 32);
        assert!(c.count_fast_path);
        // junk keeps defaults per knob
        let j = KernelConfig::from_env_values(Some("simd"), Some("lots"), Some("-1"), Some("yep"));
        assert_eq!(j, d);
        assert_eq!(KernelConfig::from_env_values(None, Some("99"), None, None).lanes, 16);
        assert_eq!(KernelConfig::from_env_values(None, Some("1"), None, None).lanes, 4);
        assert_eq!(KernelConfig::scalar().layout, KernelLayout::Scalar);
    }

    #[test]
    fn kernel_counters_merge() {
        let mut a = KernelCounters::default();
        assert!(a.is_zero());
        let b =
            KernelCounters { blocks_scanned: 1, rows_scanned: 16, range_hits: 3, early_exits: 1 };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.blocks_scanned, 2);
        assert_eq!(a.rows_scanned, 32);
        assert_eq!(a.range_hits, 6);
        assert_eq!(a.early_exits, 2);
        assert!(!a.is_zero());
    }
}
