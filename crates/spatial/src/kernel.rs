//! Dimension-monomorphized query kernels.
//!
//! Every distance in [`crate::metric`] is a dynamic-length loop over
//! `&[f64]`: the compiler cannot unroll it, keeps the trip-count check,
//! and emits scalar code. But a dataset's dimensionality is fixed for
//! the lifetime of every query, and the paper's workloads are low-`d`
//! (2–10, with the figures' plots all 2-D). This module monomorphizes
//! the hot loops over a `const D` for the common small dimensions
//! (`D = 2, 3, 4`) and dispatches **once per block scan** on
//! `Dataset::dim`, so the per-row work is a fixed-trip-count,
//! bounds-check-free loop the compiler auto-vectorizes.
//!
//! Two invariants make the specialization safe to wire everywhere:
//!
//! * **Bit-identical results.** The fixed-`D` kernels accumulate in the
//!   same coordinate order as the generic loops, so every distance is
//!   the exact same `f64` — specialized and generic paths return
//!   byte-identical neighborhoods (property-tested in
//!   `tests/proptest_kernels.rs`).
//! * **Same early-exit semantics.** [`scan_block`] reports matches
//!   through a callback that can stop the scan, so pruned queries
//!   (`max_neighbors`) and `count_at_least` behave exactly like the
//!   generic traversal they replace.
//!
//! Callers: [`crate::BkdTree`] leaf scans, [`crate::BruteForceIndex`]
//! whole-matrix scans, and [`crate::Metric::reduced_distance`] (single
//! pairs).

use crate::metric::Metric;

/// Dimensions with a monomorphized kernel; anything else takes the
/// generic fallback. Exposed so benches and tests can iterate the
/// dispatch table.
pub const SPECIALIZED_DIMS: [usize; 3] = [2, 3, 4];

/// Scan a row-major coordinate block (`block.len() == rows * dim`),
/// invoking `on_match(i)` for every row `i` whose reduced distance to
/// `query` is `<= thr` (`thr` in [`Metric::threshold`] space). The
/// callback returns `false` to stop the scan; `scan_block` returns
/// `false` iff it was stopped early.
///
/// Dispatches once on `dim` to a fixed-`D` kernel when one exists.
#[inline]
pub fn scan_block<F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    block: &[f64],
    thr: f64,
    on_match: F,
) -> bool {
    debug_assert!(block.is_empty() || query.len() == dim.max(1));
    debug_assert!(block.len().is_multiple_of(dim.max(1)));
    match dim {
        2 => scan_fixed::<2, F>(metric, query, block, thr, on_match),
        3 => scan_fixed::<3, F>(metric, query, block, thr, on_match),
        4 => scan_fixed::<4, F>(metric, query, block, thr, on_match),
        _ => scan_block_generic(metric, dim, query, block, thr, on_match),
    }
}

/// The dynamic-length scan [`scan_block`] falls back to — public so the
/// perf suite and the differential property tests can pit the two paths
/// against each other on the same data.
#[inline]
pub fn scan_block_generic<F: FnMut(usize) -> bool>(
    metric: Metric,
    dim: usize,
    query: &[f64],
    block: &[f64],
    thr: f64,
    mut on_match: F,
) -> bool {
    let d = dim.max(1);
    for (i, row) in block.chunks_exact(d).enumerate() {
        if reduced_generic(metric, query, row) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

#[inline]
fn scan_fixed<const D: usize, F: FnMut(usize) -> bool>(
    metric: Metric,
    query: &[f64],
    block: &[f64],
    thr: f64,
    on_match: F,
) -> bool {
    let q: &[f64; D] = query.try_into().expect("query length matches dataset dim");
    match metric {
        Metric::Euclidean => {
            scan_rows::<D, _, _>(block, thr, |r| squared_euclidean_fixed(q, r), on_match)
        }
        Metric::Manhattan => scan_rows::<D, _, _>(block, thr, |r| manhattan_fixed(q, r), on_match),
        Metric::Chebyshev => scan_rows::<D, _, _>(block, thr, |r| chebyshev_fixed(q, r), on_match),
    }
}

/// The monomorphized inner loop: fixed trip count per row, no bounds
/// checks (the `&[f64; D]` conversion proves the length to LLVM).
#[inline]
fn scan_rows<const D: usize, G: Fn(&[f64; D]) -> f64, F: FnMut(usize) -> bool>(
    block: &[f64],
    thr: f64,
    dist: G,
    mut on_match: F,
) -> bool {
    for (i, row) in block.chunks_exact(D).enumerate() {
        let row: &[f64; D] = row.try_into().expect("chunks_exact yields D-length rows");
        if dist(row) <= thr && !on_match(i) {
            return false;
        }
    }
    true
}

/// Reduced distance between a single pair of points, dispatched on
/// length. Accumulation order matches the generic loops exactly, so the
/// result is bit-identical to [`reduced_generic`].
#[inline]
pub fn reduced_distance_dispatch(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match a.len() {
        2 => reduced_fixed::<2>(metric, a, b),
        3 => reduced_fixed::<3>(metric, a, b),
        4 => reduced_fixed::<4>(metric, a, b),
        _ => reduced_generic(metric, a, b),
    }
}

#[inline]
fn reduced_fixed<const D: usize>(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    let a: &[f64; D] = a.try_into().expect("length checked by dispatch");
    let b: &[f64; D] = b.try_into().expect("length checked by dispatch");
    match metric {
        Metric::Euclidean => squared_euclidean_fixed(a, b),
        Metric::Manhattan => manhattan_fixed(a, b),
        Metric::Chebyshev => chebyshev_fixed(a, b),
    }
}

/// The dynamic-length reduced distance (no dispatch) — the reference
/// the specialized kernels must agree with bit for bit.
#[inline]
pub fn reduced_generic(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    match metric {
        Metric::Euclidean => crate::metric::squared_euclidean(a, b),
        Metric::Manhattan => crate::metric::manhattan(a, b),
        Metric::Chebyshev => crate::metric::chebyshev(a, b),
    }
}

/// Squared Euclidean distance over a fixed dimension.
#[inline]
pub fn squared_euclidean_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        let d = a[k] - b[k];
        acc += d * d;
    }
    acc
}

/// Manhattan (L1) distance over a fixed dimension.
#[inline]
pub fn manhattan_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        acc += (a[k] - b[k]).abs();
    }
    acc
}

/// Chebyshev (L∞) distance over a fixed dimension.
#[inline]
pub fn chebyshev_fixed<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for k in 0..D {
        acc = f64::max(acc, (a[k] - b[k]).abs());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev];

    fn block(dim: usize, rows: usize) -> Vec<f64> {
        (0..dim * rows).map(|i| ((i as f64) * 7.31).sin() * 40.0).collect()
    }

    #[test]
    fn dispatch_matches_generic_bit_for_bit() {
        for dim in 1..=6 {
            let data = block(dim, 37);
            let q: Vec<f64> = (0..dim).map(|k| (k as f64) * 3.7 - 1.0).collect();
            for m in METRICS {
                for row in data.chunks_exact(dim) {
                    let a = reduced_distance_dispatch(m, &q, row);
                    let b = reduced_generic(m, &q, row);
                    assert_eq!(a.to_bits(), b.to_bits(), "dim={dim} metric={m:?}");
                }
            }
        }
    }

    #[test]
    fn scan_block_matches_generic_matches() {
        for dim in 1..=6 {
            let data = block(dim, 53);
            let q: Vec<f64> = (0..dim).map(|k| (k as f64) * 1.3).collect();
            for m in METRICS {
                for thr in [0.0, 10.0, 1000.0, f64::INFINITY] {
                    let mut fast = Vec::new();
                    let mut slow = Vec::new();
                    assert!(scan_block(m, dim, &q, &data, thr, |i| {
                        fast.push(i);
                        true
                    }));
                    assert!(scan_block_generic(m, dim, &q, &data, thr, |i| {
                        slow.push(i);
                        true
                    }));
                    assert_eq!(fast, slow, "dim={dim} metric={m:?} thr={thr}");
                }
            }
        }
    }

    #[test]
    fn early_exit_stops_the_scan() {
        let data = block(2, 100);
        let mut seen = 0usize;
        let finished = scan_block(Metric::Euclidean, 2, &[0.0, 0.0], &data, f64::INFINITY, |_| {
            seen += 1;
            seen < 5
        });
        assert!(!finished);
        assert_eq!(seen, 5);
    }

    #[test]
    fn empty_block_scans_nothing() {
        for dim in [1, 2, 3, 4, 5] {
            let q = vec![0.0; dim];
            assert!(scan_block(Metric::Euclidean, dim, &q, &[], 1.0, |_| panic!("no rows")));
        }
    }

    #[test]
    fn specialized_dims_are_dispatched() {
        // sanity: the dispatch table covers exactly what it claims
        for d in SPECIALIZED_DIMS {
            assert!((2..=4).contains(&d));
        }
    }
}
