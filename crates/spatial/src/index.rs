//! The common query interface all spatial indexes implement.

use crate::dataset::Dataset;
use crate::point::PointId;

/// An eps-range query structure over a [`Dataset`].
///
/// The clustering algorithms are generic over this trait so the kd-tree
/// (the paper's index), the brute-force scan (the paper's `O(n^2)`
/// strawman), and the grid index (our ablation) are interchangeable.
pub trait SpatialIndex: Send + Sync {
    /// The dataset this index was built over.
    fn dataset(&self) -> &Dataset;

    /// Append all points within distance `eps` of `query` (including the
    /// query point itself if it is in the dataset) to `out`.
    ///
    /// `out` is *not* cleared: callers reuse one buffer across queries to
    /// avoid per-query allocation (the "workhorse collection" pattern).
    fn range_into(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>);

    /// Convenience wrapper returning a fresh vector.
    fn range(&self, query: &[f64], eps: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        self.range_into(query, eps, &mut out);
        out
    }

    /// Number of points within distance `eps` of `query`.
    ///
    /// Default implementation materializes the neighbor list; indexes can
    /// override with a counting traversal.
    fn count_within(&self, query: &[f64], eps: f64) -> usize {
        let mut out = Vec::new();
        self.range_into(query, eps, &mut out);
        out.len()
    }

    /// Human-readable index name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;
    use std::sync::Arc;

    #[test]
    fn trait_default_methods_agree_with_range_into() {
        let ds =
            Arc::new(Dataset::from_rows(vec![vec![0.0, 0.0], vec![0.5, 0.0], vec![10.0, 0.0]]));
        let idx = BruteForceIndex::new(ds);
        let r = idx.range(&[0.0, 0.0], 1.0);
        assert_eq!(r.len(), 2);
        assert_eq!(idx.count_within(&[0.0, 0.0], 1.0), 2);
    }

    #[test]
    fn trait_objects_are_usable() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![0.0], vec![3.0]]));
        let idx: Box<dyn SpatialIndex> = Box::new(BruteForceIndex::new(ds));
        assert_eq!(idx.range(&[0.0], 1.0).len(), 1);
        assert_eq!(idx.name(), "brute-force");
    }
}
