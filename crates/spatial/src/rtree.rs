//! Packed R-tree — the other index family the paper cites (Beckmann et
//! al.'s R*-tree is reference \[2\]).
//!
//! Bulk-loaded bottom-up by recursive median splits on the widest axis
//! (the classic packed/bulk-load construction), with `M`-point leaf
//! buckets and a bounding box per node. Range queries prune subtrees
//! whose box lies outside the query ball and — unlike our kd-tree —
//! report *whole subtrees without per-point tests* when the box lies
//! entirely inside the ball, which pays off at large `eps`.

use crate::aabb::Aabb;
use crate::dataset::Dataset;
use crate::index::SpatialIndex;
use crate::metric::Metric;
use crate::point::PointId;
use std::sync::Arc;

const LEAF_CAPACITY: usize = 16;

#[derive(Debug)]
enum Node {
    Leaf {
        aabb: Aabb,
        /// Range into `ids`.
        start: usize,
        end: usize,
    },
    Inner {
        aabb: Aabb,
        left: usize,
        right: usize,
        /// Range into `ids` covered by the whole subtree (for wholesale
        /// reporting).
        start: usize,
        end: usize,
    },
}

impl Node {
    fn aabb(&self) -> &Aabb {
        match self {
            Node::Leaf { aabb, .. } | Node::Inner { aabb, .. } => aabb,
        }
    }

    fn span(&self) -> (usize, usize) {
        match self {
            Node::Leaf { start, end, .. } | Node::Inner { start, end, .. } => (*start, *end),
        }
    }
}

/// A packed R-tree over a shared [`Dataset`].
#[derive(Debug)]
pub struct RTree {
    dataset: Arc<Dataset>,
    ids: Vec<u32>,
    nodes: Vec<Node>,
    root: Option<usize>,
    metric: Metric,
}

impl RTree {
    /// Bulk-load over every point of `dataset` (Euclidean metric).
    pub fn build(dataset: Arc<Dataset>) -> Self {
        Self::build_with_metric(dataset, Metric::Euclidean)
    }

    /// Bulk-load with an explicit metric.
    pub fn build_with_metric(dataset: Arc<Dataset>, metric: Metric) -> Self {
        let n = dataset.len();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        let root = if n == 0 { None } else { Some(build(&dataset, &mut ids, 0, n, &mut nodes)) };
        RTree { dataset, ids, nodes, root, metric }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Tree height (1 = a single leaf); 0 when empty.
    pub fn height(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 1,
                Node::Inner { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        self.root.map(|r| rec(&self.nodes, r)).unwrap_or(0)
    }

    fn report_all(&self, start: usize, end: usize, out: &mut Vec<PointId>) {
        out.extend(self.ids[start..end].iter().map(|&i| PointId(i)));
    }

    fn query_rec(&self, at: usize, query: &[f64], thr: f64, out: &mut Vec<PointId>) {
        let node = &self.nodes[at];
        let aabb = node.aabb();
        if aabb.min_reduced_distance(query, self.metric) > thr {
            return; // entirely outside the ball
        }
        if aabb.max_reduced_distance(query, self.metric) <= thr {
            // entirely inside: report wholesale, no per-point tests
            let (s, e) = node.span();
            self.report_all(s, e, out);
            return;
        }
        match node {
            Node::Leaf { start, end, .. } => {
                for &i in &self.ids[*start..*end] {
                    if self.metric.reduced_distance(query, self.dataset.row(i as usize)) <= thr {
                        out.push(PointId(i));
                    }
                }
            }
            Node::Inner { left, right, .. } => {
                self.query_rec(*left, query, thr, out);
                self.query_rec(*right, query, thr, out);
            }
        }
    }
}

fn bounding(ds: &Dataset, ids: &[u32]) -> Aabb {
    let dim = ds.dim();
    let mut lo = ds.row(ids[0] as usize).to_vec();
    let mut hi = lo.clone();
    for &i in &ids[1..] {
        for (k, &v) in ds.row(i as usize).iter().enumerate() {
            if v < lo[k] {
                lo[k] = v;
            }
            if v > hi[k] {
                hi[k] = v;
            }
        }
    }
    let _ = dim;
    Aabb::new(lo, hi)
}

/// Recursive packed build over `ids[start..end]`; returns the node id.
fn build(ds: &Dataset, ids: &mut [u32], start: usize, end: usize, nodes: &mut Vec<Node>) -> usize {
    let slice = &ids[start..end];
    let aabb = bounding(ds, slice);
    if end - start <= LEAF_CAPACITY {
        nodes.push(Node::Leaf { aabb, start, end });
        return nodes.len() - 1;
    }
    // split at the median of the widest axis
    let axis = (0..ds.dim())
        .max_by(|&a, &b| {
            let wa = aabb.hi()[a] - aabb.lo()[a];
            let wb = aabb.hi()[b] - aabb.lo()[b];
            wa.partial_cmp(&wb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let mid = (end - start) / 2;
    ids[start..end].select_nth_unstable_by(mid, |&a, &b| {
        let va = ds.row(a as usize)[axis];
        let vb = ds.row(b as usize)[axis];
        va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let left = build(ds, ids, start, start + mid, nodes);
    let right = build(ds, ids, start + mid, end, nodes);
    nodes.push(Node::Inner { aabb, left, right, start, end });
    nodes.len() - 1
}

impl SpatialIndex for RTree {
    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn range_into(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        debug_assert_eq!(query.len(), self.dataset.dim());
        if let Some(root) = self.root {
            self.query_rec(root, query, self.metric.threshold(eps), out);
        }
    }

    fn name(&self) -> &'static str {
        "packed-rtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;

    fn grid() -> Arc<Dataset> {
        let rows = (0..9).flat_map(|x| (0..9).map(move |y| vec![x as f64, y as f64])).collect();
        Arc::new(Dataset::from_rows(rows))
    }

    fn sorted(mut v: Vec<PointId>) -> Vec<PointId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let t = RTree::build(Arc::new(Dataset::empty(3)));
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.range(&[0.0, 0.0, 0.0], 5.0).is_empty());
    }

    #[test]
    fn matches_brute_force() {
        let ds = grid();
        let t = RTree::build(ds.clone());
        let bf = BruteForceIndex::new(ds.clone());
        for eps in [0.0, 0.5, 1.0, 2.5, 6.0, 20.0] {
            for (_, row) in ds.iter().step_by(7) {
                assert_eq!(sorted(t.range(row, eps)), sorted(bf.range(row, eps)), "eps={eps}");
            }
        }
    }

    #[test]
    fn wholesale_report_covers_everything_at_huge_eps() {
        let ds = grid();
        let t = RTree::build(ds.clone());
        let r = t.range(&[4.0, 4.0], 1000.0);
        assert_eq!(r.len(), 81);
    }

    #[test]
    fn height_is_logarithmic() {
        let rows = (0..4096).map(|i| vec![(i % 64) as f64, (i / 64) as f64]).collect();
        let t = RTree::build(Arc::new(Dataset::from_rows(rows)));
        // 4096 / 16 = 256 leaves -> height ~ 1 + log2(256) = 9
        assert!(t.height() <= 10, "height {}", t.height());
        assert_eq!(t.len(), 4096);
    }

    #[test]
    fn single_leaf_dataset() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]));
        let t = RTree::build(ds);
        assert_eq!(t.height(), 1);
        assert_eq!(t.range(&[2.0], 1.0).len(), 3);
    }

    #[test]
    fn manhattan_metric() {
        let ds = grid();
        let t = RTree::build_with_metric(ds.clone(), Metric::Manhattan);
        let bf = BruteForceIndex::with_metric(ds, Metric::Manhattan);
        for eps in [1.0, 2.0, 3.5] {
            assert_eq!(sorted(t.range(&[4.0, 4.0], eps)), sorted(bf.range(&[4.0, 4.0], eps)));
        }
    }

    #[test]
    fn duplicates_reported_each() {
        let ds = Arc::new(Dataset::from_rows(vec![vec![5.0, 5.0]; 40]));
        let t = RTree::build(ds);
        assert_eq!(t.range(&[5.0, 5.0], 0.0).len(), 40);
    }
}
