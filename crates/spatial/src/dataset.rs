//! The shared point matrix.
//!
//! In the paper, the driver reads the input from HDFS, turns it into RDDs
//! of `Point`, and *broadcasts* the full dataset (together with the
//! kd-tree) to every executor so each can compute exact eps-neighborhoods
//! locally. `Dataset` is that broadcastable value: a dense row-major
//! `n x d` matrix behind an `Arc` so broadcasting is a refcount bump in
//! our in-process cluster while the engine still accounts its logical
//! size in bytes.

use crate::point::PointId;
use serde::{Deserialize, Serialize};

/// A dense, row-major collection of `n` points in `d` dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    coords: Vec<f64>,
}

impl Dataset {
    /// Create a dataset from a flat row-major coordinate buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `coords.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, coords: Vec<f64>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            coords.len().is_multiple_of(dim),
            "coordinate buffer length {} is not a multiple of dim {}",
            coords.len(),
            dim
        );
        Dataset { dim, coords }
    }

    /// Create a dataset from per-point rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty with no
    /// way to infer a dimension (use [`Dataset::empty`] instead).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "use Dataset::empty(dim) for empty data");
        let dim = rows[0].len();
        assert!(dim > 0, "points must have at least one coordinate");
        let mut coords = Vec::with_capacity(rows.len() * dim);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), dim, "row {i} has dimension {} != {dim}", r.len());
            coords.extend_from_slice(r);
        }
        Dataset { dim, coords }
    }

    /// An empty dataset of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Dataset { dim, coords: Vec::new() }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Whether the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of point `id`.
    #[inline]
    pub fn point(&self, id: PointId) -> &[f64] {
        let i = id.idx();
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Coordinates of the point at raw index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw coordinate buffer (row-major).
    #[inline]
    pub fn flat(&self) -> &[f64] {
        &self.coords
    }

    /// Iterator over `(PointId, coords)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PointId, &[f64])> {
        self.coords.chunks_exact(self.dim).enumerate().map(|(i, c)| (PointId(i as u32), c))
    }

    /// All point ids, in index order.
    pub fn ids(&self) -> impl Iterator<Item = PointId> {
        (0..self.len() as u32).map(PointId)
    }

    /// Append one point, returning its new id.
    ///
    /// # Panics
    /// Panics if `coords.len() != self.dim()`.
    pub fn push(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.dim, "pushed point has wrong dimension");
        let id = PointId(self.len() as u32);
        self.coords.extend_from_slice(coords);
        id
    }

    /// Logical size in bytes (what a real cluster would ship when
    /// broadcasting this dataset).
    pub fn size_bytes(&self) -> usize {
        self.coords.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Self>()
    }

    /// Axis-aligned bounding box of all points, or `None` when empty.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = self.row(0).to_vec();
        let mut hi = lo.clone();
        for r in self.coords.chunks_exact(self.dim).skip(1) {
            for (k, &v) in r.iter().enumerate() {
                if v < lo[k] {
                    lo[k] = v;
                }
                if v > hi[k] {
                    hi[k] = v;
                }
            }
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 2.0], vec![-3.0, 4.0]])
    }

    #[test]
    fn from_rows_basic_accessors() {
        let ds = small();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.point(PointId(1)), &[1.0, 2.0]);
        assert_eq!(ds.row(2), &[-3.0, 4.0]);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = Dataset::from_flat(2, vec![0.0, 0.0, 1.0, 2.0, -3.0, 4.0]);
        assert_eq!(a, small());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged_buffer() {
        let _ = Dataset::from_flat(2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn from_rows_rejects_ragged_rows() {
        let _ = Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::empty(5);
        assert_eq!(ds.len(), 0);
        assert!(ds.is_empty());
        assert_eq!(ds.dim(), 5);
        assert!(ds.bounds().is_none());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = small();
        let ids: Vec<u32> = ds.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let ids2: Vec<PointId> = ds.ids().collect();
        assert_eq!(ids2.len(), 3);
    }

    #[test]
    fn push_appends_and_returns_id() {
        let mut ds = small();
        let id = ds.push(&[9.0, 9.0]);
        assert_eq!(id, PointId(3));
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.point(id), &[9.0, 9.0]);
    }

    #[test]
    fn bounds_cover_all_points() {
        let ds = small();
        let (lo, hi) = ds.bounds().unwrap();
        assert_eq!(lo, vec![-3.0, 0.0]);
        assert_eq!(hi, vec![1.0, 4.0]);
    }

    #[test]
    fn size_bytes_scales_with_points() {
        let ds = small();
        assert!(ds.size_bytes() >= 6 * 8);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = small();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
