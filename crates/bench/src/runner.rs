//! Experiment runners shared by the figure binaries.
//!
//! All multi-core numbers use the virtual-cluster time model: the run
//! executes with `p` partitions (so the *algorithm* — partial cluster
//! counts, SEEDs, merge work — is exactly what `p` cores would produce),
//! every task's busy time is measured for real, and the makespan on `p`
//! executors is computed by LPT scheduling. Because the paper's design
//! has zero executor↔executor communication, this makespan *is* the
//! parallel executor time (see DESIGN.md, Substitutions).

use dbscan_core::{DbscanParams, MrDbscanIterative, SparkDbscan, SparkDbscanResult};
use dbscan_datagen::DatasetSpec;
use dbscan_spatial::{Dataset, PruneConfig};
use serde::Serialize;
use sparklet::{lpt_makespan, ClusterConfig, Context};
use std::sync::Arc;
use std::time::Duration;

/// Extra knobs the paper applies on large datasets.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Cap each kd-tree neighborhood query ("pruning branches", r1m).
    pub prune_cap: Option<usize>,
    /// Drop partial clusters smaller than this before merging (r1m).
    pub min_partial_size: Option<usize>,
}

impl RunOptions {
    /// The paper's r1m configuration: "kd-tree with pruning branches"
    /// (we cap each neighbourhood) plus the small-partial-cluster
    /// filter.
    ///
    /// The cap must stay *above* the locality threshold: with globally
    /// shuffled indices, a partition owns `n/p` of the index space, so a
    /// capped neighbour list of size `c` contains about `c/p` own
    /// points — expansion starves (everything degenerates to singleton
    /// partials) once `c/p` drops below ~2. 4096 keeps `c/p ≥ 8` at
    /// p = 512 while still truncating the multi-thousand-neighbour
    /// tails inside dense cluster cores.
    pub fn r1m() -> Self {
        RunOptions { prune_cap: Some(4096), min_partial_size: Some(4) }
    }
}

fn configure(params: DbscanParams, p: usize, opts: RunOptions) -> SparkDbscan {
    let mut alg = SparkDbscan::new(params).partitions(p);
    if let Some(cap) = opts.prune_cap {
        alg = alg.prune(PruneConfig::cap_neighbors(cap));
    }
    if let Some(min) = opts.min_partial_size {
        alg = alg.min_partial_size(min);
    }
    alg
}

/// One Spark-DBSCAN run at `p` virtual cores.
pub fn run_spark_at(
    data: &Arc<Dataset>,
    params: DbscanParams,
    p: usize,
    opts: RunOptions,
) -> SparkDbscanResult {
    let ctx = Context::new(ClusterConfig::virtual_cluster(p));
    configure(params, p, opts).run(&ctx, Arc::clone(data))
}

/// Driver-side time of a run: kd-tree build + merge (what Fig. 6 calls
/// "time spent in driver").
pub fn driver_time(r: &SparkDbscanResult) -> Duration {
    r.timings.kdtree_build + r.timings.merge
}

/// Simulated executor time of a run on `p` cores.
pub fn executor_time(r: &SparkDbscanResult, p: usize) -> Duration {
    r.job.simulated_executor_time(p)
}

// ---------------------------------------------------------------- fig 5

/// One row of the Fig. 5 bar chart.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Dataset name.
    pub dataset: String,
    /// Number of points.
    pub n: usize,
    /// kd-tree construction time.
    pub kdtree: Duration,
    /// Whole DBSCAN time (8 partitions, as in the paper's note).
    pub whole: Duration,
    /// kd-tree time / whole time, in 1/1000 (the paper's y-axis).
    pub per_mille: f64,
}

/// Measure the Fig. 5 ratio for one dataset (8 partitions).
pub fn fig5_row(name: &str, spec: &DatasetSpec, opts: RunOptions) -> Fig5Row {
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    let r = run_spark_at(&data, params, 8, opts);
    let whole = r.timings.kdtree_build + executor_time(&r, 8) + r.timings.merge;
    Fig5Row {
        dataset: name.to_string(),
        n: data.len(),
        kdtree: r.timings.kdtree_build,
        whole,
        per_mille: r.timings.kdtree_build.as_secs_f64() / whole.as_secs_f64() * 1000.0,
    }
}

// ---------------------------------------------------------------- fig 6

/// One x-position of a Fig. 6 panel.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Point {
    /// Core count (= partition count).
    pub cores: usize,
    /// Partial clusters collected in the driver (the top annotation).
    pub partial_clusters: usize,
    /// Time spent in driver (kd-tree build + merge).
    pub driver: Duration,
    /// Time spent in executors (simulated makespan on `cores`).
    pub executors: Duration,
}

/// The driver/executor time split across core counts (one Fig. 6 panel).
pub fn fig6_series(spec: &DatasetSpec, cores: &[usize], opts: RunOptions) -> Vec<Fig6Point> {
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    cores
        .iter()
        .map(|&p| {
            let r = run_spark_at(&data, params, p, opts);
            Fig6Point {
                cores: p,
                partial_clusters: r.num_partial_clusters,
                driver: driver_time(&r),
                executors: executor_time(&r, p),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 7

/// One x-position of Fig. 7 (MapReduce vs Spark).
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Point {
    /// Core count.
    pub cores: usize,
    /// Spark-style total time (simulated at `cores`).
    pub spark: Duration,
    /// Iterative MapReduce total time (simulated at `cores`).
    pub mapreduce: Duration,
    /// Label-propagation rounds the MapReduce run needed.
    pub mr_rounds: usize,
    /// `mapreduce / spark` — the paper reports 9–16x.
    pub ratio: f64,
}

/// MapReduce vs Spark across core counts (Fig. 7; the paper uses 10k
/// points). The MapReduce side is the *iterative* label-propagation
/// formulation of the published MapReduce DBSCANs the paper cites: each
/// round serializes the full point state (labels + adjacency) to disk
/// and reads it back — the data path the paper blames for the gap.
pub fn fig7_series(spec: &DatasetSpec, cores: &[usize]) -> Vec<Fig7Point> {
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    cores
        .iter()
        .map(|&p| {
            let spark_run = run_spark_at(&data, params, p, RunOptions::default());
            let spark = spark_run.timings.kdtree_build
                + executor_time(&spark_run, p)
                + spark_run.timings.merge;

            let mr_run =
                MrDbscanIterative::new(params, p).run(Arc::clone(&data), 1).expect("mapreduce run");
            // per-round makespans: map and reduce phases are barriers,
            // so simulate each phase's tasks on `p` slots
            let mapreduce = mr_run.setup
                + lpt_makespan(mr_run.map_task_times.iter().copied(), p)
                + lpt_makespan(mr_run.reduce_task_times.iter().copied(), p);
            Fig7Point {
                cores: p,
                spark,
                mapreduce,
                mr_rounds: mr_run.rounds,
                ratio: mapreduce.as_secs_f64() / spark.as_secs_f64().max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- fig 8

/// One x-position of a Fig. 8 speedup curve.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Point {
    /// Core count.
    pub cores: usize,
    /// Speedup counting executor computation only (left column).
    pub speedup_executor: f64,
    /// Speedup counting executors + driver (right column).
    pub speedup_total: f64,
    /// Partial clusters at this core count.
    pub partial_clusters: usize,
}

/// A full Fig. 8 speedup curve for one dataset: baseline is the same
/// algorithm at 1 partition on 1 core.
pub fn fig8_series(spec: &DatasetSpec, cores: &[usize], opts: RunOptions) -> Vec<Fig8Point> {
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");

    let base = run_spark_at(&data, params, 1, opts);
    let t1_exec = executor_time(&base, 1);
    let t1_total = t1_exec + driver_time(&base);

    cores
        .iter()
        .map(|&p| {
            let r = run_spark_at(&data, params, p, opts);
            let exec = executor_time(&r, p);
            let total = exec + driver_time(&r);
            Fig8Point {
                cores: p,
                speedup_executor: t1_exec.as_secs_f64() / exec.as_secs_f64().max(1e-12),
                speedup_total: t1_total.as_secs_f64() / total.as_secs_f64().max(1e-12),
                partial_clusters: r.num_partial_clusters,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_datagen::StandardDataset;

    fn tiny() -> DatasetSpec {
        StandardDataset::C10k.scaled_spec(32)
    }

    // Note on tolerances: these tests measure real wall time on whatever
    // CI machine runs them, possibly while other tests hog the only
    // core, so the structural assertions allow generous timing slack —
    // the precise curves are the figure binaries' job, run in isolation.

    #[test]
    fn fig5_row_produces_sane_ratio() {
        let row = fig5_row("c10k", &tiny(), RunOptions::default());
        assert!(row.per_mille > 0.0);
        assert!(row.per_mille < 1000.0);
        assert!(row.whole >= row.kdtree);
    }

    #[test]
    fn fig6_partial_clusters_grow_with_cores() {
        let pts = fig6_series(&tiny(), &[1, 4], RunOptions::default());
        assert_eq!(pts.len(), 2);
        assert!(pts[1].partial_clusters >= pts[0].partial_clusters);
        // 4 cores must not be dramatically slower than 1 (noise-tolerant)
        assert!(
            pts[1].executors <= pts[0].executors * 2,
            "4-core makespan {:?} vs 1-core {:?}",
            pts[1].executors,
            pts[0].executors
        );
    }

    #[test]
    fn fig7_mapreduce_is_slower() {
        let pts = fig7_series(&tiny(), &[2]);
        assert!(pts[0].ratio > 1.0, "MapReduce must pay its disk toll (ratio {})", pts[0].ratio);
    }

    #[test]
    fn fig8_speedup_increases_with_cores() {
        let pts = fig8_series(&tiny(), &[2, 8], RunOptions::default());
        assert!(
            pts[1].speedup_executor > pts[0].speedup_executor * 0.5,
            "8-core speedup {} collapsed vs 2-core {}",
            pts[1].speedup_executor,
            pts[0].speedup_executor
        );
        assert!(pts[1].speedup_executor > 1.0);
        assert!(
            pts[1].speedup_total <= pts[1].speedup_executor * 1.1,
            "driver time can only reduce total speedup"
        );
    }
}
