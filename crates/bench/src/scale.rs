//! Scale presets for the experiment binaries.
//!
//! `--scale paper` regenerates the figures at the paper's exact dataset
//! sizes (minutes of CPU for r1m); `small`/`medium` shrink each dataset
//! by a constant factor for quick runs and CI. The *code path* is
//! identical at every scale.

use dbscan_datagen::{DatasetSpec, StandardDataset};

/// How big the workloads are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 1/64 of the paper's sizes (seconds).
    Small,
    /// 1/8 of the paper's sizes.
    Medium,
    /// The paper's exact sizes (Table I).
    Paper,
}

impl Scale {
    /// Parse a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Shrink factor relative to the paper's sizes.
    pub fn factor(self) -> usize {
        match self {
            Scale::Small => 64,
            Scale::Medium => 8,
            Scale::Paper => 1,
        }
    }

    /// The spec of a standard dataset at this scale.
    pub fn spec(self, ds: StandardDataset) -> DatasetSpec {
        ds.scaled_spec(self.factor())
    }

    /// Parse `--scale <x>` out of an argument list, defaulting to
    /// `Small`. Returns the scale and the remaining args.
    pub fn from_args(args: &[String]) -> (Scale, Vec<String>) {
        let mut rest = Vec::new();
        let mut scale = Scale::Small;
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--scale" && i + 1 < args.len() {
                scale = Scale::parse(&args[i + 1]).unwrap_or_else(|| {
                    eprintln!("unknown scale {:?}, using small", args[i + 1]);
                    Scale::Small
                });
                i += 2;
            } else {
                rest.push(args[i].clone());
                i += 1;
            }
        }
        (scale, rest)
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Small => write!(f, "small (1/64)"),
            Scale::Medium => write!(f, "medium (1/8)"),
            Scale::Paper => write!(f, "paper (full)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_known_scales() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_is_exact() {
        let s = Scale::Paper.spec(StandardDataset::R1m);
        assert_eq!(s.params.n, 1_024_000);
    }

    #[test]
    fn small_scale_shrinks() {
        let s = Scale::Small.spec(StandardDataset::C10k);
        assert!(s.params.n <= 10_000 / 32);
    }

    #[test]
    fn from_args_extracts_scale() {
        let args = vec!["--dataset".into(), "r10k".into(), "--scale".into(), "medium".into()];
        let (scale, rest) = Scale::from_args(&args);
        assert_eq!(scale, Scale::Medium);
        assert_eq!(rest, vec!["--dataset".to_string(), "r10k".to_string()]);
    }
}
