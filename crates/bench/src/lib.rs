//! # dbscan-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section V),
//! plus ablations; this library holds the shared plumbing: scale
//! presets, experiment runners, speedup math, table rendering, and JSON
//! result persistence for EXPERIMENTS.md.
//!
//! | Binary      | Reproduces |
//! |-------------|------------|
//! | `table1`    | Table I (dataset properties) |
//! | `fig5`      | kd-tree build time as ‰ of whole DBSCAN |
//! | `fig6`      | driver vs executor time + #partial clusters |
//! | `fig7`      | MapReduce vs Spark wall time |
//! | `fig8`      | speedup curves (executor-only and total) |
//! | `ablation`  | seed policy x merge strategy, shuffle strawman, index choice |
//! | `all_experiments` | everything above, JSON + markdown to `results/` |

pub mod report;
pub mod runner;
pub mod scale;

pub use report::{fmt_duration, markdown_table, write_json};
pub use runner::{
    driver_time, executor_time, fig5_row, fig6_series, fig7_series, fig8_series, run_spark_at,
    Fig5Row, Fig6Point, Fig7Point, Fig8Point, RunOptions,
};
pub use scale::Scale;
