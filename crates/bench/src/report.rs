//! Report rendering: markdown tables and JSON persistence.

use std::path::Path;
use std::time::Duration;

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Human-readable duration with sensible units.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Persist a serializable result under `results/<name>.json` (creating
/// the directory), so EXPERIMENTS.md can reference raw numbers.
pub fn write_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let text = serde_json::to_string_pretty(value)?;
    std::fs::write(&path, text)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_header_separator_and_rows() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("| a |"));
        assert!(lines[1].contains("---|---"));
        assert!(lines[2].contains("| 1 | 2 |"));
    }

    #[test]
    fn durations_format_with_units() {
        assert_eq!(fmt_duration(Duration::from_secs(200)), "200 s");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert!(fmt_duration(Duration::from_micros(3)).contains("µs"));
    }

    #[test]
    fn write_json_creates_file() {
        let dir = std::env::temp_dir().join(format!("bench-report-{}", std::process::id()));
        write_json(&dir, "x", &serde_json::json!({"k": 1})).unwrap();
        let text = std::fs::read_to_string(dir.join("x.json")).unwrap();
        assert!(text.contains("\"k\": 1"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
