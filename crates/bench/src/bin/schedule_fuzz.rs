//! Schedule-exploration campaign — CI's interleaving fuzzer.
//!
//! Drives [`Explorer`] over many seeded schedules of a full
//! [`SparkDbscan`] job (via [`DbscanExploreJob`]) under several fault
//! plans, checking every run against the invariant-oracle set. Any
//! violation writes the shrunk replay token to `<out_dir>/failing_token.txt`
//! (CI uploads it as an artifact) and exits non-zero. A JSON summary
//! with throughput lands in `<out_dir>/schedule_fuzz.json`.
//!
//! `--mutate` runs the harness self-check instead: a deliberately
//! order-sensitive job (its fingerprint folds accumulator arrival
//! order unsorted — exactly the bug class the explorer exists to
//! catch) must be caught by the `label-identity` oracle and shrunk to
//! a replay token of at most 20 decisions. Exit is non-zero when the
//! planted bug is *missed*, so CI also guards the detector itself.
//!
//! `--speculate` enables speculative execution on every plan's base
//! config: the explorer eagerly clones a deterministic quarter of
//! submissions and lets each schedule pick which twin commits, so the
//! campaign also fuzzes the first-commit-wins protocol.
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin schedule_fuzz -- \
//!       [schedules] [out_dir] [--mutate] [--speculate]

use dbscan_core::{DbscanExploreJob, DbscanParams};
use dbscan_datagen::StandardDataset;
use sparklet::{
    ClusterConfig, Context, ExecutorKillAt, Explorer, FaultPlan, FaultRule, JobArtifacts,
    SparkResult, SpeculationConfig,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const PARTITIONS: usize = 4;

fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "task-failures",
            FaultPlan::none()
                .with_task_failures(FaultRule::with_prob(1.0, 2))
                .with_stragglers(FaultRule::with_prob(0.3, 1), 2),
        ),
        (
            "executor-kill",
            FaultPlan::none()
                .with_task_failures(FaultRule::with_prob(0.3, 1))
                .with_executor_kill(ExecutorKillAt { stage: 1, executor: 0, after_tasks: 1 })
                .with_executor_kill(ExecutorKillAt { stage: 3, executor: 1, after_tasks: 1 }),
        ),
    ]
}

fn campaign_job() -> DbscanExploreJob {
    let mut spec = StandardDataset::C10k.scaled_spec(32);
    spec.params.seed = 1000;
    let (data, _) = spec.generate();
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    DbscanExploreJob::new(Arc::new(data), params, PARTITIONS)
}

fn cluster_with(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig::local(PARTITIONS).with_fault(plan).with_max_attempts(6)
}

/// Explore `schedules` seeds split evenly across the fault plans.
/// Returns the number of violations (0 or 1 per plan — exploration
/// stops at the first).
fn run_campaign(schedules: usize, out_dir: &Path, speculate: bool) -> usize {
    let job = campaign_job();
    let plans = plans();
    let per_plan = schedules.div_ceil(plans.len());
    let mut violations = 0usize;
    let mut explored = 0usize;
    let t0 = Instant::now();

    for (i, (name, plan)) in plans.into_iter().enumerate() {
        let mut cfg = cluster_with(plan);
        if speculate {
            cfg = cfg.with_speculation(SpeculationConfig::on());
        }
        let explorer =
            Explorer::new(cfg).with_schedules(per_plan).with_seed0((i * per_plan) as u64);
        let report = match explorer.explore(&job) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("FAIL schedule_fuzz[{name}]: baseline schedule errored: {e}");
                violations += 1;
                continue;
            }
        };
        explored += report.schedules_run;
        match report.violation {
            None => println!("ok   schedule_fuzz[{name}]: {} schedules clean", per_plan),
            Some(v) => {
                std::fs::create_dir_all(out_dir).expect("create out dir");
                let token_file = out_dir.join("failing_token.txt");
                std::fs::write(&token_file, format!("plan={name}\n{}\n", v.report()))
                    .expect("write failing token");
                eprintln!("FAIL schedule_fuzz[{name}]:\n{}", v.report());
                eprintln!("token written to {}", token_file.display());
                violations += 1;
            }
        }
    }

    let elapsed = t0.elapsed();
    let rate = explored as f64 / elapsed.as_secs_f64().max(1e-9);
    std::fs::create_dir_all(out_dir).expect("create out dir");
    let summary = format!(
        "{{\n  \"schedules\": {explored},\n  \"violations\": {violations},\n  \
         \"elapsed_secs\": {:.3},\n  \"schedules_per_sec\": {rate:.2}\n}}\n",
        elapsed.as_secs_f64()
    );
    std::fs::write(out_dir.join("schedule_fuzz.json"), &summary).expect("write summary");
    println!(
        "schedule_fuzz: {explored} schedules, {violations} violations, {rate:.1} schedules/sec"
    );
    violations
}

/// The planted bug: fingerprint folds collection-accumulator arrival
/// order unsorted, so it depends on which replies the driver processes
/// first.
fn planted_bug_job(ctx: &Context) -> SparkResult<JobArtifacts> {
    let arrivals = ctx.collection_accumulator::<u64>();
    ctx.range(0, 8, 8).foreach_partition({
        let arrivals = arrivals.clone();
        move |p, _| arrivals.add(p as u64)
    })?;
    Ok(JobArtifacts {
        fingerprint: arrivals.value().iter().flat_map(|x| x.to_le_bytes()).collect(),
        merge_once: Vec::new(),
    })
}

/// Detector self-check: the planted ordering bug must be caught and
/// shrunk to a short token. Returns the number of failures.
fn run_mutation_check(schedules: usize, out_dir: &Path) -> usize {
    let explorer = Explorer::new(ClusterConfig::local(PARTITIONS)).with_schedules(schedules);
    let report = match explorer.explore(&planted_bug_job) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL schedule_fuzz[mutate]: baseline errored: {e}");
            return 1;
        }
    };
    match report.violation {
        None => {
            eprintln!(
                "FAIL schedule_fuzz[mutate]: planted ordering bug NOT caught in {} schedules",
                report.schedules_run
            );
            1
        }
        Some(v) => {
            let ok_oracle = v.oracle == "label-identity";
            let ok_len = v.shrunk.decisions() <= 20;
            std::fs::create_dir_all(out_dir).expect("create out dir");
            std::fs::write(out_dir.join("mutation_token.txt"), format!("{}\n", v.report()))
                .expect("write mutation token");
            println!(
                "schedule_fuzz[mutate]: caught by {} after {} schedules; token {} ({} decisions, \
                 {} probes)",
                v.oracle,
                report.schedules_run,
                v.shrunk,
                v.shrunk.decisions(),
                v.probes
            );
            if !ok_oracle {
                eprintln!("FAIL schedule_fuzz[mutate]: wrong oracle {}", v.oracle);
            }
            if !ok_len {
                eprintln!(
                    "FAIL schedule_fuzz[mutate]: shrunk token too long ({} decisions)",
                    v.shrunk.decisions()
                );
            }
            usize::from(!ok_oracle) + usize::from(!ok_len)
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mutate = args.iter().any(|a| a == "--mutate");
    let speculate = args.iter().any(|a| a == "--speculate");
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let schedules: usize =
        positional.first().map(|s| s.parse().expect("schedules must be an integer")).unwrap_or(256);
    let out_dir = positional.get(1).map(|s| s.as_str()).unwrap_or("results");
    let out_dir = Path::new(out_dir);

    let failures = if mutate {
        run_mutation_check(schedules.min(64), out_dir)
    } else {
        run_campaign(schedules, out_dir, speculate)
    };
    if failures > 0 {
        std::process::exit(1);
    }
}
