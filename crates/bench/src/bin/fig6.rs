//! Reproduce Figure 6: time spent in the driver vs in the executors,
//! with the number of partial clusters, as the core count grows.
//!
//! Panels: (a) r10k 1–8 cores, (b) r1m 64–512 cores (pruned kd-tree +
//! small-cluster filter), (c) c100k 4–32 cores, (d) r100k 4–32 cores.
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin fig6 -- [--dataset r10k|r1m|c100k|r100k] [--scale ...] [--trace]
//!
//! Without `--dataset`, all four panels run. With `--trace`, an
//! additional fully traced r10k run dumps a Chrome trace
//! (`results/fig6_trace.json`, loadable in `chrome://tracing` or
//! `ui.perfetto.dev`) plus an ASCII per-stage timeline to stdout.

use dbscan_bench::{fig6_series, fmt_duration, markdown_table, write_json, RunOptions, Scale};
use dbscan_core::{DbscanParams, SparkDbscan};
use dbscan_datagen::StandardDataset;
use sparklet::{ClusterConfig, Context};
use std::path::Path;
use std::sync::Arc;

fn panel(ds: StandardDataset) -> (&'static [usize], RunOptions) {
    match ds {
        StandardDataset::R10k | StandardDataset::C10k => (&[1, 2, 4, 8], RunOptions::default()),
        StandardDataset::C100k | StandardDataset::R100k => (&[4, 8, 16, 32], RunOptions::default()),
        StandardDataset::R1m => (&[64, 128, 256, 512], RunOptions::r1m()),
    }
}

fn run_panel(ds: StandardDataset, scale: Scale) {
    let spec = scale.spec(ds);
    let (cores, opts) = panel(ds);
    println!("## Fig. 6 panel: {} (scale: {scale})\n", spec.name);
    let series = fig6_series(&spec, cores, opts);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                format!("{}", p.partial_clusters),
                fmt_duration(p.driver),
                fmt_duration(p.executors),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["Cores", "Partial clusters", "Driver time", "Executor time"], &rows)
    );
    let _ = write_json(Path::new("results"), &format!("fig6_{}", spec.name), &series);
}

/// One traced r10k run: the same workload as panel (a), but through a
/// tracing-enabled local context so every stage/task/broadcast event
/// lands in the Chrome export.
fn dump_trace(scale: Scale) {
    let spec = scale.spec(StandardDataset::R10k);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    let ctx = Context::new(ClusterConfig::local(4).with_tracing());
    let r = SparkDbscan::new(params).partitions(4).run(&ctx, data);
    let trace = ctx.trace();
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/fig6_trace.json", trace.chrome_json()).expect("write trace");
    println!(
        "## Traced r10k run ({} clusters)\n\nwrote results/fig6_trace.json — open it in \
         chrome://tracing or ui.perfetto.dev\n",
        r.clustering.num_clusters()
    );
    println!("{}", trace.ascii_timeline());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, rest) = Scale::from_args(&args);
    let chosen = rest
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| rest.get(i + 1))
        .and_then(|n| StandardDataset::from_name(n));

    println!("# Figure 6: driver vs executor time distribution\n");
    if rest.iter().any(|a| a == "--trace") {
        // trace-only mode: dump the instrumented run and stop, so
        // `fig6 -- --trace` stays fast enough for a quickstart
        dump_trace(scale);
        return;
    }
    match chosen {
        Some(ds) => run_panel(ds, scale),
        None => {
            for ds in [
                StandardDataset::R10k,
                StandardDataset::R1m,
                StandardDataset::C100k,
                StandardDataset::R100k,
            ] {
                run_panel(ds, scale);
            }
        }
    }
    println!("Paper's shape: executor time falls with cores; the number of partial");
    println!("clusters and the driver (merge) time grow with cores.");
}
