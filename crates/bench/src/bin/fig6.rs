//! Reproduce Figure 6: time spent in the driver vs in the executors,
//! with the number of partial clusters, as the core count grows.
//!
//! Panels: (a) r10k 1–8 cores, (b) r1m 64–512 cores (pruned kd-tree +
//! small-cluster filter), (c) c100k 4–32 cores, (d) r100k 4–32 cores.
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin fig6 -- [--dataset r10k|r1m|c100k|r100k] [--scale ...]
//!
//! Without `--dataset`, all four panels run.

use dbscan_bench::{fig6_series, fmt_duration, markdown_table, write_json, RunOptions, Scale};
use dbscan_datagen::StandardDataset;
use std::path::Path;

fn panel(ds: StandardDataset) -> (&'static [usize], RunOptions) {
    match ds {
        StandardDataset::R10k | StandardDataset::C10k => (&[1, 2, 4, 8], RunOptions::default()),
        StandardDataset::C100k | StandardDataset::R100k => (&[4, 8, 16, 32], RunOptions::default()),
        StandardDataset::R1m => (&[64, 128, 256, 512], RunOptions::r1m()),
    }
}

fn run_panel(ds: StandardDataset, scale: Scale) {
    let spec = scale.spec(ds);
    let (cores, opts) = panel(ds);
    println!("## Fig. 6 panel: {} (scale: {scale})\n", spec.name);
    let series = fig6_series(&spec, cores, opts);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                format!("{}", p.partial_clusters),
                fmt_duration(p.driver),
                fmt_duration(p.executors),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["Cores", "Partial clusters", "Driver time", "Executor time"], &rows)
    );
    let _ = write_json(Path::new("results"), &format!("fig6_{}", spec.name), &series);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, rest) = Scale::from_args(&args);
    let chosen = rest
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| rest.get(i + 1))
        .and_then(|n| StandardDataset::from_name(n));

    println!("# Figure 6: driver vs executor time distribution\n");
    match chosen {
        Some(ds) => run_panel(ds, scale),
        None => {
            for ds in [
                StandardDataset::R10k,
                StandardDataset::R1m,
                StandardDataset::C100k,
                StandardDataset::R100k,
            ] {
                run_panel(ds, scale);
            }
        }
    }
    println!("Paper's shape: executor time falls with cores; the number of partial");
    println!("clusters and the driver (merge) time grow with cores.");
}
