//! Trace smoke test — CI's end-to-end check of the tracing subsystem.
//!
//! Runs a traced workload that touches every event category the
//! collector knows (job/stage/task, shuffle, broadcast, executor kill,
//! DFS block reads, driver phases), exports the Chrome trace, validates
//! it with [`sparklet::validate_chrome_trace`], and writes the JSON to
//! `results/trace_smoke.json` (override the directory with the first
//! CLI argument). Exits non-zero if the trace fails validation or any
//! category is missing, so CI can gate on it.
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin trace_smoke -- [out_dir]

use dbscan_core::{DbscanParams, SparkDbscan};
use dbscan_datagen::StandardDataset;
use minidfs::{DfsCluster, DfsConfig};
use sparklet::{validate_chrome_trace, ClusterConfig, Context};
use std::path::Path;
use std::sync::Arc;

const CATEGORIES: [&str; 8] =
    ["job", "stage", "task", "shuffle", "broadcast", "executor", "dfs", "phase"];

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".to_string());

    let spec = StandardDataset::R10k.spec();
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");

    let ctx = Context::new(ClusterConfig::local(4).with_tracing());

    // the paper's algorithm: job/stage/task/broadcast/phase events
    let result = SparkDbscan::new(params).partitions(4).run(&ctx, Arc::clone(&data));
    println!(
        "r10k spark run: {} clusters, {} partial clusters",
        result.clustering.num_clusters(),
        result.num_partial_clusters
    );

    // a wide job: shuffle write/read events
    let pairs: Vec<(u32, u64)> = (0..10_000u32).map(|i| (i % 64, 1)).collect();
    let counted =
        ctx.parallelize(pairs, 4).reduce_by_key(4, |a, b| a + b).collect().expect("shuffle job");
    assert_eq!(counted.len(), 64);

    // DFS-backed input: block-read events through the sink adapter
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 3, replication: 2, block_size: 1 << 12 })
            .expect("dfs cluster"),
    );
    let text: String = (0..2_000).map(|i| format!("{i}\n")).collect();
    dfs.write_file("/points.txt", text.as_bytes()).expect("dfs write");
    let lines =
        ctx.text_file(Arc::clone(&dfs), "/points.txt").expect("open").collect().expect("read");
    assert_eq!(lines.len(), 2_000);

    // fault surface: executor-kill event
    let report = ctx.kill_executor(1);
    println!("killed executor 1: {report:?}");

    let trace = ctx.trace();
    let json = trace.chrome_json();
    let summary = match validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace failed validation: {e}");
            std::process::exit(1);
        }
    };
    let mut missing = Vec::new();
    for cat in CATEGORIES {
        println!("  {:10} {:>6} events", cat, summary.count(cat));
        if summary.count(cat) == 0 {
            missing.push(cat);
        }
    }
    if !missing.is_empty() {
        eprintln!("trace is missing categories: {missing:?}");
        std::process::exit(1);
    }
    if trace.dropped() > 0 {
        println!("note: ring buffer dropped {} events", trace.dropped());
    }

    let dir = Path::new(&out_dir);
    std::fs::create_dir_all(dir).expect("create out dir");
    let path = dir.join("trace_smoke.json");
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "wrote {} ({} events, max virtual ts {})",
        path.display(),
        summary.events,
        summary.max_ts
    );
    println!("\n{}", trace.ascii_timeline());
}
