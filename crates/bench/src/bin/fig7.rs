//! Reproduce Figure 7: time used by MapReduce vs Spark on the 10k
//! dataset across 1–8 cores. The paper reports a 9–16x gap, attributed
//! to MapReduce's disk-backed intermediate data path — which our
//! `mapred` engine pays physically (serialize → spill → sort → re-read).
//!
//! Usage: `cargo run --release -p dbscan-bench --bin fig7 [--scale ...]`

use dbscan_bench::{fig7_series, fmt_duration, markdown_table, write_json, Scale};
use dbscan_datagen::StandardDataset;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, _) = Scale::from_args(&args);
    let spec = scale.spec(StandardDataset::C10k);
    println!(
        "# Figure 7: MapReduce vs Spark, {} points, d=10, eps=25, minpts=5 (scale: {scale})\n",
        spec.params.n
    );

    let series = fig7_series(&spec, &[1, 2, 4, 8]);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                fmt_duration(p.mapreduce),
                fmt_duration(p.spark),
                format!("{:.1}x", p.ratio),
            ]
        })
        .collect();
    println!("{}", markdown_table(&["Cores", "MapReduce", "Spark", "MR/Spark"], &rows));
    println!("Paper's shape: MapReduce an order of magnitude slower at every core");
    println!("count (9-16x on their testbed); both decrease with cores.");
    let _ = write_json(Path::new("results"), "fig7", &series);
}
