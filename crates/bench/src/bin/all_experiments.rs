//! Run every table/figure reproduction in sequence, writing JSON to
//! `results/` and a combined markdown report to
//! `results/EXPERIMENTS-run.md`.
//!
//! Usage: `cargo run --release -p dbscan-bench --bin all_experiments [--scale small|medium|paper]`

use dbscan_bench::{
    fig5_row, fig6_series, fig7_series, fig8_series, fmt_duration, markdown_table, write_json,
    RunOptions, Scale,
};
use dbscan_datagen::StandardDataset;
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, _) = Scale::from_args(&args);
    let results = Path::new("results");
    let mut md = String::new();
    let _ = writeln!(md, "# Experiment run (scale: {scale})\n");
    let started = std::time::Instant::now();

    // ---- Table I -----------------------------------------------------
    eprintln!("[1/5] Table I");
    let _ = writeln!(md, "## Table I\n");
    let mut rows = Vec::new();
    for ds in StandardDataset::ALL {
        let spec = scale.spec(ds);
        let (data, gt) = spec.generate();
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", data.len()),
            format!("{}", data.dim()),
            format!("{}", spec.eps),
            format!("{}", spec.min_pts),
            format!("{}", gt.num_clusters()),
        ]);
    }
    let _ = writeln!(
        md,
        "{}",
        markdown_table(&["Name", "Points", "d", "eps", "minpts", "gen. clusters"], &rows)
    );

    // ---- Fig 5 ---------------------------------------------------------
    eprintln!("[2/5] Figure 5");
    let _ = writeln!(md, "## Figure 5: kd-tree build / whole DBSCAN (1/1000)\n");
    let mut rows = Vec::new();
    let mut fig5 = Vec::new();
    for ds in StandardDataset::ALL {
        let spec = scale.spec(ds);
        let opts =
            if ds == StandardDataset::R1m { RunOptions::r1m() } else { RunOptions::default() };
        let row = fig5_row(spec.name, &spec, opts);
        rows.push(vec![row.dataset.clone(), format!("{:.3}", row.per_mille)]);
        fig5.push(row);
    }
    let _ = writeln!(md, "{}", markdown_table(&["Dataset", "ratio (1/1000)"], &rows));
    let _ = write_json(results, "fig5", &fig5);

    // ---- Fig 6 ---------------------------------------------------------
    eprintln!("[3/5] Figure 6");
    let _ = writeln!(md, "## Figure 6: driver vs executor time\n");
    let panels: [(StandardDataset, &[usize], RunOptions); 4] = [
        (StandardDataset::R10k, &[1, 2, 4, 8], RunOptions::default()),
        (StandardDataset::R1m, &[64, 128, 256, 512], RunOptions::r1m()),
        (StandardDataset::C100k, &[4, 8, 16, 32], RunOptions::default()),
        (StandardDataset::R100k, &[4, 8, 16, 32], RunOptions::default()),
    ];
    for (ds, cores, opts) in panels {
        let spec = scale.spec(ds);
        let series = fig6_series(&spec, cores, opts);
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.cores),
                    format!("{}", p.partial_clusters),
                    fmt_duration(p.driver),
                    fmt_duration(p.executors),
                ]
            })
            .collect();
        let _ = writeln!(md, "### {}\n", spec.name);
        let _ = writeln!(
            md,
            "{}",
            markdown_table(&["Cores", "Partials", "Driver", "Executors"], &rows)
        );
        let _ = write_json(results, &format!("fig6_{}", spec.name), &series);
    }

    // ---- Fig 7 ---------------------------------------------------------
    eprintln!("[4/5] Figure 7");
    let _ = writeln!(md, "## Figure 7: MapReduce vs Spark (10k)\n");
    let spec = scale.spec(StandardDataset::C10k);
    let series = fig7_series(&spec, &[1, 2, 4, 8]);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                fmt_duration(p.mapreduce),
                fmt_duration(p.spark),
                format!("{:.1}x", p.ratio),
            ]
        })
        .collect();
    let _ = writeln!(md, "{}", markdown_table(&["Cores", "MapReduce", "Spark", "MR/Spark"], &rows));
    let _ = write_json(results, "fig7", &series);

    // ---- Fig 8 ---------------------------------------------------------
    eprintln!("[5/5] Figure 8");
    let _ = writeln!(md, "## Figure 8: speedups\n");
    let panels: [(StandardDataset, &[usize], RunOptions); 5] = [
        (StandardDataset::C10k, &[2, 4, 8], RunOptions::default()),
        (StandardDataset::R10k, &[2, 4, 8], RunOptions::default()),
        (StandardDataset::C100k, &[4, 8, 16, 32], RunOptions::default()),
        (StandardDataset::R100k, &[4, 8, 16, 32], RunOptions::default()),
        (StandardDataset::R1m, &[64, 128, 256, 512], RunOptions::r1m()),
    ];
    for (ds, cores, opts) in panels {
        let spec = scale.spec(ds);
        let series = fig8_series(&spec, cores, opts);
        let rows: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.cores),
                    format!("{:.2}", p.speedup_executor),
                    format!("{:.2}", p.speedup_total),
                    format!("{}", p.partial_clusters),
                ]
            })
            .collect();
        let _ = writeln!(md, "### {}\n", spec.name);
        let _ = writeln!(
            md,
            "{}",
            markdown_table(&["Cores", "Speedup (exec)", "Speedup (total)", "Partials"], &rows)
        );
        let _ = write_json(results, &format!("fig8_{}", spec.name), &series);
    }

    let _ = writeln!(md, "\nTotal harness time: {}", fmt_duration(started.elapsed()));
    std::fs::create_dir_all(results).expect("results dir");
    std::fs::write(results.join("EXPERIMENTS-run.md"), &md).expect("write report");
    println!("{md}");
    eprintln!("report written to results/EXPERIMENTS-run.md");
}
