//! PR4 perf suite: cost-balanced partition planning and the
//! dimension-specialized query kernels, measured head to head.
//!
//! Two experiments, both deterministic in the seed:
//!
//! 1. **Partitioning** — a skewed workload (Gaussian hotspot emitted as
//!    the index prefix, uniform background after it) is clustered with
//!    `Balance::Count` (the paper's equal-count split) and
//!    `Balance::Cost` (the eps-grid cost planner). For each arm the
//!    suite records wall clock, the executor stage's max/mean task-time
//!    ratio, and the deterministic work imbalance from per-partition
//!    `neighbors_found`. The two clusterings must be byte-identical —
//!    the planner only moves cuts, never labels — and the suite exits
//!    non-zero if they are not.
//! 2. **Kernels** — `scan_block` (dispatching to the monomorphized
//!    `D = 2/3/4` kernels) against `scan_block_generic` on the same
//!    block, reported as queries/sec per dimension, with the generic
//!    fallback dim included as the control.
//!
//! Results land in `<out_dir>/BENCH_PR4.json` for EXPERIMENTS.md and
//! the CI artifact.
//!
//! 3. **Driver phases (PR 6)** — the serial driver fraction: the
//!    kd-tree bulk-build and the Algorithm-4 merge are run once at one
//!    worker, their per-shard/per-phase wall times are replayed through
//!    the LPT fork-join model at 1/2/4/8 workers, and the parallel
//!    implementations are checked byte-identical against the
//!    sequential ones. (The CI host has a single core, so — exactly
//!    like the PR4 `simulated_makespan_ms` — real multi-thread wall
//!    clock would only measure contention; the model is fed by
//!    measured chunk times.) Results land in `<out_dir>/BENCH_PR6.json`
//!    and the suite exits non-zero on any identity violation.
//!
//! 4. **Memory budget (PR 7)** — the n=100k partitioned run, unbounded
//!    and then again with a per-executor budget of 25% of the unbounded
//!    accounted peak. The budgeted run must *spill, not fail*: labels
//!    byte-identical, event trace byte-identical modulo the zero-tick
//!    `MemoryAction` events, accounted peak within the budget, and
//!    spilled bytes nonzero. Results land in `<out_dir>/BENCH_PR7.json`
//!    and the suite exits non-zero on any violation.
//!
//! 5. **Data layout & batching (PR 9)** — leaf-scan kernel throughput:
//!    the dimension-major SoA lane kernel against the row-major scalar
//!    scan over the same bucketed tree's leaves at `d = 2..=6`
//!    (acceptance: >= 1.5x at d in {2,3,4}), plus an end-to-end
//!    identity matrix (scalar / lanes / batched / count-fast-path at
//!    1, 2 and 8 worker threads) whose labels — and traces, modulo the
//!    zero-tick `TaskKernel` events for the fast path — must be
//!    byte-identical to the scalar reference. Results land in
//!    `<out_dir>/BENCH_PR9.json`; the suite exits non-zero on any
//!    identity violation or a missed throughput floor.
//!
//! 6. **Speculative execution (PR 10)** — the straggler tail: one
//!    traced run with simulated stragglers (`prob = 0.3`,
//!    `slowdown = 8`) is replayed through the makespan model with and
//!    without the speculation policy (acceptance: >= 2x tail-stage
//!    reduction at `multiplier_pct = 150`), plus an end-to-end identity
//!    matrix against *real* wall-clock stragglers at 1, 2 and 8 worker
//!    threads: labels — and traces, modulo the zero-tick speculation
//!    events — must be byte-identical to the speculation-free runs.
//!    Results land in `<out_dir>/BENCH_PR10.json`; the suite exits
//!    non-zero on any identity violation or a missed reduction floor.
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin perf_suite -- [out_dir] [n]
//!   cargo run --release -p dbscan-bench --bin perf_suite -- --kernels-only [out_dir]
//!   cargo run --release -p dbscan-bench --bin perf_suite -- --speculation-only [out_dir]

use dbscan_bench::report;
use dbscan_core::{
    local_partial_clusters, merge_partial_clusters_threaded, merge_unionfind_report, Balance,
    DbscanParams, MergeStrategy, PartitionRanges, Resources, SeedPolicy, SparkDbscan,
    SparkDbscanResult,
};
use dbscan_datagen::{ClusterGenerator, GeneratorParams, SkewedGenerator, SkewedParams};
use dbscan_spatial::{
    scan_block, scan_block_generic, scan_block_soa, BkdTree, BuildConfig, Dataset, KernelConfig,
    Metric, SpatialIndex, DEFAULT_LANES,
};
use serde::Serialize;
use sparklet::{
    ClusterConfig, Context, EventKind, FaultPlan, FaultRule, SpeculationConfig, StragglerConfig,
    Trace, TraceConfig,
};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const PARTITIONS: usize = 8;
const SEED: u64 = 42;
const EPS: f64 = 25.0;
const MIN_PTS: usize = 5;

#[derive(Serialize)]
struct Config {
    n: usize,
    dim: usize,
    seed: u64,
    partitions: usize,
    eps: f64,
    min_pts: usize,
    hotspot_fraction: f64,
    hotspot_sigma: f64,
    side: f64,
}

#[derive(Serialize)]
struct Arm {
    balance: &'static str,
    wall_ms: f64,
    plan_ms: f64,
    executor_wall_ms: f64,
    task_max_ms: f64,
    /// LPT makespan on `PARTITIONS` virtual executors — what a cluster
    /// with one core per partition would observe (the host may have
    /// fewer cores than partitions, serializing real wall time).
    simulated_makespan_ms: f64,
    task_max_mean_ratio: f64,
    work_max_mean_ratio: f64,
    partition_work: Vec<u64>,
    predicted_cost: Option<Vec<f64>>,
    clusters: usize,
    noise: usize,
}

#[derive(Serialize)]
struct Partitioning {
    count: Arm,
    cost: Arm,
    labels_identical: bool,
    work_ratio_improvement: f64,
}

#[derive(Serialize)]
struct KernelRow {
    dim: usize,
    specialized: bool,
    rows: usize,
    queries: usize,
    specialized_qps: f64,
    generic_qps: f64,
    speedup: f64,
    matches: u64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    config: Config,
    partitioning: Partitioning,
    kernels: Vec<KernelRow>,
}

/// Modeled makespan of one driver phase at one worker count.
#[derive(Serialize)]
struct PhasePoint {
    threads: usize,
    modeled_ms: f64,
    speedup: f64,
}

/// One merge sub-phase's measured wall time.
#[derive(Serialize)]
struct MergePhaseRow {
    name: &'static str,
    serial: bool,
    chunks: usize,
    ms: f64,
}

/// Driver-phase measurements for one dataset size.
#[derive(Serialize)]
struct DriverPhaseCase {
    n: usize,
    dim: usize,
    partitions: usize,
    par_cutoff: usize,
    // kd-tree bulk build
    build_shards: usize,
    build_serial_ms: f64,
    build_internal_ms: f64,
    build_coords_ms: f64,
    build_models: Vec<PhasePoint>,
    build_speedup_at_8: f64,
    build_structure_identical: bool,
    // Algorithm-4 merge
    partial_clusters: usize,
    seed_edges: usize,
    merge_serial_ms: f64,
    merge_phases: Vec<MergePhaseRow>,
    merge_models: Vec<PhasePoint>,
    merge_speedup_at_8: f64,
    merge_labels_identical: bool,
}

#[derive(Serialize)]
struct ReportPr6 {
    bench: &'static str,
    seed: u64,
    eps: f64,
    min_pts: usize,
    model_threads: Vec<usize>,
    cases: Vec<DriverPhaseCase>,
}

/// One arm of the memory-budget experiment (budget 0 = unbounded).
#[derive(Serialize)]
struct BudgetArm {
    budget_bytes: u64,
    wall_ms: f64,
    /// Peak accounted bytes across all lanes combined (RSS proxy).
    peak_bytes: u64,
    /// Largest single-lane peak — what the budget actually bounds.
    max_lane_peak: u64,
    spilled_bytes: u64,
    spill_reads: u64,
    evicted_bytes: u64,
    backpressure_waits: u64,
    clusters: usize,
    noise: usize,
}

#[derive(Serialize)]
struct ReportPr7 {
    bench: &'static str,
    n: usize,
    dim: usize,
    partitions: usize,
    executors: usize,
    seed: u64,
    budget_fraction_of_peak: f64,
    unbounded: BudgetArm,
    budgeted: BudgetArm,
    labels_identical: bool,
    trace_identical_modulo_memory: bool,
    peak_within_budget: bool,
}

/// One arm of the partitioning experiment.
fn run_arm(balance: Balance, data: &Arc<Dataset>) -> (SparkDbscanResult, f64) {
    let params = DbscanParams::new(EPS, MIN_PTS).expect("valid params");
    let ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(SEED));
    let t = Instant::now();
    let result = SparkDbscan::new(params)
        .partitions(PARTITIONS)
        .exact()
        .balance(balance)
        .run(&ctx, Arc::clone(data));
    (result, t.elapsed().as_secs_f64() * 1e3)
}

/// Max/mean over the deterministic work proxy (`neighbors_found` per
/// partition) — immune to timer noise, in the planner's own cost units.
fn work_ratio(result: &SparkDbscanResult) -> f64 {
    let work: Vec<f64> =
        result.executor_stats.iter().map(|(_, s)| s.neighbors_found as f64).collect();
    let max = work.iter().cloned().fold(0.0, f64::max);
    let mean = work.iter().sum::<f64>() / work.len().max(1) as f64;
    if mean > 0.0 {
        max / mean
    } else {
        1.0
    }
}

fn arm(name: &'static str, result: &SparkDbscanResult, wall_ms: f64) -> Arm {
    // the executor stage is the one carrying the clustering tasks
    let stage = result
        .job
        .stages
        .iter()
        .max_by_key(|s| s.executor_busy())
        .expect("executor job has stages");
    Arm {
        balance: name,
        wall_ms,
        plan_ms: result.timings.plan.as_secs_f64() * 1e3,
        executor_wall_ms: result.timings.executor_wall.as_secs_f64() * 1e3,
        task_max_ms: stage.max_task().as_secs_f64() * 1e3,
        simulated_makespan_ms: stage.simulated_makespan(PARTITIONS).as_secs_f64() * 1e3,
        task_max_mean_ratio: stage.max_mean_ratio(),
        work_max_mean_ratio: work_ratio(result),
        partition_work: result
            .executor_stats
            .iter()
            .map(|(_, s)| s.neighbors_found as u64)
            .collect(),
        predicted_cost: result.predicted_cost.clone(),
        clusters: result.clustering.num_clusters(),
        noise: result.clustering.noise_count(),
    }
}

/// Queries/sec of one scan path over a prepared block.
fn kernel_qps(
    generic: bool,
    dim: usize,
    queries: &[Vec<f64>],
    block: &[f64],
    thr: f64,
) -> (f64, u64) {
    let mut matches = 0u64;
    let t = Instant::now();
    for q in queries {
        let count = |_i: usize| {
            matches += 1;
            true
        };
        if generic {
            scan_block_generic(Metric::Euclidean, dim, q, block, thr, count);
        } else {
            scan_block(Metric::Euclidean, dim, q, block, thr, count);
        }
    }
    (queries.len() as f64 / t.elapsed().as_secs_f64(), matches)
}

fn kernel_experiment(rows: usize, queries: usize) -> Vec<KernelRow> {
    let mut out = Vec::new();
    // 2/3/4 exercise the monomorphized kernels, 5 the generic fallback
    for dim in [2usize, 3, 4, 5] {
        // deterministic pseudo-data, no RNG needed for a throughput test
        let block: Vec<f64> = (0..rows * dim).map(|i| ((i as f64) * 0.731).sin() * 500.0).collect();
        let qs: Vec<Vec<f64>> = (0..queries)
            .map(|q| (0..dim).map(|k| (((q * dim + k) as f64) * 1.37).cos() * 500.0).collect())
            .collect();
        let thr = Metric::Euclidean.threshold(EPS);
        // one warm-up pass per path, then the measured pass
        let _ = kernel_qps(false, dim, &qs, &block, thr);
        let _ = kernel_qps(true, dim, &qs, &block, thr);
        let (fast_qps, fast_matches) = kernel_qps(false, dim, &qs, &block, thr);
        let (slow_qps, slow_matches) = kernel_qps(true, dim, &qs, &block, thr);
        assert_eq!(fast_matches, slow_matches, "kernel paths disagree at dim {dim}");
        println!(
            "kernel dim={dim}: specialized {:.2} Mq/s, generic {:.2} Mq/s ({:.2}x)",
            fast_qps / 1e6,
            slow_qps / 1e6,
            fast_qps / slow_qps
        );
        out.push(KernelRow {
            dim,
            specialized: dbscan_spatial::SPECIALIZED_DIMS.contains(&dim),
            rows,
            queries,
            specialized_qps: fast_qps,
            generic_qps: slow_qps,
            speedup: fast_qps / slow_qps,
            matches: fast_matches,
        });
    }
    out
}

const MODEL_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Driver-phase experiment for one dataset size: measure the build and
/// the merge once at one worker, model the fork-join makespan at each
/// worker count, and verify the parallel paths are byte-identical.
/// Exits the process on an identity violation — a wrong answer must
/// never ship inside a performance report.
fn driver_phase_case(n: usize) -> DriverPhaseCase {
    // Table-I-style clustered data (10-dim Gaussian blobs + noise), so
    // eps-neighborhoods stay bounded at 100k points — the skewed 2-d
    // hotspot of experiment 1 would make N(eps) quadratic in n here.
    let params = GeneratorParams::new(n, 10, (n / 1600).max(4), SEED);
    let (data, _) = ClusterGenerator::new(params).generate();
    let data = Arc::new(data);
    let dbscan = DbscanParams::new(EPS, MIN_PTS).expect("valid params");

    // ~32 shards regardless of n, so LPT has room at every modeled k
    let cutoff = (n / 32).max(1024);
    let cfg = BuildConfig::default().with_par_cutoff(cutoff);

    // -- build: measure at 1 worker, model k, verify an 8-worker build
    let (tree, build) =
        BkdTree::build_with_report(Arc::clone(&data), Metric::Euclidean, cfg.with_threads(1));
    let (tree8, _) =
        BkdTree::build_with_report(Arc::clone(&data), Metric::Euclidean, cfg.with_threads(8));
    let build_identical = tree.same_structure(&tree8);

    let base = build.modeled_makespan_nanos(1) as f64;
    let build_models: Vec<PhasePoint> = MODEL_THREADS
        .iter()
        .map(|&k| {
            let m = build.modeled_makespan_nanos(k) as f64;
            PhasePoint { threads: k, modeled_ms: m / 1e6, speedup: base / m }
        })
        .collect();
    let build_speedup_at_8 = build_models.last().map(|p| p.speedup).unwrap_or(1.0);

    // -- merge: real partial clusters from 64 executor-side runs, then
    // the instrumented union-find pipeline at 1 worker
    let partitions = 64;
    let ranges = PartitionRanges::new(n, partitions);
    let mut partials = Vec::new();
    let mut core = vec![false; n];
    for p in 0..partitions {
        let local = local_partial_clusters(
            |i, out| tree.range_into(data.row(i as usize), dbscan.eps, out),
            dbscan,
            &ranges,
            p,
            SeedPolicy::PerBoundaryEdge,
        );
        partials.extend(local.clusters);
        for c in local.core_points {
            core[c as usize] = true;
        }
    }

    let (serial_out, mrep) = merge_unionfind_report(n, &partials, &core, 1);
    let par_out = merge_partial_clusters_threaded(n, &partials, MergeStrategy::UnionFind, &core, 8);
    let merge_identical = serial_out.clustering.labels == par_out.clustering.labels;

    let mbase = mrep.modeled_makespan_nanos(1) as f64;
    let merge_models: Vec<PhasePoint> = MODEL_THREADS
        .iter()
        .map(|&k| {
            let m = mrep.modeled_makespan_nanos(k) as f64;
            PhasePoint { threads: k, modeled_ms: m / 1e6, speedup: mbase / m }
        })
        .collect();
    let merge_speedup_at_8 = merge_models.last().map(|p| p.speedup).unwrap_or(1.0);

    let case = DriverPhaseCase {
        n,
        dim: 10,
        partitions,
        par_cutoff: cutoff,
        build_shards: build.shards.len(),
        build_serial_ms: base / 1e6,
        build_internal_ms: build.internal_total_nanos() as f64 / 1e6,
        build_coords_ms: build.coords_nanos as f64 / 1e6,
        build_models,
        build_speedup_at_8,
        build_structure_identical: build_identical,
        partial_clusters: partials.len(),
        seed_edges: serial_out.merge_ops,
        merge_serial_ms: mbase / 1e6,
        merge_phases: mrep
            .phases
            .iter()
            .map(|p| MergePhaseRow {
                name: p.name,
                serial: p.serial,
                chunks: p.chunk_nanos.len(),
                ms: p.chunk_nanos.iter().sum::<u64>() as f64 / 1e6,
            })
            .collect(),
        merge_models,
        merge_speedup_at_8,
        merge_labels_identical: merge_identical,
    };
    println!(
        "driver phases n={n}: build {:.1} ms serial -> {:.1} ms @8 ({:.2}x, {} shards), \
         merge {:.2} ms serial -> {:.2} ms @8 ({:.2}x, {} partials)",
        case.build_serial_ms,
        case.build_models.last().unwrap().modeled_ms,
        build_speedup_at_8,
        case.build_shards,
        case.merge_serial_ms,
        case.merge_models.last().unwrap().modeled_ms,
        merge_speedup_at_8,
        case.partial_clusters,
    );
    if !build_identical {
        eprintln!("FAIL: n={n}: 8-thread kd-tree build is not structurally identical");
        std::process::exit(1);
    }
    if !merge_identical {
        eprintln!("FAIL: n={n}: 8-thread merge labels differ from sequential merge");
        std::process::exit(1);
    }
    case
}

/// One arm of the memory-budget experiment: the partitioned runner on
/// `PARTITIONS` executors with `partitions` tasks, traced, optionally
/// under a per-executor byte budget.
fn budget_arm_run(
    budget: Option<u64>,
    data: &Arc<Dataset>,
    partitions: usize,
) -> (SparkDbscanResult, Trace, f64) {
    let params = DbscanParams::new(EPS, MIN_PTS).expect("valid params");
    let mut cfg =
        ClusterConfig::local(PARTITIONS).with_seed(SEED).with_trace(TraceConfig::enabled());
    if let Some(b) = budget {
        cfg = cfg.with_memory_budget(b);
    }
    let ctx = Context::new(cfg);
    let t = Instant::now();
    let result =
        SparkDbscan::new(params).partitions(partitions).exact().run(&ctx, Arc::clone(data));
    (result, ctx.trace().snapshot(), t.elapsed().as_secs_f64() * 1e3)
}

fn budget_arm(budget: u64, result: &SparkDbscanResult, wall_ms: f64) -> BudgetArm {
    let m = result.memory;
    BudgetArm {
        budget_bytes: budget,
        wall_ms,
        peak_bytes: m.peak_bytes,
        max_lane_peak: m.max_lane_peak,
        spilled_bytes: m.spilled_bytes,
        spill_reads: m.spill_reads,
        evicted_bytes: m.evicted_bytes,
        backpressure_waits: m.backpressure_waits,
        clusters: result.clustering.num_clusters(),
        noise: result.clustering.noise_count(),
    }
}

/// Experiment 4: the memory-budget identity run at n=100k. Unbounded
/// first (accounting is always on, so its peak derives the budget),
/// then at 25% of that peak. Exits the process on any label or trace
/// identity violation — graceful degradation must stay *graceful*.
fn memory_budget_experiment(out_dir: &str) {
    let n = 100_000;
    let partitions = 32; // 4 queued tasks per executor lane: crowding is real
    let gen = GeneratorParams::new(n, 10, (n / 1600).max(4), SEED);
    let (data, _) = ClusterGenerator::new(gen).generate();
    let data = Arc::new(data);

    let (unb, unb_trace, unb_ms) = budget_arm_run(None, &data, partitions);
    let budget = unb.memory.max_lane_peak / 4;
    let (bud, bud_trace, bud_ms) = budget_arm_run(Some(budget), &data, partitions);

    let labels_identical =
        unb.clustering.canonicalize().labels == bud.clustering.canonicalize().labels;
    let trace_identical = bud_trace.without_memory().events == unb_trace.events;
    let peak_within_budget = bud.memory.max_lane_peak <= budget;

    println!(
        "memory budget n={n}: unbounded lane peak {} B in {unb_ms:.1} ms; \
         budget {budget} B -> spilled {} B ({} reads), {} backpressure waits, \
         lane peak {} B in {bud_ms:.1} ms",
        unb.memory.max_lane_peak,
        bud.memory.spilled_bytes,
        bud.memory.spill_reads,
        bud.memory.backpressure_waits,
        bud.memory.max_lane_peak,
    );

    let report_value = ReportPr7 {
        bench: "BENCH_PR7",
        n,
        dim: 10,
        partitions,
        executors: PARTITIONS,
        seed: SEED,
        budget_fraction_of_peak: 0.25,
        unbounded: budget_arm(0, &unb, unb_ms),
        budgeted: budget_arm(budget, &bud, bud_ms),
        labels_identical,
        trace_identical_modulo_memory: trace_identical,
        peak_within_budget,
    };
    report::write_json(Path::new(out_dir), "BENCH_PR7", &report_value).expect("write BENCH_PR7");

    if !labels_identical {
        eprintln!("FAIL: budgeted labels differ from the unbounded run");
        std::process::exit(1);
    }
    if !trace_identical {
        eprintln!("FAIL: budgeted trace (modulo MemoryAction) differs from the unbounded run");
        std::process::exit(1);
    }
    if !peak_within_budget {
        eprintln!(
            "FAIL: budgeted lane peak {} exceeds the budget {budget}",
            bud.memory.max_lane_peak
        );
        std::process::exit(1);
    }
    if bud.memory.spilled_bytes == 0 {
        eprintln!("FAIL: a 25% budget run never spilled — the ladder was not exercised");
        std::process::exit(1);
    }
}

/// One row of the leaf-scan throughput microbench.
#[derive(Serialize)]
struct LeafScanRow {
    dim: usize,
    rows: usize,
    leaves: usize,
    queries: usize,
    lanes: usize,
    scalar_mrows_per_s: f64,
    soa_mrows_per_s: f64,
    speedup: f64,
    hits: u64,
}

/// One cell of the end-to-end kernel identity matrix.
#[derive(Serialize)]
struct IdentityCell {
    config: String,
    worker_threads: usize,
    labels_identical: bool,
    /// Full trace for scalar/lanes/batched cells; modulo the zero-tick
    /// `TaskKernel` events for fast-path cells (their counters shrink).
    trace_identical: bool,
    kernel_rows_scanned: u64,
    kernel_early_exits: u64,
}

#[derive(Serialize)]
struct ReportPr9 {
    bench: &'static str,
    seed: u64,
    eps: f64,
    min_pts: usize,
    leaf_scan: Vec<LeafScanRow>,
    /// Worst SoA-vs-scalar speedup over the acceptance dims {2, 3, 4}.
    min_speedup_d2_4: f64,
    identity_n: usize,
    identity_partitions: usize,
    cells: Vec<IdentityCell>,
    all_labels_identical: bool,
    all_traces_identical: bool,
}

/// Leaf-scan throughput at one dimension: every query swept over every
/// leaf of the same bucketed tree, once through the row-major scalar
/// scan and once through the dimension-major SoA lane kernel. Both
/// paths must report the same hit count (they are bit-identical by
/// construction; the counter is a cheap cross-check that also defeats
/// dead-code elimination).
fn leaf_scan_row(dim: usize, n: usize, queries: usize) -> LeafScanRow {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..dim).map(|k| (((i * dim + k) as f64) * 0.711).sin() * 500.0).collect())
        .collect();
    let ds = Arc::new(Dataset::from_rows(rows));
    let cfg = BuildConfig::default().with_bucket_size(64);
    let (tree, _) = BkdTree::build_with_report(Arc::clone(&ds), Metric::Euclidean, cfg);
    let leaves = tree.leaf_ranges();
    let qs: Vec<Vec<f64>> = (0..queries)
        .map(|q| (0..dim).map(|k| (((q * dim + k) as f64) * 1.37).cos() * 500.0).collect())
        .collect();
    let thr = Metric::Euclidean.threshold(EPS * 2.0);

    let scalar_pass = || {
        let mut hits = 0u64;
        let t = Instant::now();
        for q in &qs {
            for &(s, e) in &leaves {
                scan_block(Metric::Euclidean, dim, q, tree.leaf_coords(s, e), thr, |_| {
                    hits += 1;
                    true
                });
            }
        }
        (t.elapsed().as_secs_f64(), hits)
    };
    let soa_pass = || {
        let mut hits = 0u64;
        let t = Instant::now();
        for q in &qs {
            for &(s, e) in &leaves {
                let soa = tree.leaf_soa(s, e).expect("lanes layout builds the SoA mirror");
                scan_block_soa(Metric::Euclidean, dim, q, soa, e - s, thr, DEFAULT_LANES, |_| {
                    hits += 1;
                    true
                });
            }
        }
        (t.elapsed().as_secs_f64(), hits)
    };

    // one warm-up pass per path, then interleaved best-of-N: the suite
    // shares a single preemptible vCPU with the rest of the machine, so
    // any individual pass can be descheduled mid-flight — the minimum
    // over alternating reps is the only stable throughput estimate
    let _ = scalar_pass();
    let _ = soa_pass();
    let (mut scalar_s, mut soa_s) = (f64::INFINITY, f64::INFINITY);
    let (mut scalar_hits, mut soa_hits) = (0u64, 0u64);
    for _ in 0..5 {
        let (s, h) = scalar_pass();
        scalar_s = scalar_s.min(s);
        scalar_hits = h;
        let (s, h) = soa_pass();
        soa_s = soa_s.min(s);
        soa_hits = h;
    }
    assert_eq!(scalar_hits, soa_hits, "leaf-scan paths disagree at dim {dim}");

    let touched = (queries * n) as f64;
    let row = LeafScanRow {
        dim,
        rows: n,
        leaves: leaves.len(),
        queries,
        lanes: DEFAULT_LANES,
        scalar_mrows_per_s: touched / scalar_s / 1e6,
        soa_mrows_per_s: touched / soa_s / 1e6,
        speedup: scalar_s / soa_s,
        hits: scalar_hits,
    };
    println!(
        "leaf scan dim={dim}: scalar {:.1} Mrows/s, soa {:.1} Mrows/s ({:.2}x, {} leaves)",
        row.scalar_mrows_per_s, row.soa_mrows_per_s, row.speedup, row.leaves
    );
    row
}

/// Experiment 5: SoA lane-kernel throughput plus the end-to-end kernel
/// identity matrix. Exits the process on an identity violation or a
/// missed throughput floor.
fn kernel_layout_experiment(out_dir: &str) {
    let leaf_scan: Vec<LeafScanRow> =
        [2usize, 3, 4, 5, 6].into_iter().map(|d| leaf_scan_row(d, 16_384, 192)).collect();
    let min_speedup_d2_4 =
        leaf_scan.iter().filter(|r| r.dim <= 4).map(|r| r.speedup).fold(f64::INFINITY, f64::min);

    // -- end-to-end identity matrix on a small skewed workload
    let identity_n = 6_000;
    let (data, _) = SkewedGenerator::new(SkewedParams::new(identity_n, 2, SEED)).generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(EPS, MIN_PTS).expect("valid params");

    let run_cell = |kernel: KernelConfig, workers: usize| {
        let mut cfg =
            ClusterConfig::local(PARTITIONS).with_seed(SEED).with_trace(TraceConfig::enabled());
        cfg.worker_threads = workers;
        let ctx = Context::new(cfg);
        let res = Resources::new().with_build(BuildConfig::default().with_kernel(kernel));
        let out = SparkDbscan::new(params)
            .partitions(PARTITIONS)
            .exact()
            .resources(res)
            .run(&ctx, Arc::clone(&data));
        (out, ctx.trace().snapshot())
    };

    let (ref_out, ref_trace) = run_cell(KernelConfig::scalar(), 1);
    let ref_labels = ref_out.clustering.canonicalize().labels;

    let arms: Vec<(String, KernelConfig, usize, bool)> = {
        let mut v = Vec::new();
        for workers in [1usize, 2, 8] {
            v.push(("scalar".to_string(), KernelConfig::scalar(), workers, false));
            v.push(("lanes".to_string(), KernelConfig::default(), workers, false));
            v.push(("batch32".to_string(), KernelConfig::default().with_batch(32), workers, false));
        }
        v.push((
            "batch32-fast".to_string(),
            KernelConfig::default().with_batch(32).with_count_fast_path(true),
            2,
            true,
        ));
        v.push(("fast".to_string(), KernelConfig::default().with_count_fast_path(true), 2, true));
        v
    };

    let mut cells = Vec::new();
    for (name, kernel, workers, fast) in arms {
        let (out, trace) = run_cell(kernel, workers);
        let labels_identical = out.clustering.canonicalize().labels == ref_labels;
        let trace_identical = if fast {
            trace.without_kernel().events == ref_trace.without_kernel().events
        } else {
            trace.events == ref_trace.events
        };
        let rows: u64 = out.executor_stats.iter().map(|(_, s)| s.kernel.rows_scanned).sum();
        let exits: u64 = out.executor_stats.iter().map(|(_, s)| s.kernel.early_exits).sum();
        println!(
            "identity {name}@{workers}: labels {} trace {} ({} kernel rows, {} early exits)",
            if labels_identical { "ok" } else { "DIFFER" },
            if trace_identical { "ok" } else { "DIFFER" },
            rows,
            exits,
        );
        cells.push(IdentityCell {
            config: name,
            worker_threads: workers,
            labels_identical,
            trace_identical,
            kernel_rows_scanned: rows,
            kernel_early_exits: exits,
        });
    }
    let all_labels = cells.iter().all(|c| c.labels_identical);
    let all_traces = cells.iter().all(|c| c.trace_identical);

    let report_value = ReportPr9 {
        bench: "BENCH_PR9",
        seed: SEED,
        eps: EPS,
        min_pts: MIN_PTS,
        leaf_scan,
        min_speedup_d2_4,
        identity_n,
        identity_partitions: PARTITIONS,
        cells,
        all_labels_identical: all_labels,
        all_traces_identical: all_traces,
    };
    report::write_json(Path::new(out_dir), "BENCH_PR9", &report_value).expect("write BENCH_PR9");

    if !all_labels {
        eprintln!("FAIL: a kernel configuration changed the clustering labels");
        std::process::exit(1);
    }
    if !all_traces {
        eprintln!("FAIL: a kernel configuration changed the event trace");
        std::process::exit(1);
    }
    if min_speedup_d2_4 < 1.5 {
        eprintln!(
            "FAIL: SoA leaf-scan speedup {min_speedup_d2_4:.2}x at d in {{2,3,4}} is below the 1.5x floor"
        );
        std::process::exit(1);
    }
}

/// One stage of the speculation makespan model: the measured stage
/// replayed with and without the clone-at-median-multiple policy.
#[derive(Serialize)]
struct SpecStageRow {
    stage_id: usize,
    kind: String,
    tasks: usize,
    straggled_tasks: usize,
    off_ms: f64,
    on_ms: f64,
    ratio: f64,
}

/// One cell of the real-straggler identity matrix.
#[derive(Serialize)]
struct SpecIdentityCell {
    worker_threads: usize,
    speculative_launches: usize,
    speculative_wins: usize,
    speculative_losses: usize,
    labels_identical: bool,
    /// Modulo the zero-tick speculation events (clone-scoped executor
    /// events and the driver's launch/win/loss markers).
    stripped_trace_identical: bool,
}

#[derive(Serialize)]
struct ReportPr10 {
    bench: &'static str,
    seed: u64,
    n: usize,
    partitions: usize,
    straggler_prob: f64,
    straggler_slowdown: f64,
    multiplier_pct: u32,
    stages: Vec<SpecStageRow>,
    job_off_ms: f64,
    job_on_ms: f64,
    /// Off/on makespan ratio of the stage with the largest unspeculated
    /// makespan — the tail the policy exists to cut.
    tail_stage_ratio: f64,
    job_ratio: f64,
    identity: Vec<SpecIdentityCell>,
    total_speculative_launches: usize,
    all_labels_identical: bool,
    all_traces_identical: bool,
}

fn speculation_counts(t: &Trace) -> (usize, usize, usize) {
    let (mut launches, mut wins, mut losses) = (0, 0, 0);
    for e in &t.events {
        match e.kind {
            EventKind::SpeculativeLaunch { .. } => launches += 1,
            EventKind::SpeculativeWin { .. } => wins += 1,
            EventKind::SpeculativeLoss { .. } => losses += 1,
            _ => {}
        }
    }
    (launches, wins, losses)
}

/// Experiment 6: speculative execution. Exits the process on an
/// identity violation or a missed tail-reduction floor.
fn speculation_experiment(out_dir: &str) {
    let n = 16_000;
    let params = DbscanParams::new(EPS, MIN_PTS).expect("valid params");
    // evenly-loaded clusters (shuffled emission), so the tail below is
    // *only* the injected straggler, not data skew
    let (data, _) = ClusterGenerator::new(GeneratorParams::new(n, 2, 8, SEED)).generate();
    let data = Arc::new(data);
    let spec = SpeculationConfig::on().with_multiplier_pct(150);

    // -- headline: one traced run with simulated stragglers, replayed
    // through the makespan model with and without the policy
    let straggle = StragglerConfig { prob: 0.3, slowdown: 8.0 };
    let ctx =
        Context::new(ClusterConfig::local(PARTITIONS).with_seed(SEED).with_straggler(straggle));
    let out = SparkDbscan::new(params).partitions(PARTITIONS).exact().run(&ctx, Arc::clone(&data));

    let stages: Vec<SpecStageRow> = out
        .job
        .stages
        .iter()
        .filter(|s| !s.tasks.is_empty())
        .map(|s| {
            let off = s.simulated_makespan(PARTITIONS).as_secs_f64() * 1e3;
            let on = s.speculated_makespan(PARTITIONS, spec).as_secs_f64() * 1e3;
            SpecStageRow {
                stage_id: s.stage_id,
                kind: format!("{:?}", s.kind),
                tasks: s.tasks.len(),
                straggled_tasks: s.tasks.iter().filter(|t| !t.straggler_extra.is_zero()).count(),
                off_ms: off,
                on_ms: on,
                ratio: if on > 0.0 { off / on } else { 1.0 },
            }
        })
        .collect();
    let job_off_ms = out.job.simulated_executor_time(PARTITIONS).as_secs_f64() * 1e3;
    let job_on_ms = out.job.speculated_executor_time(PARTITIONS, spec).as_secs_f64() * 1e3;
    let tail_stage_ratio =
        stages.iter().max_by(|a, b| a.off_ms.total_cmp(&b.off_ms)).map(|s| s.ratio).unwrap_or(1.0);
    let job_ratio = if job_on_ms > 0.0 { job_off_ms / job_on_ms } else { 1.0 };
    println!(
        "speculation model: job {job_off_ms:.1} ms -> {job_on_ms:.1} ms ({job_ratio:.2}x), \
         tail stage {tail_stage_ratio:.2}x"
    );

    // -- identity matrix: real wall-clock stragglers, speculation off
    // (the reference) vs on, at 1, 2 and 8 worker threads. The policy
    // rides the Resources bundle, exercising the full driver plumbing.
    let plan = FaultPlan::none().with_stragglers(FaultRule::with_prob(0.3, 1), 25);
    let run_leg = |workers: usize, spec: SpeculationConfig| {
        let mut cfg = ClusterConfig::local(PARTITIONS)
            .with_seed(SEED)
            .with_trace(TraceConfig::enabled())
            .with_fault(plan.clone());
        cfg.worker_threads = workers;
        let ctx = Context::new(cfg);
        let res = Resources::new().with_speculation(spec);
        let out = SparkDbscan::new(params)
            .partitions(PARTITIONS)
            .exact()
            .resources(res)
            .run(&ctx, Arc::clone(&data));
        // losing twins may still be running when the stage commits;
        // let them finish recording before snapshotting the trace
        std::thread::sleep(std::time::Duration::from_millis(200));
        (out.clustering.canonicalize().labels, ctx.trace().snapshot())
    };

    let mut cells = Vec::new();
    let mut ref_labels: Option<Vec<_>> = None;
    for workers in [1usize, 2, 8] {
        let (off_labels, off_trace) = run_leg(workers, SpeculationConfig::OFF);
        let (on_labels, on_trace) = run_leg(workers, spec);
        let reference = ref_labels.get_or_insert(off_labels.clone());
        let labels_identical = off_labels == *reference && on_labels == *reference;
        let stripped_trace_identical = on_trace.without_speculation().events == off_trace.events;
        let (launches, wins, losses) = speculation_counts(&on_trace);
        println!(
            "identity speculation@{workers}: labels {} trace {} \
             ({launches} launches, {wins} wins, {losses} losses)",
            if labels_identical { "ok" } else { "DIFFER" },
            if stripped_trace_identical { "ok" } else { "DIFFER" },
        );
        cells.push(SpecIdentityCell {
            worker_threads: workers,
            speculative_launches: launches,
            speculative_wins: wins,
            speculative_losses: losses,
            labels_identical,
            stripped_trace_identical,
        });
    }
    let total_launches: usize = cells.iter().map(|c| c.speculative_launches).sum();
    let all_labels = cells.iter().all(|c| c.labels_identical);
    let all_traces = cells.iter().all(|c| c.stripped_trace_identical);

    let report_value = ReportPr10 {
        bench: "BENCH_PR10",
        seed: SEED,
        n,
        partitions: PARTITIONS,
        straggler_prob: straggle.prob,
        straggler_slowdown: straggle.slowdown,
        multiplier_pct: spec.multiplier_pct,
        stages,
        job_off_ms,
        job_on_ms,
        tail_stage_ratio,
        job_ratio,
        identity: cells,
        total_speculative_launches: total_launches,
        all_labels_identical: all_labels,
        all_traces_identical: all_traces,
    };
    report::write_json(Path::new(out_dir), "BENCH_PR10", &report_value).expect("write BENCH_PR10");

    if !all_labels {
        eprintln!("FAIL: speculative execution changed the clustering labels");
        std::process::exit(1);
    }
    if !all_traces {
        eprintln!("FAIL: stripping speculation events did not recover the clean trace");
        std::process::exit(1);
    }
    if total_launches == 0 {
        eprintln!("FAIL: the straggler detector never launched a clone in the identity matrix");
        std::process::exit(1);
    }
    if tail_stage_ratio < 2.0 {
        eprintln!(
            "FAIL: speculation cut the tail stage only {tail_stage_ratio:.2}x, below the 2x floor"
        );
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    // fast path for iterating on the kernel experiment alone
    if args.iter().any(|a| a == "--kernels-only") {
        args.retain(|a| a != "--kernels-only");
        let out_dir = args.get(1).map(String::as_str).unwrap_or("results");
        kernel_layout_experiment(out_dir);
        return;
    }
    // fast path for the speculation experiment alone
    if args.iter().any(|a| a == "--speculation-only") {
        args.retain(|a| a != "--speculation-only");
        let out_dir = args.get(1).map(String::as_str).unwrap_or("results");
        speculation_experiment(out_dir);
        return;
    }
    let out_dir = args.get(1).map(String::as_str).unwrap_or("results");
    let n: usize = args.get(2).map(|s| s.parse().expect("n must be an integer")).unwrap_or(20_000);

    // ---- experiment 1: count vs cost partitioning on a skewed set ----
    let (data, _) = SkewedGenerator::new(SkewedParams::new(n, 2, SEED)).generate();
    let data = Arc::new(data);
    println!("skewed dataset: n={n} dim=2 seed={SEED}, {PARTITIONS} partitions, eps={EPS}");

    let (count_result, count_ms) = run_arm(Balance::Count, &data);
    let (cost_result, cost_ms) = run_arm(Balance::Cost, &data);

    let identical = count_result.clustering.canonicalize().labels
        == cost_result.clustering.canonicalize().labels;
    let (count_work, cost_work) = (work_ratio(&count_result), work_ratio(&cost_result));
    let count_arm = arm("count", &count_result, count_ms);
    let cost_arm = arm("cost", &cost_result, cost_ms);
    println!(
        "count: wall {count_ms:.1} ms, makespan@{PARTITIONS} {:.1} ms, work max/mean {count_work:.2}\n\
         cost:  wall {cost_ms:.1} ms, makespan@{PARTITIONS} {:.1} ms, work max/mean {cost_work:.2}",
        count_arm.simulated_makespan_ms, cost_arm.simulated_makespan_ms
    );

    let report_value = Report {
        bench: "BENCH_PR4",
        config: Config {
            n,
            dim: 2,
            seed: SEED,
            partitions: PARTITIONS,
            eps: EPS,
            min_pts: MIN_PTS,
            hotspot_fraction: 0.25,
            hotspot_sigma: 5.0,
            side: 1000.0,
        },
        partitioning: Partitioning {
            count: count_arm,
            cost: cost_arm,
            labels_identical: identical,
            work_ratio_improvement: count_work / cost_work,
        },
        kernels: kernel_experiment(4096, 512),
    };
    report::write_json(Path::new(out_dir), "BENCH_PR4", &report_value).expect("write BENCH_PR4");

    if !identical {
        eprintln!("FAIL: cost-balanced labels differ from equal-count labels");
        std::process::exit(1);
    }
    if cost_work > count_work {
        eprintln!(
            "FAIL: cost balancing worsened work imbalance ({count_work:.2} -> {cost_work:.2})"
        );
        std::process::exit(1);
    }
    println!("perf suite: labels identical, work imbalance {count_work:.2} -> {cost_work:.2}");

    // ---- experiment 3: driver phases (build + merge) at 20k / 100k ----
    let pr6 = ReportPr6 {
        bench: "BENCH_PR6",
        seed: SEED,
        eps: EPS,
        min_pts: MIN_PTS,
        model_threads: MODEL_THREADS.to_vec(),
        cases: vec![driver_phase_case(20_000), driver_phase_case(100_000)],
    };
    report::write_json(Path::new(out_dir), "BENCH_PR6", &pr6).expect("write BENCH_PR6");

    // ---- experiment 4: memory budget (spill, don't fail) at 100k -----
    memory_budget_experiment(out_dir);

    // ---- experiment 5: SoA lane kernels + kernel identity matrix -----
    kernel_layout_experiment(out_dir);

    // ---- experiment 6: speculative execution vs stragglers -----------
    speculation_experiment(out_dir);
}
