//! Ablations of the paper's design choices (DESIGN.md A1–A3):
//!
//! * **A1** — SEED policy x merge strategy: cluster quality (ARI and
//!   core-equivalence vs sequential DBSCAN) and merge cost.
//! * **A3** — shuffle avoidance: the SEED design vs a label-propagation
//!   DBSCAN that updates point state through shuffles (what the paper
//!   says it avoids).
//!
//! (A2, the spatial-index ablation, lives in the Criterion bench
//! `bench_spatial`.)
//!
//! Usage: `cargo run --release -p dbscan-bench --bin ablation [--scale ...]`

use dbscan_bench::{fmt_duration, markdown_table, write_json, Scale};
use dbscan_core::{
    adjusted_rand_index, core_labels_equivalent, DbscanParams, MergeStrategy, SeedPolicy,
    SequentialDbscan, ShuffleDbscan, SparkDbscan,
};
use dbscan_datagen::StandardDataset;
use serde::Serialize;
use sparklet::{ClusterConfig, Context};
use std::path::Path;
use std::sync::Arc;

#[derive(Serialize)]
struct A1Row {
    seed_policy: String,
    merge_strategy: String,
    clusters: usize,
    ari_vs_sequential: f64,
    core_equivalent: bool,
    merge_ops: usize,
    merge_micros: u128,
}

#[derive(Serialize)]
struct A3Row {
    approach: String,
    micros: u128,
    shuffle_records: u64,
    shuffle_bytes: u64,
    ari_vs_sequential: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, _) = Scale::from_args(&args);
    let spec = scale.spec(StandardDataset::C100k);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    let partitions = 16;
    println!(
        "# Ablations on {} ({} points, {partitions} partitions, scale: {scale})\n",
        spec.name,
        data.len()
    );

    let sequential = SequentialDbscan::new(params).run(Arc::clone(&data));

    // ---------------- A1: seed policy x merge strategy ----------------
    println!("## A1: SEED policy x merge strategy\n");
    let mut a1 = Vec::new();
    for (sp, sp_name) in [
        (SeedPolicy::OnePerPartition, "one-per-partition (paper)"),
        (SeedPolicy::PerBoundaryEdge, "per-boundary-edge"),
    ] {
        for (ms, ms_name) in [
            (MergeStrategy::PaperSinglePass, "single-pass (paper)"),
            (MergeStrategy::PaperFixpoint, "fixpoint"),
            (MergeStrategy::UnionFind, "union-find"),
        ] {
            let ctx = Context::new(ClusterConfig::virtual_cluster(partitions));
            let r = SparkDbscan::new(params)
                .partitions(partitions)
                .seed_policy(sp)
                .merge_strategy(ms)
                .run(&ctx, Arc::clone(&data));
            a1.push(A1Row {
                seed_policy: sp_name.to_string(),
                merge_strategy: ms_name.to_string(),
                clusters: r.clustering.num_clusters(),
                ari_vs_sequential: adjusted_rand_index(&r.clustering, &sequential),
                core_equivalent: core_labels_equivalent(&r.clustering, &sequential),
                merge_ops: r.merge_ops,
                merge_micros: r.timings.merge.as_micros(),
            });
        }
    }
    let rows: Vec<Vec<String>> = a1
        .iter()
        .map(|r| {
            vec![
                r.seed_policy.clone(),
                r.merge_strategy.clone(),
                format!("{}", r.clusters),
                format!("{:.4}", r.ari_vs_sequential),
                format!("{}", r.core_equivalent),
                format!("{}", r.merge_ops),
                format!("{} µs", r.merge_micros),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &[
                "Seed policy",
                "Merge",
                "Clusters",
                "ARI",
                "Core-equivalent",
                "Merge ops",
                "Merge time"
            ],
            &rows
        )
    );
    println!("(sequential DBSCAN found {} clusters)\n", sequential.num_clusters());
    let _ = write_json(Path::new("results"), "ablation_a1", &a1);

    // ---------------- A3: SEEDs vs shuffle-based state updates --------
    println!("## A3: shuffle avoidance (SEEDs vs label propagation)\n");
    let mut a3 = Vec::new();

    let ctx = Context::new(ClusterConfig::virtual_cluster(partitions));
    let t = std::time::Instant::now();
    let seeded = SparkDbscan::new(params).partitions(partitions).run(&ctx, Arc::clone(&data));
    let seeded_time = t.elapsed();
    a3.push(A3Row {
        approach: "SEED-based (paper)".into(),
        micros: seeded_time.as_micros(),
        shuffle_records: seeded.shuffle_records,
        shuffle_bytes: 0,
        ari_vs_sequential: adjusted_rand_index(&seeded.clustering, &sequential),
    });

    let ctx = Context::new(ClusterConfig::virtual_cluster(partitions));
    let sh = ShuffleDbscan::new(params)
        .partitions(partitions)
        .run(&ctx, Arc::clone(&data))
        .expect("shuffle baseline");
    a3.push(A3Row {
        approach: format!("shuffle label-propagation ({} rounds)", sh.rounds),
        micros: sh.total.as_micros(),
        shuffle_records: sh.shuffle_records,
        shuffle_bytes: sh.shuffle_bytes,
        ari_vs_sequential: adjusted_rand_index(&sh.clustering, &sequential),
    });

    let rows: Vec<Vec<String>> = a3
        .iter()
        .map(|r| {
            vec![
                r.approach.clone(),
                fmt_duration(std::time::Duration::from_micros(r.micros as u64)),
                format!("{}", r.shuffle_records),
                format!("{}", r.shuffle_bytes),
                format!("{:.4}", r.ari_vs_sequential),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["Approach", "Wall time", "Shuffle records", "Shuffle bytes", "ARI"],
            &rows
        )
    );
    println!("The SEED design moves zero records through shuffles; the label-");
    println!("propagation strawman pays per round — the cost the paper avoids.");
    let _ = write_json(Path::new("results"), "ablation_a3", &a3);

    // ---------------- A4: spatial pre-partitioning (future work) ------
    println!("\n## A4: index-range vs Z-order (spatial) partitioning\n");
    #[derive(Serialize)]
    struct A4Row {
        partitioning: String,
        partial_clusters: usize,
        merge_ops: usize,
        merge_micros: u128,
        seeds_travelled: usize,
        ari_vs_sequential: f64,
    }
    let mut a4 = Vec::new();
    for (zorder, name) in [(false, "index-range (paper)"), (true, "Z-order (future work)")] {
        let ctx = Context::new(ClusterConfig::virtual_cluster(partitions));
        let r = SparkDbscan::new(params)
            .partitions(partitions)
            .spatial_partitioning(zorder)
            .run(&ctx, Arc::clone(&data));
        a4.push(A4Row {
            partitioning: name.to_string(),
            partial_clusters: r.num_partial_clusters,
            merge_ops: r.merge_ops,
            merge_micros: r.timings.merge.as_micros(),
            seeds_travelled: r.num_partial_clusters.saturating_sub(r.clustering.num_clusters()),
            ari_vs_sequential: adjusted_rand_index(&r.clustering, &sequential),
        });
    }
    let rows: Vec<Vec<String>> = a4
        .iter()
        .map(|r| {
            vec![
                r.partitioning.clone(),
                format!("{}", r.partial_clusters),
                format!("{}", r.merge_ops),
                format!("{} µs", r.merge_micros),
                format!("{:.4}", r.ari_vs_sequential),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["Partitioning", "Partial clusters", "Merge ops", "Merge time", "ARI"],
            &rows
        )
    );
    println!("Z-order pre-partitioning (the paper's stated future work) makes");
    println!("partitions spatially coherent: clusters rarely straddle partitions,");
    println!("so far fewer partial clusters reach the driver.");
    let _ = write_json(Path::new("results"), "ablation_a4", &a4);
}
