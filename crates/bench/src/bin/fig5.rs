//! Reproduce Figure 5: time taken by kd-tree construction as a fraction
//! of the whole DBSCAN run (8 partitions), in 1/1000 units.
//!
//! The paper reports 0.05‰–5.5‰ (0.005%–0.55%), highest for the two 10k
//! datasets because their total runtime is short.
//!
//! Usage: `cargo run --release -p dbscan-bench --bin fig5 [--scale ...]`

use dbscan_bench::{fig5_row, fmt_duration, markdown_table, write_json, RunOptions, Scale};
use dbscan_datagen::StandardDataset;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, _) = Scale::from_args(&args);
    println!("# Figure 5: kd-tree construction vs whole DBSCAN (scale: {scale})\n");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for ds in StandardDataset::ALL {
        let spec = scale.spec(ds);
        let opts =
            if ds == StandardDataset::R1m { RunOptions::r1m() } else { RunOptions::default() };
        let row = fig5_row(spec.name, &spec, opts);
        rows.push(vec![
            row.dataset.clone(),
            format!("{}", row.n),
            fmt_duration(row.kdtree),
            fmt_duration(row.whole),
            format!("{:.3}", row.per_mille),
        ]);
        results.push(row);
    }
    println!(
        "{}",
        markdown_table(
            &["Dataset", "Points", "kd-tree build", "whole DBSCAN (8 parts)", "ratio (1/1000)"],
            &rows
        )
    );
    println!("Paper's shape: ratios well below 1% everywhere; larger for the 10k");
    println!("datasets because the denominator (total time) is small.");
    let _ = write_json(Path::new("results"), "fig5", &results);
}
