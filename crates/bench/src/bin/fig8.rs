//! Reproduce Figure 8: speedup curves — executor-only (left column) and
//! executor+driver (right column) — for the 10k, 100k and 1m datasets.
//!
//! The paper's reference numbers: 10k → 1.9/3.6/6.2 at 2/4/8 cores;
//! 100k → 3.3/6.0/8.8/10.2 at 4/8/16/32 cores (total speedup sagging to
//! 5.6 at 32 cores as the driver merge grows); 1m → 58/83/110/137 at
//! 64/128/256/512 cores (with pruning + small-cluster filtering).
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin fig8 -- [--size 10k|100k|1m] [--scale ...]

use dbscan_bench::{fig8_series, markdown_table, write_json, RunOptions, Scale};
use dbscan_datagen::StandardDataset;
use std::path::Path;

fn run_panel(ds: StandardDataset, cores: &[usize], opts: RunOptions, scale: Scale) {
    let spec = scale.spec(ds);
    println!("## Fig. 8 panel: {} (scale: {scale})\n", spec.name);
    let series = fig8_series(&spec, cores, opts);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.cores),
                format!("{:.2}", p.speedup_executor),
                format!("{:.2}", p.speedup_total),
                format!("{}", p.partial_clusters),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["Cores", "Speedup (executors only)", "Speedup (exec + driver)", "Partial clusters"],
            &rows
        )
    );
    let _ = write_json(Path::new("results"), &format!("fig8_{}", spec.name), &series);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, rest) = Scale::from_args(&args);
    let size = rest
        .iter()
        .position(|a| a == "--size")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    println!("# Figure 8: speedup of DBSCAN with Spark\n");
    let run_10k = || {
        run_panel(StandardDataset::C10k, &[2, 4, 8], RunOptions::default(), scale);
        run_panel(StandardDataset::R10k, &[2, 4, 8], RunOptions::default(), scale);
    };
    let run_100k = || {
        run_panel(StandardDataset::C100k, &[4, 8, 16, 32], RunOptions::default(), scale);
        run_panel(StandardDataset::R100k, &[4, 8, 16, 32], RunOptions::default(), scale);
    };
    let run_1m = || {
        run_panel(StandardDataset::R1m, &[64, 128, 256, 512], RunOptions::r1m(), scale);
    };
    match size {
        "10k" => run_10k(),
        "100k" => run_100k(),
        "1m" => run_1m(),
        _ => {
            run_10k();
            run_100k();
            run_1m();
        }
    }
    println!("Paper's shape: executor-only speedup near-linear; total speedup");
    println!("flattens as the driver merge grows with partial clusters (most");
    println!("visibly for the 100k datasets at 32 cores).");
}
