//! Chaos smoke test — CI's end-to-end check of the fault subsystem.
//!
//! Runs one cell (or the whole small matrix) of the chaos campaign:
//! every DBSCAN entrypoint is driven through the [`DbscanRunner`]
//! facade under a seeded [`FaultPlan`] and its clustering is compared
//! byte-for-byte against a clean run plus the sequential oracle. Any
//! divergence writes the faulty run's Chrome trace to the output
//! directory and exits non-zero, so CI can upload the trace of the
//! failing seed as an artifact.
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin chaos_smoke -- \
//!       [seed|all] [task-failures|fetch-failures|executor-kill|all] [out_dir]

use dbscan_core::{
    core_labels_equivalent, DbscanParams, DbscanRunner, MrDbscan, MrDbscanIterative, RunEnv,
    SequentialDbscan, ShuffleDbscan, SparkDbscan,
};
use dbscan_datagen::StandardDataset;
use sparklet::{
    chrome_trace_json, ClusterConfig, Context, EventKind, ExecutorKillAt, FaultPlan, FaultRule,
};
use std::path::Path;
use std::sync::Arc;

const PARTITIONS: usize = 4;

fn plan(name: &str) -> FaultPlan {
    match name {
        "task-failures" => FaultPlan::none()
            .with_task_failures(FaultRule::with_prob(1.0, 2))
            .with_stragglers(FaultRule::with_prob(0.3, 1), 2),
        "fetch-failures" => FaultPlan::none()
            .with_fetch_failures(FaultRule::always_first(1))
            .with_task_failures(FaultRule::with_prob(0.4, 1)),
        "executor-kill" => FaultPlan::none()
            .with_task_failures(FaultRule::with_prob(0.3, 1))
            .with_executor_kill(ExecutorKillAt { stage: 1, executor: 0, after_tasks: 1 })
            .with_executor_kill(ExecutorKillAt { stage: 3, executor: 1, after_tasks: 1 }),
        other => {
            eprintln!("unknown plan {other:?}");
            std::process::exit(2);
        }
    }
}

fn runners(params: DbscanParams) -> Vec<Box<dyn DbscanRunner>> {
    vec![
        Box::new(SequentialDbscan::new(params)),
        Box::new(SparkDbscan::new(params).exact()),
        Box::new(ShuffleDbscan::new(params).partitions(PARTITIONS)),
        Box::new(MrDbscan::new(params, PARTITIONS).exact()),
        Box::new(MrDbscanIterative::new(params, PARTITIONS)),
    ]
}

/// Run one (seed, plan) cell across all five runners. Returns the
/// number of failed invariants after writing failing traces to
/// `out_dir`.
fn run_cell(seed: u64, plan_name: &str, out_dir: &Path) -> usize {
    let mut spec = StandardDataset::C10k.scaled_spec(32);
    spec.params.seed = 1000 + seed;
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    let oracle = SequentialDbscan::new(params).run(Arc::clone(&data));
    let fault = plan(plan_name);
    let mut failures = 0;

    for runner in runners(params) {
        let tag = format!("seed={seed} plan={plan_name} runner={}", runner.name());

        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let clean = match runner.run_dbscan(&RunEnv::engine(&clean_ctx), Arc::clone(&data)) {
            Ok(out) => out.clustering.canonicalize().labels,
            Err(e) => {
                eprintln!("FAIL chaos[{tag}]: clean run errored: {e}");
                failures += 1;
                continue;
            }
        };

        let ctx = Context::new(
            ClusterConfig::local(PARTITIONS)
                .with_tracing()
                .with_seed(seed)
                .with_fault(fault.clone())
                .with_max_attempts(6),
        );
        let outcome = runner.run_dbscan(&RunEnv::engine(&ctx), Arc::clone(&data));
        let trace = ctx.trace().snapshot();
        let mut problems: Vec<String> = Vec::new();
        match outcome {
            Ok(out) => {
                if out.clustering.canonicalize().labels != clean {
                    problems.push("clustering differs from clean run".into());
                }
                if !core_labels_equivalent(&out.clustering, &oracle) {
                    problems.push("clustering differs from sequential oracle".into());
                }
            }
            Err(e) => problems.push(format!("chaos run errored: {e}")),
        }

        // recovery must be surgical: only lost map outputs recomputed
        let lost: Vec<(usize, usize)> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MapOutputLost { shuffle, partition } => Some((shuffle, partition)),
                _ => None,
            })
            .collect();
        let orphans = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MapOutputRecomputed { shuffle, partition } => Some((shuffle, partition)),
                _ => None,
            })
            .filter(|p| !lost.contains(p))
            .count();
        if orphans > 0 {
            problems.push(format!("{orphans} map outputs recomputed without being lost"));
        }

        if problems.is_empty() {
            println!("ok   chaos[{tag}] ({} lost map outputs recovered)", lost.len());
        } else {
            let file =
                out_dir.join(format!("chaos_{}_{}_seed{}.json", runner.name(), plan_name, seed));
            std::fs::create_dir_all(out_dir).expect("create out dir");
            std::fs::write(&file, chrome_trace_json(&trace)).expect("write trace");
            for p in &problems {
                eprintln!("FAIL chaos[{tag}]: {p} (trace: {})", file.display());
            }
            failures += problems.len();
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed_arg = args.get(1).map(String::as_str).unwrap_or("all");
    let plan_arg = args.get(2).map(String::as_str).unwrap_or("all");
    let out_dir = args.get(3).map(String::as_str).unwrap_or("results");
    let out_dir = Path::new(out_dir);

    let seeds: Vec<u64> = if seed_arg == "all" {
        vec![1, 2, 3, 4]
    } else {
        vec![seed_arg.parse().expect("seed must be an integer or 'all'")]
    };
    let plan_names: Vec<&str> = if plan_arg == "all" {
        vec!["task-failures", "fetch-failures", "executor-kill"]
    } else {
        vec![plan_arg]
    };

    let mut failures = 0;
    for &seed in &seeds {
        for name in &plan_names {
            failures += run_cell(seed, name, out_dir);
        }
    }
    if failures > 0 {
        eprintln!("chaos smoke: {failures} invariant violations");
        std::process::exit(1);
    }
    println!(
        "chaos smoke: {} cells x 5 runners, all invariants hold",
        seeds.len() * plan_names.len()
    );
}
