//! Reproduce Table I: properties of the five test datasets, plus the
//! generated ground-truth structure our synthetic-cluster generator
//! (the IBM Quest stand-in) produced for each.
//!
//! Usage: `cargo run --release -p dbscan-bench --bin table1 [--scale small|medium|paper]`

use dbscan_bench::{markdown_table, Scale};
use dbscan_datagen::StandardDataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, _) = Scale::from_args(&args);
    println!("# Table I: properties of test data (scale: {scale})\n");

    let mut rows = Vec::new();
    for ds in StandardDataset::ALL {
        let spec = scale.spec(ds);
        let (data, gt) = spec.generate();
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", data.len()),
            format!("{}", data.dim()),
            format!("{}", spec.eps),
            format!("{}", spec.min_pts),
            format!("{}", gt.num_clusters()),
            format!("{:.1}%", gt.noise_count() as f64 / data.len() as f64 * 100.0),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["Name", "Points", "d", "eps", "minpts", "gen. clusters", "gen. noise"],
            &rows
        )
    );
    println!("Paper's Table I columns are Name/Points/d/eps/minpts; the last two");
    println!("columns document the synthetic ground truth of our generator.");
}
