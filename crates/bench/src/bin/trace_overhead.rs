//! Assert the tracing hot path is free when tracing is off.
//!
//! The task hot path calls [`TraceCollector::record`] for every
//! lifecycle/shuffle event; with tracing disabled that must cost one
//! relaxed atomic load and **zero heap allocations**, or the "tracing
//! is safe to leave compiled in" claim is false. A counting global
//! allocator measures exactly that; the binary exits non-zero on any
//! allocation. (Enabled-path counts are reported for context — ring
//! slots are preallocated, so steady-state recording should not
//! allocate either.)
//!
//! Usage:
//!   cargo run --release -p dbscan-bench --bin trace_overhead

use sparklet::trace::{EventKind, TaskScope, TraceCollector};
use sparklet::TraceConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ITERS: u64 = 100_000;

fn hammer(collector: &TraceCollector) -> u64 {
    let scope = TaskScope { stage: 0, partition: 3, attempt: 0, ordinal: 0, executor: 1 };
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..ITERS {
        collector.record(Some(scope), EventKind::TaskStart);
        collector
            .record(Some(scope), EventKind::ShuffleWrite { shuffle: 0, records: i, bytes: i * 16 });
        collector.record(Some(scope), EventKind::TaskSuccess);
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn main() {
    let disabled = TraceCollector::new(TraceConfig::default());
    assert!(!disabled.is_enabled());
    let disabled_allocs = hammer(&disabled);
    println!("disabled path: {disabled_allocs} allocations over {} record calls", 3 * ITERS);

    // warm the enabled collector once so lazy init (if any) is paid,
    // then measure its steady state against preallocated ring slots
    let enabled = TraceCollector::new(TraceConfig::enabled());
    hammer(&enabled);
    let enabled_allocs = hammer(&enabled);
    println!("enabled steady state: {enabled_allocs} allocations over {} record calls", 3 * ITERS);

    if disabled_allocs != 0 {
        eprintln!("FAIL: disabled tracing allocated {disabled_allocs} times on the hot path");
        std::process::exit(1);
    }
    if enabled_allocs != 0 {
        eprintln!("FAIL: enabled steady-state recording allocated {enabled_allocs} times");
        std::process::exit(1);
    }
    println!("OK: record() is allocation-free (disabled and enabled steady state)");
}
