//! Ablation A2 follow-up: leaf-bucketed kd-tree vs the node-per-point
//! kd-tree on the paper's r10k workload (d=10, Table I), the access
//! pattern DBSCAN actually performs — one eps-range query from every
//! dataset point.
//!
//! Reports build time, total/per-query range time, and index size, and
//! writes `results/ablation_a2_bkd_vs_kd.json`.
//!
//! Usage: `cargo run --release -p dbscan-bench --bin a2_bkd_vs_kd
//! [-- --scale small|medium|paper]`

use dbscan_bench::{markdown_table, write_json, Scale};
use dbscan_datagen::StandardDataset;
use dbscan_spatial::{BkdTree, KdTree, Metric, QueryScratch, SpatialIndex};
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    index: String,
    bucket_size: usize,
    build_micros: u128,
    query_total_micros: u128,
    queries: usize,
    mean_query_nanos: u128,
    matches_total: usize,
    size_bytes: usize,
    speedup_vs_kdtree: f64,
}

/// Median of `reps` timed runs of `f` (so one scheduler hiccup cannot
/// decide the comparison).
fn median_micros(reps: usize, mut f: impl FnMut() -> usize) -> (u128, usize) {
    let mut times = Vec::with_capacity(reps);
    let mut matches = 0;
    for _ in 0..reps {
        let t = Instant::now();
        matches = black_box(f());
        times.push(t.elapsed().as_micros());
    }
    times.sort_unstable();
    (times[times.len() / 2], matches)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (scale, _) = Scale::from_args(&args);
    let spec = scale.spec(StandardDataset::R10k);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let eps = spec.eps;
    let n = data.len();
    println!(
        "# A2: bucketed vs node-per-point kd-tree on {} ({n} points, d={}, eps={eps}, scale: {scale})\n",
        spec.name,
        data.dim()
    );

    let reps = 5;
    let mut rows: Vec<Row> = Vec::new();

    // -- baseline: the node-per-point kd-tree (ablation arm) -----------
    let t = Instant::now();
    let kd = KdTree::build(Arc::clone(&data));
    let kd_build = t.elapsed().as_micros();
    let mut buf = Vec::new();
    let (kd_query, kd_matches) = median_micros(reps, || {
        let mut total = 0usize;
        for (_, row) in data.iter() {
            buf.clear();
            kd.range_into(row, eps, &mut buf);
            total += buf.len();
        }
        total
    });
    rows.push(Row {
        index: "kdtree (node-per-point)".into(),
        bucket_size: 1,
        build_micros: kd_build,
        query_total_micros: kd_query,
        queries: n,
        mean_query_nanos: kd_query.saturating_mul(1000) / n.max(1) as u128,
        matches_total: kd_matches,
        size_bytes: kd.size_bytes(),
        speedup_vs_kdtree: 1.0,
    });

    // -- bucketed tree across leaf sizes -------------------------------
    for bucket in [8usize, 16, 32] {
        let t = Instant::now();
        let bkd = BkdTree::build_with(Arc::clone(&data), Metric::Euclidean, bucket);
        let build = t.elapsed().as_micros();
        let mut scratch = QueryScratch::new();
        let (query, matches) = median_micros(reps, || {
            let mut total = 0usize;
            for (_, row) in data.iter() {
                buf.clear();
                bkd.range_into_scratch(row, eps, &mut scratch, &mut buf);
                total += buf.len();
            }
            total
        });
        assert_eq!(matches, kd_matches, "indexes must return identical neighbourhoods");
        rows.push(Row {
            index: "bkdtree (leaf-bucketed)".into(),
            bucket_size: bucket,
            build_micros: build,
            query_total_micros: query,
            queries: n,
            mean_query_nanos: query.saturating_mul(1000) / n.max(1) as u128,
            matches_total: matches,
            size_bytes: bkd.size_bytes(),
            speedup_vs_kdtree: kd_query as f64 / query.max(1) as f64,
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.index.clone(),
                format!("{}", r.bucket_size),
                format!("{} µs", r.build_micros),
                format!("{} µs", r.query_total_micros),
                format!("{} ns", r.mean_query_nanos),
                format!("{}", r.size_bytes),
                format!("{:.2}x", r.speedup_vs_kdtree),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["Index", "Bucket", "Build", "Range x n", "Mean query", "Index bytes", "Speedup",],
            &table
        )
    );
    println!("(every arm returned {kd_matches} total matches over {n} queries)");
    let _ = write_json(Path::new("results"), "ablation_a2_bkd_vs_kd", &rows);
}
