//! Ablation A2: spatial index comparison — node-per-point kd-tree (the
//! paper's choice, exact and pruned) vs the leaf-bucketed kd-tree (our
//! default) vs brute force (the `O(n^2)` strawman) vs uniform grid, on
//! the paper's d=10 data. Build cost and eps-range query cost.
//!
//! For a standalone timed bkd-vs-kd comparison that writes JSON to
//! `results/`, run `cargo run --release -p dbscan-bench --bin
//! a2_bkd_vs_kd -- --scale paper`.

use criterion::{criterion_group, criterion_main, Criterion};
use dbscan_datagen::StandardDataset;
use dbscan_spatial::{
    BkdTree, BruteForceIndex, GridIndex, KdTree, PruneConfig, QueryScratch, RTree, SpatialIndex,
};
use std::hint::black_box;
use std::sync::Arc;

fn bench_spatial(c: &mut Criterion) {
    let spec = StandardDataset::C10k.scaled_spec(8);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let eps = spec.eps;

    let mut g = c.benchmark_group("a2_index_build");
    g.sample_size(10);
    g.bench_function("kdtree", |b| b.iter(|| black_box(KdTree::build(Arc::clone(&data))).len()));
    g.bench_function("bkdtree", |b| b.iter(|| black_box(BkdTree::build(Arc::clone(&data))).len()));
    g.bench_function("grid", |b| {
        b.iter(|| black_box(GridIndex::build(Arc::clone(&data), eps)).occupied_cells())
    });
    g.bench_function("rtree", |b| b.iter(|| black_box(RTree::build(Arc::clone(&data))).len()));
    g.finish();

    let kd = KdTree::build(Arc::clone(&data));
    let bkd = BkdTree::build(Arc::clone(&data));
    let bf = BruteForceIndex::new(Arc::clone(&data));
    let grid = GridIndex::build(Arc::clone(&data), eps);
    let rtree = RTree::build(Arc::clone(&data));
    let queries: Vec<Vec<f64>> =
        data.iter().step_by(17).map(|(_, row)| row.to_vec()).take(64).collect();

    let mut g = c.benchmark_group("a2_range_query_x64");
    g.sample_size(10);
    let mut buf = Vec::new();
    g.bench_function("kdtree_exact", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                kd.range_into(q, eps, &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
    g.bench_function("kdtree_pruned_cap32", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                kd.range_pruned(q, eps, PruneConfig::cap_neighbors(32), &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
    let mut scratch = QueryScratch::new();
    g.bench_function("bkdtree_exact", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                bkd.range_into_scratch(q, eps, &mut scratch, &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
    g.bench_function("bkdtree_pruned_cap32", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                bkd.range_pruned_scratch(
                    q,
                    eps,
                    PruneConfig::cap_neighbors(32),
                    &mut scratch,
                    &mut buf,
                );
                total += buf.len();
            }
            black_box(total)
        })
    });
    g.bench_function("bkdtree_count_at_least_4", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                total += usize::from(bkd.count_at_least(q, eps, 4, &mut scratch));
            }
            black_box(total)
        })
    });
    g.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                bf.range_into(q, eps, &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
    g.bench_function("rtree", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                rtree.range_into(q, eps, &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
    g.bench_function("grid_d10", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for q in &queries {
                buf.clear();
                grid.range_into(q, eps, &mut buf);
                total += buf.len();
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_spatial);
criterion_main!(benches);
