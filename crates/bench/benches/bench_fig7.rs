//! Criterion bench behind Figure 7: one MapReduce DBSCAN run vs one
//! Spark DBSCAN run on the (scaled) 10k dataset — the in-memory vs
//! disk-spilling data path gap.

use criterion::{criterion_group, criterion_main, Criterion};
use dbscan_core::{DbscanParams, MrDbscan, SparkDbscan};
use dbscan_datagen::StandardDataset;
use sparklet::{ClusterConfig, Context};
use std::hint::black_box;
use std::sync::Arc;

fn bench_fig7(c: &mut Criterion) {
    let spec = StandardDataset::C10k.scaled_spec(16);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();

    let mut g = c.benchmark_group("fig7_mr_vs_spark");
    g.sample_size(10);
    g.bench_function("spark_4cores", |b| {
        b.iter(|| {
            let ctx = Context::new(ClusterConfig::local(4));
            let r = SparkDbscan::new(params).partitions(4).run(&ctx, Arc::clone(&data));
            black_box(r.clustering.num_clusters())
        })
    });
    g.bench_function("mapreduce_4cores", |b| {
        b.iter(|| {
            let r = MrDbscan::new(params, 4).run(Arc::clone(&data), 4).unwrap();
            black_box(r.clustering.num_clusters())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
