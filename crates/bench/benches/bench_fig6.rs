//! Criterion bench behind Figure 6: the driver-side merge cost as the
//! number of partial clusters grows (the component the paper shows
//! rising with core count), for each merge strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_core::{merge_partial_clusters, MergeStrategy, PartialCluster, PartitionRanges};
use std::hint::black_box;

/// Synthesize `m` partial clusters over `parts` partitions forming long
/// chains (the worst case for single-pass merging).
fn synthetic_partials(parts: usize, per_partition: usize) -> (usize, Vec<PartialCluster>) {
    let members_per = 40u32;
    let span = per_partition as u32 * members_per;
    let n = parts as u32 * span;
    let ranges = PartitionRanges::new(n as usize, parts);
    let mut out = Vec::new();
    for part in 0..parts {
        let (start, _) = ranges.range(part);
        for k in 0..per_partition {
            let base = start + k as u32 * members_per;
            let mut c = PartialCluster::new(part as u32, ranges.range(part));
            c.members = (base..base + members_per).collect();
            // chain a seed into the same-offset cluster of the next partition
            if part + 1 < parts {
                let (next_start, _) = ranges.range(part + 1);
                c.members.push(next_start + k as u32 * members_per);
            }
            out.push(c);
        }
    }
    (n as usize, out)
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_driver_merge");
    g.sample_size(10);
    for (parts, per) in [(4, 8), (16, 16), (32, 32)] {
        let (n, partials) = synthetic_partials(parts, per);
        let core = vec![true; n];
        for (ms, name) in [
            (MergeStrategy::PaperSinglePass, "single_pass"),
            (MergeStrategy::PaperFixpoint, "fixpoint"),
            (MergeStrategy::UnionFind, "union_find"),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("{}partials", partials.len())),
                &partials,
                |b, partials| {
                    b.iter(|| {
                        let out = merge_partial_clusters(n, black_box(partials), ms, &core);
                        black_box(out.merged_clusters)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
