//! Substrate microbenchmarks: sparklet primitives (narrow pipeline,
//! shuffle, accumulator), mini-DFS throughput, and a MapReduce
//! word-count — the building blocks whose costs explain the
//! macro-figures.

use criterion::{criterion_group, criterion_main, Criterion};
use mapred::{Counters, Emitter, JobConfig, MapReduceJob, Mapper, Reducer};
use minidfs::{DfsCluster, DfsConfig};
use sparklet::{ClusterConfig, Context};
use std::hint::black_box;

fn bench_sparklet(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_sparklet");
    g.sample_size(10);
    g.bench_function("narrow_pipeline_100k", |b| {
        let ctx = Context::new(ClusterConfig::local(4));
        let data: Vec<i64> = (0..100_000).collect();
        b.iter(|| {
            let out = ctx
                .parallelize(data.clone(), 8)
                .map(|x| x * 3)
                .filter(|x| x % 2 == 0)
                .count()
                .unwrap();
            black_box(out)
        })
    });
    g.bench_function("reduce_by_key_50k", |b| {
        let ctx = Context::new(ClusterConfig::local(4));
        let pairs: Vec<(u32, u64)> = (0..50_000).map(|i| (i % 100, 1u64)).collect();
        b.iter(|| {
            let out =
                ctx.parallelize(pairs.clone(), 8).reduce_by_key(4, |a, b| a + b).collect().unwrap();
            black_box(out.len())
        })
    });
    g.bench_function("accumulator_20k_adds", |b| {
        let ctx = Context::new(ClusterConfig::local(4));
        let data: Vec<u64> = (0..20_000).collect();
        b.iter(|| {
            let acc = ctx.accumulator(0u64);
            let a = acc.clone();
            ctx.parallelize(data.clone(), 4)
                .foreach_partition(move |_, d| {
                    for v in d {
                        a.add(v);
                    }
                })
                .unwrap();
            black_box(acc.value())
        })
    });
    g.finish();
}

fn bench_minidfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_minidfs");
    g.sample_size(10);
    g.bench_function("write_read_1mb_repl2", |b| {
        let payload = vec![0xA5u8; 1 << 20];
        let mut file = 0usize;
        b.iter(|| {
            let dfs = DfsCluster::new(DfsConfig {
                num_datanodes: 4,
                replication: 2,
                block_size: 128 * 1024,
            })
            .unwrap();
            file += 1;
            let path = format!("/bench-{file}");
            dfs.write_file(&path, &payload).unwrap();
            black_box(dfs.read_file(&path).unwrap().len())
        })
    });
    g.finish();
}

struct Tokenize;

impl Mapper for Tokenize {
    type In = String;
    type KOut = String;
    type VOut = u64;

    fn map(&self, record: String, emit: &mut Emitter<String, u64>, _c: &Counters) {
        for w in record.split_whitespace() {
            emit.emit(w.to_string(), 1);
        }
    }
}

struct Sum;

impl Reducer for Sum {
    type KIn = String;
    type VIn = u64;
    type Out = (String, u64);

    fn reduce(&self, k: String, vs: Vec<u64>, out: &mut Vec<(String, u64)>, _c: &Counters) {
        out.push((k, vs.iter().sum()));
    }
}

fn bench_mapred(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_mapred");
    g.sample_size(10);
    g.bench_function("wordcount_2k_lines", |b| {
        let lines: Vec<String> =
            (0..2000).map(|i| format!("w{} w{} w{}", i % 50, i % 13, i % 7)).collect();
        let splits: Vec<Vec<String>> = lines.chunks(500).map(|c| c.to_vec()).collect();
        b.iter(|| {
            let r = MapReduceJob::new(Tokenize, Sum, JobConfig::with_slots(4))
                .run(splits.clone())
                .unwrap();
            black_box(r.outputs.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sparklet, bench_minidfs, bench_mapred);
criterion_main!(benches);
