//! Criterion bench behind Figure 8: the executor-phase work of the
//! partitioned algorithm at different partition counts (the quantity
//! whose LPT makespan produces the speedup curves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbscan_core::{DbscanParams, SparkDbscan};
use dbscan_datagen::StandardDataset;
use sparklet::{ClusterConfig, Context};
use std::hint::black_box;
use std::sync::Arc;

fn bench_fig8(c: &mut Criterion) {
    let spec = StandardDataset::R10k.scaled_spec(16);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();

    let mut g = c.benchmark_group("fig8_partitioned_run");
    g.sample_size(10);
    for p in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("partitions", p), &p, |b, &p| {
            b.iter(|| {
                let ctx = Context::new(ClusterConfig::virtual_cluster(p));
                let r = SparkDbscan::new(params).partitions(p).run(&ctx, Arc::clone(&data));
                black_box((r.num_partial_clusters, r.clustering.num_clusters()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
