//! Criterion bench behind Figure 5: kd-tree construction cost relative
//! to the full clustering (the figure's claim is that construction is a
//! negligible fraction).

use criterion::{criterion_group, criterion_main, Criterion};
use dbscan_core::{DbscanParams, SequentialDbscan};
use dbscan_datagen::StandardDataset;
use dbscan_spatial::KdTree;
use std::hint::black_box;
use std::sync::Arc;

fn bench_fig5(c: &mut Criterion) {
    let spec = StandardDataset::C10k.scaled_spec(16);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();

    let mut g = c.benchmark_group("fig5_kdtree_fraction");
    g.sample_size(10);
    g.bench_function("kdtree_build_only", |b| {
        b.iter(|| black_box(KdTree::build(Arc::clone(&data))).len())
    });
    g.bench_function("whole_dbscan", |b| {
        b.iter(|| {
            let r = SequentialDbscan::new(params).run(Arc::clone(&data));
            black_box(r.num_clusters())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
