//! Criterion bench behind Table I: synthetic-cluster data generation
//! throughput for the catalog datasets (scaled down for bench speed).

use criterion::{criterion_group, criterion_main, Criterion};
use dbscan_datagen::StandardDataset;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_datagen");
    g.sample_size(10);
    for ds in [StandardDataset::C10k, StandardDataset::R10k, StandardDataset::R1m] {
        let spec = ds.scaled_spec(64);
        g.bench_function(format!("generate_{}", spec.name), |b| {
            b.iter(|| {
                let (data, gt) = black_box(&spec).generate();
                black_box((data.len(), gt.noise_count()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
