//! The driver-side entry point (Spark's `SparkContext`).

use crate::accumulator::{Accumulator, AccumulatorRegistry};
use crate::broadcast::Broadcast;
use crate::config::{ClusterConfig, SpeculationConfig};
use crate::error::SparkResult;
use crate::executor::ExecutorPool;
use crate::memory::{MemoryBudget, MemoryManager, MemoryStats};
use crate::metrics::JobMetrics;
use crate::rdd::{ops, text::TextFileRdd, Rdd};
use crate::shuffle::ShuffleManager;
use crate::spill::SpillStore;
use crate::storage::{CacheConfig, CacheManager};
use crate::trace::{DfsTraceSink, EventKind, TraceCollector, TraceHandle};
use crate::Data;
use minidfs::DfsCluster;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

pub(crate) struct ContextInner {
    pub(crate) config: ClusterConfig,
    pub(crate) shuffles: Arc<ShuffleManager>,
    pub(crate) cache: Arc<CacheManager>,
    pub(crate) accums: Arc<AccumulatorRegistry>,
    pub(crate) pool: ExecutorPool,
    pub(crate) tracer: Arc<TraceCollector>,
    pub(crate) memory: Arc<MemoryManager>,
    pub(crate) spill: Arc<SpillStore>,
    next_rdd: AtomicUsize,
    next_shuffle: AtomicUsize,
    next_stage: AtomicUsize,
    next_job: AtomicUsize,
    next_broadcast: AtomicUsize,
    next_accum: AtomicUsize,
    metrics: Mutex<Vec<JobMetrics>>,
    broadcast_bytes: AtomicU64,
    /// Live speculative-execution policy; starts from the config and can
    /// be replaced between jobs (mirrors the memory-budget override).
    speculation: Mutex<SpeculationConfig>,
}

impl ContextInner {
    pub(crate) fn next_rdd_id(&self) -> usize {
        self.next_rdd.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_shuffle_id(&self) -> usize {
        self.next_shuffle.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_stage_id(&self) -> usize {
        self.next_stage.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn next_job_id(&self) -> usize {
        self.next_job.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn record_job(&self, job: JobMetrics) {
        self.metrics.lock().push(job);
    }
}

/// The driver's handle to the (in-process) cluster. Cheap to clone.
#[derive(Clone)]
pub struct Context {
    pub(crate) inner: Arc<ContextInner>,
}

impl Context {
    /// Start a context per `config` (spawns the worker threads).
    pub fn new(config: ClusterConfig) -> Self {
        let tracer = Arc::new(TraceCollector::new(config.trace));
        let memory = Arc::new(MemoryManager::new(config.memory, Arc::clone(&tracer)));
        let spill = Arc::new(SpillStore::new().expect("create spill dir"));
        let pool = ExecutorPool::start(
            config.worker_threads,
            config.fault.clone(),
            config.seed,
            Arc::clone(&tracer),
            Arc::clone(&memory),
            Arc::clone(&config.schedule),
        );
        let shuffles = Arc::new(ShuffleManager::with_tracer_and_faults(
            Arc::clone(&tracer),
            config.fault.fetch_failure,
            config.seed,
            Arc::clone(&memory),
            Arc::clone(&spill),
            Arc::clone(&config.schedule),
        ));
        let cache = Arc::new(CacheManager::new(CacheConfig {
            memory: Arc::clone(&memory),
            spill: Arc::clone(&spill),
        }));
        let speculation = Mutex::new(config.speculation);
        Context {
            inner: Arc::new(ContextInner {
                config,
                shuffles,
                cache,
                memory,
                spill,
                accums: Arc::new(AccumulatorRegistry::new()),
                pool,
                tracer,
                next_rdd: AtomicUsize::new(0),
                next_shuffle: AtomicUsize::new(0),
                next_stage: AtomicUsize::new(0),
                next_job: AtomicUsize::new(0),
                next_broadcast: AtomicUsize::new(0),
                next_accum: AtomicUsize::new(0),
                metrics: Mutex::new(Vec::new()),
                broadcast_bytes: AtomicU64::new(0),
                speculation,
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// Number of virtual executors.
    pub fn num_executors(&self) -> usize {
        self.inner.config.num_executors
    }

    // ---- RDD sources -------------------------------------------------

    /// Distribute a driver-side collection into `num_partitions`
    /// contiguous, balanced slices.
    pub fn parallelize<T: Data>(&self, data: Vec<T>, num_partitions: usize) -> Rdd<T> {
        let node = Arc::new(ops::ParallelRdd {
            id: self.inner.next_rdd_id(),
            data: Arc::new(data),
            num_partitions: num_partitions.max(1),
        });
        Rdd::new(node, self.clone())
    }

    /// A partitioned `start..end` range — each partition is a contiguous
    /// index block, the paper's partitioning scheme.
    pub fn range(&self, start: u64, end: u64, num_partitions: usize) -> Rdd<u64> {
        let node = Arc::new(ops::RangeRdd {
            id: self.inner.next_rdd_id(),
            start,
            end: end.max(start),
            num_partitions: num_partitions.max(1),
        });
        Rdd::new(node, self.clone())
    }

    /// Lines of a DFS file, one partition per block, with Hadoop line
    /// split semantics. When tracing is enabled, the cluster's block
    /// events are routed into this context's trace.
    pub fn text_file(&self, dfs: Arc<DfsCluster>, path: &str) -> SparkResult<Rdd<String>> {
        if self.inner.tracer.is_enabled() {
            self.attach_dfs(&dfs);
        }
        // forward the fault plan's DFS read rule to the cluster so block
        // reads exercise replica fallback (and, when every replica is
        // cursed, typed exhaustion)
        let rule = self.inner.config.fault.dfs_read_failure;
        if rule.is_active() {
            dfs.set_read_faults(Some(minidfs::ReadFaultPlan {
                seed: self.inner.config.seed,
                prob: rule.prob,
                max_dead_replicas_per_block: rule.max_per_task,
            }));
        }
        let node = TextFileRdd::open(self.inner.next_rdd_id(), dfs, path)?;
        Ok(Rdd::new(Arc::new(node), self.clone()))
    }

    /// Route `dfs`'s block-read events into this context's trace
    /// (replacing any sink installed on the cluster before).
    pub fn attach_dfs(&self, dfs: &DfsCluster) {
        dfs.set_event_sink(Some(Arc::new(DfsTraceSink { tracer: Arc::clone(&self.inner.tracer) })));
    }

    // ---- shared variables ---------------------------------------------

    /// Broadcast a read-only value to all executors, accounting
    /// `size_hint` logical bytes per executor.
    pub fn broadcast_sized<T: Send + Sync>(&self, value: T, size_hint: usize) -> Broadcast<T> {
        let id = self.inner.next_broadcast.fetch_add(1, Ordering::Relaxed);
        let shipped = (size_hint * self.num_executors()) as u64;
        self.inner.broadcast_bytes.fetch_add(shipped, Ordering::Relaxed);
        // broadcasts are metered but budget-exempt (shared read-only
        // state, not per-task working memory)
        self.inner.memory.meter_broadcast(shipped);
        self.inner.tracer.record_driver(EventKind::BroadcastCreate { id, bytes: shipped });
        Broadcast::new(id, value, size_hint)
    }

    /// Broadcast with `size_of::<T>()` as the size hint.
    pub fn broadcast<T: Send + Sync>(&self, value: T) -> Broadcast<T> {
        let hint = std::mem::size_of::<T>();
        self.broadcast_sized(value, hint)
    }

    /// Logical bytes shipped by all broadcasts so far.
    pub fn broadcast_bytes(&self) -> u64 {
        self.inner.broadcast_bytes.load(Ordering::Relaxed)
    }

    /// A general accumulator: `init` driver value folded with updates.
    pub fn accumulator_with<T, U>(
        &self,
        init: T,
        fold: impl Fn(&mut T, U) + Send + Sync + 'static,
    ) -> Accumulator<T, U>
    where
        T: Send + 'static,
        U: Send + 'static,
    {
        let id = self.inner.next_accum.fetch_add(1, Ordering::Relaxed);
        Accumulator::create(id, Arc::clone(&self.inner.accums), init, fold)
    }

    /// A summing accumulator (Spark's classic counter).
    pub fn accumulator<T>(&self, init: T) -> Accumulator<T>
    where
        T: std::ops::AddAssign<T> + Send + 'static,
    {
        self.accumulator_with(init, |a, b| *a += b)
    }

    /// A collection accumulator: every `add` appends one element — the
    /// construct the paper uses to return partial clusters to the driver.
    pub fn collection_accumulator<T: Send + 'static>(&self) -> Accumulator<Vec<T>, T> {
        self.accumulator_with(Vec::new(), |v: &mut Vec<T>, t| v.push(t))
    }

    // ---- cluster introspection & fault injection -----------------------

    /// Metrics of every completed job, oldest first.
    pub fn job_metrics(&self) -> Vec<JobMetrics> {
        self.inner.metrics.lock().clone()
    }

    /// Metrics of the most recent job.
    pub fn last_job(&self) -> Option<JobMetrics> {
        self.inner.metrics.lock().last().cloned()
    }

    /// Total records moved through shuffles in this context.
    pub fn shuffle_records(&self) -> u64 {
        self.inner.shuffles.total_records()
    }

    /// Total estimated bytes moved through shuffles in this context.
    pub fn shuffle_bytes(&self) -> u64 {
        self.inner.shuffles.total_bytes()
    }

    /// Simulate losing a (virtual) executor: its cached partitions and
    /// shuffle map outputs vanish; later jobs recompute them from
    /// lineage. Returns what was lost with it.
    pub fn kill_executor(&self, executor: usize) -> KillReport {
        let cached = self.inner.cache.kill_executor(executor);
        let maps = self.inner.shuffles.kill_executor(executor);
        self.inner.tracer.record_driver(EventKind::ExecutorKill {
            executor,
            cached_lost: cached,
            maps_lost: maps,
        });
        KillReport { executor, cached_partitions_lost: cached, map_outputs_lost: maps }
    }

    /// Handle to this context's structured trace (see [`crate::trace`]).
    /// Always available; records nothing unless
    /// [`crate::config::TraceConfig::enabled`] was set.
    pub fn trace(&self) -> TraceHandle {
        TraceHandle::new(Arc::clone(&self.inner.tracer))
    }

    // ---- memory ------------------------------------------------------

    /// This context's memory ledger (always live; unbounded by default).
    pub fn memory_manager(&self) -> Arc<MemoryManager> {
        Arc::clone(&self.inner.memory)
    }

    /// This context's disk spill tier.
    pub fn spill_store(&self) -> Arc<SpillStore> {
        Arc::clone(&self.inner.spill)
    }

    /// Snapshot of the memory counters (peaks, spilled/evicted bytes,
    /// backpressure waits, broadcast metering).
    pub fn memory_stats(&self) -> MemoryStats {
        self.inner.memory.stats()
    }

    /// Replace the per-executor memory budget for subsequent work.
    pub fn set_memory_budget(&self, budget: MemoryBudget) {
        self.inner.memory.set_budget(budget);
    }

    // ---- speculation -------------------------------------------------

    /// The speculative-execution policy stages currently run under.
    pub fn speculation(&self) -> SpeculationConfig {
        *self.inner.speculation.lock()
    }

    /// Replace the speculative-execution policy for subsequent stages.
    pub fn set_speculation(&self, spec: SpeculationConfig) {
        *self.inner.speculation.lock() = spec;
    }
}

/// What [`Context::kill_executor`] destroyed.
///
/// Both counts refer to state that *will be recomputed from lineage* on
/// the next job that needs it — losing an executor never loses data,
/// only work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillReport {
    /// The executor that was killed.
    pub executor: usize,
    /// Cached RDD partitions that lived on the executor and were
    /// evicted with it.
    pub cached_partitions_lost: usize,
    /// Shuffle map outputs the executor had produced, now missing
    /// (their map tasks re-run on the next dependent job).
    pub map_outputs_lost: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SparkError;

    fn ctx() -> Context {
        Context::new(ClusterConfig::local(4))
    }

    #[test]
    fn parallelize_collect_roundtrip() {
        let c = ctx();
        let data: Vec<i32> = (0..100).collect();
        let rdd = c.parallelize(data.clone(), 8);
        assert_eq!(rdd.num_partitions(), 8);
        assert_eq!(rdd.collect().unwrap(), data);
    }

    #[test]
    fn map_filter_flat_map_pipeline() {
        let c = ctx();
        let out = c
            .parallelize((0..10i64).collect(), 3)
            .map(|x| x + 1)
            .filter(|x| x % 2 == 0)
            .flat_map(|x| vec![x, -x])
            .collect()
            .unwrap();
        assert_eq!(out, vec![2, -2, 4, -4, 6, -6, 8, -8, 10, -10]);
    }

    #[test]
    fn count_and_partition_sizes() {
        let c = ctx();
        let rdd = c.parallelize((0..11i32).collect(), 4);
        assert_eq!(rdd.count().unwrap(), 11);
        assert_eq!(rdd.partition_sizes().unwrap().iter().sum::<usize>(), 11);
    }

    #[test]
    fn reduce_and_fold() {
        let c = ctx();
        let rdd = c.parallelize((1..=10i64).collect(), 3);
        assert_eq!(rdd.reduce(|a, b| a + b).unwrap(), Some(55));
        assert_eq!(rdd.fold(0, |a, b| a + b).unwrap(), 55);
        let empty = c.parallelize(Vec::<i64>::new(), 2);
        assert_eq!(empty.reduce(|a, b| a + b).unwrap(), None);
    }

    #[test]
    fn range_source() {
        let c = ctx();
        let r = c.range(5, 25, 4);
        assert_eq!(r.count().unwrap(), 20);
        assert_eq!(r.collect().unwrap(), (5..25).collect::<Vec<u64>>());
    }

    #[test]
    fn union_concatenates() {
        let c = ctx();
        let a = c.parallelize(vec![1, 2], 1);
        let b = c.parallelize(vec![3], 1);
        assert_eq!(a.union(&b).collect().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn zip_with_index_is_global() {
        let c = ctx();
        let rdd = c.parallelize(vec!["a", "b", "c", "d", "e"], 3);
        let z = rdd.zip_with_index().unwrap().collect().unwrap();
        let idx: Vec<u64> = z.iter().map(|(_, i)| *i).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn take_returns_prefix() {
        let c = ctx();
        let rdd = c.parallelize((0..50i32).collect(), 5);
        assert_eq!(rdd.take(3).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn reduce_by_key_shuffles_and_counts() {
        let c = ctx();
        let pairs: Vec<(u32, u64)> = (0..100).map(|i| (i % 4, 1u64)).collect();
        let rdd = c.parallelize(pairs, 4);
        let mut out = rdd.reduce_by_key(3, |a, b| a + b).collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 25), (1, 25), (2, 25), (3, 25)]);
        // map-side combine: 4 keys per map partition x 4 partitions
        assert_eq!(c.shuffle_records(), 16, "shuffle is accounted post-combine");
        assert!(c.shuffle_bytes() > 0);
    }

    #[test]
    fn group_by_key_gathers_all_values() {
        let c = ctx();
        let rdd = c.parallelize(vec![(1u8, 'a'), (2, 'b'), (1, 'c')], 2);
        let mut out = rdd.group_by_key(2).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        out[0].1.sort_unstable();
        assert_eq!(out, vec![(1, vec!['a', 'c']), (2, vec!['b'])]);
    }

    #[test]
    fn count_by_key_counts() {
        let c = ctx();
        let rdd = c.parallelize(vec![("x", 1), ("y", 1), ("x", 1)], 2);
        let counts = rdd.count_by_key().unwrap();
        assert_eq!(counts["x"], 2);
        assert_eq!(counts["y"], 1);
    }

    #[test]
    fn narrow_only_jobs_move_zero_shuffle_bytes() {
        let c = ctx();
        let rdd = c.parallelize((0..1000i64).collect(), 8).map(|x| x * 2);
        rdd.collect().unwrap();
        assert_eq!(c.shuffle_records(), 0);
        assert_eq!(c.shuffle_bytes(), 0);
    }

    #[test]
    fn foreach_partition_with_collection_accumulator() {
        let c = ctx();
        let acc = c.collection_accumulator::<usize>();
        let acc2 = acc.clone();
        c.parallelize((0..20i32).collect(), 4)
            .foreach_partition(move |p, data| {
                acc2.add(p * 1000 + data.len());
            })
            .unwrap();
        let mut v = acc.value();
        v.sort_unstable();
        assert_eq!(v, vec![5, 1005, 2005, 3005]);
    }

    #[test]
    fn summing_accumulator_across_tasks() {
        let c = ctx();
        let acc = c.accumulator(0u64);
        let acc2 = acc.clone();
        c.parallelize((1..=100u64).collect(), 7)
            .foreach_partition(move |_, data| {
                for v in data {
                    acc2.add(v);
                }
            })
            .unwrap();
        assert_eq!(acc.value(), 5050);
    }

    #[test]
    fn cache_avoids_recompute() {
        let c = ctx();
        let hits_counter = c.accumulator(0u64);
        let hc = hits_counter.clone();
        let rdd = c
            .parallelize((0..10i32).collect(), 2)
            .map(move |x| {
                hc.add(1); // counts how many times elements are computed
                x
            })
            .cache();
        rdd.collect().unwrap();
        rdd.collect().unwrap();
        assert_eq!(hits_counter.value(), 10, "second collect served from cache");
        assert_eq!(rdd.unpersist(), 2);
        rdd.collect().unwrap();
        assert_eq!(hits_counter.value(), 20, "unpersist forces recompute");
    }

    #[test]
    fn metrics_recorded_per_job() {
        let c = ctx();
        let rdd = c.parallelize((0..100i32).collect(), 4);
        rdd.collect().unwrap();
        rdd.count().unwrap();
        let jobs = c.job_metrics();
        assert_eq!(jobs.len(), 2);
        let last = c.last_job().unwrap();
        assert_eq!(last.stages.len(), 1);
        assert_eq!(last.stages[0].tasks.len(), 4);
        assert!(last.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn shuffle_job_has_two_stages() {
        let c = ctx();
        let rdd = c.parallelize(vec![(1u8, 1u32), (2, 2), (1, 3)], 2);
        rdd.reduce_by_key(2, |a, b| a + b).collect().unwrap();
        let last = c.last_job().unwrap();
        assert_eq!(last.stages.len(), 2);
        assert_eq!(last.stages[0].kind, crate::metrics::StageKind::ShuffleMap);
        assert_eq!(last.stages[1].kind, crate::metrics::StageKind::Result);
        assert!(last.shuffle_records > 0);
    }

    #[test]
    fn shuffle_outputs_are_reused_across_jobs() {
        let c = ctx();
        let reduced = c
            .parallelize((0..50u32).map(|i| (i % 5, 1u64)).collect(), 5)
            .reduce_by_key(2, |a, b| a + b);
        reduced.collect().unwrap();
        let records_after_first = c.shuffle_records();
        reduced.count().unwrap();
        assert_eq!(c.shuffle_records(), records_after_first, "no re-shuffle on reuse");
        let last = c.last_job().unwrap();
        assert_eq!(last.stages.len(), 1, "map stage skipped on second job");
    }

    #[test]
    fn fault_injection_is_retried_transparently() {
        let cfg = ClusterConfig::local(2)
            .with_fault(crate::fault::FaultConfig::always_first(2))
            .with_max_attempts(4);
        let c = Context::new(cfg);
        let acc = c.accumulator(0u64);
        let acc2 = acc.clone();
        let rdd = c.parallelize((0..10u64).collect(), 3);
        rdd.foreach_partition(move |_, data| {
            for v in data {
                acc2.add(v);
            }
        })
        .unwrap();
        assert_eq!(acc.value(), 45, "accumulator exactly-once despite retries");
        let last = c.last_job().unwrap();
        assert_eq!(last.failed_attempts(), 6, "2 injected failures x 3 tasks");
    }

    #[test]
    fn exhausted_retries_fail_the_job() {
        let cfg = ClusterConfig::local(1)
            .with_fault(crate::fault::FaultConfig::always_first(10))
            .with_max_attempts(2);
        let c = Context::new(cfg);
        let err = c.parallelize(vec![1], 1).collect().unwrap_err();
        assert!(matches!(err, SparkError::TaskFailed { attempts: 2, .. }));
    }

    #[test]
    fn task_panic_is_an_error_not_a_crash() {
        let cfg = ClusterConfig::local(1).with_max_attempts(1);
        let c = Context::new(cfg);
        let err = c
            .parallelize(vec![1i32], 1)
            .map(|_| -> i32 { panic!("user code exploded") })
            .collect()
            .unwrap_err();
        match err {
            SparkError::TaskFailed { message, .. } => assert!(message.contains("exploded")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn killed_executor_recomputed_from_lineage() {
        let c = ctx();
        let reduced = c
            .parallelize((0..40u32).map(|i| (i % 4, 1u64)).collect(), 4)
            .reduce_by_key(4, |a, b| a + b);
        let first: Vec<(u32, u64)> = reduced.collect().unwrap();
        // lose executor 1: its shuffle map outputs vanish
        let report = c.kill_executor(1);
        assert_eq!(report.executor, 1);
        assert!(report.map_outputs_lost > 0);
        let mut second = reduced.collect().unwrap();
        let mut first_sorted = first;
        first_sorted.sort_unstable();
        second.sort_unstable();
        assert_eq!(first_sorted, second, "lineage recomputation restores results");
    }

    #[test]
    fn executor_kill_mid_map_stage_recovers_via_lineage() {
        use crate::fault::{ExecutorKillAt, FaultPlan};
        use crate::trace::EventKind;
        let clean: Vec<(u32, u64)> = {
            let c = Context::new(ClusterConfig::local(1));
            let mut v = c
                .parallelize((0..40u32).map(|i| (i % 4, 1u64)).collect(), 4)
                .reduce_by_key(4, |a, b| a + b)
                .collect()
                .unwrap();
            v.sort_unstable();
            v
        };
        // one executor, killed after the first map task lands: its
        // registered map output is dropped mid-stage and must be
        // recomputed before the reduce side can run
        let cfg = ClusterConfig::local(1)
            .with_tracing()
            .with_fault(FaultPlan::none().with_executor_kill(ExecutorKillAt {
                stage: 0,
                executor: 0,
                after_tasks: 1,
            }))
            .with_max_attempts(4);
        let c = Context::new(cfg);
        let mut got = c
            .parallelize((0..40u32).map(|i| (i % 4, 1u64)).collect(), 4)
            .reduce_by_key(4, |a, b| a + b)
            .collect()
            .unwrap();
        got.sort_unstable();
        assert_eq!(got, clean, "mid-stage executor kill must not change the answer");
        let t = c.trace().snapshot();
        let lost =
            t.events.iter().filter(|e| matches!(e.kind, EventKind::MapOutputLost { .. })).count();
        let recomputed = t
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MapOutputRecomputed { .. }))
            .count();
        assert!(lost > 0, "the kill must have dropped a registered map output");
        assert_eq!(lost, recomputed, "every dropped output is recomputed exactly once");
    }

    #[test]
    fn executor_kill_mid_result_stage_requeues_in_flight_tasks() {
        use crate::fault::{ExecutorKillAt, FaultPlan};
        // the kill lands in the result stage: completed results are
        // kept, in-flight attempts are requeued (stale replies and
        // their accumulator updates dropped), and the reduce tasks that
        // now hit missing map outputs recover through the barrier
        let cfg = ClusterConfig::local(1)
            .with_fault(FaultPlan::none().with_executor_kill(ExecutorKillAt {
                stage: 1,
                executor: 0,
                after_tasks: 1,
            }))
            .with_max_attempts(4);
        let c = Context::new(cfg);
        let acc = c.accumulator(0u64);
        let acc2 = acc.clone();
        let mut got: Vec<(u32, u64)> = c
            .parallelize((0..40u32).map(|i| (i % 4, 1u64)).collect(), 4)
            .reduce_by_key(4, |a, b| a + b)
            .map(move |kv| {
                acc2.add(1);
                kv
            })
            .collect()
            .unwrap();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (1, 10), (2, 10), (3, 10)]);
        assert_eq!(acc.value(), 4, "requeued attempts must not double-count");
    }

    #[test]
    fn killed_executor_cache_is_rebuilt() {
        let c = ctx();
        let rdd = c.parallelize((0..8i32).collect(), 4).cache();
        rdd.collect().unwrap();
        let before = c.inner.cache.len();
        assert_eq!(before, 4);
        c.kill_executor(0);
        assert!(c.inner.cache.len() < before);
        assert_eq!(rdd.collect().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn broadcast_reaches_tasks_and_accounts_bytes() {
        let c = ctx();
        let table = c.broadcast_sized(vec![10i32, 20, 30], 3 * 4);
        assert_eq!(c.broadcast_bytes(), (3 * 4 * c.num_executors()) as u64);
        let t = table.clone();
        let out =
            c.parallelize(vec![0usize, 1, 2], 3).map(move |i| t.value()[i]).collect().unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn debug_lineage_shows_ops_and_shuffles() {
        let c = ctx();
        let rdd = c
            .parallelize((0..10u32).collect(), 2)
            .map(|x| (x % 2, x))
            .reduce_by_key(2, |a, b| a + b)
            .filter(|_| true);
        let s = rdd.debug_lineage();
        assert!(s.contains("filter"), "{s}");
        assert!(s.contains("shuffled"), "{s}");
        assert!(s.contains("+-shuffle"), "{s}");
        assert!(s.contains("map"), "{s}");
        assert!(s.contains("parallelize"), "{s}");
    }

    #[test]
    fn sample_is_deterministic_and_roughly_proportional() {
        let c = ctx();
        let rdd = c.parallelize((0..10_000i64).collect(), 4);
        let a = rdd.sample(0.3, 7).count().unwrap();
        let b = rdd.sample(0.3, 7).count().unwrap();
        assert_eq!(a, b, "same seed, same sample");
        assert!((2500..3500).contains(&a), "sampled {a} of 10000 at 0.3");
        let other = rdd.sample(0.3, 8).collect().unwrap();
        let first = rdd.sample(0.3, 7).collect().unwrap();
        assert_ne!(first, other, "different seeds differ");
        assert_eq!(rdd.sample(0.0, 1).count().unwrap(), 0);
        assert_eq!(rdd.sample(1.0, 1).count().unwrap(), 10_000);
    }

    #[test]
    fn distinct_dedups_across_partitions() {
        let c = ctx();
        let rdd = c.parallelize(vec![3, 1, 3, 2, 1, 1, 2], 3);
        let mut out = rdd.distinct(2).collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn repartition_balances_and_preserves_elements() {
        let c = ctx();
        // badly skewed source: everything in one partition
        let rdd = c.parallelize((0..90i32).collect(), 1);
        let re = rdd.repartition(3).unwrap();
        assert_eq!(re.num_partitions(), 3);
        let sizes = re.partition_sizes().unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
        assert!(sizes.iter().all(|&s| s == 30), "balanced: {sizes:?}");
        let mut all = re.collect().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0..90).collect::<Vec<_>>());
    }

    #[test]
    fn cogroup_aligns_both_sides() {
        let c = ctx();
        let l = c.parallelize(vec![(1u8, 'a'), (2, 'b'), (1, 'c')], 2);
        let r = c.parallelize(vec![(1u8, 10i32), (3, 30)], 2);
        let mut out = l.cogroup(&r, 2).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 3);
        let (k1, (mut vs, ws)) = out[0].clone();
        vs.sort_unstable();
        assert_eq!((k1, vs, ws), (1, vec!['a', 'c'], vec![10]));
        assert_eq!(out[1], (2, (vec!['b'], vec![])));
        assert_eq!(out[2], (3, (vec![], vec![30])));
    }

    #[test]
    fn join_is_inner_and_cartesian_per_key() {
        let c = ctx();
        let l = c.parallelize(vec![(1u8, 'a'), (1, 'b'), (2, 'x')], 2);
        let r = c.parallelize(vec![(1u8, 10i32), (1, 20), (9, 90)], 2);
        let mut out = l.join(&r, 2).collect().unwrap();
        out.sort_by_key(|(k, (v, w))| (*k, *v, *w));
        assert_eq!(out, vec![(1, ('a', 10)), (1, ('a', 20)), (1, ('b', 10)), (1, ('b', 20))]);
    }

    #[test]
    fn subtract_by_key_removes_matched_keys() {
        let c = ctx();
        let l = c.parallelize(vec![(1u8, 'a'), (2, 'b'), (3, 'c')], 2);
        let r = c.parallelize(vec![(2u8, ())], 1);
        let mut out = l.subtract_by_key(&r, 2).collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out, vec![(1, 'a'), (3, 'c')]);
    }

    #[test]
    fn save_as_text_file_roundtrips() {
        let dfs = Arc::new(DfsCluster::single_node());
        let c = ctx();
        let rdd = c.parallelize((0..25i32).collect(), 3).map(|x| x * 2);
        rdd.save_as_text_file(Arc::clone(&dfs), "/out").unwrap();
        assert_eq!(dfs.list("/out/").len(), 3);
        let back: Vec<i32> = c
            .text_file(Arc::clone(&dfs), "/out/part-00001")
            .unwrap()
            .map(|l| l.parse::<i32>().unwrap())
            .collect()
            .unwrap();
        assert!(!back.is_empty());
        // all partitions together reproduce the dataset
        let mut all: Vec<i32> = dfs
            .list("/out/")
            .iter()
            .flat_map(|p| {
                String::from_utf8(dfs.read_file(p).unwrap())
                    .unwrap()
                    .lines()
                    .map(|l| l.parse::<i32>().unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..25).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn save_as_text_file_survives_task_retry() {
        let dfs = Arc::new(DfsCluster::single_node());
        let cfg = ClusterConfig::local(2)
            .with_fault(crate::fault::FaultConfig::always_first(1))
            .with_max_attempts(3);
        let c = Context::new(cfg);
        // the injected failure happens before user code runs, so the
        // retry exercises the create-after-exists path only when a prior
        // attempt got far enough; either way the job must succeed
        c.parallelize(vec![1, 2, 3, 4], 2).save_as_text_file(Arc::clone(&dfs), "/retry").unwrap();
        assert_eq!(dfs.list("/retry/").len(), 2);
    }

    #[test]
    fn text_file_roundtrip_through_dfs() {
        let dfs = Arc::new(DfsCluster::single_node());
        dfs.write_file("/data.txt", b"1,2\n3,4\n5,6\n").unwrap();
        let c = ctx();
        let lines = c.text_file(Arc::clone(&dfs), "/data.txt").unwrap();
        assert_eq!(lines.collect().unwrap(), vec!["1,2", "3,4", "5,6"]);
    }

    #[test]
    fn missing_text_file_is_storage_error() {
        let dfs = Arc::new(DfsCluster::single_node());
        let c = ctx();
        assert!(matches!(c.text_file(dfs, "/nope"), Err(SparkError::Storage(_))));
    }

    #[test]
    fn traced_context_records_all_engine_event_categories() {
        let c = Context::new(
            ClusterConfig::local(2)
                .with_tracing()
                .with_fault(crate::fault::FaultConfig::always_first(1))
                .with_max_attempts(3),
        );
        let dfs = Arc::new(DfsCluster::single_node());
        dfs.write_file("/in.txt", b"1\n2\n3\n").unwrap();
        let _b = c.broadcast(7u32);
        let lines = c.text_file(Arc::clone(&dfs), "/in.txt").unwrap();
        assert_eq!(lines.count().unwrap(), 3);
        c.parallelize((0..20u32).map(|i| (i % 3, 1u64)).collect(), 2)
            .reduce_by_key(2, |a, b| a + b)
            .collect()
            .unwrap();
        c.kill_executor(0);
        let trace = c.trace().snapshot();
        for cat in ["job", "stage", "task", "shuffle", "broadcast", "executor", "dfs"] {
            assert!(
                trace.events.iter().any(|e| e.kind.category() == cat),
                "missing {cat} events in {:?}",
                trace.events
            );
        }
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.kind == crate::trace::EventKind::TaskFailure { injected: true }),
            "injected failures are marked"
        );
        let json = c.trace().chrome_json();
        let summary = crate::trace::validate_chrome_trace(&json).expect("trace validates");
        assert!(summary.count("task") > 0 && summary.count("dfs") > 0, "{summary:?}");
    }

    #[test]
    fn untraced_context_records_nothing() {
        let c = ctx();
        c.parallelize((0..10i32).collect(), 2).collect().unwrap();
        assert!(!c.trace().enabled());
        assert!(c.trace().snapshot().events.is_empty());
    }
}
