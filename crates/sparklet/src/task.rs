//! Task types shared by the scheduler and the executor pool.

use std::any::Any;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// What a finished task hands back to the driver.
pub(crate) enum TaskOutput {
    /// Shuffle-map tasks produce side effects only.
    Unit,
    /// Result-stage tasks return a boxed value.
    Boxed(Box<dyn Any + Send>),
}

/// The (re-runnable) work of one task: retries call it again.
pub(crate) type TaskWork = Arc<dyn Fn() -> Result<TaskOutput, String> + Send + Sync>;

/// A task as submitted by the scheduler.
#[derive(Clone)]
pub(crate) struct TaskSpec {
    /// Stage this task belongs to.
    pub stage_id: usize,
    /// Partition index it computes.
    pub partition: usize,
    /// Virtual executor it is bound to (`partition % num_executors`).
    pub executor: usize,
    /// The work itself.
    pub work: TaskWork,
}

/// One attempt's outcome, reported by a worker.
pub(crate) struct AttemptResult {
    pub partition: usize,
    pub executor: usize,
    pub attempt: usize,
    pub busy: Duration,
    pub outcome: Result<TaskOutput, String>,
    /// Buffered accumulator updates (merged only on success).
    pub accum_updates: Vec<crate::accumulator::PendingUpdate>,
}

thread_local! {
    /// Virtual executor id of the task currently running on this thread.
    static CURRENT_EXECUTOR: Cell<usize> = const { Cell::new(0) };
}

/// Set by the worker before running a task.
pub(crate) fn set_current_executor(e: usize) {
    CURRENT_EXECUTOR.with(|c| c.set(e));
}

/// Virtual executor of the current thread's task (0 on the driver).
pub(crate) fn current_executor() -> usize {
    CURRENT_EXECUTOR.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_tls_roundtrip() {
        assert_eq!(current_executor(), 0);
        set_current_executor(7);
        assert_eq!(current_executor(), 7);
        set_current_executor(0);
    }

    #[test]
    fn task_spec_is_cloneable_and_rerunnable() {
        let work: TaskWork = Arc::new(|| Ok(TaskOutput::Unit));
        let spec = TaskSpec { stage_id: 0, partition: 1, executor: 1, work };
        let spec2 = spec.clone();
        assert!(matches!((spec.work)(), Ok(TaskOutput::Unit)));
        assert!(matches!((spec2.work)(), Ok(TaskOutput::Unit)));
    }
}
