//! Task types shared by the scheduler and the executor pool.

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// What a finished task hands back to the driver.
pub(crate) enum TaskOutput {
    /// Shuffle-map tasks produce side effects only.
    Unit,
    /// Result-stage tasks return a boxed value.
    Boxed(Box<dyn Any + Send>),
}

/// Why a task attempt failed — the scheduler picks its recovery path by
/// kind: `Generic` failures are retried in place, `FetchFailed` triggers
/// lineage recomputation of the lost map outputs, `Storage` failures
/// surface as typed [`crate::SparkError::Storage`] once retries are
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskErrorKind {
    /// User-code error or panic (retried in place).
    Generic,
    /// A reduce-side fetch could not obtain every map output of the
    /// named shuffle.
    FetchFailed {
        /// The shuffle whose outputs were incomplete.
        shuffle: usize,
    },
    /// The storage layer (DFS) failed — e.g. every replica of a block
    /// was lost.
    Storage,
}

/// A typed task-attempt failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Recovery-relevant classification.
    pub kind: TaskErrorKind,
    /// Human-readable detail.
    pub message: String,
    /// Whether this failure was injected by the fault plan (as opposed
    /// to arising from user code or a real missing output).
    pub injected: bool,
}

impl TaskError {
    /// A plain user-code failure.
    pub fn generic(message: impl Into<String>) -> Self {
        TaskError { kind: TaskErrorKind::Generic, message: message.into(), injected: false }
    }

    /// A shuffle-fetch failure for `shuffle`.
    pub fn fetch_failed(shuffle: usize, message: impl Into<String>) -> Self {
        TaskError {
            kind: TaskErrorKind::FetchFailed { shuffle },
            message: message.into(),
            injected: false,
        }
    }

    /// A storage-layer failure.
    pub fn storage(message: impl Into<String>) -> Self {
        TaskError { kind: TaskErrorKind::Storage, message: message.into(), injected: false }
    }

    /// Builder-style: mark the failure as fault-plan-injected.
    pub fn injected(mut self) -> Self {
        self.injected = true;
        self
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TaskErrorKind::Generic => write!(f, "{}", self.message),
            TaskErrorKind::FetchFailed { shuffle } => {
                write!(f, "fetch failed (shuffle {}): {}", shuffle, self.message)
            }
            TaskErrorKind::Storage => write!(f, "storage failure: {}", self.message),
        }
    }
}

impl From<String> for TaskError {
    fn from(message: String) -> Self {
        TaskError::generic(message)
    }
}

impl From<&str> for TaskError {
    fn from(message: &str) -> Self {
        TaskError::generic(message)
    }
}

/// The (re-runnable) work of one task: retries call it again.
pub(crate) type TaskWork = Arc<dyn Fn() -> Result<TaskOutput, TaskError> + Send + Sync>;

/// A task as submitted by the scheduler.
#[derive(Clone)]
pub(crate) struct TaskSpec {
    /// Stage this task belongs to.
    pub stage_id: usize,
    /// Partition index it computes.
    pub partition: usize,
    /// Virtual executor it is bound to (`partition % num_executors`).
    pub executor: usize,
    /// Declared working-set bytes, reserved on the executor's memory
    /// lane before submission (0 = no reservation).
    pub mem_hint: u64,
    /// The work itself.
    pub work: TaskWork,
}

/// One attempt's outcome, reported by a worker.
pub(crate) struct AttemptResult {
    pub partition: usize,
    pub executor: usize,
    pub attempt: usize,
    /// Clone ordinal of the submission (0 = the original; >0 = a
    /// speculative twin racing it at the same attempt number).
    pub ordinal: usize,
    pub busy: Duration,
    pub outcome: Result<TaskOutput, TaskError>,
    /// Buffered accumulator updates (merged only on success).
    pub accum_updates: Vec<crate::accumulator::PendingUpdate>,
}

thread_local! {
    /// Virtual executor id of the task currently running on this thread.
    static CURRENT_EXECUTOR: Cell<usize> = const { Cell::new(0) };
}

/// Set by the worker before running a task.
pub(crate) fn set_current_executor(e: usize) {
    CURRENT_EXECUTOR.with(|c| c.set(e));
}

/// Virtual executor of the current thread's task (0 on the driver).
pub(crate) fn current_executor() -> usize {
    CURRENT_EXECUTOR.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_tls_roundtrip() {
        assert_eq!(current_executor(), 0);
        set_current_executor(7);
        assert_eq!(current_executor(), 7);
        set_current_executor(0);
    }

    #[test]
    fn task_spec_is_cloneable_and_rerunnable() {
        let work: TaskWork = Arc::new(|| Ok(TaskOutput::Unit));
        let spec = TaskSpec { stage_id: 0, partition: 1, executor: 1, mem_hint: 0, work };
        let spec2 = spec.clone();
        assert!(matches!((spec.work)(), Ok(TaskOutput::Unit)));
        assert!(matches!((spec2.work)(), Ok(TaskOutput::Unit)));
    }

    #[test]
    fn task_error_kinds_display_and_convert() {
        let g: TaskError = "boom".into();
        assert_eq!(g.kind, TaskErrorKind::Generic);
        assert!(!g.injected);
        assert_eq!(g.to_string(), "boom");

        let f = TaskError::fetch_failed(3, "map 1 missing").injected();
        assert_eq!(f.kind, TaskErrorKind::FetchFailed { shuffle: 3 });
        assert!(f.injected);
        assert!(f.to_string().contains("shuffle 3"));

        let s = TaskError::storage(String::from("all replicas lost"));
        assert_eq!(s.kind, TaskErrorKind::Storage);
        assert!(s.to_string().contains("storage failure"));
    }
}
