//! The executor pool: worker threads that run tasks.
//!
//! Workers measure each attempt's busy time, install the accumulator
//! buffer, apply fault-plan injection (task failures and straggler
//! slowdowns), and catch panics so one bad task never takes the process
//! down — the fault-tolerance contrast with MPI the paper emphasizes.

use crate::accumulator::{begin_task_buffer, take_task_buffer};
use crate::fault::{
    decision_hash_ordinal, FaultPlan, EXPLORE_JITTER_SALT, STRAGGLER_SALT, TASK_SALT,
};
use crate::memory::MemoryManager;
use crate::schedule::SchedulePolicy;
use crate::task::{set_current_executor, AttemptResult, TaskError, TaskSpec};
use crate::trace::{self, EventKind, MemOp, TaskScope, TraceCollector};
use crossbeam::channel::{unbounded, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An envelope routed to a worker.
pub(crate) struct Envelope {
    pub spec: TaskSpec,
    pub attempt: usize,
    /// Clone ordinal (0 = original submission, >0 = speculative twin).
    /// Keys the worker's injection hashes so a clone rolls its own fate.
    pub ordinal: usize,
    pub reply: Sender<AttemptResult>,
}

/// A pool of worker threads with a shared task queue.
pub struct ExecutorPool {
    sender: Option<Sender<Envelope>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ExecutorPool {
    /// Start `threads` workers applying the given fault plan, reporting
    /// task lifecycle events to `tracer`.
    pub(crate) fn start(
        threads: usize,
        plan: FaultPlan,
        seed: u64,
        tracer: Arc<TraceCollector>,
        memory: Arc<MemoryManager>,
        schedule: Arc<dyn SchedulePolicy>,
    ) -> Self {
        let threads = threads.max(1);
        let plan = Arc::new(plan);
        // keyed decisions only: workers are concurrent, so the schedule
        // seam reaches them as a pure hash seed, never a shared counter
        let keyed = schedule.keyed_seed();
        let (tx, rx) = unbounded::<Envelope>();
        let workers = (0..threads)
            .map(|w| {
                let rx = rx.clone();
                let plan = Arc::clone(&plan);
                let tracer = Arc::clone(&tracer);
                let memory = Arc::clone(&memory);
                std::thread::Builder::new()
                    .name(format!("sparklet-worker-{w}"))
                    .spawn(move || {
                        while let Ok(env) = rx.recv() {
                            let result = run_attempt(&env, &plan, seed, keyed, &tracer, &memory);
                            // the driver may have aborted the job; a closed
                            // reply channel is not an error for the worker
                            let _ = env.reply.send(result);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        ExecutorPool { sender: Some(tx), workers, size: threads }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a task attempt.
    pub(crate) fn submit(&self, env: Envelope) {
        self.sender
            .as_ref()
            .expect("pool not shut down")
            .send(env)
            .expect("workers alive while pool exists");
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        // closing the channel lets workers drain and exit
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn run_attempt(
    env: &Envelope,
    plan: &FaultPlan,
    seed: u64,
    keyed: Option<u64>,
    tracer: &TraceCollector,
    memory: &MemoryManager,
) -> AttemptResult {
    let spec = &env.spec;
    set_current_executor(spec.executor);
    let scope = TaskScope {
        stage: spec.stage_id,
        partition: spec.partition,
        attempt: env.attempt,
        ordinal: env.ordinal,
        executor: spec.executor,
    };
    trace::set_task_scope(Some(scope));
    tracer.record(Some(scope), EventKind::TaskStart);
    // the scheduler charged the reservation before submitting; the
    // task-scoped Reserve/Release events bracket the attempt in the
    // trace (bounded budgets only, so unbudgeted traces are unchanged)
    let hint = spec.mem_hint;
    let bounded_budget = hint > 0 && memory.budget().is_bounded();
    if bounded_budget {
        tracer.record(
            Some(scope),
            EventKind::MemoryAction { op: MemOp::Reserve, lane: spec.executor, bytes: hint },
        );
    }
    begin_task_buffer();

    // straggler injection: a real (small) delay perturbing the actual
    // thread interleaving, the way a slow node would
    if plan.straggler.should_fire_ordinal(
        seed,
        STRAGGLER_SALT,
        spec.stage_id,
        spec.partition,
        env.attempt,
        env.ordinal,
    ) {
        std::thread::sleep(Duration::from_millis(plan.straggler_delay_ms));
    }
    // schedule-exploration jitter: an extra keyed sub-millisecond delay
    // perturbing the real thread interleaving, decided purely from the
    // task identity so a replay reproduces it without shared state
    if let Some(ks) = keyed {
        let h = decision_hash_ordinal(
            ks,
            EXPLORE_JITTER_SALT,
            spec.stage_id as u64,
            spec.partition as u64,
            env.attempt as u64,
            env.ordinal as u64,
        );
        if h.is_multiple_of(4) {
            std::thread::sleep(Duration::from_micros(100 + h % 900));
        }
    }
    let start = Instant::now();

    let outcome = if plan.task_failure.should_fire_ordinal(
        seed,
        TASK_SALT,
        spec.stage_id,
        spec.partition,
        env.attempt,
        env.ordinal,
    ) {
        Err(TaskError::generic(format!(
            "injected failure (stage {} partition {} attempt {})",
            spec.stage_id, spec.partition, env.attempt
        ))
        .injected())
    } else {
        match catch_unwind(AssertUnwindSafe(|| (spec.work)())) {
            Ok(r) => r,
            Err(panic) => Err(TaskError::generic(panic_message(panic))),
        }
    };

    let busy = start.elapsed();
    let accum_updates = take_task_buffer();
    if bounded_budget {
        tracer.record(
            Some(scope),
            EventKind::MemoryAction { op: MemOp::Release, lane: spec.executor, bytes: hint },
        );
    }
    if hint > 0 {
        memory.release_task(spec.executor, hint);
    }
    match &outcome {
        Ok(_) => tracer.record(Some(scope), EventKind::TaskSuccess),
        Err(e) => tracer.record(Some(scope), EventKind::TaskFailure { injected: e.injected }),
    }
    trace::set_task_scope(None);
    AttemptResult {
        partition: spec.partition,
        executor: spec.executor,
        attempt: env.attempt,
        ordinal: env.ordinal,
        busy,
        outcome,
        accum_updates,
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("task panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("task panicked: {s}")
    } else {
        "task panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultRule};
    use crate::task::{TaskOutput, TaskWork};
    use std::sync::Arc;

    fn spec(work: TaskWork) -> TaskSpec {
        TaskSpec { stage_id: 0, partition: 0, executor: 0, mem_hint: 0, work }
    }

    /// Test pools run under the production (pass-through) policy.
    fn start_fifo(
        threads: usize,
        plan: FaultPlan,
        seed: u64,
        tracer: Arc<TraceCollector>,
        memory: Arc<MemoryManager>,
    ) -> ExecutorPool {
        ExecutorPool::start(threads, plan, seed, tracer, memory, Arc::new(crate::schedule::Fifo))
    }

    fn run_one(pool: &ExecutorPool, s: TaskSpec, attempt: usize) -> AttemptResult {
        let (tx, rx) = unbounded();
        pool.submit(Envelope { spec: s, attempt, ordinal: 0, reply: tx });
        rx.recv().unwrap()
    }

    fn run_clone(
        pool: &ExecutorPool,
        s: TaskSpec,
        attempt: usize,
        ordinal: usize,
    ) -> AttemptResult {
        let (tx, rx) = unbounded();
        pool.submit(Envelope { spec: s, attempt, ordinal, reply: tx });
        rx.recv().unwrap()
    }

    #[test]
    fn runs_tasks_and_returns_output() {
        let pool = start_fifo(
            2,
            FaultPlan::none(),
            0,
            TraceCollector::disabled(),
            MemoryManager::unbounded(),
        );
        let r = run_one(&pool, spec(Arc::new(|| Ok(TaskOutput::Boxed(Box::new(41i32))))), 0);
        match r.outcome.unwrap() {
            TaskOutput::Boxed(b) => assert_eq!(*b.downcast::<i32>().unwrap(), 41),
            TaskOutput::Unit => panic!("expected boxed output"),
        }
    }

    #[test]
    fn catches_panics() {
        let pool = start_fifo(
            1,
            FaultPlan::none(),
            0,
            TraceCollector::disabled(),
            MemoryManager::unbounded(),
        );
        let r = run_one(&pool, spec(Arc::new(|| panic!("kaboom"))), 0);
        let err = r.outcome.err().unwrap();
        assert!(err.message.contains("kaboom"), "{err}");
        assert!(!err.injected);
    }

    #[test]
    fn injects_failures_per_config() {
        let pool = start_fifo(
            1,
            FaultConfig::always_first(1).into(),
            7,
            TraceCollector::disabled(),
            MemoryManager::unbounded(),
        );
        let r0 = run_one(&pool, spec(Arc::new(|| Ok(TaskOutput::Unit))), 0);
        assert!(r0.outcome.as_ref().err().is_some_and(|e| e.injected));
        let r1 = run_one(&pool, spec(Arc::new(|| Ok(TaskOutput::Unit))), 1);
        assert!(r1.outcome.is_ok());
    }

    #[test]
    fn clone_ordinal_escapes_the_originals_injected_fate() {
        // regression for the attempt-keying bug: with injection hashed
        // on (stage, partition, attempt) alone, a speculative clone at
        // the same attempt number deterministically shared the
        // original's failure. Find a partition the fractional rule
        // curses at ordinal 0 but not ordinal 1, and run both.
        let rule = FaultRule::with_prob(0.5, 1);
        let seed = 11;
        let cursed = (0..256usize)
            .find(|&p| {
                rule.should_fire_ordinal(seed, crate::fault::TASK_SALT, 0, p, 0, 0)
                    && !rule.should_fire_ordinal(seed, crate::fault::TASK_SALT, 0, p, 0, 1)
            })
            .expect("some partition diverges across ordinals");
        let plan = FaultPlan::none().with_task_failures(rule);
        let pool =
            start_fifo(1, plan, seed, TraceCollector::disabled(), MemoryManager::unbounded());
        let mk = || {
            let mut s = spec(Arc::new(|| Ok(TaskOutput::Unit)));
            s.partition = cursed;
            s
        };
        let original = run_clone(&pool, mk(), 0, 0);
        assert!(original.outcome.as_ref().err().is_some_and(|e| e.injected));
        assert_eq!(original.ordinal, 0);
        let clone = run_clone(&pool, mk(), 0, 1);
        assert!(clone.outcome.is_ok(), "clone must roll its own fate");
        assert_eq!(clone.ordinal, 1);
    }

    #[test]
    fn straggler_rule_delays_the_attempt() {
        let plan = FaultPlan::none().with_stragglers(FaultRule::always_first(1), 20);
        let pool = start_fifo(1, plan, 0, TraceCollector::disabled(), MemoryManager::unbounded());
        let t0 = Instant::now();
        let r = run_one(&pool, spec(Arc::new(|| Ok(TaskOutput::Unit))), 0);
        assert!(r.outcome.is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(18), "straggler delay must apply");
        // busy time excludes the injected delay
        assert!(r.busy < Duration::from_millis(18));
    }

    #[test]
    fn busy_time_is_measured() {
        let pool = start_fifo(
            1,
            FaultPlan::none(),
            0,
            TraceCollector::disabled(),
            MemoryManager::unbounded(),
        );
        let r = run_one(
            &pool,
            spec(Arc::new(|| {
                std::thread::sleep(std::time::Duration::from_millis(15));
                Ok(TaskOutput::Unit)
            })),
            0,
        );
        assert!(r.busy >= std::time::Duration::from_millis(14));
    }

    #[test]
    fn pool_shuts_down_cleanly() {
        let pool = start_fifo(
            4,
            FaultPlan::none(),
            0,
            TraceCollector::disabled(),
            MemoryManager::unbounded(),
        );
        assert_eq!(pool.size(), 4);
        drop(pool); // must not hang
    }

    #[test]
    fn task_lifecycle_is_traced_with_injected_flag() {
        let tracer = Arc::new(TraceCollector::new(crate::config::TraceConfig::enabled()));
        let pool = start_fifo(
            1,
            FaultConfig::always_first(1).into(),
            0,
            Arc::clone(&tracer),
            MemoryManager::unbounded(),
        );
        assert!(run_one(&pool, spec(Arc::new(|| Ok(TaskOutput::Unit))), 0).outcome.is_err());
        assert!(run_one(&pool, spec(Arc::new(|| Ok(TaskOutput::Unit))), 1).outcome.is_ok());
        let kinds: Vec<EventKind> = tracer.snapshot().events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::TaskFailure { injected: true }), "{kinds:?}");
        assert!(kinds.contains(&EventKind::TaskSuccess));
        assert_eq!(kinds.iter().filter(|k| **k == EventKind::TaskStart).count(), 2);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        let pool = start_fifo(
            0,
            FaultPlan::none(),
            0,
            TraceCollector::disabled(),
            MemoryManager::unbounded(),
        );
        assert_eq!(pool.size(), 1);
    }
}
