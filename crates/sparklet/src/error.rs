//! Engine error types.

/// Result alias used throughout the engine.
pub type SparkResult<T> = Result<T, SparkError>;

/// Failures surfaced to the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparkError {
    /// A task exhausted its retry budget.
    TaskFailed {
        /// Stage the task belonged to.
        stage: usize,
        /// Partition index of the task.
        partition: usize,
        /// Number of attempts made.
        attempts: usize,
        /// Last failure message.
        message: String,
    },
    /// A shuffle output was requested before its map stage completed —
    /// an internal scheduling invariant violation.
    ShuffleMissing {
        /// Shuffle id.
        shuffle: usize,
        /// Reduce partition requested.
        reduce: usize,
    },
    /// A stage exhausted its fetch-failure recovery budget: lineage
    /// recomputation of the lost map outputs was retried
    /// `retries` times without the stage completing.
    FetchFailed {
        /// The stage whose tasks kept hitting fetch failures.
        stage: usize,
        /// The shuffle whose outputs kept going missing.
        shuffle: usize,
        /// Recovery rounds attempted.
        retries: usize,
    },
    /// Reading input from the DFS failed.
    Storage(String),
    /// Invalid engine configuration.
    InvalidConfig(String),
    /// A single task reservation exceeds the whole per-executor memory
    /// budget — no amount of eviction, spilling or backpressure can
    /// grant it. (Mere crowding never raises this: the scheduler defers
    /// submission until running tasks release their reservations.)
    OutOfMemory {
        /// Executor lane the reservation targeted.
        executor: usize,
        /// Bytes the task asked to reserve.
        requested: u64,
        /// The per-executor budget in force.
        budget: u64,
    },
}

impl std::fmt::Display for SparkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparkError::TaskFailed { stage, partition, attempts, message } => write!(
                f,
                "task failed: stage {stage} partition {partition} after {attempts} attempts: {message}"
            ),
            SparkError::ShuffleMissing { shuffle, reduce } => {
                write!(f, "shuffle {shuffle} output missing for reduce partition {reduce}")
            }
            SparkError::FetchFailed { stage, shuffle, retries } => write!(
                f,
                "stage {stage} aborted: shuffle {shuffle} fetch still failing after {retries} recovery rounds"
            ),
            SparkError::Storage(m) => write!(f, "storage error: {m}"),
            SparkError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            SparkError::OutOfMemory { executor, requested, budget } => write!(
                f,
                "out of memory: task reservation of {requested} bytes on executor {executor} exceeds the whole per-executor budget ({budget} bytes)"
            ),
        }
    }
}

impl std::error::Error for SparkError {}

impl From<minidfs::DfsError> for SparkError {
    fn from(e: minidfs::DfsError) -> Self {
        SparkError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_errors_convert_to_storage() {
        let e: SparkError = minidfs::DfsError::FileNotFound("/x".into()).into();
        assert!(matches!(e, SparkError::Storage(_)));
    }

    #[test]
    fn display_contains_context() {
        let e =
            SparkError::TaskFailed { stage: 1, partition: 3, attempts: 4, message: "boom".into() };
        let s = e.to_string();
        assert!(s.contains("stage 1") && s.contains("partition 3") && s.contains("boom"));
    }
}
