//! Per-task, per-stage and per-job metrics.
//!
//! Figure 6 of the paper plots "time spent in driver" against "time spent
//! in executors"; Figure 8 derives speedups from executor-only and
//! executor+driver times. These structures capture exactly those
//! quantities: every task records its busy time and virtual executor, and
//! [`JobMetrics`] aggregates them and feeds the makespan simulator.

use crate::config::{SpeculationConfig, StragglerConfig};
use crate::memory::MemoryStats;
use crate::sim::lpt_makespan;
use std::time::Duration;

/// What a stage computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Writes shuffle map outputs.
    ShuffleMap,
    /// Produces the job's results.
    Result,
}

/// Measurements for one successful task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMetrics {
    /// Partition the task computed.
    pub partition: usize,
    /// Virtual executor the task was bound to.
    pub executor: usize,
    /// Attempt number that succeeded (0-based).
    pub attempt: usize,
    /// Measured busy time of the successful attempt.
    pub busy: Duration,
    /// Extra simulated time from the straggler model (not slept).
    pub straggler_extra: Duration,
    /// Records produced by the task.
    pub records_out: u64,
}

impl TaskMetrics {
    /// Busy time plus simulated straggler penalty.
    pub fn simulated(&self) -> Duration {
        self.busy + self.straggler_extra
    }
}

/// Measurements for one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// Stage id (unique within the context).
    pub stage_id: usize,
    /// Kind of stage.
    pub kind: StageKind,
    /// Wall-clock time of the stage as observed by the driver.
    pub wall: Duration,
    /// One entry per task (successful attempt).
    pub tasks: Vec<TaskMetrics>,
    /// Total failed attempts (injected or panics) within the stage.
    pub failed_attempts: usize,
}

impl StageMetrics {
    /// Sum of task busy times — total executor CPU consumed.
    pub fn executor_busy(&self) -> Duration {
        self.tasks.iter().map(|t| t.busy).sum()
    }

    /// Simulated makespan of this stage on `p` virtual executors,
    /// binding tasks to executors greedily longest-first (LPT).
    pub fn simulated_makespan(&self, p: usize) -> Duration {
        lpt_makespan(self.tasks.iter().map(|t| t.simulated()), p)
    }

    /// Longest single task (the stage's critical path with unlimited
    /// executors).
    pub fn max_task(&self) -> Duration {
        self.tasks.iter().map(|t| t.simulated()).max().unwrap_or(Duration::ZERO)
    }

    /// Simulated makespan of this stage on `p` executors under a
    /// speculative-execution policy.
    ///
    /// The model mirrors the scheduler's detector: once an attempt has
    /// run for the stage's median busy time scaled by
    /// [`SpeculationConfig::multiplier`], a clone is launched; the clone
    /// is free of the simulated straggler penalty (the penalty is keyed
    /// by `(seed, stage, partition)` but a wall-clock straggler is an
    /// environmental accident, which is exactly what speculation
    /// hedges), so the task's effective duration is capped at
    /// `busy + median x multiplier`. Tasks that were never straggled are
    /// unaffected — their simulated time already sits below the cap.
    /// With the policy disabled this is exactly
    /// [`StageMetrics::simulated_makespan`].
    pub fn speculated_makespan(&self, p: usize, spec: SpeculationConfig) -> Duration {
        if !spec.enabled || self.tasks.is_empty() {
            return self.simulated_makespan(p);
        }
        let mut busys: Vec<Duration> = self.tasks.iter().map(|t| t.busy).collect();
        busys.sort_unstable();
        let median = busys[busys.len() / 2];
        let cap = median.mul_f64(spec.multiplier());
        lpt_makespan(self.tasks.iter().map(|t| t.simulated().min(t.busy + cap)), p)
    }

    /// Max-over-mean of simulated task times — the stage's load-balance
    /// number. `1.0` means perfectly even tasks; the stage's wall clock
    /// is roughly `mean x ratio` once executors outnumber tasks, so the
    /// ratio is exactly what cost-balanced partitioning tries to pull
    /// down. Returns `1.0` for an empty or zero-time stage.
    pub fn max_mean_ratio(&self) -> f64 {
        if self.tasks.is_empty() {
            return 1.0;
        }
        let total: Duration = self.tasks.iter().map(|t| t.simulated()).sum();
        let mean = total.as_secs_f64() / self.tasks.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        self.max_task().as_secs_f64() / mean
    }
}

/// Measurements for one job (one action).
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Job id (unique within the context).
    pub job_id: usize,
    /// Stages, in execution order.
    pub stages: Vec<StageMetrics>,
    /// Driver wall time for the whole job (scheduling + result handling).
    pub wall: Duration,
    /// Records moved through shuffles during this job.
    pub shuffle_records: u64,
    /// Estimated bytes moved through shuffles during this job.
    pub shuffle_bytes: u64,
    /// Memory-ledger counters as of job end (cumulative for the
    /// context: peaks, spilled/evicted bytes, backpressure waits).
    pub memory: MemoryStats,
}

impl JobMetrics {
    /// Total executor CPU across all stages.
    pub fn executor_busy(&self) -> Duration {
        self.stages.iter().map(|s| s.executor_busy()).sum()
    }

    /// Simulated wall time of the executor side on `p` cores: stage
    /// makespans are summed because stages are serialized by their
    /// shuffle dependency.
    pub fn simulated_executor_time(&self, p: usize) -> Duration {
        self.stages.iter().map(|s| s.simulated_makespan(p)).sum()
    }

    /// Simulated executor wall time on `p` cores under a
    /// speculative-execution policy (see
    /// [`StageMetrics::speculated_makespan`]).
    pub fn speculated_executor_time(&self, p: usize, spec: SpeculationConfig) -> Duration {
        self.stages.iter().map(|s| s.speculated_makespan(p, spec)).sum()
    }

    /// Driver-side time: job wall minus the time the driver spent just
    /// waiting on stages (i.e. scheduling, collection and merge overhead
    /// inside the engine). Saturates at zero.
    pub fn driver_overhead(&self) -> Duration {
        let stage_wall: Duration = self.stages.iter().map(|s| s.wall).sum();
        self.wall.saturating_sub(stage_wall)
    }

    /// Total failed attempts across stages.
    pub fn failed_attempts(&self) -> usize {
        self.stages.iter().map(|s| s.failed_attempts).sum()
    }

    /// All task durations (simulated), for external schedulers.
    pub fn task_durations(&self) -> Vec<Duration> {
        self.stages.iter().flat_map(|s| s.tasks.iter().map(|t| t.simulated())).collect()
    }
}

/// Compute the simulated straggler penalty for a task, deterministic in
/// `(seed, stage, partition)`.
pub(crate) fn straggler_extra(
    cfg: StragglerConfig,
    seed: u64,
    stage: usize,
    partition: usize,
    busy: Duration,
) -> Duration {
    if cfg.prob <= 0.0 || cfg.slowdown <= 1.0 {
        return Duration::ZERO;
    }
    let h = crate::fault::mix(
        seed ^ 0xabcd_ef01 ^ crate::fault::mix(((stage as u64) << 32) | partition as u64),
    );
    if (h as f64 / u64::MAX as f64) < cfg.prob {
        busy.mul_f64(cfg.slowdown - 1.0)
    } else {
        Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(part: usize, ms: u64) -> TaskMetrics {
        TaskMetrics {
            partition: part,
            executor: part % 2,
            attempt: 0,
            busy: Duration::from_millis(ms),
            straggler_extra: Duration::ZERO,
            records_out: 1,
        }
    }

    fn stage(tasks: Vec<TaskMetrics>) -> StageMetrics {
        StageMetrics {
            stage_id: 0,
            kind: StageKind::Result,
            wall: Duration::from_millis(50),
            tasks,
            failed_attempts: 0,
        }
    }

    #[test]
    fn executor_busy_sums_tasks() {
        let s = stage(vec![task(0, 10), task(1, 20), task(2, 30)]);
        assert_eq!(s.executor_busy(), Duration::from_millis(60));
        assert_eq!(s.max_task(), Duration::from_millis(30));
    }

    #[test]
    fn max_mean_ratio_measures_imbalance() {
        let even = stage(vec![task(0, 10), task(1, 10), task(2, 10)]);
        assert!((even.max_mean_ratio() - 1.0).abs() < 1e-12);
        let skewed = stage(vec![task(0, 10), task(1, 10), task(2, 40)]);
        assert!((skewed.max_mean_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(stage(vec![]).max_mean_ratio(), 1.0);
        assert_eq!(stage(vec![task(0, 0)]).max_mean_ratio(), 1.0);
    }

    #[test]
    fn makespan_monotone_in_cores() {
        let s = stage((0..8).map(|i| task(i, 10 + i as u64)).collect());
        let m1 = s.simulated_makespan(1);
        let m2 = s.simulated_makespan(2);
        let m8 = s.simulated_makespan(8);
        assert!(m1 >= m2 && m2 >= m8);
        assert_eq!(m1, s.executor_busy());
        assert_eq!(m8, s.max_task());
    }

    #[test]
    fn job_aggregates_over_stages() {
        let j = JobMetrics {
            job_id: 0,
            stages: vec![stage(vec![task(0, 10)]), stage(vec![task(0, 5), task(1, 5)])],
            wall: Duration::from_millis(120),
            shuffle_records: 0,
            shuffle_bytes: 0,
            memory: MemoryStats::default(),
        };
        assert_eq!(j.executor_busy(), Duration::from_millis(20));
        assert_eq!(j.simulated_executor_time(1), Duration::from_millis(20));
        assert_eq!(j.simulated_executor_time(2), Duration::from_millis(15));
        assert_eq!(j.driver_overhead(), Duration::from_millis(20));
        assert_eq!(j.task_durations().len(), 3);
    }

    #[test]
    fn speculated_makespan_caps_straggler_tails() {
        // four even 100ms tasks, one straggled to 8x
        let mut tasks: Vec<TaskMetrics> = (0..4).map(|i| task(i, 100)).collect();
        tasks[3].straggler_extra = Duration::from_millis(700);
        let s = stage(tasks);
        let off = s.simulated_makespan(4);
        assert_eq!(off, Duration::from_millis(800), "tail dominated by the straggler");
        let spec = SpeculationConfig::on().with_multiplier_pct(150);
        let on = s.speculated_makespan(4, spec);
        // clone launched at 1.5x the 100ms median, finishes busy later
        assert_eq!(on, Duration::from_millis(250));
        assert!(off.as_secs_f64() / on.as_secs_f64() >= 2.0, "at least 2x tail reduction");
        // a disabled policy is exactly the plain simulation
        assert_eq!(s.speculated_makespan(4, SpeculationConfig::OFF), off);
        // never-straggled tasks are untouched by the cap
        let even = stage((0..4).map(|i| task(i, 100)).collect());
        assert_eq!(even.speculated_makespan(4, spec), even.simulated_makespan(4));
    }

    #[test]
    fn straggler_extra_zero_when_disabled() {
        let d = straggler_extra(StragglerConfig::NONE, 0, 0, 0, Duration::from_secs(1));
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn straggler_extra_applies_slowdown() {
        let cfg = StragglerConfig { prob: 1.0, slowdown: 3.0 };
        let d = straggler_extra(cfg, 0, 0, 0, Duration::from_secs(1));
        assert_eq!(d, Duration::from_secs(2));
    }

    #[test]
    fn straggler_is_deterministic_and_partial() {
        let cfg = StragglerConfig { prob: 0.4, slowdown: 2.0 };
        let hits: Vec<bool> = (0..200)
            .map(|p| !straggler_extra(cfg, 9, 1, p, Duration::from_secs(1)).is_zero())
            .collect();
        let again: Vec<bool> = (0..200)
            .map(|p| !straggler_extra(cfg, 9, 1, p, Duration::from_secs(1)).is_zero())
            .collect();
        assert_eq!(hits, again);
        let frac = hits.iter().filter(|&&b| b).count() as f64 / 200.0;
        assert!(frac > 0.2 && frac < 0.6, "straggler fraction {frac}");
    }
}
