//! In-memory hash shuffle with byte/record accounting.
//!
//! The paper's core design decision is to *avoid* shuffles ("we avoid
//! all-to-all communication... shuffle operations are very expensive in
//! Spark"). For that claim to be checkable, the engine implements real
//! shuffles: map tasks bucket their output by key hash, the manager holds
//! the buckets, reduce tasks fetch one bucket column each. Every record
//! and estimated byte moved is counted, and the DBSCAN tests assert the
//! count is **zero** for the paper's algorithm and non-zero for the
//! shuffle-based baseline.
//!
//! The manager is also the injection point for **shuffle fetch
//! failures**: under an active [`FaultRule`], a reduce-side fetch can
//! deterministically mark one parent map output lost and fail with a
//! typed [`TaskError`], driving the scheduler down the
//! lineage-recomputation path. Lost and recomputed outputs are recorded
//! as paired [`EventKind::MapOutputLost`] / [`EventKind::MapOutputRecomputed`]
//! trace events.

use crate::fault::{
    decision_hash, decision_hash_ordinal, FaultRule, EXPLORE_FETCH_SALT, FETCH_SALT, VICTIM_SALT,
};
use crate::memory::MemoryManager;
use crate::schedule::{Fifo, SchedulePolicy};
use crate::spill::{SpillHandle, SpillStore};
use crate::task::TaskError;
use crate::trace::{self, EventKind, TraceCollector};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A type-erased map-output bucket (`Vec<(K, V)>` behind `Any`).
pub(crate) type Bucket = Arc<dyn Any + Send + Sync>;

/// Type-erased bucket encoder (`None` on downcast mismatch).
pub(crate) type BucketEncodeFn = Arc<dyn Fn(&Bucket) -> Option<Vec<u8>> + Send + Sync>;

/// Type-erased bucket decoder (`None` on malformed bytes).
pub(crate) type BucketDecodeFn = Arc<dyn Fn(&[u8]) -> Option<Bucket> + Send + Sync>;

/// Byte codec for spillable shuffle buckets, attached by the spillable
/// pair transformations (`reduce_by_key_spillable` etc.). Type-erased so
/// the manager stays untyped.
#[derive(Clone)]
pub(crate) struct BucketCodec {
    /// Encode one bucket to bytes (`None` on type mismatch).
    pub encode: BucketEncodeFn,
    /// Decode bytes back to a bucket.
    pub decode: BucketDecodeFn,
}

#[derive(Clone)]
enum MapData {
    /// One bucket per reduce partition, resident in memory.
    Resident(Vec<Bucket>),
    /// Buckets parked in the spill tier, one blob per reduce partition,
    /// read back (checksum-verified) on fetch.
    Spilled { handles: Vec<SpillHandle>, decode: BucketDecodeFn },
}

#[derive(Clone)]
struct MapOutput {
    /// Virtual executor that produced this output (lost with it).
    executor: usize,
    /// Accounted bytes (released when the output is dropped or spilled).
    bytes: u64,
    data: MapData,
}

struct ShuffleState {
    num_maps: usize,
    num_reduces: usize,
    outputs: Vec<Option<MapOutput>>,
    /// Map partitions whose output was lost (fault injection or
    /// executor kill) and not yet recomputed — recomputing one records
    /// the matching `MapOutputRecomputed` event.
    lost: HashSet<usize>,
}

/// Registry of all shuffle outputs in a context.
pub struct ShuffleManager {
    shuffles: Mutex<HashMap<usize, ShuffleState>>,
    records: AtomicU64,
    bytes: AtomicU64,
    tracer: Arc<TraceCollector>,
    /// Fetch-failure injection rule (from the context's fault plan).
    fetch_fault: FaultRule,
    seed: u64,
    /// Ledger buffers are accounted against (map outputs charge their
    /// producing executor's lane).
    memory: Arc<MemoryManager>,
    /// Disk tier for over-budget spillable map outputs.
    spill: Arc<SpillStore>,
    /// Schedule policy: an exploring policy's keyed seed permutes the
    /// per-fetch bucket order (see [`crate::schedule`]).
    schedule: Arc<dyn SchedulePolicy>,
}

impl Default for ShuffleManager {
    fn default() -> Self {
        ShuffleManager::with_tracer(TraceCollector::disabled())
    }
}

impl ShuffleManager {
    /// Fresh, empty manager with tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh manager reporting shuffle traffic to `tracer`, unbounded.
    pub(crate) fn with_tracer(tracer: Arc<TraceCollector>) -> Self {
        Self::with_tracer_and_faults(
            tracer,
            FaultRule::NONE,
            0,
            MemoryManager::unbounded(),
            Arc::new(SpillStore::new().expect("create spill dir")),
            Arc::new(Fifo),
        )
    }

    /// Fresh manager with fetch-failure injection under `fetch_fault`,
    /// accounting buffers against `memory` and spilling into `spill`.
    pub(crate) fn with_tracer_and_faults(
        tracer: Arc<TraceCollector>,
        fetch_fault: FaultRule,
        seed: u64,
        memory: Arc<MemoryManager>,
        spill: Arc<SpillStore>,
        schedule: Arc<dyn SchedulePolicy>,
    ) -> Self {
        ShuffleManager {
            shuffles: Mutex::new(HashMap::new()),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            tracer,
            fetch_fault,
            seed,
            memory,
            spill,
            schedule,
        }
    }

    /// Declare a shuffle's geometry (idempotent).
    pub fn register(&self, shuffle_id: usize, num_maps: usize, num_reduces: usize) {
        let mut s = self.shuffles.lock();
        s.entry(shuffle_id).or_insert_with(|| ShuffleState {
            num_maps,
            num_reduces,
            outputs: vec![None; num_maps],
            lost: HashSet::new(),
        });
    }

    /// Store the output of map task `map_part`, overwriting any previous
    /// attempt's output (task retries are idempotent). If the partition
    /// had been marked lost, this is its recomputation and the matching
    /// `MapOutputRecomputed` event is recorded. Without a codec the
    /// buffer is force-charged even over budget (it must stay resident
    /// for correctness); see [`ShuffleManager::put_map_output_spillable`].
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn put_map_output(
        &self,
        shuffle_id: usize,
        map_part: usize,
        executor: usize,
        buckets: Vec<Bucket>,
        records: u64,
        bytes: u64,
    ) {
        self.put_map_output_spillable(shuffle_id, map_part, executor, buckets, records, bytes, None)
    }

    /// Release a dropped output's accounting: ledger bytes for resident
    /// data, spill files for spilled data.
    fn release_output(&self, out: MapOutput) {
        match out.data {
            MapData::Resident(_) => self.memory.uncharge(out.executor, out.bytes),
            MapData::Spilled { handles, .. } => {
                for h in handles {
                    self.spill.remove(h);
                }
            }
        }
    }

    /// [`ShuffleManager::put_map_output`] with an optional bucket codec.
    /// The buffer charges the producing executor's lane; when the charge
    /// does not fit a bounded budget and a codec is available, the
    /// buckets are spilled to disk instead of staying resident.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn put_map_output_spillable(
        &self,
        shuffle_id: usize,
        map_part: usize,
        executor: usize,
        buckets: Vec<Bucket>,
        records: u64,
        bytes: u64,
        codec: Option<BucketCodec>,
    ) {
        // the buckets existed in memory while the map task built them,
        // so the transient charge is real either way; a spill then moves
        // them out of the ledger
        let fits = self.memory.try_charge(executor, bytes);
        if !fits {
            self.memory.force_charge(executor, bytes);
        }
        let data = if fits {
            MapData::Resident(buckets)
        } else if let Some(c) = &codec {
            match buckets.iter().map(|b| (c.encode)(b)).collect::<Option<Vec<_>>>() {
                Some(blobs) => {
                    let handles: Vec<SpillHandle> = blobs
                        .iter()
                        .map(|blob| self.spill.spill(blob).expect("spill tier writable"))
                        .collect();
                    self.memory.note_spill(executor, bytes);
                    MapData::Spilled { handles, decode: Arc::clone(&c.decode) }
                }
                // encode refused (type mismatch) — stay resident
                None => MapData::Resident(buckets),
            }
        } else {
            MapData::Resident(buckets)
        };
        let mut s = self.shuffles.lock();
        let st = s.get_mut(&shuffle_id).expect("shuffle registered before map output");
        assert!(map_part < st.num_maps, "map partition out of range");
        let n = match &data {
            MapData::Resident(b) => b.len(),
            MapData::Spilled { handles, .. } => handles.len(),
        };
        assert_eq!(n, st.num_reduces, "bucket count mismatch");
        let old = st.outputs[map_part].replace(MapOutput { executor, bytes, data });
        let recomputed = st.lost.remove(&map_part);
        drop(s);
        if let Some(old) = old {
            self.release_output(old);
        }
        self.records.fetch_add(records, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if recomputed {
            self.tracer.record_auto(EventKind::MapOutputRecomputed {
                shuffle: shuffle_id,
                partition: map_part,
            });
        }
        self.tracer.record_auto(EventKind::ShuffleWrite { shuffle: shuffle_id, records, bytes });
    }

    /// Report a reduce-side fetch to the trace (called by the shuffled
    /// RDD, which knows the record/byte volume after downcasting).
    pub(crate) fn trace_read(&self, shuffle_id: usize, records: u64, bytes: u64) {
        self.tracer.record_auto(EventKind::ShuffleRead { shuffle: shuffle_id, records, bytes });
    }

    /// Map partitions whose output is missing (initially all of them;
    /// after an executor loss, the ones it had produced).
    pub fn missing_maps(&self, shuffle_id: usize) -> Vec<usize> {
        let s = self.shuffles.lock();
        match s.get(&shuffle_id) {
            None => Vec::new(),
            Some(st) => (0..st.num_maps).filter(|&i| st.outputs[i].is_none()).collect(),
        }
    }

    /// Whether a shuffle has been registered at all.
    pub fn is_registered(&self, shuffle_id: usize) -> bool {
        self.shuffles.lock().contains_key(&shuffle_id)
    }

    /// Fetch the bucket column for `reduce_part`: one bucket per map
    /// partition. `None` if any map output is missing.
    ///
    /// Resident buckets are stored behind [`Arc`], so fetching one is a
    /// refcount bump per map output — no record data is copied
    /// (regression-tested by `fetch_is_refcount_bump_not_deep_clone`).
    /// Spilled buckets are read back from disk and checksum-verified.
    /// Logical shuffle records/bytes are accounted at write and read
    /// time regardless, since they model what a real cluster would move.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn fetch(&self, shuffle_id: usize, reduce_part: usize) -> Option<Vec<Bucket>> {
        self.fetch_impl(shuffle_id, reduce_part).ok().flatten()
    }

    /// `Ok(None)` = some map output missing (lineage recomputes);
    /// `Err` = a spilled bucket failed verification or decode.
    fn fetch_impl(
        &self,
        shuffle_id: usize,
        reduce_part: usize,
    ) -> Result<Option<Vec<Bucket>>, TaskError> {
        // collect what each fetch needs under the lock, read spilled
        // blobs outside it
        enum Slot {
            Ready(Bucket),
            OnDisk(SpillHandle, BucketDecodeFn, usize),
        }
        let slots: Vec<Slot> = {
            let s = self.shuffles.lock();
            let Some(st) = s.get(&shuffle_id) else { return Ok(None) };
            let mut slots = Vec::with_capacity(st.num_maps);
            for o in &st.outputs {
                let Some(o) = o.as_ref() else { return Ok(None) };
                match &o.data {
                    MapData::Resident(buckets) => {
                        let Some(b) = buckets.get(reduce_part) else { return Ok(None) };
                        slots.push(Slot::Ready(b.clone()));
                    }
                    MapData::Spilled { handles, decode } => {
                        let Some(h) = handles.get(reduce_part) else { return Ok(None) };
                        slots.push(Slot::OnDisk(*h, Arc::clone(decode), o.executor));
                    }
                }
            }
            slots
        };
        // schedule exploration: an exploring policy's keyed seed ranks
        // the buckets per (shuffle, reduce, map) identity, so the reduce
        // task walks (and disk-reads) them in a replayable permuted
        // order instead of map order. Buckets form one merged column;
        // no consumer may assume positional alignment with map indices.
        let slots = match self.schedule.keyed_seed() {
            Some(ks) if slots.len() > 1 => {
                let mut ranked: Vec<(u64, Slot)> = slots
                    .into_iter()
                    .enumerate()
                    .map(|(m, s)| {
                        let rank = decision_hash(
                            ks,
                            EXPLORE_FETCH_SALT,
                            shuffle_id as u64,
                            reduce_part as u64,
                            m as u64,
                        );
                        (rank, s)
                    })
                    .collect();
                ranked.sort_by_key(|(rank, _)| *rank);
                ranked.into_iter().map(|(_, s)| s).collect()
            }
            _ => slots,
        };
        let mut col = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                Slot::Ready(b) => col.push(b),
                Slot::OnDisk(h, decode, executor) => {
                    let blob = self.spill.read(h).map_err(|e| {
                        TaskError::storage(format!(
                            "shuffle {shuffle_id} reduce {reduce_part}: spilled bucket lost: {e}"
                        ))
                    })?;
                    self.memory.note_spill_read(executor, blob.len() as u64);
                    let b = decode(&blob).ok_or_else(|| {
                        TaskError::storage(format!(
                            "shuffle {shuffle_id} reduce {reduce_part}: spilled bucket failed to decode"
                        ))
                    })?;
                    col.push(b);
                }
            }
        }
        Ok(Some(col))
    }

    /// Fetch with fault injection and typed errors: under an active
    /// fetch-failure rule, the decision keyed by the calling task's
    /// `(stage, partition, attempt)` identity (and the shuffle id) may
    /// mark a deterministic victim map output lost and fail the fetch.
    /// A genuinely incomplete shuffle (e.g. after a mid-stage executor
    /// kill) also fails typed, so the scheduler recovers via lineage
    /// either way.
    pub(crate) fn fetch_checked(
        &self,
        shuffle_id: usize,
        reduce_part: usize,
    ) -> Result<Vec<Bucket>, TaskError> {
        if self.fetch_fault.is_active() {
            if let Some(scope) = trace::task_scope() {
                let fire = self.fetch_fault.should_fire_ordinal(
                    self.seed,
                    FETCH_SALT.wrapping_add(shuffle_id as u64),
                    scope.stage,
                    scope.partition,
                    scope.attempt,
                    scope.ordinal,
                );
                if fire {
                    let victim = self.inject_lost_output(shuffle_id, scope);
                    return Err(TaskError::fetch_failed(
                        shuffle_id,
                        format!(
                            "injected fetch failure (stage {} partition {} attempt {}): map output {victim} lost",
                            scope.stage, scope.partition, scope.attempt
                        ),
                    )
                    .injected());
                }
            }
        }
        self.fetch_impl(shuffle_id, reduce_part)?.ok_or_else(|| {
            TaskError::fetch_failed(
                shuffle_id,
                format!("outputs missing for reduce partition {reduce_part}"),
            )
        })
    }

    /// Pick and mark the victim map output for an injected fetch
    /// failure. The victim index is derived from the same deterministic
    /// key as the decision, so a given `(stage, partition, attempt)`
    /// always loses the same output. The `MapOutputLost` event is
    /// recorded in the failing task's scope (once per injection) even if
    /// another task already lost the same victim, keeping the trace
    /// independent of reply ordering.
    fn inject_lost_output(&self, shuffle_id: usize, scope: trace::TaskScope) -> usize {
        let mut s = self.shuffles.lock();
        let Some(st) = s.get_mut(&shuffle_id) else { return 0 };
        let h = decision_hash_ordinal(
            self.seed,
            VICTIM_SALT.wrapping_add(shuffle_id as u64),
            scope.stage as u64,
            scope.partition as u64,
            scope.attempt as u64,
            scope.ordinal as u64,
        );
        let victim = (h % st.num_maps.max(1) as u64) as usize;
        st.outputs[victim] = None;
        st.lost.insert(victim);
        drop(s);
        self.tracer
            .record_auto(EventKind::MapOutputLost { shuffle: shuffle_id, partition: victim });
        victim
    }

    /// Drop every map output produced by `executor` across all shuffles
    /// (simulating the loss of that executor), recording a
    /// `MapOutputLost` event per dropped output. Returns how many
    /// outputs were lost.
    pub fn kill_executor(&self, executor: usize) -> usize {
        let mut lost: Vec<(usize, usize)> = Vec::new();
        let mut dropped: Vec<MapOutput> = Vec::new();
        let mut s = self.shuffles.lock();
        for (&sid, st) in s.iter_mut() {
            for (i, o) in st.outputs.iter_mut().enumerate() {
                if o.as_ref().is_some_and(|m| m.executor == executor) {
                    if let Some(out) = o.take() {
                        dropped.push(out);
                    }
                    st.lost.insert(i);
                    lost.push((sid, i));
                }
            }
        }
        drop(s);
        // reconcile accounting for everything the executor held
        for out in dropped {
            self.release_output(out);
        }
        lost.sort_unstable();
        for &(sid, i) in &lost {
            self.tracer.record_auto(EventKind::MapOutputLost { shuffle: sid, partition: i });
        }
        lost.len()
    }

    /// Total records moved through shuffles since creation.
    pub fn total_records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Total estimated bytes moved through shuffles since creation.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TaskScope;

    fn bucket(v: Vec<(u32, u32)>) -> Bucket {
        Arc::new(v)
    }

    #[test]
    fn register_put_fetch_roundtrip() {
        let m = ShuffleManager::new();
        m.register(0, 2, 2);
        assert_eq!(m.missing_maps(0), vec![0, 1]);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)]), bucket(vec![(2, 2)])], 2, 32);
        assert!(m.fetch(0, 0).is_none(), "incomplete shuffle not fetchable");
        m.put_map_output(0, 1, 1, vec![bucket(vec![(3, 3)]), bucket(vec![])], 1, 16);
        let col0 = m.fetch(0, 0).unwrap();
        assert_eq!(col0.len(), 2);
        let b: &Vec<(u32, u32)> = col0[0].downcast_ref().unwrap();
        assert_eq!(b, &vec![(1, 1)]);
        assert_eq!(m.total_records(), 3);
        assert_eq!(m.total_bytes(), 48);
    }

    #[test]
    fn fetch_is_refcount_bump_not_deep_clone() {
        let m = ShuffleManager::new();
        m.register(0, 2, 1);
        let b0 = bucket(vec![(1u32, 1u32)]);
        let b1 = bucket(vec![(2u32, 2u32)]);
        m.put_map_output(0, 0, 0, vec![Arc::clone(&b0)], 1, 8);
        m.put_map_output(0, 1, 1, vec![Arc::clone(&b1)], 1, 8);
        let col = m.fetch(0, 0).unwrap();
        assert!(Arc::ptr_eq(&col[0], &b0), "fetch must share the stored allocation");
        assert!(Arc::ptr_eq(&col[1], &b1));
        // repeated reads keep sharing — no copy amplification with
        // reduce-side retries
        let again = m.fetch(0, 0).unwrap();
        assert!(Arc::ptr_eq(&again[0], &b0));
    }

    #[test]
    fn register_is_idempotent() {
        let m = ShuffleManager::new();
        m.register(5, 3, 1);
        m.put_map_output(5, 0, 0, vec![bucket(vec![])], 0, 0);
        m.register(5, 3, 1); // must not clear outputs
        assert_eq!(m.missing_maps(5), vec![1, 2]);
    }

    #[test]
    fn kill_executor_drops_its_outputs_only() {
        let m = ShuffleManager::new();
        m.register(0, 2, 1);
        m.put_map_output(0, 0, 7, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 1, 8, vec![bucket(vec![(2, 2)])], 1, 8);
        assert_eq!(m.kill_executor(7), 1);
        assert_eq!(m.missing_maps(0), vec![0]);
        assert!(m.fetch(0, 0).is_none());
        // re-run the lost map task and fetch succeeds again
        m.put_map_output(0, 0, 3, vec![bucket(vec![(1, 1)])], 1, 8);
        assert!(m.fetch(0, 0).is_some());
    }

    #[test]
    fn retried_map_overwrites() {
        let m = ShuffleManager::new();
        m.register(0, 1, 1);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(9, 9)])], 1, 8);
        let col = m.fetch(0, 0).unwrap();
        let b: &Vec<(u32, u32)> = col[0].downcast_ref().unwrap();
        assert_eq!(b, &vec![(9, 9)]);
    }

    #[test]
    fn unknown_shuffle_fetch_is_none() {
        let m = ShuffleManager::new();
        assert!(m.fetch(99, 0).is_none());
        assert!(m.missing_maps(99).is_empty());
        assert!(!m.is_registered(99));
    }

    #[test]
    fn fetch_checked_without_faults_matches_fetch() {
        let m = ShuffleManager::new();
        m.register(0, 1, 1);
        let err = m.fetch_checked(0, 0).unwrap_err();
        assert_eq!(err.kind, crate::task::TaskErrorKind::FetchFailed { shuffle: 0 });
        assert!(!err.injected);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        assert!(m.fetch_checked(0, 0).is_ok());
    }

    #[test]
    fn injected_fetch_failure_marks_victim_lost_then_recomputed() {
        let m = ShuffleManager::with_tracer_and_faults(
            Arc::new(TraceCollector::new(crate::config::TraceConfig::enabled())),
            FaultRule::always_first(1),
            42,
            MemoryManager::unbounded(),
            Arc::new(SpillStore::new().unwrap()),
            Arc::new(Fifo),
        );
        m.register(3, 2, 1);
        m.put_map_output(3, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(3, 1, 1, vec![bucket(vec![(2, 2)])], 1, 8);

        // attempt 0 inside a task scope: injection fires, a victim is lost
        trace::set_task_scope(Some(TaskScope {
            stage: 9,
            partition: 0,
            attempt: 0,
            ordinal: 0,
            executor: 0,
        }));
        let err = m.fetch_checked(3, 0).unwrap_err();
        assert!(err.injected, "{err}");
        let missing = m.missing_maps(3);
        assert_eq!(missing.len(), 1, "exactly one victim lost");

        // recompute the victim, then attempt 1 succeeds
        m.put_map_output(3, missing[0], 0, vec![bucket(vec![(1, 1)])], 1, 8);
        trace::set_task_scope(Some(TaskScope {
            stage: 9,
            partition: 0,
            attempt: 1,
            ordinal: 0,
            executor: 0,
        }));
        assert!(m.fetch_checked(3, 0).is_ok());
        trace::set_task_scope(None);
    }

    #[test]
    fn lost_and_recomputed_events_pair_up() {
        let tracer = Arc::new(TraceCollector::new(crate::config::TraceConfig::enabled()));
        let m = ShuffleManager::with_tracer(Arc::clone(&tracer));
        m.register(0, 2, 1);
        m.put_map_output(0, 0, 7, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 1, 8, vec![bucket(vec![(2, 2)])], 1, 8);
        m.kill_executor(7);
        m.put_map_output(0, 0, 3, vec![bucket(vec![(1, 1)])], 1, 8);
        let events = tracer.snapshot().events;
        let lost: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MapOutputLost { shuffle: 0, partition: 0 }))
            .collect();
        let recomputed: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::MapOutputRecomputed { shuffle: 0, partition: 0 })
            })
            .collect();
        assert_eq!(lost.len(), 1);
        assert_eq!(recomputed.len(), 1);
    }
}
