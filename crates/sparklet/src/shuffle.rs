//! In-memory hash shuffle with byte/record accounting.
//!
//! The paper's core design decision is to *avoid* shuffles ("we avoid
//! all-to-all communication... shuffle operations are very expensive in
//! Spark"). For that claim to be checkable, the engine implements real
//! shuffles: map tasks bucket their output by key hash, the manager holds
//! the buckets, reduce tasks fetch one bucket column each. Every record
//! and estimated byte moved is counted, and the DBSCAN tests assert the
//! count is **zero** for the paper's algorithm and non-zero for the
//! shuffle-based baseline.

use crate::trace::{EventKind, TraceCollector};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A type-erased map-output bucket (`Vec<(K, V)>` behind `Any`).
pub(crate) type Bucket = Arc<dyn Any + Send + Sync>;

#[derive(Clone)]
struct MapOutput {
    /// Virtual executor that produced this output (lost with it).
    executor: usize,
    /// One bucket per reduce partition.
    buckets: Vec<Bucket>,
}

struct ShuffleState {
    num_maps: usize,
    num_reduces: usize,
    outputs: Vec<Option<MapOutput>>,
}

/// Registry of all shuffle outputs in a context.
pub struct ShuffleManager {
    shuffles: Mutex<HashMap<usize, ShuffleState>>,
    records: AtomicU64,
    bytes: AtomicU64,
    tracer: Arc<TraceCollector>,
}

impl Default for ShuffleManager {
    fn default() -> Self {
        ShuffleManager::with_tracer(TraceCollector::disabled())
    }
}

impl ShuffleManager {
    /// Fresh, empty manager with tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh manager reporting shuffle traffic to `tracer`.
    pub(crate) fn with_tracer(tracer: Arc<TraceCollector>) -> Self {
        ShuffleManager {
            shuffles: Mutex::new(HashMap::new()),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            tracer,
        }
    }

    /// Declare a shuffle's geometry (idempotent).
    pub fn register(&self, shuffle_id: usize, num_maps: usize, num_reduces: usize) {
        let mut s = self.shuffles.lock();
        s.entry(shuffle_id).or_insert_with(|| ShuffleState {
            num_maps,
            num_reduces,
            outputs: vec![None; num_maps],
        });
    }

    /// Store the output of map task `map_part`, overwriting any previous
    /// attempt's output (task retries are idempotent).
    pub(crate) fn put_map_output(
        &self,
        shuffle_id: usize,
        map_part: usize,
        executor: usize,
        buckets: Vec<Bucket>,
        records: u64,
        bytes: u64,
    ) {
        let mut s = self.shuffles.lock();
        let st = s.get_mut(&shuffle_id).expect("shuffle registered before map output");
        assert!(map_part < st.num_maps, "map partition out of range");
        assert_eq!(buckets.len(), st.num_reduces, "bucket count mismatch");
        st.outputs[map_part] = Some(MapOutput { executor, buckets });
        drop(s);
        self.records.fetch_add(records, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.tracer.record_auto(EventKind::ShuffleWrite { shuffle: shuffle_id, records, bytes });
    }

    /// Report a reduce-side fetch to the trace (called by the shuffled
    /// RDD, which knows the record/byte volume after downcasting).
    pub(crate) fn trace_read(&self, shuffle_id: usize, records: u64, bytes: u64) {
        self.tracer.record_auto(EventKind::ShuffleRead { shuffle: shuffle_id, records, bytes });
    }

    /// Map partitions whose output is missing (initially all of them;
    /// after an executor loss, the ones it had produced).
    pub fn missing_maps(&self, shuffle_id: usize) -> Vec<usize> {
        let s = self.shuffles.lock();
        match s.get(&shuffle_id) {
            None => Vec::new(),
            Some(st) => (0..st.num_maps).filter(|&i| st.outputs[i].is_none()).collect(),
        }
    }

    /// Whether a shuffle has been registered at all.
    pub fn is_registered(&self, shuffle_id: usize) -> bool {
        self.shuffles.lock().contains_key(&shuffle_id)
    }

    /// Fetch the bucket column for `reduce_part`: one bucket per map
    /// partition. `None` if any map output is missing.
    pub(crate) fn fetch(&self, shuffle_id: usize, reduce_part: usize) -> Option<Vec<Bucket>> {
        let s = self.shuffles.lock();
        let st = s.get(&shuffle_id)?;
        let mut col = Vec::with_capacity(st.num_maps);
        for o in &st.outputs {
            col.push(o.as_ref()?.buckets.get(reduce_part)?.clone());
        }
        Some(col)
    }

    /// Drop every map output produced by `executor` across all shuffles
    /// (simulating the loss of that executor). Returns how many outputs
    /// were lost.
    pub fn kill_executor(&self, executor: usize) -> usize {
        let mut lost = 0;
        let mut s = self.shuffles.lock();
        for st in s.values_mut() {
            for o in &mut st.outputs {
                if o.as_ref().is_some_and(|m| m.executor == executor) {
                    *o = None;
                    lost += 1;
                }
            }
        }
        lost
    }

    /// Total records moved through shuffles since creation.
    pub fn total_records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Total estimated bytes moved through shuffles since creation.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(v: Vec<(u32, u32)>) -> Bucket {
        Arc::new(v)
    }

    #[test]
    fn register_put_fetch_roundtrip() {
        let m = ShuffleManager::new();
        m.register(0, 2, 2);
        assert_eq!(m.missing_maps(0), vec![0, 1]);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)]), bucket(vec![(2, 2)])], 2, 32);
        assert!(m.fetch(0, 0).is_none(), "incomplete shuffle not fetchable");
        m.put_map_output(0, 1, 1, vec![bucket(vec![(3, 3)]), bucket(vec![])], 1, 16);
        let col0 = m.fetch(0, 0).unwrap();
        assert_eq!(col0.len(), 2);
        let b: &Vec<(u32, u32)> = col0[0].downcast_ref().unwrap();
        assert_eq!(b, &vec![(1, 1)]);
        assert_eq!(m.total_records(), 3);
        assert_eq!(m.total_bytes(), 48);
    }

    #[test]
    fn register_is_idempotent() {
        let m = ShuffleManager::new();
        m.register(5, 3, 1);
        m.put_map_output(5, 0, 0, vec![bucket(vec![])], 0, 0);
        m.register(5, 3, 1); // must not clear outputs
        assert_eq!(m.missing_maps(5), vec![1, 2]);
    }

    #[test]
    fn kill_executor_drops_its_outputs_only() {
        let m = ShuffleManager::new();
        m.register(0, 2, 1);
        m.put_map_output(0, 0, 7, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 1, 8, vec![bucket(vec![(2, 2)])], 1, 8);
        assert_eq!(m.kill_executor(7), 1);
        assert_eq!(m.missing_maps(0), vec![0]);
        assert!(m.fetch(0, 0).is_none());
        // re-run the lost map task and fetch succeeds again
        m.put_map_output(0, 0, 3, vec![bucket(vec![(1, 1)])], 1, 8);
        assert!(m.fetch(0, 0).is_some());
    }

    #[test]
    fn retried_map_overwrites() {
        let m = ShuffleManager::new();
        m.register(0, 1, 1);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(9, 9)])], 1, 8);
        let col = m.fetch(0, 0).unwrap();
        let b: &Vec<(u32, u32)> = col[0].downcast_ref().unwrap();
        assert_eq!(b, &vec![(9, 9)]);
    }

    #[test]
    fn unknown_shuffle_fetch_is_none() {
        let m = ShuffleManager::new();
        assert!(m.fetch(99, 0).is_none());
        assert!(m.missing_maps(99).is_empty());
        assert!(!m.is_registered(99));
    }
}
