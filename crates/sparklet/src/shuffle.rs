//! In-memory hash shuffle with byte/record accounting.
//!
//! The paper's core design decision is to *avoid* shuffles ("we avoid
//! all-to-all communication... shuffle operations are very expensive in
//! Spark"). For that claim to be checkable, the engine implements real
//! shuffles: map tasks bucket their output by key hash, the manager holds
//! the buckets, reduce tasks fetch one bucket column each. Every record
//! and estimated byte moved is counted, and the DBSCAN tests assert the
//! count is **zero** for the paper's algorithm and non-zero for the
//! shuffle-based baseline.
//!
//! The manager is also the injection point for **shuffle fetch
//! failures**: under an active [`FaultRule`], a reduce-side fetch can
//! deterministically mark one parent map output lost and fail with a
//! typed [`TaskError`], driving the scheduler down the
//! lineage-recomputation path. Lost and recomputed outputs are recorded
//! as paired [`EventKind::MapOutputLost`] / [`EventKind::MapOutputRecomputed`]
//! trace events.

use crate::fault::{decision_hash, FaultRule, FETCH_SALT, VICTIM_SALT};
use crate::task::TaskError;
use crate::trace::{self, EventKind, TraceCollector};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A type-erased map-output bucket (`Vec<(K, V)>` behind `Any`).
pub(crate) type Bucket = Arc<dyn Any + Send + Sync>;

#[derive(Clone)]
struct MapOutput {
    /// Virtual executor that produced this output (lost with it).
    executor: usize,
    /// One bucket per reduce partition.
    buckets: Vec<Bucket>,
}

struct ShuffleState {
    num_maps: usize,
    num_reduces: usize,
    outputs: Vec<Option<MapOutput>>,
    /// Map partitions whose output was lost (fault injection or
    /// executor kill) and not yet recomputed — recomputing one records
    /// the matching `MapOutputRecomputed` event.
    lost: HashSet<usize>,
}

/// Registry of all shuffle outputs in a context.
pub struct ShuffleManager {
    shuffles: Mutex<HashMap<usize, ShuffleState>>,
    records: AtomicU64,
    bytes: AtomicU64,
    tracer: Arc<TraceCollector>,
    /// Fetch-failure injection rule (from the context's fault plan).
    fetch_fault: FaultRule,
    seed: u64,
}

impl Default for ShuffleManager {
    fn default() -> Self {
        ShuffleManager::with_tracer(TraceCollector::disabled())
    }
}

impl ShuffleManager {
    /// Fresh, empty manager with tracing off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh manager reporting shuffle traffic to `tracer`.
    pub(crate) fn with_tracer(tracer: Arc<TraceCollector>) -> Self {
        Self::with_tracer_and_faults(tracer, FaultRule::NONE, 0)
    }

    /// Fresh manager with fetch-failure injection under `fetch_fault`.
    pub(crate) fn with_tracer_and_faults(
        tracer: Arc<TraceCollector>,
        fetch_fault: FaultRule,
        seed: u64,
    ) -> Self {
        ShuffleManager {
            shuffles: Mutex::new(HashMap::new()),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            tracer,
            fetch_fault,
            seed,
        }
    }

    /// Declare a shuffle's geometry (idempotent).
    pub fn register(&self, shuffle_id: usize, num_maps: usize, num_reduces: usize) {
        let mut s = self.shuffles.lock();
        s.entry(shuffle_id).or_insert_with(|| ShuffleState {
            num_maps,
            num_reduces,
            outputs: vec![None; num_maps],
            lost: HashSet::new(),
        });
    }

    /// Store the output of map task `map_part`, overwriting any previous
    /// attempt's output (task retries are idempotent). If the partition
    /// had been marked lost, this is its recomputation and the matching
    /// `MapOutputRecomputed` event is recorded.
    pub(crate) fn put_map_output(
        &self,
        shuffle_id: usize,
        map_part: usize,
        executor: usize,
        buckets: Vec<Bucket>,
        records: u64,
        bytes: u64,
    ) {
        let mut s = self.shuffles.lock();
        let st = s.get_mut(&shuffle_id).expect("shuffle registered before map output");
        assert!(map_part < st.num_maps, "map partition out of range");
        assert_eq!(buckets.len(), st.num_reduces, "bucket count mismatch");
        st.outputs[map_part] = Some(MapOutput { executor, buckets });
        let recomputed = st.lost.remove(&map_part);
        drop(s);
        self.records.fetch_add(records, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        if recomputed {
            self.tracer.record_auto(EventKind::MapOutputRecomputed {
                shuffle: shuffle_id,
                partition: map_part,
            });
        }
        self.tracer.record_auto(EventKind::ShuffleWrite { shuffle: shuffle_id, records, bytes });
    }

    /// Report a reduce-side fetch to the trace (called by the shuffled
    /// RDD, which knows the record/byte volume after downcasting).
    pub(crate) fn trace_read(&self, shuffle_id: usize, records: u64, bytes: u64) {
        self.tracer.record_auto(EventKind::ShuffleRead { shuffle: shuffle_id, records, bytes });
    }

    /// Map partitions whose output is missing (initially all of them;
    /// after an executor loss, the ones it had produced).
    pub fn missing_maps(&self, shuffle_id: usize) -> Vec<usize> {
        let s = self.shuffles.lock();
        match s.get(&shuffle_id) {
            None => Vec::new(),
            Some(st) => (0..st.num_maps).filter(|&i| st.outputs[i].is_none()).collect(),
        }
    }

    /// Whether a shuffle has been registered at all.
    pub fn is_registered(&self, shuffle_id: usize) -> bool {
        self.shuffles.lock().contains_key(&shuffle_id)
    }

    /// Fetch the bucket column for `reduce_part`: one bucket per map
    /// partition. `None` if any map output is missing.
    ///
    /// Buckets are stored behind [`Arc`], so a fetch is a refcount bump
    /// per map output — no record data is copied (regression-tested by
    /// `fetch_is_refcount_bump_not_deep_clone`). Logical shuffle
    /// records/bytes are accounted at write and read time regardless,
    /// since they model what a real cluster would move.
    pub(crate) fn fetch(&self, shuffle_id: usize, reduce_part: usize) -> Option<Vec<Bucket>> {
        let s = self.shuffles.lock();
        let st = s.get(&shuffle_id)?;
        let mut col = Vec::with_capacity(st.num_maps);
        for o in &st.outputs {
            col.push(o.as_ref()?.buckets.get(reduce_part)?.clone());
        }
        Some(col)
    }

    /// Fetch with fault injection and typed errors: under an active
    /// fetch-failure rule, the decision keyed by the calling task's
    /// `(stage, partition, attempt)` identity (and the shuffle id) may
    /// mark a deterministic victim map output lost and fail the fetch.
    /// A genuinely incomplete shuffle (e.g. after a mid-stage executor
    /// kill) also fails typed, so the scheduler recovers via lineage
    /// either way.
    pub(crate) fn fetch_checked(
        &self,
        shuffle_id: usize,
        reduce_part: usize,
    ) -> Result<Vec<Bucket>, TaskError> {
        if self.fetch_fault.is_active() {
            if let Some(scope) = trace::task_scope() {
                let fire = self.fetch_fault.should_fire(
                    self.seed,
                    FETCH_SALT.wrapping_add(shuffle_id as u64),
                    scope.stage,
                    scope.partition,
                    scope.attempt,
                );
                if fire {
                    let victim = self.inject_lost_output(shuffle_id, scope);
                    return Err(TaskError::fetch_failed(
                        shuffle_id,
                        format!(
                            "injected fetch failure (stage {} partition {} attempt {}): map output {victim} lost",
                            scope.stage, scope.partition, scope.attempt
                        ),
                    )
                    .injected());
                }
            }
        }
        self.fetch(shuffle_id, reduce_part).ok_or_else(|| {
            TaskError::fetch_failed(
                shuffle_id,
                format!("outputs missing for reduce partition {reduce_part}"),
            )
        })
    }

    /// Pick and mark the victim map output for an injected fetch
    /// failure. The victim index is derived from the same deterministic
    /// key as the decision, so a given `(stage, partition, attempt)`
    /// always loses the same output. The `MapOutputLost` event is
    /// recorded in the failing task's scope (once per injection) even if
    /// another task already lost the same victim, keeping the trace
    /// independent of reply ordering.
    fn inject_lost_output(&self, shuffle_id: usize, scope: trace::TaskScope) -> usize {
        let mut s = self.shuffles.lock();
        let Some(st) = s.get_mut(&shuffle_id) else { return 0 };
        let h = decision_hash(
            self.seed,
            VICTIM_SALT.wrapping_add(shuffle_id as u64),
            scope.stage as u64,
            scope.partition as u64,
            scope.attempt as u64,
        );
        let victim = (h % st.num_maps.max(1) as u64) as usize;
        st.outputs[victim] = None;
        st.lost.insert(victim);
        drop(s);
        self.tracer
            .record_auto(EventKind::MapOutputLost { shuffle: shuffle_id, partition: victim });
        victim
    }

    /// Drop every map output produced by `executor` across all shuffles
    /// (simulating the loss of that executor), recording a
    /// `MapOutputLost` event per dropped output. Returns how many
    /// outputs were lost.
    pub fn kill_executor(&self, executor: usize) -> usize {
        let mut lost: Vec<(usize, usize)> = Vec::new();
        let mut s = self.shuffles.lock();
        for (&sid, st) in s.iter_mut() {
            for (i, o) in st.outputs.iter_mut().enumerate() {
                if o.as_ref().is_some_and(|m| m.executor == executor) {
                    *o = None;
                    st.lost.insert(i);
                    lost.push((sid, i));
                }
            }
        }
        drop(s);
        lost.sort_unstable();
        for &(sid, i) in &lost {
            self.tracer.record_auto(EventKind::MapOutputLost { shuffle: sid, partition: i });
        }
        lost.len()
    }

    /// Total records moved through shuffles since creation.
    pub fn total_records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Total estimated bytes moved through shuffles since creation.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TaskScope;

    fn bucket(v: Vec<(u32, u32)>) -> Bucket {
        Arc::new(v)
    }

    #[test]
    fn register_put_fetch_roundtrip() {
        let m = ShuffleManager::new();
        m.register(0, 2, 2);
        assert_eq!(m.missing_maps(0), vec![0, 1]);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)]), bucket(vec![(2, 2)])], 2, 32);
        assert!(m.fetch(0, 0).is_none(), "incomplete shuffle not fetchable");
        m.put_map_output(0, 1, 1, vec![bucket(vec![(3, 3)]), bucket(vec![])], 1, 16);
        let col0 = m.fetch(0, 0).unwrap();
        assert_eq!(col0.len(), 2);
        let b: &Vec<(u32, u32)> = col0[0].downcast_ref().unwrap();
        assert_eq!(b, &vec![(1, 1)]);
        assert_eq!(m.total_records(), 3);
        assert_eq!(m.total_bytes(), 48);
    }

    #[test]
    fn fetch_is_refcount_bump_not_deep_clone() {
        let m = ShuffleManager::new();
        m.register(0, 2, 1);
        let b0 = bucket(vec![(1u32, 1u32)]);
        let b1 = bucket(vec![(2u32, 2u32)]);
        m.put_map_output(0, 0, 0, vec![Arc::clone(&b0)], 1, 8);
        m.put_map_output(0, 1, 1, vec![Arc::clone(&b1)], 1, 8);
        let col = m.fetch(0, 0).unwrap();
        assert!(Arc::ptr_eq(&col[0], &b0), "fetch must share the stored allocation");
        assert!(Arc::ptr_eq(&col[1], &b1));
        // repeated reads keep sharing — no copy amplification with
        // reduce-side retries
        let again = m.fetch(0, 0).unwrap();
        assert!(Arc::ptr_eq(&again[0], &b0));
    }

    #[test]
    fn register_is_idempotent() {
        let m = ShuffleManager::new();
        m.register(5, 3, 1);
        m.put_map_output(5, 0, 0, vec![bucket(vec![])], 0, 0);
        m.register(5, 3, 1); // must not clear outputs
        assert_eq!(m.missing_maps(5), vec![1, 2]);
    }

    #[test]
    fn kill_executor_drops_its_outputs_only() {
        let m = ShuffleManager::new();
        m.register(0, 2, 1);
        m.put_map_output(0, 0, 7, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 1, 8, vec![bucket(vec![(2, 2)])], 1, 8);
        assert_eq!(m.kill_executor(7), 1);
        assert_eq!(m.missing_maps(0), vec![0]);
        assert!(m.fetch(0, 0).is_none());
        // re-run the lost map task and fetch succeeds again
        m.put_map_output(0, 0, 3, vec![bucket(vec![(1, 1)])], 1, 8);
        assert!(m.fetch(0, 0).is_some());
    }

    #[test]
    fn retried_map_overwrites() {
        let m = ShuffleManager::new();
        m.register(0, 1, 1);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(9, 9)])], 1, 8);
        let col = m.fetch(0, 0).unwrap();
        let b: &Vec<(u32, u32)> = col[0].downcast_ref().unwrap();
        assert_eq!(b, &vec![(9, 9)]);
    }

    #[test]
    fn unknown_shuffle_fetch_is_none() {
        let m = ShuffleManager::new();
        assert!(m.fetch(99, 0).is_none());
        assert!(m.missing_maps(99).is_empty());
        assert!(!m.is_registered(99));
    }

    #[test]
    fn fetch_checked_without_faults_matches_fetch() {
        let m = ShuffleManager::new();
        m.register(0, 1, 1);
        let err = m.fetch_checked(0, 0).unwrap_err();
        assert_eq!(err.kind, crate::task::TaskErrorKind::FetchFailed { shuffle: 0 });
        assert!(!err.injected);
        m.put_map_output(0, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        assert!(m.fetch_checked(0, 0).is_ok());
    }

    #[test]
    fn injected_fetch_failure_marks_victim_lost_then_recomputed() {
        let m = ShuffleManager::with_tracer_and_faults(
            Arc::new(TraceCollector::new(crate::config::TraceConfig::enabled())),
            FaultRule::always_first(1),
            42,
        );
        m.register(3, 2, 1);
        m.put_map_output(3, 0, 0, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(3, 1, 1, vec![bucket(vec![(2, 2)])], 1, 8);

        // attempt 0 inside a task scope: injection fires, a victim is lost
        trace::set_task_scope(Some(TaskScope { stage: 9, partition: 0, attempt: 0, executor: 0 }));
        let err = m.fetch_checked(3, 0).unwrap_err();
        assert!(err.injected, "{err}");
        let missing = m.missing_maps(3);
        assert_eq!(missing.len(), 1, "exactly one victim lost");

        // recompute the victim, then attempt 1 succeeds
        m.put_map_output(3, missing[0], 0, vec![bucket(vec![(1, 1)])], 1, 8);
        trace::set_task_scope(Some(TaskScope { stage: 9, partition: 0, attempt: 1, executor: 0 }));
        assert!(m.fetch_checked(3, 0).is_ok());
        trace::set_task_scope(None);
    }

    #[test]
    fn lost_and_recomputed_events_pair_up() {
        let tracer = Arc::new(TraceCollector::new(crate::config::TraceConfig::enabled()));
        let m = ShuffleManager::with_tracer(Arc::clone(&tracer));
        m.register(0, 2, 1);
        m.put_map_output(0, 0, 7, vec![bucket(vec![(1, 1)])], 1, 8);
        m.put_map_output(0, 1, 8, vec![bucket(vec![(2, 2)])], 1, 8);
        m.kill_executor(7);
        m.put_map_output(0, 0, 3, vec![bucket(vec![(1, 1)])], 1, 8);
        let events = tracer.snapshot().events;
        let lost: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MapOutputLost { shuffle: 0, partition: 0 }))
            .collect();
        let recomputed: Vec<_> = events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::MapOutputRecomputed { shuffle: 0, partition: 0 })
            })
            .collect();
        assert_eq!(lost.len(), 1);
        assert_eq!(recomputed.len(), 1);
    }
}
