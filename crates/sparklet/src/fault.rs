//! Deterministic fault injection.
//!
//! The paper motivates framework-based parallelism with fault tolerance:
//! "A single process failure in MPI will cause the whole job to fail. In
//! \[the\] MapReduce framework, another task will be automatically launched
//! if one task fails." This module injects task failures so the engine's
//! retry path is exercised — deterministically, keyed by
//! `(seed, stage, partition, attempt)`, so tests are reproducible.

/// Injected-failure model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that any given task *attempt* fails.
    pub task_failure_prob: f64,
    /// Attempts that may be failed per task. Keeping this below the
    /// scheduler's `max_task_attempts` guarantees eventual success.
    pub max_injected_failures_per_task: usize,
}

impl FaultConfig {
    /// No injected faults.
    pub const NONE: FaultConfig =
        FaultConfig { task_failure_prob: 0.0, max_injected_failures_per_task: 0 };

    /// Fail every task's first `n` attempts — the harshest deterministic
    /// model, for tests.
    pub fn always_first(n: usize) -> Self {
        FaultConfig { task_failure_prob: 1.0, max_injected_failures_per_task: n }
    }

    /// Should the given attempt be failed?
    pub fn should_fail(&self, seed: u64, stage: usize, partition: usize, attempt: usize) -> bool {
        if attempt >= self.max_injected_failures_per_task || self.task_failure_prob <= 0.0 {
            return false;
        }
        if self.task_failure_prob >= 1.0 {
            return true;
        }
        let h = mix(seed ^ mix(stage as u64) ^ mix((partition as u64) << 20 | attempt as u64));
        (h as f64 / u64::MAX as f64) < self.task_failure_prob
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// splitmix64 finalizer — a cheap, well-distributed hash for injection
/// decisions and straggler sampling.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FaultConfig::NONE;
        for a in 0..10 {
            assert!(!f.should_fail(1, 2, 3, a));
        }
    }

    #[test]
    fn always_first_fails_exactly_n_attempts() {
        let f = FaultConfig::always_first(2);
        assert!(f.should_fail(0, 0, 0, 0));
        assert!(f.should_fail(0, 0, 0, 1));
        assert!(!f.should_fail(0, 0, 0, 2));
    }

    #[test]
    fn decisions_are_deterministic() {
        let f = FaultConfig { task_failure_prob: 0.5, max_injected_failures_per_task: 1 };
        for part in 0..50 {
            assert_eq!(f.should_fail(7, 1, part, 0), f.should_fail(7, 1, part, 0));
        }
    }

    #[test]
    fn probability_is_roughly_respected() {
        let f = FaultConfig { task_failure_prob: 0.3, max_injected_failures_per_task: 1 };
        let n = 10_000;
        let fails = (0..n).filter(|&p| f.should_fail(42, 0, p, 0)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed failure rate {rate}");
    }

    #[test]
    fn mix_spreads_bits() {
        assert_ne!(mix(0), mix(1));
        assert_ne!(mix(1), mix(2));
    }
}
