//! Deterministic fault injection.
//!
//! The paper motivates framework-based parallelism with fault tolerance:
//! "A single process failure in MPI will cause the whole job to fail. In
//! \[the\] MapReduce framework, another task will be automatically launched
//! if one task fails." This module schedules faults so every recovery
//! path in the engine is exercised — deterministically, keyed by
//! `(seed, stage, partition, attempt)` splitmix hashes, so any failing
//! run is reproducible from its seed alone.
//!
//! A [`FaultPlan`] describes *which* faults a run injects:
//!
//! * **task attempt failures** (the classic [`FaultConfig`] knob): the
//!   attempt dies before user code runs; the scheduler retries it.
//! * **shuffle fetch failures**: a reduce-side fetch fails and one of the
//!   parent map outputs is marked lost, forcing the scheduler down the
//!   lineage-recomputation path (recompute only the missing map
//!   partitions, then resubmit the reduce task).
//! * **DFS block-read failures** (forwarded to minidfs): a replica is
//!   deterministically treated as dead, exercising replica fallback and
//!   re-replication; exhausting every replica surfaces a typed error.
//! * **executor kills at a virtual-time point**: after the N-th task
//!   completion of a given stage, an executor dies — its cache and map
//!   outputs vanish and its in-flight attempts are requeued.
//! * **straggler slowdowns**: a real (small) delay on selected attempts,
//!   perturbing thread interleavings the way slow nodes would.
//!
//! Every decision hashes its fault kind's salt together with the run
//! seed and the full task identity, each field mixed *separately* (a
//! plain bit-pack like `partition << 20 | attempt` would alias distinct
//! pairs), so rules are independent of each other and of the workload.

/// Injected task-attempt-failure model (the original, narrow knob).
/// Converts into a [`FaultPlan`] that injects only task failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that any given task *attempt* fails.
    pub task_failure_prob: f64,
    /// Attempts that may be failed per task. Keeping this below the
    /// scheduler's `max_task_attempts` guarantees eventual success.
    pub max_injected_failures_per_task: usize,
}

impl FaultConfig {
    /// No injected faults.
    pub const NONE: FaultConfig =
        FaultConfig { task_failure_prob: 0.0, max_injected_failures_per_task: 0 };

    /// Fail every task's first `n` attempts — the harshest deterministic
    /// model, for tests.
    pub fn always_first(n: usize) -> Self {
        FaultConfig { task_failure_prob: 1.0, max_injected_failures_per_task: n }
    }

    /// Should the given attempt be failed?
    pub fn should_fail(&self, seed: u64, stage: usize, partition: usize, attempt: usize) -> bool {
        FaultRule {
            prob: self.task_failure_prob,
            max_per_task: self.max_injected_failures_per_task,
        }
        .should_fire(seed, TASK_SALT, stage, partition, attempt)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::NONE
    }
}

/// splitmix64 finalizer — a cheap, well-distributed hash for injection
/// decisions and straggler sampling.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Chain-mix a decision key. Each field passes through the finalizer
/// before the next is folded in, so the hash is sensitive to field
/// *position* — `(partition=1, attempt=0)` and `(partition=0, attempt=1)`
/// land far apart, unlike the old `partition << 20 | attempt` packing
/// which aliased any pair with colliding bits.
#[inline]
pub(crate) fn decision_hash(seed: u64, salt: u64, stage: u64, partition: u64, attempt: u64) -> u64 {
    mix(mix(mix(mix(seed ^ salt) ^ stage) ^ partition) ^ attempt)
}

/// [`decision_hash`] extended with a clone/submission ordinal. A
/// speculative clone runs at the *same* `(stage, partition, attempt)`
/// as its original, so hashes keyed on those three fields alone would
/// hand the clone the original's injected fate — fail together,
/// straggle together — defeating speculation. Ordinal 0 (the original
/// submission) reproduces `decision_hash` exactly, keeping every
/// pre-speculation golden trace stable.
#[inline]
pub(crate) fn decision_hash_ordinal(
    seed: u64,
    salt: u64,
    stage: u64,
    partition: u64,
    attempt: u64,
    ordinal: u64,
) -> u64 {
    let h = decision_hash(seed, salt, stage, partition, attempt);
    if ordinal == 0 {
        h
    } else {
        mix(h ^ ordinal)
    }
}

/// Per-kind salts keep the fault kinds' decision streams independent:
/// whether an attempt suffers a task failure says nothing about whether
/// its shuffle fetch fails.
pub(crate) const TASK_SALT: u64 = 0x7461_736b_6661_696c; // "taskfail"
pub(crate) const FETCH_SALT: u64 = 0x6665_7463_6866_6c74; // "fetchflt"
pub(crate) const VICTIM_SALT: u64 = 0x6d61_7076_6963_7469; // "mapvicti"
                                                           // DFS read-fault curses are decided inside minidfs (its own salt) so the
                                                           // storage crate stays engine-independent; see `minidfs::ReadFaultPlan`.
pub(crate) const STRAGGLER_SALT: u64 = 0x7374_7261_6767_6c65; // "straggle"
                                                              // salts for the schedule explorer's keyed (worker-side) decisions, so
                                                              // its perturbations never alias the fault plan's decision streams
pub(crate) const EXPLORE_FETCH_SALT: u64 = 0x6578_706c_6674_6368; // "explftch"
pub(crate) const EXPLORE_JITTER_SALT: u64 = 0x6578_706c_6a69_7474; // "expljitt"
                                                                   // salt for the scheduler's deterministic eager-clone decisions in
                                                                   // explore mode (see `scheduler.rs`): which submissions grow a
                                                                   // speculative twin must not correlate with any injected fault
pub(crate) const SPECULATE_SALT: u64 = 0x7370_6563_756c_6174; // "speculat"

/// One probabilistic fault rule, keyed by the full task identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Probability that the rule fires for any given attempt.
    pub prob: f64,
    /// Attempts the rule may hit per task (0 disables the rule). Keeping
    /// this below the relevant retry budget guarantees eventual success.
    pub max_per_task: usize,
}

impl FaultRule {
    /// A rule that never fires.
    pub const NONE: FaultRule = FaultRule { prob: 0.0, max_per_task: 0 };

    /// Fire on every task's first `n` attempts.
    pub fn always_first(n: usize) -> Self {
        FaultRule { prob: 1.0, max_per_task: n }
    }

    /// Fire with probability `prob` on each of a task's first `max`
    /// attempts.
    pub fn with_prob(prob: f64, max: usize) -> Self {
        FaultRule { prob, max_per_task: max }
    }

    /// Whether the rule can ever fire.
    pub fn is_active(&self) -> bool {
        self.prob > 0.0 && self.max_per_task > 0
    }

    /// Deterministic decision for one attempt under this rule.
    pub(crate) fn should_fire(
        &self,
        seed: u64,
        salt: u64,
        stage: usize,
        partition: usize,
        attempt: usize,
    ) -> bool {
        self.should_fire_ordinal(seed, salt, stage, partition, attempt, 0)
    }

    /// [`FaultRule::should_fire`] for a specific clone ordinal. Ordinal 0
    /// decides exactly like `should_fire` always has; a speculative
    /// clone (ordinal > 0) rolls its own independent fate, so an
    /// injected straggle or failure on the original does not curse its
    /// twin. Note `prob >= 1.0` rules still hit every ordinal — an
    /// always-fail rule genuinely fails clones too.
    pub(crate) fn should_fire_ordinal(
        &self,
        seed: u64,
        salt: u64,
        stage: usize,
        partition: usize,
        attempt: usize,
        ordinal: usize,
    ) -> bool {
        if attempt >= self.max_per_task || self.prob <= 0.0 {
            return false;
        }
        if self.prob >= 1.0 {
            return true;
        }
        let h = decision_hash_ordinal(
            seed,
            salt,
            stage as u64,
            partition as u64,
            attempt as u64,
            ordinal as u64,
        );
        (h as f64 / u64::MAX as f64) < self.prob
    }
}

impl Default for FaultRule {
    fn default() -> Self {
        FaultRule::NONE
    }
}

/// A scheduled executor kill: after `after_tasks` task completions of
/// stage `stage` (a virtual-time point on the driver's stage clock),
/// executor `executor` dies — dropping its cached partitions and shuffle
/// map outputs and requeueing its in-flight attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorKillAt {
    /// Global stage ordinal (stage ids are assigned in submission order
    /// across a context's lifetime) at which the kill fires.
    pub stage: usize,
    /// The victim executor.
    pub executor: usize,
    /// Completions observed in the stage before the kill fires.
    pub after_tasks: usize,
}

/// A deterministic schedule of faults for one run. See the module docs
/// for the five fault kinds and their recovery paths.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Task attempt failures (retried by the scheduler).
    pub task_failure: FaultRule,
    /// Reduce-side shuffle fetch failures (trigger lineage
    /// recomputation of the lost map outputs).
    pub fetch_failure: FaultRule,
    /// DFS block-read replica failures (trigger replica fallback;
    /// exhaustion surfaces a typed storage error). Forwarded to the
    /// minidfs cluster by [`crate::Context::text_file`].
    pub dfs_read_failure: FaultRule,
    /// Straggler slowdowns: selected attempts sleep for
    /// [`FaultPlan::straggler_delay_ms`] before running.
    pub straggler: FaultRule,
    /// Real delay applied to straggling attempts, in milliseconds.
    pub straggler_delay_ms: u64,
    /// Scheduled executor kills.
    pub executor_kills: Vec<ExecutorKillAt>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan injecting only task failures under `rule`.
    pub fn tasks(rule: FaultRule) -> Self {
        FaultPlan { task_failure: rule, ..FaultPlan::default() }
    }

    /// Builder-style: set the task-failure rule.
    pub fn with_task_failures(mut self, rule: FaultRule) -> Self {
        self.task_failure = rule;
        self
    }

    /// Builder-style: set the shuffle-fetch-failure rule.
    pub fn with_fetch_failures(mut self, rule: FaultRule) -> Self {
        self.fetch_failure = rule;
        self
    }

    /// Builder-style: set the DFS block-read-failure rule.
    pub fn with_dfs_read_failures(mut self, rule: FaultRule) -> Self {
        self.dfs_read_failure = rule;
        self
    }

    /// Builder-style: set the straggler rule and its real delay.
    pub fn with_stragglers(mut self, rule: FaultRule, delay_ms: u64) -> Self {
        self.straggler = rule;
        self.straggler_delay_ms = delay_ms;
        self
    }

    /// Builder-style: schedule one executor kill.
    pub fn with_executor_kill(mut self, kill: ExecutorKillAt) -> Self {
        self.executor_kills.push(kill);
        self
    }
}

impl From<FaultConfig> for FaultPlan {
    fn from(f: FaultConfig) -> Self {
        FaultPlan::tasks(FaultRule {
            prob: f.task_failure_prob,
            max_per_task: f.max_injected_failures_per_task,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let f = FaultConfig::NONE;
        for a in 0..10 {
            assert!(!f.should_fail(1, 2, 3, a));
        }
    }

    #[test]
    fn always_first_fails_exactly_n_attempts() {
        let f = FaultConfig::always_first(2);
        assert!(f.should_fail(0, 0, 0, 0));
        assert!(f.should_fail(0, 0, 0, 1));
        assert!(!f.should_fail(0, 0, 0, 2));
    }

    #[test]
    fn decisions_are_deterministic() {
        let f = FaultConfig { task_failure_prob: 0.5, max_injected_failures_per_task: 1 };
        for part in 0..50 {
            assert_eq!(f.should_fail(7, 1, part, 0), f.should_fail(7, 1, part, 0));
        }
    }

    #[test]
    fn probability_is_roughly_respected() {
        let f = FaultConfig { task_failure_prob: 0.3, max_injected_failures_per_task: 1 };
        let n = 10_000;
        let fails = (0..n).filter(|&p| f.should_fail(42, 0, p, 0)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed failure rate {rate}");
    }

    #[test]
    fn mix_spreads_bits() {
        assert_ne!(mix(0), mix(1));
        assert_ne!(mix(1), mix(2));
    }

    #[test]
    fn decision_hash_does_not_alias_partition_attempt_pairs() {
        // the old packing `partition << 20 | attempt` made
        // (partition=p, attempt=a) collide with (p + k, a - (k << 20))
        // and, worse, gave every attempt of one partition the same
        // high bits. Mixed fields must produce distinct decisions.
        let mut seen = std::collections::HashSet::new();
        for partition in 0..64u64 {
            for attempt in 0..64u64 {
                assert!(
                    seen.insert(decision_hash(9, TASK_SALT, 3, partition, attempt)),
                    "collision at partition={partition} attempt={attempt}"
                );
            }
        }
        // swapped fields decide differently
        assert_ne!(
            decision_hash(9, TASK_SALT, 3, 1, 0),
            decision_hash(9, TASK_SALT, 3, 0, 1),
            "field order must matter"
        );
    }

    #[test]
    fn salts_decorrelate_fault_kinds() {
        let task =
            (0..1000).filter(|&p| decision_hash(1, TASK_SALT, 0, p, 0).is_multiple_of(2)).count();
        let fetch = (0..1000)
            .filter(|&p| {
                decision_hash(1, TASK_SALT, 0, p, 0).is_multiple_of(2)
                    && decision_hash(1, FETCH_SALT, 0, p, 0).is_multiple_of(2)
            })
            .count();
        // independent streams: the joint rate is ~ the product of rates
        assert!((400..600).contains(&task), "{task}");
        assert!((150..350).contains(&fetch), "{fetch}");
    }

    #[test]
    fn fault_rule_budget_respected() {
        let r = FaultRule::always_first(2);
        assert!(r.should_fire(0, TASK_SALT, 0, 0, 0));
        assert!(r.should_fire(0, TASK_SALT, 0, 0, 1));
        assert!(!r.should_fire(0, TASK_SALT, 0, 0, 2));
        assert!(!FaultRule::NONE.should_fire(0, TASK_SALT, 0, 0, 0));
        assert!(FaultRule::with_prob(0.5, 3).is_active());
        assert!(!FaultRule::with_prob(0.5, 0).is_active());
    }

    #[test]
    fn ordinal_zero_reproduces_unkeyed_hash_exactly() {
        // golden traces and chaos baselines were recorded before the
        // ordinal existed; the original submission must decide
        // identically forever
        for stage in 0..8u64 {
            for partition in 0..32u64 {
                for attempt in 0..4u64 {
                    assert_eq!(
                        decision_hash_ordinal(9, TASK_SALT, stage, partition, attempt, 0),
                        decision_hash(9, TASK_SALT, stage, partition, attempt),
                    );
                }
            }
        }
        let r = FaultRule::with_prob(0.4, 3);
        for partition in 0..256 {
            assert_eq!(
                r.should_fire_ordinal(7, STRAGGLER_SALT, 1, partition, 0, 0),
                r.should_fire(7, STRAGGLER_SALT, 1, partition, 0),
            );
        }
    }

    #[test]
    fn clone_ordinal_rolls_an_independent_fate() {
        // a clone at the same (stage, partition, attempt) must not
        // share the original's decision stream: across many partitions
        // the two ordinals must disagree somewhere in both directions
        let r = FaultRule::with_prob(0.5, 1);
        let mut original_only = 0;
        let mut clone_only = 0;
        for partition in 0..512 {
            let o0 = r.should_fire_ordinal(3, STRAGGLER_SALT, 2, partition, 0, 0);
            let o1 = r.should_fire_ordinal(3, STRAGGLER_SALT, 2, partition, 0, 1);
            original_only += usize::from(o0 && !o1);
            clone_only += usize::from(!o0 && o1);
        }
        assert!(original_only > 50, "original fired alone {original_only} times");
        assert!(clone_only > 50, "clone fired alone {clone_only} times");
        // distinct clone ordinals decide independently of each other too
        assert_ne!(
            decision_hash_ordinal(3, TASK_SALT, 0, 0, 0, 1),
            decision_hash_ordinal(3, TASK_SALT, 0, 0, 0, 2),
        );
    }

    #[test]
    fn always_fire_rules_hit_every_ordinal() {
        // prob >= 1.0 short-circuits before hashing: an always-fail
        // rule curses clones exactly like originals (semantically the
        // fault is "this task cannot run", not "this submission")
        let r = FaultRule::always_first(2);
        for ordinal in 0..3 {
            assert!(r.should_fire_ordinal(0, TASK_SALT, 0, 0, 1, ordinal));
            assert!(!r.should_fire_ordinal(0, TASK_SALT, 0, 0, 2, ordinal));
        }
    }

    #[test]
    fn fault_config_converts_to_task_only_plan() {
        let plan: FaultPlan = FaultConfig::always_first(3).into();
        assert_eq!(plan.task_failure, FaultRule::always_first(3));
        assert!(!plan.fetch_failure.is_active());
        assert!(!plan.dfs_read_failure.is_active());
        assert!(plan.executor_kills.is_empty());
    }

    #[test]
    fn plan_builders_compose() {
        let plan = FaultPlan::none()
            .with_task_failures(FaultRule::always_first(1))
            .with_fetch_failures(FaultRule::with_prob(0.5, 1))
            .with_dfs_read_failures(FaultRule::with_prob(0.2, 1))
            .with_stragglers(FaultRule::with_prob(0.1, 1), 5)
            .with_executor_kill(ExecutorKillAt { stage: 1, executor: 2, after_tasks: 1 });
        assert!(plan.task_failure.is_active());
        assert!(plan.fetch_failure.is_active());
        assert!(plan.dfs_read_failure.is_active());
        assert!(plan.straggler.is_active());
        assert_eq!(plan.straggler_delay_ms, 5);
        assert_eq!(plan.executor_kills.len(), 1);
    }
}
