//! The schedule-policy seam: who decides "what happens next"?
//!
//! The engine has a handful of points where several orders are equally
//! legal — which buffered reply the driver processes first, the order
//! the backpressure queue drains, the order a reduce task walks its
//! map-side buckets, when a planned executor kill fires. Production
//! code takes the fastest order ([`Fifo`], the default: process replies
//! as they arrive, drain FIFO, fetch in map order). The
//! schedule-exploration harness ([`crate::explore`]) swaps in a
//! [`Seeded`] policy to search those orders for schedule-dependent
//! behavior, and a [`Replay`] policy to reproduce a specific schedule
//! from a compact [`ReplayToken`].
//!
//! ## Two kinds of decision
//!
//! * **Sequenced** decisions ([`SchedulePolicy::choose`]) happen on the
//!   single driver thread, in a deterministic program order, so they
//!   can be numbered by a global position counter and replayed by
//!   position. Decisions with fewer than two options consume no
//!   position — tokens stay short and a replay stays aligned even when
//!   trivial decision sites differ.
//! * **Keyed** decisions ([`SchedulePolicy::keyed_seed`]) happen on
//!   concurrent worker threads (shuffle-fetch bucket order, extra
//!   straggler jitter), where a shared counter would itself be a race.
//!   They are pure functions of `(keyed_seed, task identity)` — no
//!   state, so they replay exactly by reusing the seed.
//!
//! Under [`Fifo`] (`reorders() == false`) every hook is skipped
//! entirely: the hot paths and traces of normal runs are byte-identical
//! to a build without this seam.

use crate::fault::mix;
use parking_lot::Mutex;
use std::fmt;
use std::str::FromStr;

/// Which class of scheduling decision is being made. Carried for
/// diagnostics and future point-specific policies; the built-in
/// policies are position-addressed and treat all points uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPoint {
    /// Which buffered task reply the driver processes next.
    Reply,
    /// Which deferred (backpressured) submission goes next.
    Drain,
    /// Virtual-time placement of a planned executor kill (choice `k`
    /// fires it after the `k`-th completion; `0` keeps the plan's own
    /// placement).
    Kill,
    /// Whether a reply that would commit a speculatively-raced
    /// partition does so now (`0`) or is deferred back into the buffer
    /// so its twin gets the chance to commit first (`1`). Only consulted
    /// when both racers' replies are buffered, so the explorer drives
    /// the clone/original commit race both ways.
    SpeculativeCommit,
}

/// A pluggable source of scheduling decisions. See the module docs for
/// the sequenced/keyed split.
pub trait SchedulePolicy: fmt::Debug + Send + Sync {
    /// Whether this policy wants the reordering hooks engaged. `false`
    /// (the default) keeps every production code path untouched.
    fn reorders(&self) -> bool {
        false
    }

    /// Pick one of `arity` options (`0..arity`) for a sequenced
    /// decision. Only called when `reorders()`; implementations must
    /// return a value `< arity` and should not consume a position when
    /// `arity <= 1`.
    fn choose(&self, _point: DecisionPoint, _arity: usize) -> usize {
        0
    }

    /// Seed for keyed (worker-side) decisions; `None` leaves keyed
    /// orders at their production defaults.
    fn keyed_seed(&self) -> Option<u64> {
        None
    }

    /// Sequenced positions consumed so far (decision-site count with
    /// `arity > 1`).
    fn positions_used(&self) -> u32 {
        0
    }

    /// The non-default choices made so far, as sparse
    /// `(position, choice)` pairs — the payload of a [`ReplayToken`].
    fn recorded(&self) -> Vec<(u32, u16)> {
        Vec::new()
    }
}

/// The production policy: replies in arrival order, FIFO drain, map
/// order fetches, fault plan untouched. Engages no hooks at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulePolicy for Fifo {}

#[derive(Debug, Default)]
struct SeededState {
    pos: u32,
    log: Vec<(u32, u16)>,
}

/// Pseudo-random schedule derived from one seed: every sequenced
/// decision hashes `(seed, position)`, and the same seed keys the
/// worker-side decisions. Records its non-default choices so a failing
/// schedule converts to a [`ReplayToken`] losslessly.
#[derive(Debug)]
pub struct Seeded {
    seed: u64,
    state: Mutex<SeededState>,
}

impl Seeded {
    /// A policy exploring the schedule keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Seeded { seed, state: Mutex::new(SeededState::default()) }
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Convert the choices made so far into a replayable token.
    pub fn token(&self) -> ReplayToken {
        ReplayToken { keyed_seed: Some(self.seed), overrides: self.recorded() }
    }
}

impl SchedulePolicy for Seeded {
    fn reorders(&self) -> bool {
        true
    }

    fn choose(&self, _point: DecisionPoint, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        let mut s = self.state.lock();
        let pos = s.pos;
        s.pos += 1;
        let h = mix(self.seed ^ mix(u64::from(pos).wrapping_add(0x9e37_79b9_7f4a_7c15)));
        let choice = (h % arity as u64) as usize;
        if choice != 0 {
            s.log.push((pos, choice as u16));
        }
        choice
    }

    fn keyed_seed(&self) -> Option<u64> {
        Some(self.seed)
    }

    fn positions_used(&self) -> u32 {
        self.state.lock().pos
    }

    fn recorded(&self) -> Vec<(u32, u16)> {
        self.state.lock().log.clone()
    }
}

/// Replays a recorded schedule: position `p` takes the override from
/// the token (clamped to the live arity) or the canonical choice `0`.
/// An empty token is the *canonical baseline* — every decision is `0`,
/// which orders replies by `(partition, attempt)` regardless of thread
/// timing, making it the deterministic reference schedule the explorer
/// compares against.
#[derive(Debug)]
pub struct Replay {
    token: ReplayToken,
    pos: Mutex<u32>,
}

impl Replay {
    /// A policy replaying `token`.
    pub fn new(token: ReplayToken) -> Self {
        Replay { token, pos: Mutex::new(0) }
    }

    /// The canonical baseline schedule (empty token: all-zero choices,
    /// no keyed perturbation).
    pub fn baseline() -> Self {
        Replay::new(ReplayToken::default())
    }

    /// The token being replayed.
    pub fn token(&self) -> &ReplayToken {
        &self.token
    }
}

impl SchedulePolicy for Replay {
    fn reorders(&self) -> bool {
        true
    }

    fn choose(&self, _point: DecisionPoint, arity: usize) -> usize {
        if arity <= 1 {
            return 0;
        }
        let mut g = self.pos.lock();
        let pos = *g;
        *g += 1;
        match self.token.overrides.iter().find(|(p, _)| *p == pos) {
            Some((_, c)) => (*c as usize).min(arity - 1),
            None => 0,
        }
    }

    fn keyed_seed(&self) -> Option<u64> {
        self.token.keyed_seed
    }

    fn positions_used(&self) -> u32 {
        *self.pos.lock()
    }

    fn recorded(&self) -> Vec<(u32, u16)> {
        self.token.overrides.clone()
    }
}

/// A compact, printable description of one explored schedule: the seed
/// for keyed decisions (if any) plus the sparse list of non-default
/// sequenced choices. Renders as e.g. `sv1;k=2a;3=2,17=1` and parses
/// back with [`FromStr`], so a panic message is enough to reproduce a
/// failing schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayToken {
    /// Seed for the keyed (worker-side) decisions; `None` leaves them
    /// at production order.
    pub keyed_seed: Option<u64>,
    /// Sparse `(position, choice)` overrides for sequenced decisions;
    /// positions not listed take choice `0`.
    pub overrides: Vec<(u32, u16)>,
}

impl ReplayToken {
    /// Number of recorded (non-default) decisions — the "length" quoted
    /// when a shrunk token is reported.
    pub fn decisions(&self) -> usize {
        self.overrides.len()
    }
}

impl fmt::Display for ReplayToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sv1")?;
        if let Some(k) = self.keyed_seed {
            write!(f, ";k={k:x}")?;
        }
        if !self.overrides.is_empty() {
            f.write_str(";")?;
            for (i, (p, c)) in self.overrides.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{p}={c}")?;
            }
        }
        Ok(())
    }
}

/// Error parsing a [`ReplayToken`] from its string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenParseError(String);

impl fmt::Display for TokenParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid replay token: {}", self.0)
    }
}

impl std::error::Error for TokenParseError {}

impl FromStr for ReplayToken {
    type Err = TokenParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(';');
        match parts.next() {
            Some("sv1") => {}
            _ => return Err(TokenParseError(format!("expected sv1 prefix in {s:?}"))),
        }
        let mut token = ReplayToken::default();
        for part in parts {
            if let Some(hex) = part.strip_prefix("k=") {
                let k = u64::from_str_radix(hex, 16)
                    .map_err(|e| TokenParseError(format!("bad keyed seed {hex:?}: {e}")))?;
                token.keyed_seed = Some(k);
            } else if !part.is_empty() {
                for pair in part.split(',') {
                    let (p, c) = pair
                        .split_once('=')
                        .ok_or_else(|| TokenParseError(format!("bad override {pair:?}")))?;
                    let p = p
                        .parse::<u32>()
                        .map_err(|e| TokenParseError(format!("bad position {p:?}: {e}")))?;
                    let c = c
                        .parse::<u16>()
                        .map_err(|e| TokenParseError(format!("bad choice {c:?}: {e}")))?;
                    token.overrides.push((p, c));
                }
            }
        }
        Ok(token)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_engages_nothing() {
        let f = Fifo;
        assert!(!f.reorders());
        assert_eq!(f.choose(DecisionPoint::Reply, 8), 0);
        assert_eq!(f.keyed_seed(), None);
        assert!(f.recorded().is_empty());
    }

    #[test]
    fn seeded_is_deterministic_and_in_range() {
        let arities = [3usize, 1, 5, 2, 9, 1, 4];
        let run = |seed: u64| -> (Vec<usize>, Vec<(u32, u16)>, u32) {
            let s = Seeded::new(seed);
            let picks =
                arities.iter().map(|&a| s.choose(DecisionPoint::Reply, a)).collect::<Vec<_>>();
            (picks, s.recorded(), s.positions_used())
        };
        let (a, log_a, pos_a) = run(7);
        let (b, log_b, pos_b) = run(7);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(log_a, log_b);
        assert_eq!((pos_a, pos_b), (5, 5), "arity-1 sites consume no position");
        for (pick, &arity) in a.iter().zip(&arities) {
            assert!(*pick < arity);
        }
        let (c, _, _) = run(8);
        assert_ne!(a, c, "different seeds explore different schedules");
    }

    #[test]
    fn replay_reproduces_a_seeded_run() {
        let arities = [4usize, 2, 1, 6, 3, 5, 2, 7];
        let s = Seeded::new(42);
        let picks: Vec<usize> =
            arities.iter().map(|&a| s.choose(DecisionPoint::Drain, a)).collect();
        let r = Replay::new(s.token());
        let replayed: Vec<usize> =
            arities.iter().map(|&a| r.choose(DecisionPoint::Drain, a)).collect();
        assert_eq!(picks, replayed);
        assert_eq!(r.keyed_seed(), Some(42));
    }

    #[test]
    fn replay_clamps_overrides_to_live_arity() {
        let r = Replay::new(ReplayToken { keyed_seed: None, overrides: vec![(0, 9)] });
        assert_eq!(r.choose(DecisionPoint::Reply, 3), 2, "9 clamps to arity-1");
        assert_eq!(r.choose(DecisionPoint::Reply, 3), 0, "position 1 has no override");
    }

    #[test]
    fn baseline_replay_is_all_zero() {
        let r = Replay::baseline();
        for arity in [1usize, 2, 5, 9] {
            assert_eq!(r.choose(DecisionPoint::Reply, arity), 0);
        }
        assert_eq!(r.keyed_seed(), None);
    }

    #[test]
    fn speculative_commit_point_is_position_addressed_like_any_other() {
        // built-in policies are position-addressed: a SpeculativeCommit
        // site consumes a position and replays exactly like Reply/Drain
        let s = Seeded::new(5);
        let first = s.choose(DecisionPoint::SpeculativeCommit, 2);
        let second = s.choose(DecisionPoint::Reply, 3);
        assert_eq!(s.positions_used(), 2);
        let r = Replay::new(s.token());
        assert_eq!(r.choose(DecisionPoint::SpeculativeCommit, 2), first);
        assert_eq!(r.choose(DecisionPoint::Reply, 3), second);
        // the baseline always commits immediately
        assert_eq!(Replay::baseline().choose(DecisionPoint::SpeculativeCommit, 2), 0);
    }

    #[test]
    fn token_roundtrips_through_display() {
        let cases = [
            ReplayToken::default(),
            ReplayToken { keyed_seed: Some(0x2a), overrides: vec![] },
            ReplayToken { keyed_seed: None, overrides: vec![(3, 2), (17, 1)] },
            ReplayToken { keyed_seed: Some(u64::MAX), overrides: vec![(0, 1), (9, 4), (1000, 2)] },
        ];
        for t in cases {
            let s = t.to_string();
            let back: ReplayToken = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(back, t, "{s}");
        }
        assert_eq!(ReplayToken::default().to_string(), "sv1");
    }

    #[test]
    fn token_parse_rejects_garbage() {
        for bad in ["", "sv2", "sv1;k=zz", "sv1;3", "sv1;x=1", "sv1;3=70000"] {
            assert!(bad.parse::<ReplayToken>().is_err(), "{bad:?} must not parse");
        }
    }
}
