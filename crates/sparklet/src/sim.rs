//! Virtual-cluster makespan model.
//!
//! The paper runs on up to 512 physical cores; we reproduce those curves
//! by measuring real per-task busy times and *scheduling* them onto `p`
//! virtual executors. Because the paper's executors never communicate
//! ("each executor just performs its computation without communicating
//! with others"), the parallel execution time of a stage is exactly the
//! makespan of independent tasks — no communication term exists to
//! model. We use the greedy LPT (Longest Processing Time first) rule,
//! which is what a work-stealing/task-queue scheduler approximates and is
//! within 4/3 of optimal.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Greedy LPT makespan of independent tasks on `workers` identical
/// machines. Returns [`Duration::ZERO`] for no tasks; `workers` is
/// clamped to at least 1.
pub fn lpt_makespan(durations: impl IntoIterator<Item = Duration>, workers: usize) -> Duration {
    let workers = workers.max(1);
    let mut tasks: Vec<Duration> = durations.into_iter().collect();
    if tasks.is_empty() {
        return Duration::ZERO;
    }
    tasks.sort_unstable_by(|a, b| b.cmp(a));
    // min-heap of worker loads
    let mut loads: BinaryHeap<Reverse<Duration>> =
        (0..workers).map(|_| Reverse(Duration::ZERO)).collect();
    for t in tasks {
        let Reverse(least) = loads.pop().expect("at least one worker");
        loads.push(Reverse(least + t));
    }
    loads.into_iter().map(|Reverse(d)| d).max().unwrap_or(Duration::ZERO)
}

/// Speedup of `serial` over `parallel`, `0.0` when `parallel` is zero.
pub fn speedup(serial: Duration, parallel: Duration) -> f64 {
    if parallel.is_zero() {
        return 0.0;
    }
    serial.as_secs_f64() / parallel.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_tasks_zero_makespan() {
        assert_eq!(lpt_makespan([], 4), Duration::ZERO);
    }

    #[test]
    fn one_worker_sums() {
        assert_eq!(lpt_makespan([ms(3), ms(4), ms(5)], 1), ms(12));
    }

    #[test]
    fn enough_workers_take_max() {
        assert_eq!(lpt_makespan([ms(3), ms(4), ms(5)], 3), ms(5));
        assert_eq!(lpt_makespan([ms(3), ms(4), ms(5)], 10), ms(5));
    }

    #[test]
    fn classic_lpt_packing() {
        // LPT on {7,6,5,4,3} with 2 workers: 7+4+3 vs 6+5 -> wait:
        // 7 -> w1; 6 -> w2; 5 -> w2(11)? no: w2 has 6 < 7 so 5 -> w2 (11);
        // 4 -> w1 (11); 3 -> either (14). Optimal is 13, LPT gives 14.
        let m = lpt_makespan([ms(7), ms(6), ms(5), ms(4), ms(3)], 2);
        assert_eq!(m, ms(14));
    }

    #[test]
    fn zero_workers_clamped() {
        assert_eq!(lpt_makespan([ms(2)], 0), ms(2));
    }

    #[test]
    fn makespan_bounded_by_sum_and_max() {
        let tasks = [ms(10), ms(1), ms(7), ms(3), ms(3)];
        for w in 1..=6 {
            let m = lpt_makespan(tasks, w);
            assert!(m >= ms(10), "never below max task");
            assert!(m <= ms(24), "never above serial sum");
        }
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(ms(100), ms(25)), 4.0);
        assert_eq!(speedup(ms(100), Duration::ZERO), 0.0);
    }
}
