//! Virtual-cluster makespan model.
//!
//! The paper runs on up to 512 physical cores; we reproduce those curves
//! by measuring real per-task busy times and *scheduling* them onto `p`
//! virtual executors. Because the paper's executors never communicate
//! ("each executor just performs its computation without communicating
//! with others"), the parallel execution time of a stage is exactly the
//! makespan of independent tasks — no communication term exists to
//! model. We use the greedy LPT (Longest Processing Time first) rule,
//! which is what a work-stealing/task-queue scheduler approximates and is
//! within 4/3 of optimal.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Greedy LPT makespan of independent tasks on `workers` identical
/// machines. Returns [`Duration::ZERO`] for no tasks; `workers` is
/// clamped to at least 1.
pub fn lpt_makespan(durations: impl IntoIterator<Item = Duration>, workers: usize) -> Duration {
    let workers = workers.max(1);
    let mut tasks: Vec<Duration> = durations.into_iter().collect();
    if tasks.is_empty() {
        return Duration::ZERO;
    }
    tasks.sort_unstable_by(|a, b| b.cmp(a));
    // min-heap of worker loads
    let mut loads: BinaryHeap<Reverse<Duration>> =
        (0..workers).map(|_| Reverse(Duration::ZERO)).collect();
    for t in tasks {
        let Reverse(least) = loads.pop().expect("at least one worker");
        loads.push(Reverse(least + t));
    }
    loads.into_iter().map(|Reverse(d)| d).max().unwrap_or(Duration::ZERO)
}

/// Virtual ticks one driver-side event advances the driver clock by.
pub const DRIVER_TICK: u64 = 1;
/// Virtual ticks a successful task attempt occupies beyond its in-task
/// events (the "base" compute cost of any task).
pub const TASK_BASE_TICKS: u64 = 10;
/// Virtual ticks a failed attempt occupies (it dies early).
pub const FAIL_BASE_TICKS: u64 = 3;

/// Deterministic virtual-cluster clock used to stamp trace events.
///
/// Real wall-clock timestamps differ between runs of the same seeded
/// job, so the trace subsystem replays the *canonically ordered* event
/// stream through this scheduler instead: the driver advances a single
/// logical clock, each virtual executor owns a serial "lane", and a task
/// starts at the later of its lane's availability and its stage's start.
/// The result is a logical timeline — identical across runs of the same
/// seeded job — that still exhibits the structure of the LPT makespan
/// model above (serial lanes, stage barriers).
#[derive(Debug, Clone, Default)]
pub struct VirtualScheduler {
    driver_clock: u64,
    lanes: Vec<u64>,
}

impl VirtualScheduler {
    /// A scheduler with every clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current driver clock (the last driver timestamp handed out).
    pub fn now(&self) -> u64 {
        self.driver_clock
    }

    /// Advance the driver clock by one event and return the new time.
    pub fn driver_tick(&mut self) -> u64 {
        self.driver_clock += DRIVER_TICK;
        self.driver_clock
    }

    /// The driver waits for work finishing at `at_least` (e.g. a stage
    /// barrier), then observes it one tick later.
    pub fn driver_join(&mut self, at_least: u64) -> u64 {
        self.driver_clock = self.driver_clock.max(at_least) + DRIVER_TICK;
        self.driver_clock
    }

    /// The driver sleeps `ticks` on its clock (e.g. a stage-retry
    /// backoff), then observes the wake-up one tick later.
    pub fn driver_backoff(&mut self, ticks: u64) -> u64 {
        self.driver_clock += ticks + DRIVER_TICK;
        self.driver_clock
    }

    /// Start a task on `executor`'s lane, no earlier than `not_before`.
    /// Returns the start time; the lane is *not* advanced until
    /// [`VirtualScheduler::task_end`].
    pub fn task_start(&mut self, executor: usize, not_before: u64) -> u64 {
        self.lane(executor).max(not_before)
    }

    /// Mark `executor`'s lane busy until `end`.
    pub fn task_end(&mut self, executor: usize, end: u64) {
        if executor >= self.lanes.len() {
            self.lanes.resize(executor + 1, 0);
        }
        self.lanes[executor] = self.lanes[executor].max(end);
    }

    fn lane(&self, executor: usize) -> u64 {
        self.lanes.get(executor).copied().unwrap_or(0)
    }
}

/// Speedup of `serial` over `parallel`, `0.0` when `parallel` is zero.
pub fn speedup(serial: Duration, parallel: Duration) -> f64 {
    if parallel.is_zero() {
        return 0.0;
    }
    serial.as_secs_f64() / parallel.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_tasks_zero_makespan() {
        assert_eq!(lpt_makespan([], 4), Duration::ZERO);
    }

    #[test]
    fn one_worker_sums() {
        assert_eq!(lpt_makespan([ms(3), ms(4), ms(5)], 1), ms(12));
    }

    #[test]
    fn enough_workers_take_max() {
        assert_eq!(lpt_makespan([ms(3), ms(4), ms(5)], 3), ms(5));
        assert_eq!(lpt_makespan([ms(3), ms(4), ms(5)], 10), ms(5));
    }

    #[test]
    fn classic_lpt_packing() {
        // LPT on {7,6,5,4,3} with 2 workers: 7+4+3 vs 6+5 -> wait:
        // 7 -> w1; 6 -> w2; 5 -> w2(11)? no: w2 has 6 < 7 so 5 -> w2 (11);
        // 4 -> w1 (11); 3 -> either (14). Optimal is 13, LPT gives 14.
        let m = lpt_makespan([ms(7), ms(6), ms(5), ms(4), ms(3)], 2);
        assert_eq!(m, ms(14));
    }

    #[test]
    fn zero_workers_clamped() {
        assert_eq!(lpt_makespan([ms(2)], 0), ms(2));
    }

    #[test]
    fn makespan_bounded_by_sum_and_max() {
        let tasks = [ms(10), ms(1), ms(7), ms(3), ms(3)];
        for w in 1..=6 {
            let m = lpt_makespan(tasks, w);
            assert!(m >= ms(10), "never below max task");
            assert!(m <= ms(24), "never above serial sum");
        }
    }

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(ms(100), ms(25)), 4.0);
        assert_eq!(speedup(ms(100), Duration::ZERO), 0.0);
    }

    #[test]
    fn virtual_scheduler_driver_clock_advances() {
        let mut vs = VirtualScheduler::new();
        assert_eq!(vs.now(), 0);
        assert_eq!(vs.driver_tick(), 1);
        assert_eq!(vs.driver_tick(), 2);
        assert_eq!(vs.driver_join(10), 11, "joins jump past finished work");
        assert_eq!(vs.driver_join(5), 12, "joins never go backwards");
        assert_eq!(vs.driver_backoff(8), 21, "backoff sleeps then observes");
        assert_eq!(vs.driver_backoff(0), 22, "zero backoff still advances");
    }

    #[test]
    fn virtual_scheduler_lanes_serialize_per_executor() {
        let mut vs = VirtualScheduler::new();
        let s0 = vs.task_start(0, 3);
        assert_eq!(s0, 3, "idle lane starts at the stage barrier");
        vs.task_end(0, 9);
        assert_eq!(vs.task_start(0, 3), 9, "same lane waits for prior task");
        assert_eq!(vs.task_start(1, 3), 3, "other lanes are independent");
        vs.task_end(5, 20); // lanes grow on demand
        assert_eq!(vs.task_start(5, 0), 20);
    }
}
