//! Schedule-space exploration: a seeded interleaving fuzzer with
//! invariant oracles and a failing-schedule shrinker.
//!
//! The engine's answer should not depend on *when* things happen —
//! which worker finishes first, the order backpressured submissions
//! drain, the order a reduce task walks its map-side buckets, where in
//! virtual time a planned executor kill lands. [`Explorer`] turns that
//! claim into a test: it runs the same job under many schedules drawn
//! from the [`crate::schedule`] seam and checks each run against a set
//! of [`InvariantOracle`]s (output identical to the canonical baseline,
//! well-formed trace, balanced task-memory ledger, accumulators merged
//! exactly once).
//!
//! When a schedule violates an oracle, the decision sequence that
//! produced it is minimized by delta debugging into a short
//! [`ReplayToken`] — a printable string like `sv1;k=2a;3=2` — and the
//! panic message shows exactly how to re-run that one schedule with
//! [`Replay`]. The full pipeline:
//!
//! ```text
//! seeds ──▶ Seeded policy ──▶ job run ──▶ oracles ──▶ (violation?)
//!                                             │ yes
//!                                             ▼
//!                           ddmin over recorded decisions
//!                                             │
//!                                             ▼
//!                       "reproduce with sv1;…" in the report
//! ```
//!
//! Jobs are expressed through [`ExploreJob`] so any crate can plug its
//! workload in: run something on the provided [`Context`] and return
//! [`JobArtifacts`] — an order-insensitive output fingerprint plus any
//! accumulator merge-once expectations.

use crate::config::{ClusterConfig, TraceConfig};
use crate::context::Context;
use crate::error::SparkResult;
use crate::memory::MemoryStats;
use crate::oracle::{default_oracles, InvariantOracle, RunObservation};
use crate::schedule::{Replay, ReplayToken, SchedulePolicy, Seeded};
use std::sync::Arc;

/// One accumulator's exactly-once expectation, declared by the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeOnceCheck {
    /// Which accumulator this covers (quoted in violation reports).
    pub name: String,
    /// The value implied by exactly-once merging of successful attempts.
    pub expected: u64,
    /// The value actually observed at job end.
    pub observed: u64,
}

/// What one explored run produced, as seen by the oracles.
///
/// The fingerprint must be a *deterministic function of the job's
/// logical output* — sort or canonicalize anything whose order the
/// engine legitimately may vary (shuffle bucket order, accumulator
/// arrival order), because [`crate::oracle::LabelIdentity`] compares it
/// byte-for-byte against the canonical baseline schedule's.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobArtifacts {
    /// Canonical byte fingerprint of the job's output.
    pub fingerprint: Vec<u8>,
    /// Accumulator exactly-once checks to enforce.
    pub merge_once: Vec<MergeOnceCheck>,
}

/// A workload the explorer can run repeatedly under different
/// schedules. Implemented for free by any
/// `Fn(&Context) -> SparkResult<JobArtifacts> + Sync` closure.
pub trait ExploreJob: Sync {
    /// Run the job once on a fresh context and report its artifacts.
    fn run(&self, ctx: &Context) -> SparkResult<JobArtifacts>;
}

impl<F> ExploreJob for F
where
    F: Fn(&Context) -> SparkResult<JobArtifacts> + Sync,
{
    fn run(&self, ctx: &Context) -> SparkResult<JobArtifacts> {
        self(ctx)
    }
}

/// An invariant violation found by exploration, already shrunk.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Seed of the schedule that first exposed the violation.
    pub seed: u64,
    /// Name of the oracle that fired (for the shrunk schedule).
    pub oracle: &'static str,
    /// The oracle's detail message (for the shrunk schedule).
    pub detail: String,
    /// Full token recorded from the failing seeded run.
    pub token: ReplayToken,
    /// Minimized token that still violates an oracle.
    pub shrunk: ReplayToken,
    /// Candidate schedules the shrinker executed.
    pub probes: u32,
}

impl Violation {
    /// A copy-pasteable report with reproduction instructions.
    pub fn report(&self) -> String {
        format!(
            "schedule exploration found an invariant violation\n\
             \x20 oracle:  {}\n\
             \x20 detail:  {}\n\
             \x20 seed:    {}\n\
             \x20 token:   {}  ({} decisions)\n\
             \x20 shrunk:  {}  ({} decisions, {} shrink probes)\n\
             reproduce with:\n\
             \x20 let schedule = Replay::new(\"{}\".parse().unwrap());\n\
             \x20 config.with_schedule(Arc::new(schedule))",
            self.oracle,
            self.detail,
            self.seed,
            self.token,
            self.token.decisions(),
            self.shrunk,
            self.shrunk.decisions(),
            self.probes,
            self.shrunk,
        )
    }
}

/// Outcome of one exploration campaign.
#[derive(Debug)]
pub struct ExploreReport {
    /// Seeded schedules actually executed (excludes the baseline and
    /// any shrink probes).
    pub schedules_run: usize,
    /// The first violation found, if any (exploration stops at the
    /// first so the shrinker works from a fresh reproduction).
    pub violation: Option<Violation>,
}

impl ExploreReport {
    /// `true` when every explored schedule satisfied every oracle.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

struct RunOutcome {
    artifacts: JobArtifacts,
    memory: MemoryStats,
    trace_json: String,
}

/// The schedule-space explorer. Configure a cluster, how many seeds to
/// try, and which oracles to enforce; then [`Explorer::explore`] a job.
pub struct Explorer {
    base: ClusterConfig,
    schedules: usize,
    seed0: u64,
    oracles: Vec<Box<dyn InvariantOracle>>,
    max_shrink_probes: u32,
}

impl Explorer {
    /// An explorer over clusters configured like `base` (its schedule
    /// field is ignored — the explorer installs its own policies), with
    /// the default oracle set, 16 schedules from seed 0, and a shrink
    /// budget of 200 probes.
    pub fn new(base: ClusterConfig) -> Self {
        Explorer {
            base,
            schedules: 16,
            seed0: 0,
            oracles: default_oracles(),
            max_shrink_probes: 200,
        }
    }

    /// Set how many seeded schedules to run.
    pub fn with_schedules(mut self, n: usize) -> Self {
        self.schedules = n;
        self
    }

    /// Set the first seed (seeds are `seed0..seed0 + schedules`).
    pub fn with_seed0(mut self, seed0: u64) -> Self {
        self.seed0 = seed0;
        self
    }

    /// Add an oracle to the enforced set.
    pub fn with_oracle(mut self, oracle: Box<dyn InvariantOracle>) -> Self {
        self.oracles.push(oracle);
        self
    }

    /// Replace the oracle set entirely.
    pub fn with_oracles(mut self, oracles: Vec<Box<dyn InvariantOracle>>) -> Self {
        self.oracles = oracles;
        self
    }

    /// Cap the number of candidate schedules the shrinker may run.
    pub fn with_max_shrink_probes(mut self, probes: u32) -> Self {
        self.max_shrink_probes = probes;
        self
    }

    /// Run `job` once on a fresh context under `policy`.
    fn run_policy(
        &self,
        job: &dyn ExploreJob,
        policy: Arc<dyn SchedulePolicy>,
    ) -> SparkResult<RunOutcome> {
        let mut cfg = self.base.clone();
        // oracles need the trace; everything else comes from `base`
        cfg.trace = TraceConfig::enabled();
        cfg.schedule = policy;
        let ctx = Context::new(cfg);
        let artifacts = job.run(&ctx)?;
        Ok(RunOutcome {
            artifacts,
            memory: ctx.memory_stats(),
            trace_json: ctx.trace().chrome_json(),
        })
    }

    /// Check one run against every oracle; first failure wins.
    fn violated(
        &self,
        outcome: &RunOutcome,
        baseline: &JobArtifacts,
    ) -> Option<(&'static str, String)> {
        let obs = RunObservation {
            artifacts: &outcome.artifacts,
            baseline,
            memory: outcome.memory,
            trace_json: &outcome.trace_json,
        };
        for oracle in &self.oracles {
            if let Err(detail) = oracle.check(&obs) {
                return Some((oracle.name(), detail));
            }
        }
        None
    }

    /// Replay `token` and report the violation it still triggers, if
    /// any. A job error counts as a violation of the implicit
    /// "job-completes" oracle.
    pub fn check_token(
        &self,
        job: &dyn ExploreJob,
        baseline: &JobArtifacts,
        token: &ReplayToken,
    ) -> Option<(&'static str, String)> {
        match self.run_policy(job, Arc::new(Replay::new(token.clone()))) {
            Ok(outcome) => self.violated(&outcome, baseline),
            Err(e) => Some(("job-completes", e.to_string())),
        }
    }

    /// Explore the schedule space of `job`. Returns `Err` only when the
    /// canonical *baseline* schedule itself fails — that means the job
    /// or cluster config is broken, not that a schedule bug was found.
    pub fn explore(&self, job: &dyn ExploreJob) -> SparkResult<ExploreReport> {
        let baseline = self.run_policy(job, Arc::new(Replay::baseline()))?.artifacts;
        let mut schedules_run = 0usize;
        for seed in self.seed0..self.seed0 + self.schedules as u64 {
            let policy = Arc::new(Seeded::new(seed));
            let failure = match self.run_policy(job, Arc::<Seeded>::clone(&policy) as _) {
                Ok(outcome) => self.violated(&outcome, &baseline),
                Err(e) => Some(("job-completes", e.to_string())),
            };
            schedules_run += 1;
            if failure.is_some() {
                let token = policy.token();
                let (shrunk, probes) = self.shrink(job, &baseline, token.clone());
                // re-derive the firing oracle from the *shrunk* token so
                // the report's repro line matches its oracle line
                let (oracle, detail) = self
                    .check_token(job, &baseline, &shrunk)
                    .or(failure)
                    .expect("shrunk token came from a failing candidate");
                return Ok(ExploreReport {
                    schedules_run,
                    violation: Some(Violation { seed, oracle, detail, token, shrunk, probes }),
                });
            }
        }
        Ok(ExploreReport { schedules_run, violation: None })
    }

    /// [`Explorer::explore`], panicking with a reproduction recipe on
    /// the first violation. The panic message contains the shrunk
    /// [`ReplayToken`] and the [`Replay`] one-liner to re-run it.
    pub fn explore_or_panic(&self, job: &dyn ExploreJob) -> ExploreReport {
        let report =
            self.explore(job).unwrap_or_else(|e| panic!("explorer baseline schedule failed: {e}"));
        if let Some(v) = &report.violation {
            panic!("{}", v.report());
        }
        report
    }

    /// Run one shrink candidate, spending a probe. Returns whether the
    /// candidate still violates an oracle; the budget being exhausted
    /// reads as "does not fail" so shrinking stops conservatively.
    fn still_fails(
        &self,
        job: &dyn ExploreJob,
        baseline: &JobArtifacts,
        cand: &ReplayToken,
        probes: &mut u32,
    ) -> bool {
        if *probes >= self.max_shrink_probes {
            return false;
        }
        *probes += 1;
        self.check_token(job, baseline, cand).is_some()
    }

    fn try_drop_keyed(
        &self,
        job: &dyn ExploreJob,
        baseline: &JobArtifacts,
        best: &mut ReplayToken,
        probes: &mut u32,
    ) {
        if best.keyed_seed.is_some() {
            let cand = ReplayToken { keyed_seed: None, overrides: best.overrides.clone() };
            if self.still_fails(job, baseline, &cand, probes) {
                *best = cand;
            }
        }
    }

    /// Minimize a failing token with delta debugging: first try
    /// dropping the keyed seed, then ddmin over the sequenced
    /// overrides, then a one-at-a-time polish pass — all bounded by
    /// `max_shrink_probes` candidate runs.
    fn shrink(
        &self,
        job: &dyn ExploreJob,
        baseline: &JobArtifacts,
        full: ReplayToken,
    ) -> (ReplayToken, u32) {
        let mut probes = 0u32;
        let mut best = full;

        self.try_drop_keyed(job, baseline, &mut best, &mut probes);

        // ddmin (complement variant): cut ever-finer chunks of the
        // override list as long as the remainder still fails
        let mut chunks = 2usize;
        while best.overrides.len() >= 2 && probes < self.max_shrink_probes {
            let chunk = best.overrides.len().div_ceil(chunks);
            let mut reduced = false;
            let mut i = 0;
            while i * chunk < best.overrides.len() && probes < self.max_shrink_probes {
                let mut overrides = best.overrides.clone();
                let start = i * chunk;
                overrides.drain(start..(start + chunk).min(overrides.len()));
                let cand = ReplayToken { keyed_seed: best.keyed_seed, overrides };
                if self.still_fails(job, baseline, &cand, &mut probes) {
                    best = cand;
                    reduced = true;
                    // same granularity over the shorter list, from the top
                    i = 0;
                } else {
                    i += 1;
                }
            }
            if !reduced {
                if chunks >= best.overrides.len() {
                    break;
                }
                chunks = (chunks * 2).min(best.overrides.len());
            }
        }

        // polish: retry single removals until a fixpoint — ddmin at
        // full granularity can still leave individually-removable pairs
        'polish: while best.overrides.len() >= 2 && probes < self.max_shrink_probes {
            for i in 0..best.overrides.len() {
                let mut overrides = best.overrides.clone();
                overrides.remove(i);
                let cand = ReplayToken { keyed_seed: best.keyed_seed, overrides };
                if self.still_fails(job, baseline, &cand, &mut probes) {
                    best = cand;
                    continue 'polish;
                }
            }
            break;
        }

        self.try_drop_keyed(job, baseline, &mut best, &mut probes);
        (best, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Fifo;

    fn small_cluster() -> ClusterConfig {
        ClusterConfig::local(3)
    }

    /// A well-behaved job: output fingerprint is sorted, so no schedule
    /// can change it.
    fn clean_job(ctx: &Context) -> SparkResult<JobArtifacts> {
        let mut out = ctx.range(0, 40, 6).map(|x| x * 3 + 1).collect()?;
        out.sort_unstable();
        Ok(JobArtifacts {
            fingerprint: out.iter().flat_map(|x| x.to_le_bytes()).collect(),
            merge_once: Vec::new(),
        })
    }

    /// A planted schedule bug: the fingerprint folds accumulator
    /// arrival order, which depends on which replies the driver
    /// processes first.
    fn order_sensitive_job(ctx: &Context) -> SparkResult<JobArtifacts> {
        let arrivals = ctx.collection_accumulator::<u64>();
        ctx.range(0, 6, 6).foreach_partition({
            let arrivals = arrivals.clone();
            move |p, _| arrivals.add(p as u64)
        })?;
        Ok(JobArtifacts {
            fingerprint: arrivals.value().iter().flat_map(|x| x.to_le_bytes()).collect(),
            merge_once: Vec::new(),
        })
    }

    #[test]
    fn clean_job_explores_clean() {
        let report = Explorer::new(small_cluster())
            .with_schedules(4)
            .explore(&clean_job)
            .expect("baseline runs");
        assert!(report.ok(), "{:?}", report.violation);
        assert_eq!(report.schedules_run, 4);
    }

    #[test]
    fn planted_order_bug_is_caught_and_shrunk() {
        let explorer = Explorer::new(small_cluster()).with_schedules(32);
        let report = explorer.explore(&order_sensitive_job).expect("baseline runs");
        let v = report.violation.expect("order-sensitive job must trip LabelIdentity");
        assert_eq!(v.oracle, "label-identity");
        assert!(v.shrunk.decisions() <= v.token.decisions());
        assert!(v.shrunk.decisions() <= 20, "shrunk to {} decisions", v.shrunk.decisions());
        // the shrunk token is really a reproduction
        let baseline = explorer
            .run_policy(&order_sensitive_job, Arc::new(Replay::baseline()))
            .unwrap()
            .artifacts;
        assert!(
            explorer.check_token(&order_sensitive_job, &baseline, &v.shrunk).is_some(),
            "shrunk token must still violate: {}",
            v.report()
        );
        // and the report round-trips through the printable token form
        let reparsed: ReplayToken = v.shrunk.to_string().parse().unwrap();
        assert_eq!(reparsed, v.shrunk);
        assert!(v.report().contains("reproduce with"), "{}", v.report());
    }

    #[test]
    fn explorer_ignores_base_schedule_field() {
        // even if the base config carries a non-default policy, the
        // explorer installs its own
        let cfg = small_cluster().with_schedule(Arc::new(Fifo));
        let report =
            Explorer::new(cfg).with_schedules(2).explore(&clean_job).expect("baseline runs");
        assert!(report.ok());
    }
}
