//! Invariant oracles for schedule exploration.
//!
//! An oracle inspects one explored run — its job artifacts, the FIFO
//! baseline's artifacts, the memory-ledger counters and the structured
//! trace — and reports a violation as a human-readable detail string.
//! The built-in set ([`default_oracles`]) encodes the invariants the
//! repo already guards piecemeal elsewhere:
//!
//! * [`LabelIdentity`] — the job's output fingerprint is byte-identical
//!   to the canonical-baseline schedule's (the paper's determinism
//!   claim: no executor↔executor communication means no
//!   schedule-dependent answers).
//! * [`TraceWellFormed`] — the Chrome trace of the explored run passes
//!   [`crate::trace::validate_chrome_trace`] (balanced spans, sane
//!   nesting) no matter how replies were reordered.
//! * [`LedgerConservation`] — every reserved task byte was released:
//!   `task_reserved_bytes == task_released_bytes` once the job is done.
//! * [`MergeOnce`] — job-declared accumulator checks hold (updates from
//!   stale or failed attempts were merged exactly zero times, updates
//!   from successful attempts exactly once).

use crate::explore::JobArtifacts;
use crate::memory::MemoryStats;
use crate::trace::validate_chrome_trace;

/// Everything an oracle may look at about one explored run.
pub struct RunObservation<'a> {
    /// Artifacts of the explored run.
    pub artifacts: &'a JobArtifacts,
    /// Artifacts of the canonical baseline schedule.
    pub baseline: &'a JobArtifacts,
    /// Memory counters at job end.
    pub memory: MemoryStats,
    /// The run's Chrome-format trace JSON.
    pub trace_json: &'a str,
}

/// A pluggable schedule-exploration invariant.
pub trait InvariantOracle: Send + Sync {
    /// Short stable name, quoted in violation reports.
    fn name(&self) -> &'static str;
    /// `Err(detail)` when the invariant is violated.
    fn check(&self, obs: &RunObservation<'_>) -> Result<(), String>;
}

/// Output fingerprint must match the canonical baseline byte-for-byte.
pub struct LabelIdentity;

impl InvariantOracle for LabelIdentity {
    fn name(&self) -> &'static str {
        "label-identity"
    }

    fn check(&self, obs: &RunObservation<'_>) -> Result<(), String> {
        if obs.artifacts.fingerprint == obs.baseline.fingerprint {
            return Ok(());
        }
        let diverge = obs
            .artifacts
            .fingerprint
            .iter()
            .zip(&obs.baseline.fingerprint)
            .position(|(a, b)| a != b);
        Err(format!(
            "output fingerprint diverged from the baseline schedule ({} vs {} bytes, first \
             difference at byte {:?})",
            obs.artifacts.fingerprint.len(),
            obs.baseline.fingerprint.len(),
            diverge
        ))
    }
}

/// The run's trace must validate as a well-formed Chrome trace.
pub struct TraceWellFormed;

impl InvariantOracle for TraceWellFormed {
    fn name(&self) -> &'static str {
        "trace-well-formed"
    }

    fn check(&self, obs: &RunObservation<'_>) -> Result<(), String> {
        validate_chrome_trace(obs.trace_json)
            .map(|_| ())
            .map_err(|e| format!("trace failed validation: {e}"))
    }
}

/// Reserved task bytes must all have been released by job end.
pub struct LedgerConservation;

impl InvariantOracle for LedgerConservation {
    fn name(&self) -> &'static str {
        "ledger-conservation"
    }

    fn check(&self, obs: &RunObservation<'_>) -> Result<(), String> {
        let m = obs.memory;
        if m.task_reserved_bytes == m.task_released_bytes {
            Ok(())
        } else {
            Err(format!(
                "task ledger does not balance: reserved {} bytes, released {} bytes",
                m.task_reserved_bytes, m.task_released_bytes
            ))
        }
    }
}

/// Job-declared accumulator merge-once checks must hold.
pub struct MergeOnce;

impl InvariantOracle for MergeOnce {
    fn name(&self) -> &'static str {
        "accumulator-merge-once"
    }

    fn check(&self, obs: &RunObservation<'_>) -> Result<(), String> {
        for c in &obs.artifacts.merge_once {
            if c.expected != c.observed {
                return Err(format!(
                    "accumulator {:?} merged wrong: expected {}, observed {}",
                    c.name, c.expected, c.observed
                ));
            }
        }
        Ok(())
    }
}

/// The built-in oracle set, in checking order.
pub fn default_oracles() -> Vec<Box<dyn InvariantOracle>> {
    vec![
        Box::new(LabelIdentity),
        Box::new(TraceWellFormed),
        Box::new(LedgerConservation),
        Box::new(MergeOnce),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{JobArtifacts, MergeOnceCheck};

    fn artifacts(fp: &[u8]) -> JobArtifacts {
        JobArtifacts { fingerprint: fp.to_vec(), merge_once: Vec::new() }
    }

    #[test]
    fn label_identity_flags_fingerprint_divergence() {
        let base = artifacts(&[1, 2, 3]);
        let same = artifacts(&[1, 2, 3]);
        let diff = artifacts(&[1, 9, 3]);
        let ok = RunObservation {
            artifacts: &same,
            baseline: &base,
            memory: MemoryStats::default(),
            trace_json: "",
        };
        assert!(LabelIdentity.check(&ok).is_ok());
        let bad = RunObservation {
            artifacts: &diff,
            baseline: &base,
            memory: MemoryStats::default(),
            trace_json: "",
        };
        let err = LabelIdentity.check(&bad).unwrap_err();
        assert!(err.contains("byte Some(1)"), "{err}");
    }

    #[test]
    fn ledger_conservation_checks_balance() {
        let a = artifacts(&[]);
        let mut m =
            MemoryStats { task_reserved_bytes: 10, task_released_bytes: 10, ..Default::default() };
        let obs = |m: MemoryStats| RunObservation {
            artifacts: &a,
            baseline: &a,
            memory: m,
            trace_json: "",
        };
        assert!(LedgerConservation.check(&obs(m)).is_ok());
        m.task_released_bytes = 9;
        assert!(LedgerConservation.check(&obs(m)).is_err());
    }

    #[test]
    fn merge_once_checks_job_declared_counts() {
        let good = JobArtifacts {
            fingerprint: Vec::new(),
            merge_once: vec![MergeOnceCheck { name: "n".into(), expected: 4, observed: 4 }],
        };
        let bad = JobArtifacts {
            fingerprint: Vec::new(),
            merge_once: vec![MergeOnceCheck { name: "n".into(), expected: 4, observed: 5 }],
        };
        let base = JobArtifacts { fingerprint: Vec::new(), merge_once: Vec::new() };
        fn obs<'a>(a: &'a JobArtifacts, base: &'a JobArtifacts) -> RunObservation<'a> {
            RunObservation {
                artifacts: a,
                baseline: base,
                memory: MemoryStats::default(),
                trace_json: "",
            }
        }
        assert!(MergeOnce.check(&obs(&good, &base)).is_ok());
        assert!(MergeOnce.check(&obs(&bad, &base)).unwrap_err().contains("expected 4, observed 5"));
    }
}
