//! RDDs: lazy, typed, lineage-tracked distributed collections.
//!
//! An [`Rdd<T>`] is a handle over an operator node; transformations build
//! new nodes without computing anything, and actions (`collect`, `count`,
//! `reduce`, `foreach_partition`, ...) submit a job through the DAG
//! scheduler. Wide operations (`reduce_by_key`, `group_by_key`) insert a
//! shuffle dependency, which the scheduler materializes as a separate
//! stage — exactly the stage-splitting behaviour the paper describes for
//! Spark's DAGScheduler.

pub(crate) mod ops;
pub(crate) mod shuffled;
pub(crate) mod text;

use crate::context::Context;
use crate::error::SparkResult;
use crate::scheduler;
use crate::Data;
use std::hash::Hash;
use std::sync::Arc;

/// A shuffle dependency, type-erased for the scheduler.
pub(crate) trait ShuffleDepObj: Send + Sync {
    /// Unique id of this shuffle.
    fn shuffle_id(&self) -> usize;
    /// The map-side parent RDD.
    fn parent_node(&self) -> Arc<dyn AnyRdd>;
    /// Number of map partitions.
    fn num_maps(&self) -> usize;
    /// Number of reduce partitions.
    fn num_reduces(&self) -> usize;
    /// Build the work of map task `part` bound to `executor`.
    fn make_map_task(&self, part: usize, executor: usize) -> crate::task::TaskWork;
}

/// A parent edge in the lineage graph.
pub(crate) enum Parent {
    /// One-to-one dependency (map, filter, union, ...).
    Narrow(Arc<dyn AnyRdd>),
    /// All-to-all dependency through a shuffle.
    Shuffle(Arc<dyn ShuffleDepObj>),
}

/// Type-erased view of an RDD node, sufficient for scheduling.
pub(crate) trait AnyRdd: Send + Sync {
    /// Unique id of the node.
    fn rdd_id(&self) -> usize;
    /// Number of partitions.
    fn num_partitions(&self) -> usize;
    /// Lineage edges.
    fn parents(&self) -> Vec<Parent>;
    /// Operator name for lineage rendering.
    fn op_name(&self) -> &'static str {
        "rdd"
    }
    /// Declared working-set bytes of one partition's task, reserved on
    /// the executor's memory lane before the task is submitted. Zero
    /// (the default) means "no reservation". Set via [`Rdd::mem_hints`];
    /// the hint lives on the hinted node only, so attach it as the last
    /// transformation before the action.
    fn mem_hint(&self, _part: usize) -> u64 {
        0
    }
}

/// A typed RDD node: the scheduler computes partitions through this.
pub(crate) trait RddNode: AnyRdd {
    /// Element type.
    type Item: Data;
    /// Materialize one partition. Errors become typed task failures:
    /// the scheduler retries generic ones in place and recovers fetch
    /// failures via lineage recomputation.
    fn compute(&self, part: usize) -> Result<Vec<Self::Item>, crate::task::TaskError>;
}

/// Result type of [`Rdd::cogroup`]: per key, the values of both sides.
pub type CoGrouped<K, V, W> = Rdd<(K, (Vec<V>, Vec<W>))>;

/// A lazy distributed collection of `T`.
pub struct Rdd<T: Data> {
    pub(crate) node: Arc<dyn RddNode<Item = T>>,
    pub(crate) ctx: Context,
}

impl<T: Data> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd { node: Arc::clone(&self.node), ctx: self.ctx.clone() }
    }
}

impl<T: Data> Rdd<T> {
    pub(crate) fn new(node: Arc<dyn RddNode<Item = T>>, ctx: Context) -> Self {
        Rdd { node, ctx }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.node.num_partitions()
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Render the lineage graph (Spark's `toDebugString`): one line per
    /// ancestor, indented by depth, `+-shuffle->` marking stage
    /// boundaries.
    pub fn debug_lineage(&self) -> String {
        fn walk(node: &Arc<dyn AnyRdd>, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "({}) {} [{} partitions]\n",
                node.rdd_id(),
                node.op_name(),
                node.num_partitions()
            ));
            for p in node.parents() {
                match p {
                    Parent::Narrow(n) => walk(&n, depth + 1, out),
                    Parent::Shuffle(dep) => {
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(&format!("+-shuffle {}->\n", dep.shuffle_id()));
                        walk(&dep.parent_node(), depth + 2, out);
                    }
                }
            }
        }
        let mut out = String::new();
        let any: Arc<dyn AnyRdd> = Arc::clone(&self.node) as Arc<dyn AnyRdd>;
        walk(&any, 0, &mut out);
        out
    }

    // ---- transformations (lazy) -------------------------------------

    /// Element-wise transformation.
    pub fn map<U: Data>(&self, f: impl Fn(T) -> U + Send + Sync + 'static) -> Rdd<U> {
        let node = Arc::new(ops::MapRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            f: Arc::new(f),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// Keep elements satisfying the predicate.
    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync + 'static) -> Rdd<T> {
        let node = Arc::new(ops::FilterRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            f: Arc::new(f),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// One-to-many transformation.
    pub fn flat_map<U: Data>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync + 'static) -> Rdd<U> {
        let node = Arc::new(ops::FlatMapRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            f: Arc::new(f),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// Whole-partition transformation with the partition index — the
    /// primitive the paper's per-executor clustering loop maps onto.
    pub fn map_partitions<U: Data>(
        &self,
        f: impl Fn(usize, Vec<T>) -> Vec<U> + Send + Sync + 'static,
    ) -> Rdd<U> {
        let node = Arc::new(ops::MapPartitionsRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            f: Arc::new(f),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// Concatenate two RDDs (partitions of `other` follow ours).
    pub fn union(&self, other: &Rdd<T>) -> Rdd<T> {
        let node = Arc::new(ops::UnionRdd {
            id: self.ctx.inner.next_rdd_id(),
            first: Arc::clone(&self.node),
            second: Arc::clone(&other.node),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// Pair every element with a key.
    pub fn key_by<K: Data>(&self, f: impl Fn(&T) -> K + Send + Sync + 'static) -> Rdd<(K, T)> {
        self.map(move |t| (f(&t), t))
    }

    /// Mark this RDD's partitions for in-memory caching: the first
    /// action materializes them, later actions reuse them. Without a
    /// byte codec the cache can only *evict* these partitions under
    /// memory pressure (recomputing them from lineage on the next use);
    /// see [`Rdd::cache_spillable`] for the disk-backed variant.
    pub fn cache(&self) -> Rdd<T> {
        let node = Arc::new(ops::CachedRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            cache: Arc::clone(&self.ctx.inner.cache),
            codec: None,
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// [`Rdd::cache`] with a disk tier: under memory pressure the cached
    /// partition is spilled to the local checksummed spill store and
    /// read back on the next use, instead of being recomputed from
    /// lineage.
    pub fn cache_spillable(&self) -> Rdd<T>
    where
        T: crate::spill::Spillable,
    {
        let node = Arc::new(ops::CachedRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            cache: Arc::clone(&self.ctx.inner.cache),
            codec: Some(Arc::new(ops::VecSpillCodec::<T>::new())),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// Attach per-partition working-set hints (bytes): before a task for
    /// partition `p` is submitted, the scheduler reserves `hints[p]` on
    /// its executor's memory lane, deferring the submission while a
    /// bounded budget cannot grant it. The hint lives on the returned
    /// node only — attach it as the last transformation before the
    /// action. Missing entries mean zero (no reservation).
    pub fn mem_hints(&self, hints: Vec<u64>) -> Rdd<T> {
        let node = Arc::new(ops::MemHintRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            hints: Arc::new(hints),
        });
        Rdd::new(node, self.ctx.clone())
    }

    /// Drop this RDD's cached partitions. Returns how many were evicted.
    /// Only meaningful on a handle returned by [`Rdd::cache`].
    pub fn unpersist(&self) -> usize {
        self.ctx.inner.cache.unpersist(self.node.rdd_id())
    }

    /// Pair each element with its global index (requires a job to count
    /// partition sizes, like Spark's `zipWithIndex`).
    pub fn zip_with_index(&self) -> SparkResult<Rdd<(T, u64)>> {
        let sizes = self.partition_sizes()?;
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0u64;
        for s in sizes {
            offsets.push(acc);
            acc += s as u64;
        }
        let node = Arc::new(ops::ZipWithIndexRdd {
            id: self.ctx.inner.next_rdd_id(),
            prev: Arc::clone(&self.node),
            offsets: Arc::new(offsets),
        });
        Ok(Rdd::new(node, self.ctx.clone()))
    }

    // ---- actions (eager) --------------------------------------------

    /// Materialize every element on the driver, in partition order.
    pub fn collect(&self) -> SparkResult<Vec<T>> {
        let parts = scheduler::run_job(&self.ctx, Arc::clone(&self.node), Arc::new(|_, d| d))?;
        Ok(parts.into_iter().flatten().collect())
    }

    /// Count elements.
    pub fn count(&self) -> SparkResult<usize> {
        Ok(self.partition_sizes()?.into_iter().sum())
    }

    /// Per-partition element counts.
    pub fn partition_sizes(&self) -> SparkResult<Vec<usize>> {
        scheduler::run_job(&self.ctx, Arc::clone(&self.node), Arc::new(|_, d: Vec<T>| d.len()))
    }

    /// Reduce all elements with an associative function; `None` if empty.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> SparkResult<Option<T>> {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let partials = scheduler::run_job(
            &self.ctx,
            Arc::clone(&self.node),
            Arc::new(move |_, d: Vec<T>| d.into_iter().reduce(|a, b| g(a, b))),
        )?;
        Ok(partials.into_iter().flatten().reduce(|a, b| f(a, b)))
    }

    /// Fold with a zero value (applied per partition, then across
    /// partition results on the driver).
    pub fn fold(&self, zero: T, f: impl Fn(T, T) -> T + Send + Sync + 'static) -> SparkResult<T> {
        let f = Arc::new(f);
        let g = Arc::clone(&f);
        let z = zero.clone();
        let partials = scheduler::run_job(
            &self.ctx,
            Arc::clone(&self.node),
            Arc::new(move |_, d: Vec<T>| d.into_iter().fold(z.clone(), |a, b| g(a, b))),
        )?;
        Ok(partials.into_iter().fold(zero, |a, b| f(a, b)))
    }

    /// First `n` elements in partition order.
    pub fn take(&self, n: usize) -> SparkResult<Vec<T>> {
        // simple implementation: collect then truncate (fine at our scale)
        let mut all = self.collect()?;
        all.truncate(n);
        Ok(all)
    }

    /// Run `f` once per partition on the executors — the paper's
    /// `foreach` closure (Algorithm 2, lines 4–29). Combined with an
    /// accumulator this is how partial clusters travel to the driver.
    pub fn foreach_partition(
        &self,
        f: impl Fn(usize, Vec<T>) + Send + Sync + 'static,
    ) -> SparkResult<()> {
        let f = Arc::new(f);
        scheduler::run_job(
            &self.ctx,
            Arc::clone(&self.node),
            Arc::new(move |p, d: Vec<T>| f(p, d)),
        )?;
        Ok(())
    }

    /// Keep each element with probability `fraction`, deterministically
    /// in `seed` (hash-based Bernoulli sampling, Spark's `sample`
    /// without replacement).
    pub fn sample(&self, fraction: f64, seed: u64) -> Rdd<T>
    where
        T: std::hash::Hash,
    {
        let fraction = fraction.clamp(0.0, 1.0);
        self.filter(move |t| {
            use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};
            let h = BuildHasherDefault::<DefaultHasher>::default().hash_one((seed, t));
            (h as f64 / u64::MAX as f64) < fraction
        })
    }

    /// Unique elements (wide — shuffles one record per distinct value).
    pub fn distinct(&self, num_partitions: usize) -> Rdd<T>
    where
        T: std::hash::Hash + Eq,
    {
        self.map(|t| (t, ())).reduce_by_key(num_partitions, |a, _| a).map(|(t, ())| t)
    }

    /// Redistribute elements into `num_partitions` balanced partitions
    /// (wide — a full shuffle with an explicit partitioner, Spark's
    /// `repartition`). Requires a job to index elements first.
    pub fn repartition(&self, num_partitions: usize) -> SparkResult<Rdd<T>> {
        let p = num_partitions.max(1);
        let indexed = self.zip_with_index()?;
        let keyed = indexed.map(move |(t, i)| (i % p as u64, t));
        let node = shuffled::ShuffledRdd::create_with_partitioner(
            &self.ctx,
            Arc::clone(&keyed.node),
            p,
            Arc::new(|k: &u64, parts: usize| (*k % parts as u64) as usize),
            |v: T| vec![v],
            |acc: &mut Vec<T>, v| acc.push(v),
            |acc: &mut Vec<T>, mut o| acc.append(&mut o),
        );
        Ok(Rdd::new(node, self.ctx.clone()).flat_map(|(_, vs)| vs))
    }

    /// Write each partition as `dir/part-NNNNN` into the DFS (Spark's
    /// `saveAsTextFile`), one line per element. Tasks write their own
    /// files, so a retried task simply overwrites its previous attempt.
    pub fn save_as_text_file(&self, dfs: Arc<minidfs::DfsCluster>, dir: &str) -> SparkResult<()>
    where
        T: std::fmt::Display,
    {
        let dir = dir.trim_end_matches('/').to_string();
        self.foreach_partition(move |p, data| {
            use std::io::Write;
            let path = format!("{dir}/part-{p:05}");
            if dfs.exists(&path) {
                dfs.delete(&path).expect("replace earlier attempt's file");
            }
            let mut w = dfs.create(&path).expect("create part file");
            for item in data {
                writeln!(w, "{item}").expect("write part file");
            }
            w.close().expect("close part file");
        })
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Data + Hash + Eq,
    V: Data,
{
    /// Generic shuffle: build per-key combiners across all partitions.
    pub fn combine_by_key<C: Data>(
        &self,
        num_partitions: usize,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(&mut C, V) + Send + Sync + 'static,
        merge_combiners: impl Fn(&mut C, C) + Send + Sync + 'static,
    ) -> Rdd<(K, C)> {
        let node = shuffled::ShuffledRdd::create(
            &self.ctx,
            Arc::clone(&self.node),
            num_partitions,
            create,
            merge_value,
            merge_combiners,
        );
        Rdd::new(node, self.ctx.clone())
    }

    /// [`Rdd::combine_by_key`] with a spillable map-output buffer: when
    /// a bounded memory budget cannot keep a map task's shuffle buckets
    /// resident, they are encoded with the [`crate::spill::Spillable`]
    /// codec and parked on disk until the reduce side fetches them.
    pub fn combine_by_key_spillable<C>(
        &self,
        num_partitions: usize,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(&mut C, V) + Send + Sync + 'static,
        merge_combiners: impl Fn(&mut C, C) + Send + Sync + 'static,
    ) -> Rdd<(K, C)>
    where
        K: crate::spill::Spillable,
        C: Data + crate::spill::Spillable,
    {
        let node = shuffled::ShuffledRdd::create_spillable(
            &self.ctx,
            Arc::clone(&self.node),
            num_partitions,
            create,
            merge_value,
            merge_combiners,
        );
        Rdd::new(node, self.ctx.clone())
    }

    /// Merge values per key with an associative function (wide — incurs
    /// a shuffle, which the engine accounts).
    pub fn reduce_by_key(
        &self,
        num_partitions: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)> {
        let f = Arc::new(f);
        let f2 = Arc::clone(&f);
        self.combine_by_key(
            num_partitions,
            |v| v,
            move |c, v| {
                let old = c.clone();
                *c = f(old, v);
            },
            move |c, v| {
                let old = c.clone();
                *c = f2(old, v);
            },
        )
    }

    /// [`Rdd::reduce_by_key`] with a spillable map-output buffer; see
    /// [`Rdd::combine_by_key_spillable`].
    pub fn reduce_by_key_spillable(
        &self,
        num_partitions: usize,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Rdd<(K, V)>
    where
        K: crate::spill::Spillable,
        V: crate::spill::Spillable,
    {
        let f = Arc::new(f);
        let f2 = Arc::clone(&f);
        self.combine_by_key_spillable(
            num_partitions,
            |v| v,
            move |c, v| {
                let old = c.clone();
                *c = f(old, v);
            },
            move |c, v| {
                let old = c.clone();
                *c = f2(old, v);
            },
        )
    }

    /// Group all values per key (wide — incurs a shuffle).
    pub fn group_by_key(&self, num_partitions: usize) -> Rdd<(K, Vec<V>)> {
        self.combine_by_key(
            num_partitions,
            |v| vec![v],
            |c, v| c.push(v),
            |c, mut v| c.append(&mut v),
        )
    }

    /// Count occurrences per key, collected on the driver.
    pub fn count_by_key(&self) -> SparkResult<std::collections::HashMap<K, usize>> {
        let counted = self
            .map(|(k, _)| (k, 1usize))
            .reduce_by_key(self.num_partitions().max(1), |a, b| a + b);
        Ok(counted.collect()?.into_iter().collect())
    }

    /// Group both sides by key (Spark's `cogroup`): for every key, the
    /// values from `self` and from `other`. Keys present on one side
    /// only appear with an empty vector on the other.
    pub fn cogroup<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> CoGrouped<K, V, W> {
        #[derive(Clone)]
        enum Side<V, W> {
            L(V),
            R(W),
        }
        let left: Rdd<(K, Side<V, W>)> = self.map(|(k, v)| (k, Side::L(v)));
        let right: Rdd<(K, Side<V, W>)> = other.map(|(k, w)| (k, Side::R(w)));
        left.union(&right).combine_by_key(
            num_partitions,
            |s| match s {
                Side::L(v) => (vec![v], Vec::new()),
                Side::R(w) => (Vec::new(), vec![w]),
            },
            |acc, s| match s {
                Side::L(v) => acc.0.push(v),
                Side::R(w) => acc.1.push(w),
            },
            |acc, mut other| {
                acc.0.append(&mut other.0);
                acc.1.append(&mut other.1);
            },
        )
    }

    /// Inner join on key (wide — built on [`Rdd::cogroup`]).
    pub fn join<W: Data>(&self, other: &Rdd<(K, W)>, num_partitions: usize) -> Rdd<(K, (V, W))> {
        self.cogroup(other, num_partitions).flat_map(|(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in &vs {
                for w in &ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }

    /// Keys whose pairs appear in `self` but not in `other` (left
    /// anti-join on keys).
    pub fn subtract_by_key<W: Data>(
        &self,
        other: &Rdd<(K, W)>,
        num_partitions: usize,
    ) -> Rdd<(K, V)> {
        self.cogroup(other, num_partitions).flat_map(|(k, (vs, ws))| {
            if ws.is_empty() {
                vs.into_iter().map(|v| (k.clone(), v)).collect()
            } else {
                Vec::new()
            }
        })
    }
}
