//! Reading text files from the mini-DFS, one partition per block, with
//! Hadoop's line-split semantics: a line belongs to the block where it
//! *starts*; a reader whose block begins mid-line skips to the first
//! newline, and a reader whose block ends mid-line continues into the
//! following blocks to finish the line.

use super::{AnyRdd, Parent, RddNode};
use crate::task::TaskError;
use minidfs::{BlockInfo, DfsCluster, DfsError};
use std::sync::Arc;

/// RDD of the lines of a DFS file.
pub(crate) struct TextFileRdd {
    pub id: usize,
    pub dfs: Arc<DfsCluster>,
    pub path: String,
    pub blocks: Vec<BlockInfo>,
}

impl TextFileRdd {
    pub(crate) fn open(id: usize, dfs: Arc<DfsCluster>, path: &str) -> Result<Self, DfsError> {
        let blocks = dfs.namenode().blocks(path)?;
        Ok(TextFileRdd { id, dfs, path: path.to_string(), blocks })
    }

    fn read(&self, part: usize) -> Result<Arc<Vec<u8>>, TaskError> {
        // DFS failures (notably replica exhaustion) are storage-kind
        // task errors, surfaced typed once the retry budget is spent
        self.dfs
            .read_block(&self.path, &self.blocks[part])
            .map_err(|e| TaskError::storage(e.to_string()))
    }
}

impl AnyRdd for TextFileRdd {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "text_file"
    }

    fn num_partitions(&self) -> usize {
        self.blocks.len().max(1)
    }

    fn parents(&self) -> Vec<Parent> {
        Vec::new()
    }
}

impl RddNode for TextFileRdd {
    type Item = String;

    fn compute(&self, part: usize) -> Result<Vec<String>, TaskError> {
        if self.blocks.is_empty() {
            return Ok(Vec::new());
        }
        let data = self.read(part)?;
        let mut start = 0usize;
        if part > 0 {
            // does the first line of this block start here, or is it the
            // tail of a line owned by the previous block?
            let prev = self.read(part - 1)?;
            let prev_ends_line = prev.last() == Some(&b'\n');
            if !prev_ends_line {
                match data.iter().position(|&b| b == b'\n') {
                    Some(i) => start = i + 1,
                    // the whole block is the middle of one long line
                    None => return Ok(Vec::new()),
                }
            }
        }
        let mut buf: Vec<u8> = data[start..].to_vec();
        if data.last() != Some(&b'\n') {
            // finish the trailing line from following blocks
            for next in part + 1..self.blocks.len() {
                let nd = self.read(next)?;
                match nd.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        buf.extend_from_slice(&nd[..=i]);
                        break;
                    }
                    None => buf.extend_from_slice(&nd),
                }
            }
        }
        let text = String::from_utf8(buf).map_err(|e| format!("invalid utf-8: {e}"))?;
        Ok(text.lines().map(|l| l.to_string()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidfs::{DfsCluster, DfsConfig};

    fn dfs(block_size: usize) -> Arc<DfsCluster> {
        Arc::new(
            DfsCluster::new(DfsConfig { num_datanodes: 2, replication: 1, block_size }).unwrap(),
        )
    }

    fn lines_of(rdd: &TextFileRdd) -> Vec<String> {
        (0..rdd.num_partitions()).flat_map(|p| rdd.compute(p).unwrap()).collect()
    }

    #[test]
    fn every_line_exactly_once_across_block_sizes() {
        let content = "alpha\nbe\nceee\ndddddddddddd\ne\n";
        let expect: Vec<String> = content.lines().map(String::from).collect();
        for bs in 1..=content.len() + 2 {
            let d = dfs(bs);
            d.write_file("/t", content.as_bytes()).unwrap();
            let rdd = TextFileRdd::open(0, d, "/t").unwrap();
            assert_eq!(lines_of(&rdd), expect, "block size {bs}");
        }
    }

    #[test]
    fn missing_trailing_newline_keeps_last_line() {
        let d = dfs(4);
        d.write_file("/t", b"ab\ncdef").unwrap();
        let rdd = TextFileRdd::open(0, d, "/t").unwrap();
        assert_eq!(lines_of(&rdd), vec!["ab", "cdef"]);
    }

    #[test]
    fn line_longer_than_block_handled_once() {
        let d = dfs(3);
        d.write_file("/t", b"abcdefghij\nk\n").unwrap();
        let rdd = TextFileRdd::open(0, d, "/t").unwrap();
        assert_eq!(lines_of(&rdd), vec!["abcdefghij", "k"]);
    }

    #[test]
    fn empty_file_no_lines() {
        let d = dfs(8);
        d.write_file("/t", b"").unwrap();
        let rdd = TextFileRdd::open(0, d, "/t").unwrap();
        assert_eq!(rdd.num_partitions(), 1);
        assert!(lines_of(&rdd).is_empty());
    }

    #[test]
    fn missing_file_is_error() {
        let d = dfs(8);
        assert!(TextFileRdd::open(0, d, "/missing").is_err());
    }
}
