//! The shuffle operator (`combine_by_key` and friends).
//!
//! Map side: each parent partition is **combined map-side** (Spark's
//! `reduceByKey` behaviour) into per-key combiners, bucketed by key hash
//! into one bucket per reduce partition, and registered with the
//! [`ShuffleManager`]. Reduce side: each output partition fetches its
//! bucket column and merges combiners. Records and bytes moved are
//! accounted *after* map-side combining, so shuffle volume reflects what
//! a real cluster would put on the wire.

use super::{AnyRdd, Parent, RddNode, ShuffleDepObj};
use crate::context::Context;
use crate::shuffle::{Bucket, BucketCodec, ShuffleManager};
use crate::spill::Spillable;
use crate::task::{TaskOutput, TaskWork};
use crate::Data;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::Arc;

type CreateFn<V, C> = Box<dyn Fn(V) -> C + Send + Sync>;
type MergeValueFn<C, V> = Box<dyn Fn(&mut C, V) + Send + Sync>;
type MergeCombinersFn<C> = Box<dyn Fn(&mut C, C) + Send + Sync>;

/// Reduce-side aggregation functions.
pub(crate) struct Aggregator<K, V, C> {
    pub create: CreateFn<V, C>,
    pub merge_value: MergeValueFn<C, V>,
    pub merge_combiners: MergeCombinersFn<C>,
    _pd: std::marker::PhantomData<fn(K)>,
}

/// Deterministic key -> reduce-partition assignment (Spark's
/// HashPartitioner).
pub(crate) fn hash_partition<K: Hash>(key: &K, num_partitions: usize) -> usize {
    let h = BuildHasherDefault::<DefaultHasher>::default().hash_one(key);
    (h % num_partitions as u64) as usize
}

/// Key -> reduce-partition routing function.
pub(crate) type Partitioner<K> = Arc<dyn Fn(&K, usize) -> usize + Send + Sync>;

/// The post-shuffle RDD node.
pub(crate) struct ShuffledRdd<K, V, C> {
    id: usize,
    shuffle_id: usize,
    parent: Arc<dyn RddNode<Item = (K, V)>>,
    num_reduces: usize,
    agg: Arc<Aggregator<K, V, C>>,
    partitioner: Partitioner<K>,
    shuffles: Arc<ShuffleManager>,
    /// Byte codec letting over-budget map outputs spill to disk (set by
    /// the `*_spillable` transformations; `None` keeps buckets resident).
    codec: Option<BucketCodec>,
}

/// Type-erased codec over a `Vec<(K, C)>` bucket.
fn bucket_codec<K, C>() -> BucketCodec
where
    K: Data + Spillable,
    C: Data + Spillable,
{
    BucketCodec {
        encode: Arc::new(|b: &Bucket| b.downcast_ref::<Vec<(K, C)>>().map(crate::spill::encode)),
        decode: Arc::new(|bytes: &[u8]| {
            crate::spill::decode::<Vec<(K, C)>>(bytes).map(|v| Arc::new(v) as Bucket)
        }),
    }
}

impl<K, V, C> ShuffledRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    /// Build the node (and implicitly its shuffle dependency) with the
    /// default hash partitioner.
    pub(crate) fn create(
        ctx: &Context,
        parent: Arc<dyn RddNode<Item = (K, V)>>,
        num_reduces: usize,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(&mut C, V) + Send + Sync + 'static,
        merge_combiners: impl Fn(&mut C, C) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::create_with_partitioner(
            ctx,
            parent,
            num_reduces,
            Arc::new(|k: &K, p: usize| hash_partition(k, p)),
            create,
            merge_value,
            merge_combiners,
        )
    }

    /// [`ShuffledRdd::create`] with a [`Spillable`]-derived bucket codec
    /// so over-budget map outputs can park on disk.
    pub(crate) fn create_spillable(
        ctx: &Context,
        parent: Arc<dyn RddNode<Item = (K, V)>>,
        num_reduces: usize,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(&mut C, V) + Send + Sync + 'static,
        merge_combiners: impl Fn(&mut C, C) + Send + Sync + 'static,
    ) -> Arc<Self>
    where
        K: Spillable,
        C: Spillable,
    {
        let node = Self::create(ctx, parent, num_reduces, create, merge_value, merge_combiners);
        let mut node = Arc::into_inner(node).expect("fresh node has no other handles");
        node.codec = Some(bucket_codec::<K, C>());
        Arc::new(node)
    }

    /// Build with an explicit key -> partition routing function
    /// (Spark's custom `Partitioner`).
    pub(crate) fn create_with_partitioner(
        ctx: &Context,
        parent: Arc<dyn RddNode<Item = (K, V)>>,
        num_reduces: usize,
        partitioner: Partitioner<K>,
        create: impl Fn(V) -> C + Send + Sync + 'static,
        merge_value: impl Fn(&mut C, V) + Send + Sync + 'static,
        merge_combiners: impl Fn(&mut C, C) + Send + Sync + 'static,
    ) -> Arc<Self> {
        let num_reduces = num_reduces.max(1);
        Arc::new(ShuffledRdd {
            id: ctx.inner.next_rdd_id(),
            shuffle_id: ctx.inner.next_shuffle_id(),
            parent,
            num_reduces,
            agg: Arc::new(Aggregator {
                create: Box::new(create),
                merge_value: Box::new(merge_value),
                merge_combiners: Box::new(merge_combiners),
                _pd: std::marker::PhantomData,
            }),
            partitioner,
            shuffles: Arc::clone(&ctx.inner.shuffles),
            codec: None,
        })
    }
}

impl<K, V, C> AnyRdd for ShuffledRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "shuffled"
    }

    fn num_partitions(&self) -> usize {
        self.num_reduces
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Shuffle(Arc::new(ShuffleDepImpl {
            shuffle_id: self.shuffle_id,
            parent: self.parent.clone(),
            num_reduces: self.num_reduces,
            agg: Arc::clone(&self.agg),
            partitioner: Arc::clone(&self.partitioner),
            shuffles: Arc::clone(&self.shuffles),
            codec: self.codec.clone(),
        }))]
    }
}

impl<K, V, C> RddNode for ShuffledRdd<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    type Item = (K, C);

    fn compute(&self, part: usize) -> Result<Vec<(K, C)>, crate::task::TaskError> {
        // fetch_checked applies the fault plan's fetch-failure rule and
        // returns typed errors, routing recovery through lineage; the
        // fetch itself is an Arc refcount bump per map output
        let column = self.shuffles.fetch_checked(self.shuffle_id, part)?;
        if let [only] = column.as_slice() {
            // single map output: map-side combine already made the keys
            // unique within the bucket, so there is nothing to merge —
            // skip the combiner table (the bucket is shared with the
            // manager, so the pairs are still cloned out, once)
            let pairs = only
                .downcast_ref::<Vec<(K, C)>>()
                .ok_or_else(|| "shuffle bucket type mismatch".to_string())?;
            let records = pairs.len() as u64;
            let bytes = records * std::mem::size_of::<(K, C)>() as u64;
            self.shuffles.trace_read(self.shuffle_id, records, bytes);
            return Ok(pairs.clone());
        }
        let mut table: std::collections::HashMap<K, C> = std::collections::HashMap::new();
        let mut records = 0u64;
        for bucket in column {
            let pairs = bucket
                .downcast_ref::<Vec<(K, C)>>()
                .ok_or_else(|| "shuffle bucket type mismatch".to_string())?;
            records += pairs.len() as u64;
            table.reserve(pairs.len());
            for (k, c) in pairs.iter().cloned() {
                match table.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        (self.agg.merge_combiners)(e.get_mut(), c)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(c);
                    }
                }
            }
        }
        let bytes = records * std::mem::size_of::<(K, C)>() as u64;
        self.shuffles.trace_read(self.shuffle_id, records, bytes);
        Ok(table.into_iter().collect())
    }
}

/// The shuffle dependency handed to the scheduler.
struct ShuffleDepImpl<K, V, C> {
    shuffle_id: usize,
    parent: Arc<dyn RddNode<Item = (K, V)>>,
    num_reduces: usize,
    agg: Arc<Aggregator<K, V, C>>,
    partitioner: Partitioner<K>,
    shuffles: Arc<ShuffleManager>,
    codec: Option<BucketCodec>,
}

impl<K, V, C> ShuffleDepObj for ShuffleDepImpl<K, V, C>
where
    K: Data + Hash + Eq,
    V: Data,
    C: Data,
{
    fn shuffle_id(&self) -> usize {
        self.shuffle_id
    }

    fn parent_node(&self) -> Arc<dyn AnyRdd> {
        self.parent.clone()
    }

    fn num_maps(&self) -> usize {
        self.parent.num_partitions()
    }

    fn num_reduces(&self) -> usize {
        self.num_reduces
    }

    fn make_map_task(&self, part: usize, executor: usize) -> TaskWork {
        let parent = self.parent.clone();
        let shuffles = Arc::clone(&self.shuffles);
        let agg = Arc::clone(&self.agg);
        let partitioner = Arc::clone(&self.partitioner);
        let shuffle_id = self.shuffle_id;
        let num_reduces = self.num_reduces;
        let codec = self.codec.clone();
        Arc::new(move || {
            let data = parent.compute(part)?;
            // map-side combine: one combiner per key in this partition
            let mut combined: std::collections::HashMap<K, C> = std::collections::HashMap::new();
            for (k, v) in data {
                match combined.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        (agg.merge_value)(e.get_mut(), v)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((agg.create)(v));
                    }
                }
            }
            let records = combined.len() as u64;
            let bytes = records * std::mem::size_of::<(K, C)>() as u64;
            let mut buckets: Vec<Vec<(K, C)>> = vec![Vec::new(); num_reduces];
            for (k, c) in combined {
                let b = partitioner(&k, num_reduces).min(num_reduces - 1);
                buckets[b].push((k, c));
            }
            let buckets: Vec<Bucket> = buckets.into_iter().map(|b| Arc::new(b) as Bucket).collect();
            shuffles.put_map_output_spillable(
                shuffle_id,
                part,
                executor,
                buckets,
                records,
                bytes,
                codec.clone(),
            );
            Ok(TaskOutput::Unit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partition_is_stable_and_in_range() {
        for k in 0..100u32 {
            let p = hash_partition(&k, 7);
            assert!(p < 7);
            assert_eq!(p, hash_partition(&k, 7));
        }
    }

    #[test]
    fn hash_partition_spreads_keys() {
        let mut counts = vec![0usize; 4];
        for k in 0..1000u32 {
            counts[hash_partition(&k, 4)] += 1;
        }
        for c in counts {
            assert!(c > 150, "partition badly unbalanced: {c}");
        }
    }
}
