//! Narrow operator nodes.

use super::{AnyRdd, Parent, RddNode};
use crate::spill::Spillable;
use crate::storage::{CacheManager, CachedPartition, SpillCodec};
use crate::task::current_executor;
use crate::Data;
use std::marker::PhantomData;
use std::sync::Arc;

/// Source RDD over driver-provided data, sliced into partitions.
pub(crate) struct ParallelRdd<T> {
    pub id: usize,
    pub data: Arc<Vec<T>>,
    pub num_partitions: usize,
}

impl<T> ParallelRdd<T> {
    /// Element range of a partition: contiguous, balanced slices.
    fn slice(&self, part: usize) -> (usize, usize) {
        let n = self.data.len();
        let p = self.num_partitions;
        let start = part * n / p;
        let end = (part + 1) * n / p;
        (start, end)
    }
}

impl<T: Data> AnyRdd for ParallelRdd<T> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "parallelize"
    }

    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn parents(&self) -> Vec<Parent> {
        Vec::new()
    }
}

impl<T: Data> RddNode for ParallelRdd<T> {
    type Item = T;

    fn compute(&self, part: usize) -> Result<Vec<T>, crate::task::TaskError> {
        let (a, b) = self.slice(part);
        Ok(self.data[a..b].to_vec())
    }
}

/// Source RDD of a contiguous `u64` range — how the DBSCAN driver hands
/// each executor its index range.
pub(crate) struct RangeRdd {
    pub id: usize,
    pub start: u64,
    pub end: u64,
    pub num_partitions: usize,
}

impl AnyRdd for RangeRdd {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "range"
    }

    fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    fn parents(&self) -> Vec<Parent> {
        Vec::new()
    }
}

impl RddNode for RangeRdd {
    type Item = u64;

    fn compute(&self, part: usize) -> Result<Vec<u64>, crate::task::TaskError> {
        let n = self.end.saturating_sub(self.start);
        let p = self.num_partitions as u64;
        let a = self.start + (part as u64) * n / p;
        let b = self.start + (part as u64 + 1) * n / p;
        Ok((a..b).collect())
    }
}

/// `map` node.
pub(crate) struct MapRdd<T, U> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub f: Arc<dyn Fn(T) -> U + Send + Sync>,
}

impl<T: Data, U: Data> AnyRdd for MapRdd<T, U> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "map"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }
}

impl<T: Data, U: Data> RddNode for MapRdd<T, U> {
    type Item = U;

    fn compute(&self, part: usize) -> Result<Vec<U>, crate::task::TaskError> {
        Ok(self.prev.compute(part)?.into_iter().map(|t| (self.f)(t)).collect())
    }
}

/// `filter` node.
pub(crate) struct FilterRdd<T> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub f: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: Data> AnyRdd for FilterRdd<T> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "filter"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }
}

impl<T: Data> RddNode for FilterRdd<T> {
    type Item = T;

    fn compute(&self, part: usize) -> Result<Vec<T>, crate::task::TaskError> {
        Ok(self.prev.compute(part)?.into_iter().filter(|t| (self.f)(t)).collect())
    }
}

/// `flat_map` node.
pub(crate) struct FlatMapRdd<T, U> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub f: Arc<dyn Fn(T) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> AnyRdd for FlatMapRdd<T, U> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "flat_map"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }
}

impl<T: Data, U: Data> RddNode for FlatMapRdd<T, U> {
    type Item = U;

    fn compute(&self, part: usize) -> Result<Vec<U>, crate::task::TaskError> {
        Ok(self.prev.compute(part)?.into_iter().flat_map(|t| (self.f)(t)).collect())
    }
}

/// `map_partitions` node.
pub(crate) struct MapPartitionsRdd<T, U> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub f: Arc<dyn Fn(usize, Vec<T>) -> Vec<U> + Send + Sync>,
}

impl<T: Data, U: Data> AnyRdd for MapPartitionsRdd<T, U> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "map_partitions"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }
}

impl<T: Data, U: Data> RddNode for MapPartitionsRdd<T, U> {
    type Item = U;

    fn compute(&self, part: usize) -> Result<Vec<U>, crate::task::TaskError> {
        Ok((self.f)(part, self.prev.compute(part)?))
    }
}

/// `union` node: partitions of `second` are appended after `first`'s.
pub(crate) struct UnionRdd<T> {
    pub id: usize,
    pub first: Arc<dyn RddNode<Item = T>>,
    pub second: Arc<dyn RddNode<Item = T>>,
}

impl<T: Data> AnyRdd for UnionRdd<T> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "union"
    }

    fn num_partitions(&self) -> usize {
        self.first.num_partitions() + self.second.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.first.clone()), Parent::Narrow(self.second.clone())]
    }
}

impl<T: Data> RddNode for UnionRdd<T> {
    type Item = T;

    fn compute(&self, part: usize) -> Result<Vec<T>, crate::task::TaskError> {
        let nf = self.first.num_partitions();
        if part < nf {
            self.first.compute(part)
        } else {
            self.second.compute(part - nf)
        }
    }
}

/// `zip_with_index` node; `offsets[p]` is the global index of the first
/// element of partition `p` (computed eagerly by a counting job).
pub(crate) struct ZipWithIndexRdd<T> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub offsets: Arc<Vec<u64>>,
}

impl<T: Data> AnyRdd for ZipWithIndexRdd<T> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "zip_with_index"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }
}

impl<T: Data> RddNode for ZipWithIndexRdd<T> {
    type Item = (T, u64);

    fn compute(&self, part: usize) -> Result<Vec<(T, u64)>, crate::task::TaskError> {
        let base = self.offsets[part];
        Ok(self
            .prev
            .compute(part)?
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, base + i as u64))
            .collect())
    }
}

/// Pass-through node carrying per-partition working-set hints for the
/// scheduler's memory reservations (see [`super::Rdd::mem_hints`]).
pub(crate) struct MemHintRdd<T> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub hints: Arc<Vec<u64>>,
}

impl<T: Data> AnyRdd for MemHintRdd<T> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "mem_hint"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }

    fn mem_hint(&self, part: usize) -> u64 {
        self.hints.get(part).copied().unwrap_or(0)
    }
}

impl<T: Data> RddNode for MemHintRdd<T> {
    type Item = T;

    fn compute(&self, part: usize) -> Result<Vec<T>, crate::task::TaskError> {
        self.prev.compute(part)
    }
}

/// Byte codec for a cached `Vec<T>` partition, built from the element
/// type's [`Spillable`] impl.
pub(crate) struct VecSpillCodec<T> {
    _pd: PhantomData<fn() -> T>,
}

impl<T> VecSpillCodec<T> {
    pub(crate) fn new() -> Self {
        VecSpillCodec { _pd: PhantomData }
    }
}

impl<T: Data + Spillable> SpillCodec for VecSpillCodec<T> {
    fn encode(&self, data: &CachedPartition) -> Option<Vec<u8>> {
        data.downcast_ref::<Vec<T>>().map(crate::spill::encode)
    }

    fn decode(&self, bytes: &[u8]) -> Option<CachedPartition> {
        crate::spill::decode::<Vec<T>>(bytes).map(|v| Arc::new(v) as CachedPartition)
    }
}

/// Caching node: first computation stores the partition in the memory
/// store tagged with the computing executor; later computations reuse it.
/// With a codec the entry can spill to disk under memory pressure;
/// without one it is evicted and recomputed from lineage.
pub(crate) struct CachedRdd<T> {
    pub id: usize,
    pub prev: Arc<dyn RddNode<Item = T>>,
    pub cache: Arc<CacheManager>,
    pub codec: Option<Arc<dyn SpillCodec>>,
}

impl<T: Data> AnyRdd for CachedRdd<T> {
    fn rdd_id(&self) -> usize {
        self.id
    }

    fn op_name(&self) -> &'static str {
        "cached"
    }

    fn num_partitions(&self) -> usize {
        self.prev.num_partitions()
    }

    fn parents(&self) -> Vec<Parent> {
        vec![Parent::Narrow(self.prev.clone())]
    }
}

impl<T: Data> RddNode for CachedRdd<T> {
    type Item = T;

    fn compute(&self, part: usize) -> Result<Vec<T>, crate::task::TaskError> {
        if let Some(hit) = self.cache.get(self.id, part)? {
            let data = hit.downcast_ref::<Vec<T>>().expect("cached partition type");
            return Ok(data.clone());
        }
        let data = self.prev.compute(part)?;
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        // a refused put (budget full, nothing evictable) just means the
        // partition stays uncached; later uses recompute from lineage
        let _ = self.cache.put(
            self.id,
            part,
            current_executor(),
            Arc::new(data.clone()),
            bytes,
            self.codec.clone(),
        );
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parallel(data: Vec<i64>, parts: usize) -> Arc<ParallelRdd<i64>> {
        Arc::new(ParallelRdd { id: 0, data: Arc::new(data), num_partitions: parts })
    }

    #[test]
    fn parallel_slices_are_balanced_and_complete() {
        let r = parallel((0..10).collect(), 3);
        let all: Vec<i64> = (0..3).flat_map(|p| r.compute(p).unwrap()).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // sizes are 3,3,4 (or similar balanced split)
        let sizes: Vec<usize> = (0..3).map(|p| r.compute(p).unwrap().len()).collect();
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn parallel_more_partitions_than_elements() {
        let r = parallel(vec![1, 2], 5);
        let total: usize = (0..5).map(|p| r.compute(p).unwrap().len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn range_partitions_cover_range() {
        let r = RangeRdd { id: 0, start: 10, end: 30, num_partitions: 4 };
        let all: Vec<u64> = (0..4).flat_map(|p| r.compute(p).unwrap()).collect();
        assert_eq!(all, (10..30).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range() {
        let r = RangeRdd { id: 0, start: 5, end: 5, num_partitions: 2 };
        assert!(r.compute(0).unwrap().is_empty());
        assert!(r.compute(1).unwrap().is_empty());
    }

    #[test]
    fn map_and_filter_compose() {
        let base = parallel((0..8).collect(), 2);
        let mapped = Arc::new(MapRdd { id: 1, prev: base, f: Arc::new(|x: i64| x * 2) });
        let filtered = FilterRdd { id: 2, prev: mapped, f: Arc::new(|x: &i64| *x % 4 == 0) };
        assert_eq!(filtered.compute(0).unwrap(), vec![0, 4]);
        assert_eq!(filtered.compute(1).unwrap(), vec![8, 12]);
    }

    #[test]
    fn union_routes_partitions() {
        let a = parallel(vec![1, 2], 1);
        let b = parallel(vec![3, 4], 2);
        let u = UnionRdd { id: 3, first: a, second: b };
        assert_eq!(u.num_partitions(), 3);
        assert_eq!(u.compute(0).unwrap(), vec![1, 2]);
        assert_eq!(u.compute(1).unwrap(), vec![3]);
        assert_eq!(u.compute(2).unwrap(), vec![4]);
    }

    #[test]
    fn cached_rdd_computes_once() {
        let cache = Arc::new(CacheManager::new(crate::storage::CacheConfig::unbounded()));
        let base = parallel(vec![5, 6, 7], 1);
        let c = CachedRdd { id: 9, prev: base, cache: Arc::clone(&cache), codec: None };
        assert_eq!(c.compute(0).unwrap(), vec![5, 6, 7]);
        assert_eq!(cache.len(), 1);
        assert_eq!(c.compute(0).unwrap(), vec![5, 6, 7]);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn mem_hint_rdd_is_pass_through_with_hints() {
        let base = parallel((0..6).collect(), 3);
        let h = MemHintRdd { id: 1, prev: base, hints: Arc::new(vec![64, 128]) };
        assert_eq!(h.compute(0).unwrap(), vec![0, 1]);
        assert_eq!(h.mem_hint(0), 64);
        assert_eq!(h.mem_hint(1), 128);
        // partitions past the hint vector reserve nothing
        assert_eq!(h.mem_hint(2), 0);
    }

    #[test]
    fn zip_with_index_uses_offsets() {
        let base = parallel(vec![10, 20, 30, 40], 2);
        let z = ZipWithIndexRdd { id: 4, prev: base, offsets: Arc::new(vec![0, 2]) };
        assert_eq!(z.compute(1).unwrap(), vec![(30, 2), (40, 3)]);
    }
}
