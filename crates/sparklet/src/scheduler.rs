//! The DAG + task scheduler.
//!
//! A job (one action) is executed as: (1) walk the lineage graph and
//! materialize every missing shuffle output, oldest first — each such
//! group of map tasks is a **shuffle-map stage**; (2) run the **result
//! stage** over the action's RDD. Failed attempts are retried up to the
//! configured budget; accumulator updates of an attempt are merged only
//! when it succeeds.
//!
//! ## Fault recovery
//!
//! Three recovery paths beyond plain in-place retry:
//!
//! * **Fetch failures → lineage recomputation.** When a task fails with
//!   [`TaskErrorKind::FetchFailed`], some parent map outputs are lost.
//!   The stage parks the task and keeps draining in-flight replies; once
//!   *nothing* is in flight (a barrier — this makes the recovery round
//!   structure, and hence the trace, independent of reply arrival
//!   order), it recomputes **only the missing map partitions** as a
//!   nested shuffle-map stage from lineage, then resubmits the parked
//!   tasks at the next attempt number. Rounds are bounded by
//!   `max_stage_retries` with an exponential virtual-time backoff
//!   recorded as [`EventKind::StageRetry`].
//! * **Executor kills → in-flight requeue.** A [`FaultPlan`] kill fires
//!   after the N-th completion of its stage: the executor's cache and
//!   map outputs are dropped and its in-flight attempts are resubmitted
//!   at a bumped attempt number. Replies from superseded attempts are
//!   recognized by their stale attempt number and discarded — including
//!   their accumulator updates, preserving merge-once semantics.
//! * **Storage failures → typed surfacing.** A task that exhausts its
//!   retry budget with [`TaskErrorKind::Storage`] (e.g. every DFS
//!   replica of a block lost) fails the job with
//!   [`SparkError::Storage`] rather than a generic task failure.
//!
//! [`TaskErrorKind::FetchFailed`]: crate::task::TaskErrorKind::FetchFailed
//! [`TaskErrorKind::Storage`]: crate::task::TaskErrorKind::Storage
//! [`FaultPlan`]: crate::FaultPlan

use crate::config::SpeculationConfig;
use crate::context::Context;
use crate::error::{SparkError, SparkResult};
use crate::executor::Envelope;
use crate::fault::{decision_hash, SPECULATE_SALT};
use crate::memory::Grant;
use crate::metrics::{straggler_extra, JobMetrics, StageKind, StageMetrics, TaskMetrics};
use crate::rdd::{AnyRdd, Parent, RddNode, ShuffleDepObj};
use crate::schedule::DecisionPoint;
use crate::task::{AttemptResult, TaskErrorKind, TaskOutput, TaskSpec};
use crate::trace::EventKind;
use crate::Data;
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base of the exponential virtual-time backoff between stage-retry
/// rounds: round `r` waits `BASE << (r - 1)` driver ticks.
pub(crate) const STAGE_RETRY_BACKOFF_TICKS: u64 = 4;

/// Run one action over `node`, applying `func` to each materialized
/// partition on the executors, and return the per-partition results in
/// partition order.
pub(crate) fn run_job<T: Data, R: Send + 'static>(
    ctx: &Context,
    node: Arc<dyn RddNode<Item = T>>,
    func: Arc<dyn Fn(usize, Vec<T>) -> R + Send + Sync>,
) -> SparkResult<Vec<R>> {
    let job_start = Instant::now();
    let job_id = ctx.inner.next_job_id();
    ctx.inner.tracer.record_driver(EventKind::JobSubmit { job: job_id });
    let records_before = ctx.inner.shuffles.total_records();
    let bytes_before = ctx.inner.shuffles.total_bytes();

    let as_any: Arc<dyn AnyRdd> = node.clone();
    let mut ordered: Vec<Arc<dyn ShuffleDepObj>> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    collect_deps(&as_any, &mut ordered, &mut seen);
    // every shuffle reachable from the action, for lineage recomputation
    let deps: HashMap<usize, Arc<dyn ShuffleDepObj>> =
        ordered.iter().map(|d| (d.shuffle_id(), Arc::clone(d))).collect();

    let mut stage_metrics = Vec::new();
    ensure_shuffles(ctx, &ordered, &deps, &mut stage_metrics)?;

    let stage_id = ctx.inner.next_stage_id();
    let executors = ctx.inner.config.num_executors;
    let tasks: Vec<TaskSpec> = (0..node.num_partitions())
        .map(|p| {
            let node = node.clone();
            let func = func.clone();
            TaskSpec {
                stage_id,
                partition: p,
                executor: p % executors,
                mem_hint: node.mem_hint(p),
                work: Arc::new(move || {
                    node.compute(p).map(|data| TaskOutput::Boxed(Box::new(func(p, data))))
                }),
            }
        })
        .collect();
    let mut outputs =
        run_stage(ctx, stage_id, StageKind::Result, tasks, &deps, &mut stage_metrics)?;

    let mut results = Vec::with_capacity(node.num_partitions());
    for p in 0..node.num_partitions() {
        match outputs.remove(&p) {
            Some(TaskOutput::Boxed(b)) => {
                results.push(*b.downcast::<R>().expect("result stage output type"))
            }
            _ => unreachable!("result stage produced no output for partition {p}"),
        }
    }

    let job = JobMetrics {
        job_id,
        stages: stage_metrics,
        wall: job_start.elapsed(),
        shuffle_records: ctx.inner.shuffles.total_records() - records_before,
        shuffle_bytes: ctx.inner.shuffles.total_bytes() - bytes_before,
        memory: ctx.inner.memory.stats(),
    };
    ctx.inner.tracer.record_driver(EventKind::JobEnd { job: job_id, stages: job.stages.len() });
    ctx.inner.record_job(job);
    Ok(results)
}

/// Run map stages for any missing outputs of the job's shuffle
/// dependencies, in dependency order (parents before children). Loops
/// per dependency because an executor kill *during* a map stage can
/// drop outputs of tasks that already completed in that very stage.
fn ensure_shuffles(
    ctx: &Context,
    ordered: &[Arc<dyn ShuffleDepObj>],
    deps: &HashMap<usize, Arc<dyn ShuffleDepObj>>,
    out: &mut Vec<StageMetrics>,
) -> SparkResult<()> {
    for dep in ordered {
        ctx.inner.shuffles.register(dep.shuffle_id(), dep.num_maps(), dep.num_reduces());
        let mut rounds = 0usize;
        let mut last_stage = 0usize;
        loop {
            let missing = ctx.inner.shuffles.missing_maps(dep.shuffle_id());
            if missing.is_empty() {
                break;
            }
            if rounds > ctx.inner.config.max_stage_retries {
                return Err(SparkError::FetchFailed {
                    stage: last_stage,
                    shuffle: dep.shuffle_id(),
                    retries: rounds,
                });
            }
            rounds += 1;
            last_stage = run_map_stage(ctx, dep, missing, deps, out)?;
        }
    }
    Ok(())
}

/// Run one shuffle-map stage computing `parts` of `dep`, returning its
/// stage id.
fn run_map_stage(
    ctx: &Context,
    dep: &Arc<dyn ShuffleDepObj>,
    parts: Vec<usize>,
    deps: &HashMap<usize, Arc<dyn ShuffleDepObj>>,
    out: &mut Vec<StageMetrics>,
) -> SparkResult<usize> {
    let stage_id = ctx.inner.next_stage_id();
    let executors = ctx.inner.config.num_executors;
    let tasks: Vec<TaskSpec> = parts
        .into_iter()
        .map(|p| TaskSpec {
            stage_id,
            partition: p,
            executor: p % executors,
            // map-task working memory is the shuffle buffer it writes,
            // which is storage-charged on registration instead
            mem_hint: 0,
            work: dep.make_map_task(p, p % executors),
        })
        .collect();
    run_stage(ctx, stage_id, StageKind::ShuffleMap, tasks, deps, out)?;
    Ok(stage_id)
}

fn collect_deps(
    node: &Arc<dyn AnyRdd>,
    ordered: &mut Vec<Arc<dyn ShuffleDepObj>>,
    seen: &mut HashSet<usize>,
) {
    for parent in node.parents() {
        match parent {
            Parent::Narrow(n) => collect_deps(&n, ordered, seen),
            Parent::Shuffle(dep) => {
                if seen.insert(dep.shuffle_id()) {
                    // ancestors of the shuffle's map side come first
                    collect_deps(&dep.parent_node(), ordered, seen);
                    ordered.push(dep);
                }
            }
        }
    }
}

/// A reduce task parked on a fetch failure, waiting for the recovery
/// barrier.
struct ParkedFetch {
    partition: usize,
    /// The attempt that observed the failure (resubmitted at + 1).
    attempt: usize,
    shuffle: usize,
}

/// Submit a task attempt, reserving its declared working-set bytes on
/// the executor's memory lane first. A reservation the budget cannot
/// grant *right now* queues the attempt (backpressure); a reservation
/// larger than the whole budget is a typed error. `force` is the
/// scheduler's progress guarantee — an idle lane always runs one task —
/// and overrides crowding but never the too-large rule.
#[allow(clippy::too_many_arguments)]
fn submit_reserved(
    ctx: &Context,
    spec: TaskSpec,
    attempt: usize,
    ordinal: usize,
    force: bool,
    tx: &Sender<AttemptResult>,
    pending: &mut VecDeque<(TaskSpec, usize, usize)>,
    in_flight: &mut usize,
) -> SparkResult<()> {
    match ctx.inner.memory.reserve_task(spec.executor, spec.mem_hint, force) {
        Grant::TooLarge => Err(SparkError::OutOfMemory {
            executor: spec.executor,
            requested: spec.mem_hint,
            budget: ctx.inner.memory.budget().bytes(),
        }),
        Grant::Deferred => {
            pending.push_back((spec, attempt, ordinal));
            Ok(())
        }
        Grant::Granted => {
            ctx.inner.pool.submit(Envelope { spec, attempt, ordinal, reply: tx.clone() });
            *in_flight += 1;
            Ok(())
        }
    }
}

/// Submit the accepted (ordinal-0) attempt for a partition, and — when
/// speculation is enabled under an exploring policy — possibly race a
/// clone against it right away.
///
/// Exploring policies serialize the stage behind a reply barrier, so
/// wall-clock straggler detection never gets a chance to observe a
/// "slow" attempt there. Instead the fuzzer's speculation races are
/// seeded eagerly and deterministically: a hash keyed by
/// [`SPECULATE_SALT`] clones roughly a quarter of submissions, and the
/// policy then drives which twin commits first via
/// [`DecisionPoint::SpeculativeCommit`]. Production (non-exploring)
/// runs never clone here; they detect stragglers by elapsed time in the
/// receive loop.
#[allow(clippy::too_many_arguments)]
fn submit_speculated(
    ctx: &Context,
    spec: TaskSpec,
    attempt: usize,
    spec_cfg: SpeculationConfig,
    explore: bool,
    cloned: &mut HashSet<(usize, usize)>,
    submitted_at: &mut HashMap<usize, Instant>,
    tx: &Sender<AttemptResult>,
    pending: &mut VecDeque<(TaskSpec, usize, usize)>,
    in_flight: &mut usize,
) -> SparkResult<()> {
    let (stage, partition) = (spec.stage_id, spec.partition);
    submitted_at.insert(partition, Instant::now());
    submit_reserved(ctx, spec.clone(), attempt, 0, false, tx, pending, in_flight)?;
    if spec_cfg.enabled
        && explore
        && decision_hash(
            ctx.inner.config.seed,
            SPECULATE_SALT,
            stage as u64,
            partition as u64,
            attempt as u64,
        )
        .is_multiple_of(4)
        && cloned.insert((partition, attempt))
    {
        ctx.inner.tracer.record_driver(EventKind::SpeculativeLaunch { stage, partition, attempt });
        submit_reserved(ctx, spec, attempt, 1, false, tx, pending, in_flight)?;
    }
    Ok(())
}

/// Re-try queued submissions after a release may have made room,
/// preserving queue order for the ones that still do not fit. Uses the
/// quiet charge path so repeated polling does not inflate backpressure
/// counters or the trace.
fn drain_pending(
    ctx: &Context,
    tx: &Sender<AttemptResult>,
    pending: &mut VecDeque<(TaskSpec, usize, usize)>,
    in_flight: &mut usize,
) {
    let policy = &ctx.inner.config.schedule;
    if policy.reorders() && pending.len() > 1 {
        // schedule exploration: the policy picks the drain order by
        // repeatedly choosing the next candidate (the final pick has
        // arity 1 and is free)
        let mut rest: Vec<(TaskSpec, usize, usize)> = std::mem::take(pending).into_iter().collect();
        while !rest.is_empty() {
            let k = policy.choose(DecisionPoint::Drain, rest.len());
            pending.push_back(rest.remove(k));
        }
    }
    let mut still_blocked = VecDeque::with_capacity(pending.len());
    while let Some((spec, attempt, ordinal)) = pending.pop_front() {
        if ctx.inner.memory.reserve_task_quiet(spec.executor, spec.mem_hint) {
            ctx.inner.pool.submit(Envelope { spec, attempt, ordinal, reply: tx.clone() });
            *in_flight += 1;
        } else {
            still_blocked.push_back((spec, attempt, ordinal));
        }
    }
    *pending = still_blocked;
}

/// Run a set of tasks as one stage, with retries and fault recovery,
/// returning the outputs keyed by partition. Pushes this stage's
/// metrics — after any nested recomputation stages' — onto
/// `metrics_out`.
fn run_stage(
    ctx: &Context,
    stage_id: usize,
    kind: StageKind,
    tasks: Vec<TaskSpec>,
    deps: &HashMap<usize, Arc<dyn ShuffleDepObj>>,
    metrics_out: &mut Vec<StageMetrics>,
) -> SparkResult<HashMap<usize, TaskOutput>> {
    let start = Instant::now();
    let total = tasks.len();
    ctx.inner.tracer.record_driver(EventKind::StageStart { stage: stage_id, kind, tasks: total });
    let specs: HashMap<usize, TaskSpec> = tasks.iter().map(|t| (t.partition, t.clone())).collect();
    let (tx, rx) = unbounded();

    let finish_err = |failed_attempts: usize, err: SparkError| -> SparkError {
        ctx.inner.tracer.record_driver(EventKind::StageEnd { stage: stage_id, failed_attempts });
        err
    };

    let cfg = &ctx.inner.config;
    let policy = Arc::clone(&cfg.schedule);
    let explore = policy.reorders();
    let spec_cfg = ctx.speculation();
    let speculating = spec_cfg.enabled;

    // the attempt number currently accepted per partition; replies with
    // any other attempt are stale (superseded by a requeue) and dropped
    let mut expected: HashMap<usize, usize> = HashMap::with_capacity(total);
    let mut in_flight = 0usize;
    // submissions deferred by memory backpressure, in submission order
    let mut pending: VecDeque<(TaskSpec, usize, usize)> = VecDeque::new();
    // (partition, attempt) pairs that have a speculative clone — at most
    // one clone per accepted attempt; doubles as the stale-filter clue
    // that a duplicate reply is a raced twin, not a requeue leftover
    let mut cloned: HashSet<(usize, usize)> = HashSet::new();
    // when the accepted attempt of each partition was handed to the
    // pool; drives wall-clock straggler detection in production mode
    let mut submitted_at: HashMap<usize, Instant> = HashMap::with_capacity(total);
    for spec in tasks {
        expected.insert(spec.partition, 0);
        submit_speculated(
            ctx,
            spec,
            0,
            spec_cfg,
            explore,
            &mut cloned,
            &mut submitted_at,
            &tx,
            &mut pending,
            &mut in_flight,
        )
        .map_err(|e| finish_err(0, e))?;
    }
    let kills: Vec<crate::fault::ExecutorKillAt> = cfg
        .fault
        .executor_kills
        .iter()
        .filter(|k| k.stage == stage_id)
        .copied()
        .map(|mut k| {
            if explore {
                // virtual-time kill placement: choice `c > 0` fires the
                // kill after the c-th completion instead of the plan's
                let c = policy.choose(DecisionPoint::Kill, total + 1);
                if c != 0 {
                    k.after_tasks = c;
                }
            }
            k
        })
        .collect();
    let mut kills_fired = vec![false; kills.len()];

    let mut outputs: HashMap<usize, TaskOutput> = HashMap::with_capacity(total);
    // replies received but not yet processed (exploring policies only);
    // `in_flight` keeps counting them until they are processed, so the
    // recovery-barrier conditions below are unchanged
    let mut reply_buf: Vec<AttemptResult> = Vec::new();
    let mut task_metrics = Vec::with_capacity(total);
    let mut parked: Vec<ParkedFetch> = Vec::new();
    let mut failed_attempts = 0usize;
    let mut stage_retries = 0usize;
    let mut completions = 0usize;
    let mut done = 0usize;

    while done < total {
        // recovery barrier: only recompute once every in-flight reply
        // has drained, so the recomputation round's shape does not
        // depend on which replies happened to arrive first
        if in_flight == 0 && parked.is_empty() {
            // every remaining task is blocked on memory: force the head
            // of the queue through (the progress guarantee — an idle
            // lane always runs one task, even over budget)
            debug_assert!(!pending.is_empty(), "stage stalled with nothing in flight");
            let (spec, attempt, ordinal) =
                pending.pop_front().expect("pending non-empty when stage is stalled");
            submit_reserved(ctx, spec, attempt, ordinal, true, &tx, &mut pending, &mut in_flight)
                .map_err(|e| finish_err(failed_attempts, e))?;
            drain_pending(ctx, &tx, &mut pending, &mut in_flight);
            continue;
        }
        if in_flight == 0 {
            stage_retries += 1;
            if stage_retries > cfg.max_stage_retries {
                let shuffle = parked.first().map(|p| p.shuffle).unwrap_or(0);
                return Err(finish_err(
                    failed_attempts,
                    SparkError::FetchFailed { stage: stage_id, shuffle, retries: stage_retries },
                ));
            }
            let backoff = STAGE_RETRY_BACKOFF_TICKS << (stage_retries - 1);
            let mut shuffles_hit: Vec<usize> = parked.iter().map(|p| p.shuffle).collect();
            shuffles_hit.sort_unstable();
            shuffles_hit.dedup();
            for shuffle in shuffles_hit {
                ctx.inner.tracer.record_driver(EventKind::StageRetry {
                    stage: stage_id,
                    shuffle,
                    retry: stage_retries,
                    backoff_ticks: backoff,
                });
                let Some(dep) = deps.get(&shuffle) else {
                    let msg = format!("no lineage for shuffle {shuffle}");
                    return Err(finish_err(
                        failed_attempts,
                        SparkError::TaskFailed {
                            stage: stage_id,
                            partition: parked[0].partition,
                            attempts: parked[0].attempt + 1,
                            message: msg,
                        },
                    ));
                };
                let missing = ctx.inner.shuffles.missing_maps(shuffle);
                if !missing.is_empty() {
                    run_map_stage(ctx, dep, missing, deps, metrics_out).inspect_err(|_| {
                        ctx.inner.tracer.record_driver(EventKind::StageEnd {
                            stage: stage_id,
                            failed_attempts,
                        });
                    })?;
                }
            }
            for p in parked.drain(..) {
                if outputs.contains_key(&p.partition) {
                    // a speculative twin committed this partition while
                    // its original sat parked on the fetch failure; the
                    // failure is moot, nothing to resubmit
                    continue;
                }
                let next = p.attempt + 1;
                expected.insert(p.partition, next);
                let spec = specs.get(&p.partition).expect("parked partition was submitted").clone();
                submit_speculated(
                    ctx,
                    spec,
                    next,
                    spec_cfg,
                    explore,
                    &mut cloned,
                    &mut submitted_at,
                    &tx,
                    &mut pending,
                    &mut in_flight,
                )
                .map_err(|e| finish_err(failed_attempts, e))?;
            }
            continue;
        }

        let r = if explore {
            // collect every outstanding reply, then let the policy pick
            // from a canonically-ordered buffer: driver-observed
            // completion order becomes a pure function of the decision
            // sequence, independent of thread timing
            while reply_buf.len() < in_flight {
                reply_buf.push(rx.recv().expect("executor pool alive while context exists"));
            }
            reply_buf.sort_by_key(|r| (r.partition, r.attempt, r.ordinal));
            let k = policy.choose(DecisionPoint::Reply, reply_buf.len());
            let r = reply_buf.remove(k);
            if speculating
                && r.outcome.is_ok()
                && expected.get(&r.partition) == Some(&r.attempt)
                && !outputs.contains_key(&r.partition)
                && reply_buf.iter().any(|o| o.partition == r.partition && o.attempt == r.attempt)
                && policy.choose(DecisionPoint::SpeculativeCommit, 2) == 1
            {
                // both racers' replies are buffered and this one would
                // commit: the policy may defer it so its twin wins
                // instead. `in_flight` is untouched, so the fill loop
                // above is already satisfied on re-entry; positions
                // advance every iteration, so this terminates.
                reply_buf.push(r);
                continue;
            }
            r
        } else if speculating {
            // production straggler detection: poll the reply channel,
            // and while it stays quiet look for accepted attempts that
            // have overrun the stage's median completed busy time by
            // the configured multiple; race one clone against each
            loop {
                match rx.recv_timeout(Duration::from_millis(1)) {
                    Ok(r) => break r,
                    Err(RecvTimeoutError::Disconnected) => {
                        panic!("executor pool alive while context exists")
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if completions < spec_cfg.min_completions.max(1)
                            || completions * 100 < spec_cfg.quantile_pct as usize * total
                        {
                            continue;
                        }
                        let mut busys: Vec<Duration> =
                            task_metrics.iter().map(|t: &TaskMetrics| t.busy).collect();
                        busys.sort_unstable();
                        let median = busys[busys.len() / 2];
                        // floor the threshold so microsecond-scale
                        // medians do not clone every task on the first
                        // quiet poll
                        let threshold =
                            median.mul_f64(spec_cfg.multiplier()).max(Duration::from_millis(1));
                        let mut overdue: Vec<usize> = expected
                            .iter()
                            .filter(|(p, &a)| {
                                !outputs.contains_key(*p)
                                    && !parked.iter().any(|f| f.partition == **p)
                                    && !pending.iter().any(|(s, _, _)| s.partition == **p)
                                    && !cloned.contains(&(**p, a))
                                    && submitted_at.get(*p).is_some_and(|t| t.elapsed() > threshold)
                            })
                            .map(|(p, _)| *p)
                            .collect();
                        overdue.sort_unstable();
                        for p in overdue {
                            let attempt = expected[&p];
                            cloned.insert((p, attempt));
                            ctx.inner.tracer.record_driver(EventKind::SpeculativeLaunch {
                                stage: stage_id,
                                partition: p,
                                attempt,
                            });
                            let spec =
                                specs.get(&p).expect("overdue partition was submitted").clone();
                            submit_reserved(
                                ctx,
                                spec,
                                attempt,
                                1,
                                false,
                                &tx,
                                &mut pending,
                                &mut in_flight,
                            )
                            .map_err(|e| finish_err(failed_attempts, e))?;
                        }
                    }
                }
            }
        } else {
            rx.recv().expect("executor pool alive while context exists")
        };
        in_flight -= 1;
        // the finished attempt released its reservation before replying;
        // queued submissions may fit now
        drain_pending(ctx, &tx, &mut pending, &mut in_flight);
        if expected.get(&r.partition) != Some(&r.attempt) {
            // superseded by a requeue after an executor kill: drop the
            // reply *and* its accumulator updates (merge-once)
            if r.ordinal > 0 {
                ctx.inner.tracer.record_driver(EventKind::SpeculativeLoss {
                    stage: stage_id,
                    partition: r.partition,
                    attempt: r.attempt,
                    ordinal: r.ordinal,
                });
            }
            continue;
        }
        if outputs.contains_key(&r.partition) {
            // first-commit-wins: the partition already committed at this
            // very attempt, so this reply is the losing side of a
            // speculation race — drop it and its accumulator updates
            // (merge-once), whichever ordinal lost
            ctx.inner.tracer.record_driver(EventKind::SpeculativeLoss {
                stage: stage_id,
                partition: r.partition,
                attempt: r.attempt,
                ordinal: r.ordinal,
            });
            continue;
        }
        match r.outcome {
            Ok(output) => {
                if cloned.contains(&(r.partition, r.attempt)) {
                    // this commit wins a speculation race; its twin's
                    // reply (or pending submission) is now a loser
                    ctx.inner.tracer.record_driver(EventKind::SpeculativeWin {
                        stage: stage_id,
                        partition: r.partition,
                        attempt: r.attempt,
                        ordinal: r.ordinal,
                    });
                }
                ctx.inner.accums.apply_all(r.accum_updates);
                let extra = straggler_extra(cfg.straggler, cfg.seed, stage_id, r.partition, r.busy);
                task_metrics.push(TaskMetrics {
                    partition: r.partition,
                    executor: r.executor,
                    attempt: r.attempt,
                    busy: r.busy,
                    straggler_extra: extra,
                    records_out: 0,
                });
                outputs.insert(r.partition, output);
                done += 1;
                completions += 1;
                for (i, k) in kills.iter().enumerate() {
                    if kills_fired[i] || completions < k.after_tasks {
                        continue;
                    }
                    kills_fired[i] = true;
                    ctx.kill_executor(k.executor);
                    // requeue the victim's in-flight attempts (parked
                    // tasks are not in flight; the recovery barrier
                    // resubmits those)
                    let mut victims: Vec<usize> = expected
                        .keys()
                        .copied()
                        .filter(|p| {
                            !outputs.contains_key(p)
                                && !parked.iter().any(|f| f.partition == *p)
                                && !pending.iter().any(|(s, _, _)| s.partition == *p)
                                && specs.get(p).is_some_and(|s| s.executor == k.executor)
                        })
                        .collect();
                    victims.sort_unstable();
                    for p in victims {
                        let next = expected[&p] + 1;
                        expected.insert(p, next);
                        let spec = specs.get(&p).expect("victim partition was submitted").clone();
                        submit_speculated(
                            ctx,
                            spec,
                            next,
                            spec_cfg,
                            explore,
                            &mut cloned,
                            &mut submitted_at,
                            &tx,
                            &mut pending,
                            &mut in_flight,
                        )
                        .map_err(|e| finish_err(failed_attempts, e))?;
                    }
                }
            }
            Err(err) => {
                if r.ordinal > 0 {
                    // a clone failed while its original is still in
                    // flight: drop it without touching the retry ladder
                    // — the original's outcome stays authoritative, so
                    // retry counts match the speculation-free run
                    ctx.inner.tracer.record_driver(EventKind::SpeculativeLoss {
                        stage: stage_id,
                        partition: r.partition,
                        attempt: r.attempt,
                        ordinal: r.ordinal,
                    });
                    continue;
                }
                failed_attempts += 1;
                match err.kind {
                    TaskErrorKind::FetchFailed { shuffle } if deps.contains_key(&shuffle) => {
                        // park until the recovery barrier; the attempt
                        // number is bumped on resubmission
                        parked.push(ParkedFetch {
                            partition: r.partition,
                            attempt: r.attempt,
                            shuffle,
                        });
                    }
                    _ => {
                        let next = r.attempt + 1;
                        if next >= cfg.max_task_attempts {
                            let err = match err.kind {
                                TaskErrorKind::Storage => SparkError::Storage(format!(
                                    "stage {stage_id} partition {} failed after {next} attempts: {}",
                                    r.partition, err.message
                                )),
                                _ => SparkError::TaskFailed {
                                    stage: stage_id,
                                    partition: r.partition,
                                    attempts: next,
                                    message: err.message,
                                },
                            };
                            return Err(finish_err(failed_attempts, err));
                        }
                        expected.insert(r.partition, next);
                        let spec = specs
                            .get(&r.partition)
                            .expect("result for a submitted partition")
                            .clone();
                        submit_speculated(
                            ctx,
                            spec,
                            next,
                            spec_cfg,
                            explore,
                            &mut cloned,
                            &mut submitted_at,
                            &tx,
                            &mut pending,
                            &mut in_flight,
                        )
                        .map_err(|e| finish_err(failed_attempts, e))?;
                    }
                }
            }
        }
    }
    task_metrics.sort_by_key(|t| t.partition);
    ctx.inner.tracer.record_driver(EventKind::StageEnd { stage: stage_id, failed_attempts });
    metrics_out.push(StageMetrics {
        stage_id,
        kind,
        wall: start.elapsed(),
        tasks: task_metrics,
        failed_attempts,
    });
    Ok(outputs)
}
