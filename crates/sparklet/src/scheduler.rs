//! The DAG + task scheduler.
//!
//! A job (one action) is executed as: (1) walk the lineage graph and
//! materialize every missing shuffle output, oldest first — each such
//! group of map tasks is a **shuffle-map stage**; (2) run the **result
//! stage** over the action's RDD. Failed attempts are retried up to the
//! configured budget; accumulator updates of an attempt are merged only
//! when it succeeds.

use crate::context::Context;
use crate::error::{SparkError, SparkResult};
use crate::executor::Envelope;
use crate::metrics::{straggler_extra, JobMetrics, StageKind, StageMetrics, TaskMetrics};
use crate::rdd::{AnyRdd, Parent, RddNode, ShuffleDepObj};
use crate::task::{TaskOutput, TaskSpec};
use crate::trace::EventKind;
use crate::Data;
use crossbeam::channel::unbounded;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// Run one action over `node`, applying `func` to each materialized
/// partition on the executors, and return the per-partition results in
/// partition order.
pub(crate) fn run_job<T: Data, R: Send + 'static>(
    ctx: &Context,
    node: Arc<dyn RddNode<Item = T>>,
    func: Arc<dyn Fn(usize, Vec<T>) -> R + Send + Sync>,
) -> SparkResult<Vec<R>> {
    let job_start = Instant::now();
    let job_id = ctx.inner.next_job_id();
    ctx.inner.tracer.record_driver(EventKind::JobSubmit { job: job_id });
    let records_before = ctx.inner.shuffles.total_records();
    let bytes_before = ctx.inner.shuffles.total_bytes();

    let mut stage_metrics = Vec::new();
    let as_any: Arc<dyn AnyRdd> = node.clone();
    ensure_shuffles(ctx, &as_any, &mut stage_metrics)?;

    let stage_id = ctx.inner.next_stage_id();
    let executors = ctx.inner.config.num_executors;
    let tasks: Vec<TaskSpec> = (0..node.num_partitions())
        .map(|p| {
            let node = node.clone();
            let func = func.clone();
            TaskSpec {
                stage_id,
                partition: p,
                executor: p % executors,
                work: Arc::new(move || {
                    node.compute(p).map(|data| TaskOutput::Boxed(Box::new(func(p, data))))
                }),
            }
        })
        .collect();
    let (mut outputs, sm) = run_stage(ctx, stage_id, StageKind::Result, tasks)?;
    stage_metrics.push(sm);

    let mut results = Vec::with_capacity(node.num_partitions());
    for p in 0..node.num_partitions() {
        match outputs.remove(&p) {
            Some(TaskOutput::Boxed(b)) => {
                results.push(*b.downcast::<R>().expect("result stage output type"))
            }
            _ => unreachable!("result stage produced no output for partition {p}"),
        }
    }

    let job = JobMetrics {
        job_id,
        stages: stage_metrics,
        wall: job_start.elapsed(),
        shuffle_records: ctx.inner.shuffles.total_records() - records_before,
        shuffle_bytes: ctx.inner.shuffles.total_bytes() - bytes_before,
    };
    ctx.inner.tracer.record_driver(EventKind::JobEnd { job: job_id, stages: job.stages.len() });
    ctx.inner.record_job(job);
    Ok(results)
}

/// Collect the job's shuffle dependencies in dependency order (parents
/// before children) and run map stages for any missing outputs.
fn ensure_shuffles(
    ctx: &Context,
    node: &Arc<dyn AnyRdd>,
    out: &mut Vec<StageMetrics>,
) -> SparkResult<()> {
    let mut ordered: Vec<Arc<dyn ShuffleDepObj>> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    collect_deps(node, &mut ordered, &mut seen);

    for dep in ordered {
        ctx.inner.shuffles.register(dep.shuffle_id(), dep.num_maps(), dep.num_reduces());
        let missing = ctx.inner.shuffles.missing_maps(dep.shuffle_id());
        if missing.is_empty() {
            continue;
        }
        let stage_id = ctx.inner.next_stage_id();
        let executors = ctx.inner.config.num_executors;
        let tasks: Vec<TaskSpec> = missing
            .into_iter()
            .map(|p| TaskSpec {
                stage_id,
                partition: p,
                executor: p % executors,
                work: dep.make_map_task(p, p % executors),
            })
            .collect();
        let (_, sm) = run_stage(ctx, stage_id, StageKind::ShuffleMap, tasks)?;
        out.push(sm);
    }
    Ok(())
}

fn collect_deps(
    node: &Arc<dyn AnyRdd>,
    ordered: &mut Vec<Arc<dyn ShuffleDepObj>>,
    seen: &mut HashSet<usize>,
) {
    for parent in node.parents() {
        match parent {
            Parent::Narrow(n) => collect_deps(&n, ordered, seen),
            Parent::Shuffle(dep) => {
                if seen.insert(dep.shuffle_id()) {
                    // ancestors of the shuffle's map side come first
                    collect_deps(&dep.parent_node(), ordered, seen);
                    ordered.push(dep);
                }
            }
        }
    }
}

/// Run a set of tasks as one stage, with retries, returning the outputs
/// keyed by partition plus the stage metrics.
fn run_stage(
    ctx: &Context,
    stage_id: usize,
    kind: StageKind,
    tasks: Vec<TaskSpec>,
) -> SparkResult<(HashMap<usize, TaskOutput>, StageMetrics)> {
    let start = Instant::now();
    let total = tasks.len();
    ctx.inner.tracer.record_driver(EventKind::StageStart { stage: stage_id, kind, tasks: total });
    let specs: HashMap<usize, TaskSpec> = tasks.iter().map(|t| (t.partition, t.clone())).collect();
    let (tx, rx) = unbounded();
    for spec in tasks {
        ctx.inner.pool.submit(Envelope { spec, attempt: 0, reply: tx.clone() });
    }

    let cfg = &ctx.inner.config;
    let mut outputs = HashMap::with_capacity(total);
    let mut task_metrics = Vec::with_capacity(total);
    let mut failed_attempts = 0usize;
    let mut done = 0usize;
    while done < total {
        let r = rx.recv().expect("executor pool alive while context exists");
        match r.outcome {
            Ok(output) => {
                ctx.inner.accums.apply_all(r.accum_updates);
                let extra = straggler_extra(cfg.straggler, cfg.seed, stage_id, r.partition, r.busy);
                task_metrics.push(TaskMetrics {
                    partition: r.partition,
                    executor: r.executor,
                    attempt: r.attempt,
                    busy: r.busy,
                    straggler_extra: extra,
                    records_out: 0,
                });
                outputs.insert(r.partition, output);
                done += 1;
            }
            Err(message) => {
                failed_attempts += 1;
                let next = r.attempt + 1;
                if next >= cfg.max_task_attempts {
                    ctx.inner
                        .tracer
                        .record_driver(EventKind::StageEnd { stage: stage_id, failed_attempts });
                    return Err(SparkError::TaskFailed {
                        stage: stage_id,
                        partition: r.partition,
                        attempts: next,
                        message,
                    });
                }
                let spec =
                    specs.get(&r.partition).expect("result for a submitted partition").clone();
                ctx.inner.pool.submit(Envelope { spec, attempt: next, reply: tx.clone() });
            }
        }
    }
    task_metrics.sort_by_key(|t| t.partition);
    ctx.inner.tracer.record_driver(EventKind::StageEnd { stage: stage_id, failed_attempts });
    let sm = StageMetrics {
        stage_id,
        kind,
        wall: start.elapsed(),
        tasks: task_metrics,
        failed_attempts,
    };
    Ok((outputs, sm))
}
