//! # sparklet — a from-scratch Spark-like engine
//!
//! The paper's contribution is an algorithm *designed around Spark's
//! execution model*: lazy RDDs, a driver/executor split, broadcast
//! variables, accumulators, and the imperative to avoid shuffles. To
//! reproduce the paper without Spark, this crate implements that model:
//!
//! * **Typed, lazy RDDs** ([`Rdd`]) with narrow transformations (`map`,
//!   `filter`, `flat_map`, `map_partitions`, `union`, `zip_with_index`)
//!   and wide ones (`reduce_by_key`, `group_by_key`) that introduce a
//!   real hash **shuffle** with byte/record accounting — so "our DBSCAN
//!   performs zero shuffles" is a measured property.
//! * **DAG scheduling**: jobs are split into stages at shuffle
//!   boundaries; missing shuffle outputs are (re)computed from lineage.
//! * **Executors**: a worker thread pool executing tasks; every task's
//!   busy time is measured, giving the driver-vs-executor time split the
//!   paper reports (Fig. 6).
//! * **Shared variables**: read-only [`Broadcast`] values and write-only
//!   [`Accumulator`]s with Spark's exactly-once-per-successful-task merge
//!   semantics (updates from failed task attempts are discarded).
//! * **Fault tolerance**: injected task failures are retried; a "lost
//!   executor" drops its cached partitions and shuffle outputs, which are
//!   then recomputed from lineage — the MPI-vs-framework contrast the
//!   paper opens with.
//! * **Virtual-cluster time model** ([`sim`]): because the paper's
//!   algorithm has no executor↔executor communication, the parallel
//!   runtime on `p` cores is the makespan of independent tasks; we
//!   measure real per-task busy times and schedule them onto `p` virtual
//!   executors (greedy LPT) plus a configurable straggler term — this is
//!   how the 64–512-core curves of Figs. 6b/8e/8f are reproduced on a
//!   laptop.

pub mod accumulator;
pub mod broadcast;
pub mod config;
pub mod context;
pub mod error;
pub mod executor;
pub mod explore;
pub mod fault;
pub mod memory;
pub mod metrics;
pub mod oracle;
pub mod rdd;
pub mod schedule;
pub mod scheduler;
pub mod shuffle;
pub mod sim;
pub mod spill;
pub mod storage;
pub mod task;
pub mod trace;

pub use accumulator::Accumulator;
pub use broadcast::Broadcast;
pub use config::{ClusterConfig, SpeculationConfig, StragglerConfig, TraceConfig};
pub use context::{Context, KillReport};
pub use error::{SparkError, SparkResult};
pub use explore::{ExploreJob, ExploreReport, Explorer, JobArtifacts, MergeOnceCheck, Violation};
pub use fault::{ExecutorKillAt, FaultConfig, FaultPlan, FaultRule};
pub use memory::{MemoryBudget, MemoryManager, MemoryStats, DRIVER_LANE};
pub use metrics::{JobMetrics, StageKind, StageMetrics, TaskMetrics};
pub use oracle::{
    default_oracles, InvariantOracle, LabelIdentity, LedgerConservation, MergeOnce, RunObservation,
    TraceWellFormed,
};
pub use rdd::{CoGrouped, Rdd};
pub use schedule::{DecisionPoint, Fifo, Replay, ReplayToken, SchedulePolicy, Seeded};
pub use sim::{lpt_makespan, VirtualScheduler};
pub use spill::{SpillError, SpillHandle, SpillStore, Spillable};
pub use storage::{CacheConfig, CacheManager};
pub use task::{TaskError, TaskErrorKind};
pub use trace::{
    ascii_timeline, chrome_trace_json, validate_chrome_trace, EventKind, MemOp, TaskScope, Trace,
    TraceEvent, TraceHandle, TraceSummary,
};

/// Marker for types that can flow through RDDs: cheap to move between
/// threads and clonable for caching/shuffle fan-out.
pub trait Data: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> Data for T {}
