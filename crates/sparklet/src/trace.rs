//! Structured tracing: typed engine events on a virtual timeline.
//!
//! The paper's evaluation is an exercise in *attribution* — driver vs.
//! executor time (Fig. 6), shuffle volume, merge cost — and the
//! aggregate metrics in [`crate::metrics`] cannot answer "what happened
//! when" questions (which attempt failed, which stage a shuffle read
//! belongs to, where a DFS replica fallback occurred). This module adds
//! an event-level record:
//!
//! * **Collector** ([`TraceCollector`]): a lock-sharded, bounded
//!   ring-buffer sink. Recording an event is wait-short and allocates
//!   nothing — every [`EventKind`] is `Copy` and the rings are
//!   preallocated; when disabled, recording is a single relaxed atomic
//!   load. On overflow the oldest events are dropped and counted.
//! * **Virtual timestamps**: wall-clock times differ between runs, so
//!   raw events carry only *ordering* information (a driver-side epoch
//!   counter plus task identity). At [`TraceHandle::snapshot`] time the
//!   events are canonically ordered and replayed through
//!   [`crate::sim::VirtualScheduler`], producing a deterministic,
//!   seed-keyed logical timeline.
//! * **Exporters**: Chrome `chrome://tracing` JSON (one "process" per
//!   virtual executor, task attempts as duration events) and a compact
//!   per-stage ASCII timeline for terminals.

use crate::config::TraceConfig;
use crate::metrics::StageKind;
use crate::sim::{VirtualScheduler, FAIL_BASE_TICKS, TASK_BASE_TICKS};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of the task attempt an event occurred inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskScope {
    /// Stage of the attempt.
    pub stage: usize,
    /// Partition the attempt computes.
    pub partition: usize,
    /// Attempt number (0-based).
    pub attempt: usize,
    /// Clone ordinal of the submission (0 = the original; >0 = a
    /// speculative twin racing the original at the same attempt).
    /// Clone-scoped events consume zero virtual ticks and are stripped
    /// by [`Trace::without_speculation`].
    pub ordinal: usize,
    /// Virtual executor the attempt is bound to.
    pub executor: usize,
}

/// One traced engine event. All payloads are scalars or `&'static str`
/// so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An action was submitted to the scheduler.
    JobSubmit {
        /// Job id.
        job: usize,
    },
    /// A job finished successfully.
    JobEnd {
        /// Job id.
        job: usize,
        /// Stages the job ran (including reused-shuffle skips).
        stages: usize,
    },
    /// A stage's tasks were submitted.
    StageStart {
        /// Stage id.
        stage: usize,
        /// Shuffle-map or result stage.
        kind: StageKind,
        /// Tasks submitted.
        tasks: usize,
    },
    /// A stage completed (or aborted after retry exhaustion).
    StageEnd {
        /// Stage id.
        stage: usize,
        /// Failed attempts observed within the stage.
        failed_attempts: usize,
    },
    /// A task attempt began on a worker.
    TaskStart,
    /// A task attempt completed successfully.
    TaskSuccess,
    /// A task attempt failed.
    TaskFailure {
        /// Whether the failure was injected by [`crate::FaultConfig`]
        /// (as opposed to a panic/error in task code).
        injected: bool,
    },
    /// A map task registered its shuffle output.
    ShuffleWrite {
        /// Shuffle id.
        shuffle: usize,
        /// Records written (post map-side combine).
        records: u64,
        /// Estimated bytes written.
        bytes: u64,
    },
    /// A reduce task fetched its shuffle bucket column.
    ShuffleRead {
        /// Shuffle id.
        shuffle: usize,
        /// Records read.
        records: u64,
        /// Estimated bytes read.
        bytes: u64,
    },
    /// The driver created a broadcast variable.
    BroadcastCreate {
        /// Broadcast id.
        id: usize,
        /// Logical bytes shipped (size hint × executors).
        bytes: u64,
    },
    /// A virtual executor was killed via [`crate::Context::kill_executor`].
    ExecutorKill {
        /// The killed executor.
        executor: usize,
        /// Cached partitions lost with it.
        cached_lost: usize,
        /// Shuffle map outputs lost with it.
        maps_lost: usize,
    },
    /// A DFS block was read (possibly inside a task).
    DfsBlockRead {
        /// Block id.
        block: u64,
        /// Block length in bytes.
        bytes: u64,
    },
    /// A DFS block read found dead replicas and fell back to survivors.
    DfsReplicaFallback {
        /// Block id.
        block: u64,
        /// Replicas found dead.
        lost: usize,
    },
    /// Start of a named algorithm phase (driver-side).
    PhaseStart {
        /// Phase name (e.g. `"kdtree_build"`).
        name: &'static str,
    },
    /// End of a named algorithm phase.
    PhaseEnd {
        /// Phase name.
        name: &'static str,
    },
    /// A shuffle map output was lost — to an injected fetch failure
    /// (recorded in the failing reduce task's scope) or an executor
    /// kill (recorded driver-side).
    MapOutputLost {
        /// Shuffle id.
        shuffle: usize,
        /// Map partition whose output was lost.
        partition: usize,
    },
    /// A previously-lost map output was recomputed from lineage
    /// (recorded in the recomputing map task's scope).
    MapOutputRecomputed {
        /// Shuffle id.
        shuffle: usize,
        /// Map partition that was recomputed.
        partition: usize,
    },
    /// The scheduler started a fetch-failure recovery round for a
    /// stage, after a virtual-time backoff.
    StageRetry {
        /// The stage whose tasks hit fetch failures.
        stage: usize,
        /// The shuffle whose outputs are being recomputed.
        shuffle: usize,
        /// Recovery round within the stage (1-based).
        retry: usize,
        /// Virtual driver ticks waited before this round.
        backoff_ticks: u64,
    },
    /// The driver planned one partition of a job (driver-side, emitted
    /// once per partition before the stage runs). Comparing
    /// `predicted_cost` against the partition's [`EventKind::TaskWork`]
    /// shows the planner's prediction quality in the same trace.
    PartitionPlan {
        /// Partition index.
        partition: usize,
        /// Points assigned to the partition.
        points: u64,
        /// Planner-estimated work units (point count when planning is
        /// count-based).
        predicted_cost: u64,
    },
    /// Work actually performed by a task, in planner work units
    /// (recorded in-task on completion; stretches the task's virtual
    /// timeline so skewed tasks are visibly longer in exports).
    TaskWork {
        /// Work units performed (e.g. neighbor queries issued).
        units: u64,
    },
    /// One sequential shard of a parallel driver-side bulk build
    /// (driver-side, emitted in shard order after the build so the
    /// trace stays byte-identical at every thread count — the payload
    /// carries only the thread-invariant decomposition, never wall
    /// times).
    BuildShard {
        /// Shard index in tree order.
        shard: usize,
        /// Points the shard covers.
        points: u64,
    },
    /// The memory manager acted on a lane's ledger (bounded budgets
    /// only — unbudgeted runs record none of these, and on the virtual
    /// timeline they consume zero ticks, so a budgeted trace with its
    /// memory events stripped is byte-identical to the unbudgeted one).
    MemoryAction {
        /// What happened.
        op: MemOp,
        /// Ledger lane (executor id, or [`crate::memory::DRIVER_LANE`]).
        lane: usize,
        /// Bytes involved.
        bytes: u64,
    },
    /// The scheduler launched a speculative clone of an in-flight
    /// attempt (driver-side, zero virtual ticks — like
    /// [`EventKind::MemoryAction`], a trace with its speculation events
    /// stripped is byte-identical to the speculation-free run).
    SpeculativeLaunch {
        /// Stage of the raced attempt.
        stage: usize,
        /// Partition being raced.
        partition: usize,
        /// Attempt number both the original and the clone run at.
        attempt: usize,
    },
    /// A raced attempt committed first (driver-side, zero ticks).
    SpeculativeWin {
        /// Stage of the raced attempt.
        stage: usize,
        /// Partition that committed.
        partition: usize,
        /// Attempt number of the committed result.
        attempt: usize,
        /// Which submission won: 0 = the original, >0 = a clone.
        ordinal: usize,
    },
    /// A raced attempt's reply was discarded — its twin had already
    /// committed the partition, or a clone failed before the original
    /// resolved (driver-side, zero ticks).
    SpeculativeLoss {
        /// Stage of the raced attempt.
        stage: usize,
        /// Partition whose duplicate reply was dropped.
        partition: usize,
        /// Attempt number of the dropped reply.
        attempt: usize,
        /// Which submission lost: 0 = the original, >0 = a clone.
        ordinal: usize,
    },
    /// Spatial-kernel counters for one task (recorded in-task before
    /// completion). The counts are defined over *visited* leaves, so
    /// they are invariant across scalar, lane-blocked and batched
    /// execution; only the `min_pts` early-exit fast path changes them.
    /// Like [`EventKind::MemoryAction`], the event consumes zero
    /// virtual ticks, so a trace with its kernel events stripped is
    /// byte-identical across kernel configurations.
    TaskKernel {
        /// Leaf blocks scanned ((leaf, query) visits).
        blocks: u64,
        /// Rows belonging to the visited leaf blocks.
        rows: u64,
        /// Rows that passed the eps threshold.
        hits: u64,
        /// Scans cut short (report budget or count cap reached).
        early_exits: u64,
    },
}

/// What a [`EventKind::MemoryAction`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A task's working-set reservation was granted.
    Reserve,
    /// A task reservation was released at attempt end.
    Release,
    /// A cache entry was dropped (no spill codec — lineage recomputes).
    Evict,
    /// Bytes moved from the ledger to the spill tier.
    Spill,
    /// A spilled blob was read back.
    SpillRead,
    /// A task submission was deferred until reservations free up.
    Backpressure,
}

impl EventKind {
    /// Coarse category, used by exporters and the CI smoke validator.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::JobSubmit { .. } | EventKind::JobEnd { .. } => "job",
            EventKind::StageStart { .. } | EventKind::StageEnd { .. } => "stage",
            EventKind::TaskStart | EventKind::TaskSuccess | EventKind::TaskFailure { .. } => "task",
            EventKind::ShuffleWrite { .. } | EventKind::ShuffleRead { .. } => "shuffle",
            EventKind::BroadcastCreate { .. } => "broadcast",
            EventKind::ExecutorKill { .. } => "executor",
            EventKind::DfsBlockRead { .. } | EventKind::DfsReplicaFallback { .. } => "dfs",
            EventKind::PhaseStart { .. } | EventKind::PhaseEnd { .. } => "phase",
            EventKind::MapOutputLost { .. }
            | EventKind::MapOutputRecomputed { .. }
            | EventKind::StageRetry { .. } => "recovery",
            EventKind::PartitionPlan { .. } => "plan",
            EventKind::TaskWork { .. } => "task",
            EventKind::BuildShard { .. } => "phase",
            EventKind::MemoryAction { .. } => "memory",
            EventKind::TaskKernel { .. } => "kernel",
            EventKind::SpeculativeLaunch { .. }
            | EventKind::SpeculativeWin { .. }
            | EventKind::SpeculativeLoss { .. } => "speculation",
        }
    }

    /// Virtual ticks an *in-task* event advances its task's cursor by.
    /// Sized so that data-heavy events stretch the timeline visibly.
    /// Memory actions advance nothing: they depend on the budget
    /// setting, and the rest of the timeline must not.
    fn in_task_ticks(&self) -> u64 {
        match self {
            EventKind::ShuffleWrite { bytes, .. } | EventKind::ShuffleRead { bytes, .. } => {
                1 + bytes / 256
            }
            EventKind::DfsBlockRead { bytes, .. } => 1 + bytes / 1024,
            EventKind::TaskWork { units } => 1 + units / 16,
            EventKind::MemoryAction { .. }
            | EventKind::TaskKernel { .. }
            | EventKind::SpeculativeLaunch { .. }
            | EventKind::SpeculativeWin { .. }
            | EventKind::SpeculativeLoss { .. } => 0,
            _ => 1,
        }
    }
}

/// A recorded event before virtual-time assignment.
#[derive(Debug, Clone, Copy)]
struct RawEvent {
    /// Global record sequence (deterministic only *within* one task
    /// attempt, where recording is single-threaded).
    seq: u64,
    /// Driver epoch for driver-side events; `u64::MAX` for task events
    /// (their order comes from `scope` + their stage's start epoch).
    epoch: u64,
    scope: Option<TaskScope>,
    kind: EventKind,
}

/// An event on the deterministic virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp (ticks; see [`crate::sim::VirtualScheduler`]).
    pub vt: u64,
    /// Task attempt the event occurred in, if any.
    pub scope: Option<TaskScope>,
    /// What happened.
    pub kind: EventKind,
}

/// A drained, canonically ordered trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Events in canonical order with virtual timestamps.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overflow.
    pub dropped: u64,
}

impl Trace {
    /// The trace with all `MemoryAction` events removed. Memory events
    /// consume zero virtual ticks, so this is exactly the trace an
    /// unbudgeted run of the same workload produces — the invariant the
    /// budget-identity tests and `perf_suite` experiment 4 assert.
    pub fn without_memory(&self) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| !matches!(e.kind, EventKind::MemoryAction { .. }))
                .copied()
                .collect(),
            dropped: self.dropped,
        }
    }

    /// The trace with all `TaskKernel` events removed. Kernel events
    /// consume zero virtual ticks and their payloads are invariant
    /// across scalar/lane-blocked/batched execution, so this is only
    /// needed to compare a `min_pts` fast-path run (whose counters
    /// legitimately shrink) against a full-scan run.
    pub fn without_kernel(&self) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| !matches!(e.kind, EventKind::TaskKernel { .. }))
                .copied()
                .collect(),
            dropped: self.dropped,
        }
    }

    /// The trace with everything speculation added removed: the
    /// driver's `Speculative{Launch,Win,Loss}` markers and every event
    /// scoped to a clone submission (`scope.ordinal > 0`). Speculation
    /// events consume zero virtual ticks and clones never perturb the
    /// originals' lanes, so on a run where every original attempt still
    /// runs to completion (clean runs, pure-straggler plans) this is
    /// byte-identical to the trace of the same workload with
    /// speculation disabled — the invariant the chaos identity tests
    /// and `perf_suite` experiment 6 assert. Under failure-injecting
    /// plans a clone win can elide the original's remaining retry
    /// chain, so only label identity is asserted there.
    pub fn without_speculation(&self) -> Trace {
        Trace {
            events: self
                .events
                .iter()
                .filter(|e| {
                    !matches!(
                        e.kind,
                        EventKind::SpeculativeLaunch { .. }
                            | EventKind::SpeculativeWin { .. }
                            | EventKind::SpeculativeLoss { .. }
                    ) && e.scope.is_none_or(|s| s.ordinal == 0)
                })
                .copied()
                .collect(),
            dropped: self.dropped,
        }
    }
}

const SHARDS: usize = 8;

/// Lock-sharded, bounded ring-buffer event sink.
///
/// Shared by the driver, every worker thread, the shuffle manager and
/// the DFS sink adapter. The hot path ([`TraceCollector::record`])
/// checks a single atomic when tracing is disabled and never allocates
/// when enabled (rings are preallocated; overflow drops the oldest
/// event and bumps a counter).
pub struct TraceCollector {
    enabled: AtomicBool,
    seq: AtomicU64,
    driver_epoch: AtomicU64,
    dropped: AtomicU64,
    shards: Vec<Mutex<VecDeque<RawEvent>>>,
    shard_cap: usize,
}

impl TraceCollector {
    /// Build per `config`. Capacity is split across the shards.
    pub fn new(config: TraceConfig) -> Self {
        let shard_cap = (config.capacity.max(SHARDS)).div_ceil(SHARDS);
        TraceCollector {
            enabled: AtomicBool::new(config.enabled),
            seq: AtomicU64::new(0),
            driver_epoch: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::with_capacity(shard_cap))).collect(),
            shard_cap,
        }
    }

    /// A disabled collector (records nothing), for components that need
    /// a collector but run outside a traced [`crate::Context`].
    pub fn disabled() -> Arc<Self> {
        Arc::new(TraceCollector::new(TraceConfig::default()))
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events lost to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one event. No-op (one atomic load) when disabled.
    pub fn record(&self, scope: Option<TaskScope>, kind: EventKind) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let epoch = match scope {
            None => self.driver_epoch.fetch_add(1, Ordering::Relaxed),
            Some(_) => u64::MAX,
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.shards[seq as usize % SHARDS].lock();
        if ring.len() >= self.shard_cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(RawEvent { seq, epoch, scope, kind });
    }

    /// Record a driver-side event (no task scope).
    pub fn record_driver(&self, kind: EventKind) {
        self.record(None, kind);
    }

    /// Record with the current thread's task scope if inside a task,
    /// as a driver event otherwise. Used by sinks (shuffle, DFS) that
    /// can be reached from either side.
    pub fn record_auto(&self, kind: EventKind) {
        self.record(task_scope(), kind);
    }

    /// Drain a canonically ordered, virtually timestamped snapshot.
    /// The collector keeps its events (snapshots are repeatable).
    pub fn snapshot(&self) -> Trace {
        let mut raw: Vec<RawEvent> = Vec::new();
        for shard in &self.shards {
            raw.extend(shard.lock().iter().copied());
        }
        // Task events inherit the epoch of their stage's StageStart, so
        // they order between that and the next driver event.
        let mut stage_epoch: HashMap<usize, u64> = HashMap::new();
        for e in &raw {
            if let EventKind::StageStart { stage, .. } = e.kind {
                stage_epoch.insert(stage, e.epoch);
            }
        }
        // Canonical key: driver events by their epoch; task events by
        // (stage epoch, partition, attempt, clone ordinal) — all
        // deterministic for a fixed seed — with the raw sequence as a
        // within-attempt tiebreaker (single-threaded there, hence
        // deterministic too). The ordinal slots a speculative clone's
        // events directly after its original's, so stripping them
        // leaves the remaining order untouched.
        let key = |e: &RawEvent| match e.scope {
            None => (e.epoch, 0u8, 0usize, 0usize, 0usize, e.seq),
            Some(s) => (
                stage_epoch.get(&s.stage).copied().unwrap_or(u64::MAX),
                1u8,
                s.partition,
                s.attempt,
                s.ordinal,
                e.seq,
            ),
        };
        raw.sort_by_key(key);

        let mut vs = VirtualScheduler::new();
        let mut stage_vt: HashMap<usize, u64> = HashMap::new();
        let mut stage_max_end: HashMap<usize, u64> = HashMap::new();
        let mut cursor = 0u64;
        let mut events = Vec::with_capacity(raw.len());
        for e in &raw {
            let vt = match (e.scope, e.kind) {
                (None, EventKind::StageEnd { stage, .. }) => {
                    vs.driver_join(stage_max_end.get(&stage).copied().unwrap_or(0))
                }
                (None, EventKind::StageRetry { backoff_ticks, .. }) => {
                    // recovery rounds wait out an exponential backoff on
                    // the virtual driver clock
                    vs.driver_backoff(backoff_ticks)
                }
                // memory actions never advance the driver clock: they
                // only exist under a bounded budget, and all other
                // events must keep identical timestamps across budget
                // settings
                (None, EventKind::MemoryAction { .. }) | (None, EventKind::TaskKernel { .. }) => {
                    vs.now()
                }
                // speculation markers likewise: they only exist with
                // speculation enabled, and the rest of the timeline
                // must not move when it is turned on
                (None, EventKind::SpeculativeLaunch { .. })
                | (None, EventKind::SpeculativeWin { .. })
                | (None, EventKind::SpeculativeLoss { .. }) => vs.now(),
                // clone-scoped events are virtual-time-neutral: a
                // speculative twin occupies no executor lane and moves
                // no cursor, so the originals' timeline is unchanged
                (Some(s), _) if s.ordinal > 0 => vs.now(),
                (None, kind) => {
                    let t = vs.driver_tick();
                    if let EventKind::StageStart { stage, .. } = kind {
                        stage_vt.insert(stage, t);
                    }
                    t
                }
                (Some(s), EventKind::TaskStart) => {
                    let barrier = stage_vt.get(&s.stage).copied().unwrap_or(vs.now()) + 1;
                    cursor = vs.task_start(s.executor, barrier);
                    cursor
                }
                (Some(s), EventKind::TaskSuccess) => {
                    cursor += TASK_BASE_TICKS;
                    vs.task_end(s.executor, cursor);
                    let m = stage_max_end.entry(s.stage).or_insert(0);
                    *m = (*m).max(cursor);
                    cursor
                }
                (Some(s), EventKind::TaskFailure { .. }) => {
                    cursor += FAIL_BASE_TICKS;
                    vs.task_end(s.executor, cursor);
                    let m = stage_max_end.entry(s.stage).or_insert(0);
                    *m = (*m).max(cursor);
                    cursor
                }
                (Some(_), kind) => {
                    cursor += kind.in_task_ticks();
                    cursor
                }
            };
            events.push(TraceEvent { vt, scope: e.scope, kind: e.kind });
        }
        Trace { events, dropped: self.dropped() }
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new(TraceConfig::default())
    }
}

thread_local! {
    /// Scope of the task attempt running on this thread, if any.
    static TRACE_SCOPE: Cell<Option<TaskScope>> = const { Cell::new(None) };
}

/// Install (or clear) the current thread's task scope. Set by workers
/// around each attempt so sinks can attribute events.
pub(crate) fn set_task_scope(scope: Option<TaskScope>) {
    TRACE_SCOPE.with(|c| c.set(scope));
}

/// The current thread's task scope, if inside a task attempt.
pub(crate) fn task_scope() -> Option<TaskScope> {
    TRACE_SCOPE.with(|c| c.get())
}

/// Cheap, cloneable user-facing handle to a context's collector.
#[derive(Clone)]
pub struct TraceHandle {
    collector: Arc<TraceCollector>,
}

impl TraceHandle {
    pub(crate) fn new(collector: Arc<TraceCollector>) -> Self {
        TraceHandle { collector }
    }

    /// Whether tracing is enabled for this context.
    pub fn enabled(&self) -> bool {
        self.collector.is_enabled()
    }

    /// Events lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.collector.dropped()
    }

    /// Mark the start of a named driver-side algorithm phase.
    pub fn phase_start(&self, name: &'static str) {
        self.collector.record_driver(EventKind::PhaseStart { name });
    }

    /// Mark the end of a named driver-side algorithm phase.
    pub fn phase_end(&self, name: &'static str) {
        self.collector.record_driver(EventKind::PhaseEnd { name });
    }

    /// Record the driver's plan for one partition of an upcoming stage
    /// (point count plus predicted work units).
    pub fn plan_partition(&self, partition: usize, points: u64, predicted_cost: u64) {
        self.collector.record_driver(EventKind::PartitionPlan {
            partition,
            points,
            predicted_cost,
        });
    }

    /// Record work units actually performed by the calling task (or the
    /// driver, outside a task scope). Advances the task's virtual-time
    /// cursor proportionally, so heavy tasks are visibly longer in
    /// exported timelines.
    pub fn task_work(&self, units: u64) {
        self.collector.record_auto(EventKind::TaskWork { units });
    }

    /// Record the calling task's spatial-kernel counters (zero virtual
    /// ticks; see [`EventKind::TaskKernel`]).
    pub fn task_kernel(&self, blocks: u64, rows: u64, hits: u64, early_exits: u64) {
        self.collector.record_auto(EventKind::TaskKernel { blocks, rows, hits, early_exits });
    }

    /// Record one shard of a parallel driver-side bulk build (e.g. a
    /// sequential kd-subtree). Call in shard order after the build.
    pub fn build_shard(&self, shard: usize, points: u64) {
        self.collector.record_driver(EventKind::BuildShard { shard, points });
    }

    /// Drain a canonically ordered, virtually timestamped snapshot.
    pub fn snapshot(&self) -> Trace {
        self.collector.snapshot()
    }

    /// Export the current snapshot as Chrome `chrome://tracing` JSON.
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(&self.snapshot())
    }

    /// Render the current snapshot as a per-stage ASCII timeline.
    pub fn ascii_timeline(&self) -> String {
        ascii_timeline(&self.snapshot())
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.enabled())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Adapter installing a collector as a [`minidfs::BlockEventSink`], so
/// DFS block reads and replica fallbacks appear in the trace attributed
/// to the task (or driver) that triggered them.
pub(crate) struct DfsTraceSink {
    pub(crate) tracer: Arc<TraceCollector>,
}

impl minidfs::BlockEventSink for DfsTraceSink {
    fn block_read(&self, block: minidfs::BlockId, bytes: usize) {
        self.tracer.record_auto(EventKind::DfsBlockRead { block: block.0, bytes: bytes as u64 });
    }

    fn replica_fallback(&self, block: minidfs::BlockId, lost: usize) {
        self.tracer.record_auto(EventKind::DfsReplicaFallback { block: block.0, lost });
    }
}

// ---- Chrome trace exporter ---------------------------------------------

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn stage_kind_name(kind: StageKind) -> &'static str {
    match kind {
        StageKind::ShuffleMap => "shuffle-map",
        StageKind::Result => "result",
    }
}

/// Pid/tid placement: the driver is process 0; each virtual executor is
/// its own process (`executor + 1`) with one thread row per partition.
fn placement(scope: Option<TaskScope>) -> (u64, u64) {
    match scope {
        None => (0, 0),
        Some(s) => (s.executor as u64 + 1, s.partition as u64),
    }
}

/// Serialize a snapshot in the Chrome trace-event format. Duration
/// ("X") events are built for jobs, stages, phases and task attempts;
/// point-in-time events (shuffle, broadcast, DFS, kills) become instant
/// ("i") events. Output events are sorted by timestamp, so a valid
/// trace has monotone non-decreasing `ts`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    type Entries = Vec<(u64, usize, String)>;
    fn push(entries: &mut Entries, order: &mut usize, ts: u64, body: String) {
        entries.push((ts, *order, body));
        *order += 1;
    }
    #[allow(clippy::too_many_arguments)]
    fn complete(
        entries: &mut Entries,
        order: &mut usize,
        name: &str,
        cat: &str,
        ts: u64,
        dur: u64,
        pid: u64,
        tid: u64,
        args: &str,
    ) {
        push(
            entries,
            order,
            ts,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                json_escape(name),
                json_escape(cat),
                ts,
                dur,
                pid,
                tid,
                args
            ),
        );
    }

    let mut entries: Entries = Vec::new();
    let mut order = 0usize;
    let mut job_open: HashMap<usize, u64> = HashMap::new();
    let mut stage_open: HashMap<usize, (u64, StageKind, usize)> = HashMap::new();
    let mut phase_open: HashMap<&'static str, Vec<u64>> = HashMap::new();
    let mut task_open: HashMap<(usize, usize, usize, usize), (u64, usize)> = HashMap::new();
    // `task s0p1 a0` for originals (unchanged from pre-speculation
    // exports); clones append their ordinal as ` c1`
    fn task_name(stage: usize, partition: usize, attempt: usize, ordinal: usize) -> String {
        if ordinal == 0 {
            format!("task s{stage}p{partition} a{attempt}")
        } else {
            format!("task s{stage}p{partition} a{attempt} c{ordinal}")
        }
    }
    let mut executors: BTreeMap<u64, ()> = BTreeMap::new();
    let last_vt = trace.events.last().map(|e| e.vt).unwrap_or(0);

    for e in &trace.events {
        if let Some(s) = e.scope {
            executors.insert(s.executor as u64 + 1, ());
        }
        let (pid, tid) = placement(e.scope);
        match e.kind {
            EventKind::JobSubmit { job } => {
                job_open.insert(job, e.vt);
            }
            EventKind::JobEnd { job, stages } => {
                let start = job_open.remove(&job).unwrap_or(e.vt);
                complete(
                    &mut entries,
                    &mut order,
                    &format!("job {job}"),
                    "job",
                    start,
                    e.vt - start,
                    0,
                    0,
                    &format!("\"job\":{job},\"stages\":{stages}"),
                );
            }
            EventKind::StageStart { stage, kind, tasks } => {
                stage_open.insert(stage, (e.vt, kind, tasks));
            }
            EventKind::StageEnd { stage, failed_attempts } => {
                let (start, kind, tasks) =
                    stage_open.remove(&stage).unwrap_or((e.vt, StageKind::Result, 0));
                complete(
                    &mut entries,
                    &mut order,
                    &format!("stage {stage} ({})", stage_kind_name(kind)),
                    "stage",
                    start,
                    e.vt - start,
                    0,
                    1,
                    &format!(
                        "\"stage\":{stage},\"tasks\":{tasks},\"failed_attempts\":{failed_attempts}"
                    ),
                );
            }
            EventKind::PhaseStart { name } => {
                phase_open.entry(name).or_default().push(e.vt);
            }
            EventKind::PhaseEnd { name } => {
                let start = phase_open.get_mut(name).and_then(Vec::pop).unwrap_or(e.vt);
                complete(
                    &mut entries,
                    &mut order,
                    name,
                    "phase",
                    start,
                    e.vt - start,
                    0,
                    2,
                    "",
                );
            }
            EventKind::TaskStart => {
                if let Some(s) = e.scope {
                    task_open
                        .insert((s.stage, s.partition, s.attempt, s.ordinal), (e.vt, s.executor));
                }
            }
            EventKind::TaskSuccess | EventKind::TaskFailure { .. } => {
                if let Some(s) = e.scope {
                    let (start, _) = task_open
                        .remove(&(s.stage, s.partition, s.attempt, s.ordinal))
                        .unwrap_or((e.vt, s.executor));
                    let (status, injected) = match e.kind {
                        EventKind::TaskFailure { injected } => ("failed", injected),
                        _ => ("ok", false),
                    };
                    complete(
                        &mut entries,
                        &mut order,
                        &task_name(s.stage, s.partition, s.attempt, s.ordinal),
                        "task",
                        start,
                        e.vt - start,
                        pid,
                        tid,
                        &format!(
                            "\"stage\":{},\"partition\":{},\"attempt\":{},\"ordinal\":{},\"status\":\"{}\",\"injected\":{}",
                            s.stage, s.partition, s.attempt, s.ordinal, status, injected
                        ),
                    );
                }
            }
            EventKind::ShuffleWrite { shuffle, records, bytes } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("shuffle write", "shuffle", e.vt, pid, tid,
                    &format!("\"shuffle\":{shuffle},\"records\":{records},\"bytes\":{bytes}")),
            ),
            EventKind::ShuffleRead { shuffle, records, bytes } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("shuffle read", "shuffle", e.vt, pid, tid,
                    &format!("\"shuffle\":{shuffle},\"records\":{records},\"bytes\":{bytes}")),
            ),
            EventKind::BroadcastCreate { id, bytes } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("broadcast", "broadcast", e.vt, pid, tid,
                    &format!("\"id\":{id},\"bytes\":{bytes}")),
            ),
            EventKind::ExecutorKill { executor, cached_lost, maps_lost } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("executor kill", "executor", e.vt, pid, tid,
                    &format!(
                        "\"executor\":{executor},\"cached_lost\":{cached_lost},\"maps_lost\":{maps_lost}"
                    )),
            ),
            EventKind::DfsBlockRead { block, bytes } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("dfs block read", "dfs", e.vt, pid, tid,
                    &format!("\"block\":{block},\"bytes\":{bytes}")),
            ),
            EventKind::DfsReplicaFallback { block, lost } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("dfs replica fallback", "dfs", e.vt, pid, tid,
                    &format!("\"block\":{block},\"lost\":{lost}")),
            ),
            EventKind::MapOutputLost { shuffle, partition } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("map output lost", "recovery", e.vt, pid, tid,
                    &format!("\"shuffle\":{shuffle},\"partition\":{partition}")),
            ),
            EventKind::MapOutputRecomputed { shuffle, partition } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("map output recomputed", "recovery", e.vt, pid, tid,
                    &format!("\"shuffle\":{shuffle},\"partition\":{partition}")),
            ),
            EventKind::StageRetry { stage, shuffle, retry, backoff_ticks } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("stage retry", "recovery", e.vt, pid, tid,
                    &format!(
                        "\"stage\":{stage},\"shuffle\":{shuffle},\"retry\":{retry},\"backoff_ticks\":{backoff_ticks}"
                    )),
            ),
            EventKind::PartitionPlan { partition, points, predicted_cost } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("partition plan", "plan", e.vt, pid, tid,
                    &format!(
                        "\"partition\":{partition},\"points\":{points},\"predicted_cost\":{predicted_cost}"
                    )),
            ),
            EventKind::TaskWork { units } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("task work", "task", e.vt, pid, tid,
                    &format!("\"units\":{units}")),
            ),
            EventKind::BuildShard { shard, points } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("build shard", "phase", e.vt, pid, tid,
                    &format!("\"shard\":{shard},\"points\":{points}")),
            ),
            EventKind::MemoryAction { op, lane, bytes } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant(&format!("mem {op:?}"), "memory", e.vt, pid, tid,
                    &format!("\"lane\":{lane},\"bytes\":{bytes}")),
            ),
            EventKind::TaskKernel { blocks, rows, hits, early_exits } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("task kernel", "kernel", e.vt, pid, tid,
                    &format!(
                        "\"blocks\":{blocks},\"rows\":{rows},\"hits\":{hits},\"early_exits\":{early_exits}"
                    )),
            ),
            EventKind::SpeculativeLaunch { stage, partition, attempt } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("speculative launch", "speculation", e.vt, pid, tid,
                    &format!("\"stage\":{stage},\"partition\":{partition},\"attempt\":{attempt}")),
            ),
            EventKind::SpeculativeWin { stage, partition, attempt, ordinal } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("speculative win", "speculation", e.vt, pid, tid,
                    &format!(
                        "\"stage\":{stage},\"partition\":{partition},\"attempt\":{attempt},\"ordinal\":{ordinal}"
                    )),
            ),
            EventKind::SpeculativeLoss { stage, partition, attempt, ordinal } => push(
                &mut entries,
                &mut order,
                e.vt,
                instant("speculative loss", "speculation", e.vt, pid, tid,
                    &format!(
                        "\"stage\":{stage},\"partition\":{partition},\"attempt\":{attempt},\"ordinal\":{ordinal}"
                    )),
            ),
        }
    }

    // Close anything left open (aborted stages, unended phases) so the
    // exported file is still well-formed. Sorted: HashMap iteration
    // order must not leak into the (deterministic) output.
    let mut job_open: Vec<_> = job_open.into_iter().collect();
    job_open.sort_unstable();
    let mut stage_open: Vec<_> = stage_open.into_iter().collect();
    stage_open.sort_unstable_by_key(|(stage, _)| *stage);
    let mut phase_open: Vec<_> = phase_open.into_iter().collect();
    phase_open.sort_unstable_by_key(|(name, _)| *name);
    let mut task_open: Vec<_> = task_open.into_iter().collect();
    task_open.sort_unstable_by_key(|(k, _)| *k);
    for (job, start) in job_open {
        complete(
            &mut entries,
            &mut order,
            &format!("job {job}"),
            "job",
            start,
            last_vt.saturating_sub(start),
            0,
            0,
            &format!("\"job\":{job},\"stages\":0"),
        );
    }
    for (stage, (start, kind, tasks)) in stage_open {
        complete(
            &mut entries,
            &mut order,
            &format!("stage {stage} ({})", stage_kind_name(kind)),
            "stage",
            start,
            last_vt.saturating_sub(start),
            0,
            1,
            &format!("\"stage\":{stage},\"tasks\":{tasks},\"failed_attempts\":0"),
        );
    }
    for (name, starts) in phase_open {
        for start in starts {
            complete(
                &mut entries,
                &mut order,
                name,
                "phase",
                start,
                last_vt.saturating_sub(start),
                0,
                2,
                "",
            );
        }
    }
    for ((stage, partition, attempt, ordinal), (start, executor)) in task_open {
        complete(&mut entries, &mut order,
            &task_name(stage, partition, attempt, ordinal), "task", start,
            last_vt.saturating_sub(start), executor as u64 + 1, partition as u64,
            &format!(
                "\"stage\":{stage},\"partition\":{partition},\"attempt\":{attempt},\"ordinal\":{ordinal},\"status\":\"open\",\"injected\":false"
            ));
    }

    entries.sort_by_key(|(ts, ord, _)| (*ts, *ord));

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    // process-name metadata rows first
    let meta = |out: &mut String, first: &mut bool, pid: u64, name: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            json_escape(name)
        );
    };
    meta(&mut out, &mut first, 0, "driver");
    for pid in executors.keys() {
        meta(&mut out, &mut first, *pid, &format!("executor {}", pid - 1));
    }
    for (_, _, body) in &entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(body);
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
        trace.dropped
    );
    out
}

fn instant(name: &str, cat: &str, ts: u64, pid: u64, tid: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{{}}}}}",
        json_escape(name),
        json_escape(cat),
        ts,
        pid,
        tid,
        args
    )
}

// ---- validator ---------------------------------------------------------

/// What [`validate_chrome_trace`] learned about a trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-metadata events in the file.
    pub events: usize,
    /// Events per [`EventKind::category`] (`cat` field), sorted by name.
    pub categories: Vec<(String, usize)>,
    /// Largest timestamp seen.
    pub max_ts: u64,
}

impl TraceSummary {
    /// Events in `cat`.
    pub fn count(&self, cat: &str) -> usize {
        self.categories.iter().find(|(c, _)| c == cat).map(|(_, n)| *n).unwrap_or(0)
    }
}

/// Parse and validate a Chrome trace JSON file: it must parse, every
/// non-metadata event must carry `name`/`ph`/`ts`/`pid`/`tid`, and
/// timestamps must be monotone non-decreasing in file order.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    use serde::Value;
    let root = serde_json::parse(json).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = match root.field("traceEvents") {
        Ok(Value::Array(items)) => items,
        Ok(other) => return Err(format!("traceEvents is {}, not an array", other.kind())),
        Err(e) => return Err(e.to_string()),
    };
    let mut summary = TraceSummary::default();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut last_ts = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ph = match ev.field("ph") {
            Ok(Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i} has no ph")),
        };
        ev.field("name").map_err(|_| format!("event {i} has no name"))?;
        ev.field("pid").map_err(|_| format!("event {i} has no pid"))?;
        ev.field("tid").map_err(|_| format!("event {i} has no tid"))?;
        if ph == "M" {
            continue;
        }
        let ts = match ev.field("ts") {
            Ok(Value::Int(n)) if *n >= 0 => *n as u64,
            _ => return Err(format!("event {i} has no integer ts")),
        };
        if ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts} (not monotone)"));
        }
        last_ts = ts;
        summary.events += 1;
        summary.max_ts = summary.max_ts.max(ts);
        if let Ok(Value::String(cat)) = ev.field("cat") {
            *counts.entry(cat.clone()).or_insert(0) += 1;
        }
    }
    summary.categories = counts.into_iter().collect();
    Ok(summary)
}

// ---- ASCII timeline ----------------------------------------------------

/// Render a compact per-stage timeline: one header row per stage and
/// one bar row per task attempt, scaled to the stage's virtual span.
pub fn ascii_timeline(trace: &Trace) -> String {
    const WIDTH: u64 = 40;
    struct Attempt {
        scope: TaskScope,
        start: u64,
        end: u64,
        status: &'static str,
    }
    struct Stage {
        id: usize,
        kind: StageKind,
        start: u64,
        end: u64,
        failed: usize,
        attempts: Vec<Attempt>,
    }
    let mut stages: Vec<Stage> = Vec::new();
    let mut open: HashMap<(usize, usize, usize, usize), u64> = HashMap::new();
    for e in &trace.events {
        match (e.scope, e.kind) {
            (None, EventKind::StageStart { stage, kind, .. }) => stages.push(Stage {
                id: stage,
                kind,
                start: e.vt,
                end: e.vt,
                failed: 0,
                attempts: Vec::new(),
            }),
            (None, EventKind::StageEnd { stage, failed_attempts }) => {
                if let Some(st) = stages.iter_mut().rev().find(|s| s.id == stage) {
                    st.end = e.vt;
                    st.failed = failed_attempts;
                }
            }
            (Some(s), EventKind::TaskStart) => {
                open.insert((s.stage, s.partition, s.attempt, s.ordinal), e.vt);
            }
            (Some(s), EventKind::TaskSuccess) | (Some(s), EventKind::TaskFailure { .. }) => {
                let start =
                    open.remove(&(s.stage, s.partition, s.attempt, s.ordinal)).unwrap_or(e.vt);
                let status = match e.kind {
                    EventKind::TaskFailure { injected: true } => "fail(injected)",
                    EventKind::TaskFailure { injected: false } => "fail",
                    _ => "ok",
                };
                if let Some(st) = stages.iter_mut().rev().find(|st| st.id == s.stage) {
                    st.attempts.push(Attempt { scope: s, start, end: e.vt, status });
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for st in &stages {
        let span = (st.end.saturating_sub(st.start)).max(1);
        let _ = writeln!(
            out,
            "stage {:>3} {:<11} vt {:>6}..{:<6} tasks={} failed={}",
            st.id,
            stage_kind_name(st.kind),
            st.start,
            st.end,
            st.attempts.iter().filter(|a| a.status == "ok").count(),
            st.failed
        );
        for a in &st.attempts {
            let lead = ((a.start.saturating_sub(st.start)) * WIDTH / span).min(WIDTH);
            let fill = (((a.end.saturating_sub(st.start)) * WIDTH / span).min(WIDTH)).max(lead + 1);
            let mut bar = String::with_capacity(WIDTH as usize + 2);
            for i in 0..WIDTH.max(fill) {
                bar.push(if i >= lead && i < fill { '#' } else { '.' });
            }
            // clone rows are tagged; ordinal-0 rows keep the exact
            // pre-speculation format
            let clone_tag =
                if a.scope.ordinal > 0 { format!(" c{}", a.scope.ordinal) } else { String::new() };
            let _ = writeln!(
                out,
                "  p{:<3} a{}{} e{:<3} |{}| {:>6}..{:<6} {}",
                a.scope.partition,
                a.scope.attempt,
                clone_tag,
                a.scope.executor,
                bar,
                a.start,
                a.end,
                a.status
            );
        }
    }
    if trace.dropped > 0 {
        let _ = writeln!(out, "({} events dropped by ring overflow)", trace.dropped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(stage: usize, partition: usize, attempt: usize) -> TaskScope {
        TaskScope { stage, partition, attempt, ordinal: 0, executor: partition % 2 }
    }

    fn enabled_collector(capacity: usize) -> TraceCollector {
        TraceCollector::new(TraceConfig { enabled: true, capacity })
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = TraceCollector::disabled();
        c.record_driver(EventKind::JobSubmit { job: 0 });
        c.record(Some(scope(0, 0, 0)), EventKind::TaskStart);
        assert!(c.snapshot().events.is_empty());
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        // capacity 8 with 8 shards -> 1 slot per shard
        let c = enabled_collector(8);
        for job in 0..20 {
            c.record_driver(EventKind::JobSubmit { job });
        }
        assert_eq!(c.dropped(), 12, "20 events into capacity 8");
        let t = c.snapshot();
        assert_eq!(t.dropped, 12);
        assert_eq!(t.events.len(), 8);
        // the *newest* events survive: jobs 12..20
        let jobs: Vec<usize> = t
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::JobSubmit { job } => job,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(jobs, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_orders_task_events_within_their_stage() {
        let c = enabled_collector(1024);
        c.record_driver(EventKind::JobSubmit { job: 0 });
        c.record_driver(EventKind::StageStart { stage: 0, kind: StageKind::Result, tasks: 2 });
        // record task events "out of order" (as racing workers would)
        let s1 = scope(0, 1, 0);
        let s0 = scope(0, 0, 0);
        c.record(Some(s1), EventKind::TaskStart);
        c.record(Some(s0), EventKind::TaskStart);
        c.record(Some(s1), EventKind::TaskSuccess);
        c.record(Some(s0), EventKind::TaskSuccess);
        c.record_driver(EventKind::StageEnd { stage: 0, failed_attempts: 0 });
        c.record_driver(EventKind::JobEnd { job: 0, stages: 1 });
        let t = c.snapshot();
        let kinds: Vec<&'static str> = t.events.iter().map(|e| e.kind.category()).collect();
        assert_eq!(kinds, vec!["job", "stage", "task", "task", "task", "task", "stage", "job"]);
        // canonical order sorts partition 0 before partition 1
        assert_eq!(t.events[2].scope, Some(s0));
        assert_eq!(t.events[3].kind, EventKind::TaskSuccess);
        assert_eq!(t.events[4].scope, Some(s1));
        assert!(matches!(t.events[6].kind, EventKind::StageEnd { .. }));
        // timestamps never precede the stage start
        let stage_vt = t.events[1].vt;
        assert!(t.events[2..6].iter().all(|e| e.vt > stage_vt));
        // stage end joins past the slowest task
        let max_task = t.events[2..6].iter().map(|e| e.vt).max().unwrap();
        assert!(t.events[6].vt > max_task);
    }

    #[test]
    fn snapshot_is_deterministic_for_same_inputs() {
        let build = || {
            let c = enabled_collector(1024);
            c.record_driver(EventKind::StageStart { stage: 7, kind: StageKind::Result, tasks: 1 });
            let s = scope(7, 0, 0);
            c.record(Some(s), EventKind::TaskStart);
            c.record(Some(s), EventKind::ShuffleWrite { shuffle: 0, records: 10, bytes: 1000 });
            c.record(Some(s), EventKind::TaskSuccess);
            c.record_driver(EventKind::StageEnd { stage: 7, failed_attempts: 0 });
            format!("{:?}", c.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("back\\slash"), "back\\\\slash");
        assert_eq!(json_escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("ünïcödé ok"), "ünïcödé ok");
    }

    #[test]
    fn escaped_strings_round_trip_through_the_parser() {
        let nasty = "q\"uote \\ back\nnew\tline\u{7}bell";
        let json = format!("{{\"s\":\"{}\"}}", json_escape(nasty));
        let v = serde_json::parse(&json).expect("escaped JSON parses");
        match v.field("s").unwrap() {
            serde::Value::String(s) => assert_eq!(s, nasty),
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn chrome_export_round_trips_through_validator() {
        let c = enabled_collector(4096);
        c.record_driver(EventKind::JobSubmit { job: 0 });
        c.record_driver(EventKind::BroadcastCreate { id: 0, bytes: 64 });
        c.record_driver(EventKind::StageStart { stage: 0, kind: StageKind::ShuffleMap, tasks: 2 });
        for p in 0..2usize {
            let s = scope(0, p, 0);
            c.record(Some(s), EventKind::TaskStart);
            c.record(Some(s), EventKind::ShuffleWrite { shuffle: 0, records: 4, bytes: 64 });
            c.record(Some(s), EventKind::TaskSuccess);
        }
        c.record_driver(EventKind::StageEnd { stage: 0, failed_attempts: 0 });
        c.record_driver(EventKind::JobEnd { job: 0, stages: 1 });
        let json = chrome_trace_json(&c.snapshot());
        let summary = validate_chrome_trace(&json).expect("exported trace validates");
        assert_eq!(summary.count("job"), 1);
        assert_eq!(summary.count("stage"), 1);
        assert_eq!(summary.count("task"), 2);
        assert_eq!(summary.count("shuffle"), 2);
        assert_eq!(summary.count("broadcast"), 1);
    }

    #[test]
    fn task_kernel_events_consume_zero_ticks_and_strip_cleanly() {
        let build = |with_kernel: bool| {
            let c = enabled_collector(1024);
            c.record_driver(EventKind::StageStart { stage: 0, kind: StageKind::Result, tasks: 1 });
            let s = scope(0, 0, 0);
            c.record(Some(s), EventKind::TaskStart);
            c.record(Some(s), EventKind::TaskWork { units: 64 });
            if with_kernel {
                c.record(
                    Some(s),
                    EventKind::TaskKernel { blocks: 3, rows: 90, hits: 12, early_exits: 1 },
                );
            }
            c.record(Some(s), EventKind::TaskSuccess);
            c.record_driver(EventKind::StageEnd { stage: 0, failed_attempts: 0 });
            c.snapshot()
        };
        let with = build(true);
        let without = build(false);
        // zero in-task ticks: stripping the kernel event reproduces the
        // kernel-free trace byte for byte
        assert_eq!(format!("{:?}", with.without_kernel()), format!("{without:?}"));
        // and the event itself round-trips through the chrome exporter
        let json = chrome_trace_json(&with);
        let summary = validate_chrome_trace(&json).expect("trace with kernel event validates");
        assert_eq!(summary.count("kernel"), 1);
        assert!(json.contains("\"early_exits\":1"));
    }

    #[test]
    fn speculation_events_consume_zero_ticks_and_strip_cleanly() {
        // a run where partition 0's original is raced by a clone that
        // loses: stripping the speculation artifacts must reproduce the
        // speculation-free trace byte for byte
        let build = |with_speculation: bool| {
            let c = enabled_collector(1024);
            c.record_driver(EventKind::StageStart { stage: 0, kind: StageKind::Result, tasks: 2 });
            let s0 = scope(0, 0, 0);
            let s1 = scope(0, 1, 0);
            let clone0 = TaskScope { ordinal: 1, ..s0 };
            c.record(Some(s1), EventKind::TaskStart);
            c.record(Some(s1), EventKind::TaskSuccess);
            if with_speculation {
                c.record_driver(EventKind::SpeculativeLaunch {
                    stage: 0,
                    partition: 0,
                    attempt: 0,
                });
                c.record(Some(clone0), EventKind::TaskStart);
                c.record(Some(clone0), EventKind::TaskWork { units: 64 });
                c.record(Some(clone0), EventKind::TaskSuccess);
            }
            c.record(Some(s0), EventKind::TaskStart);
            c.record(Some(s0), EventKind::TaskSuccess);
            if with_speculation {
                c.record_driver(EventKind::SpeculativeWin {
                    stage: 0,
                    partition: 0,
                    attempt: 0,
                    ordinal: 0,
                });
                c.record_driver(EventKind::SpeculativeLoss {
                    stage: 0,
                    partition: 0,
                    attempt: 0,
                    ordinal: 1,
                });
            }
            c.record_driver(EventKind::StageEnd { stage: 0, failed_attempts: 0 });
            c.snapshot()
        };
        let with = build(true);
        let without = build(false);
        assert_eq!(format!("{:?}", with.without_speculation()), format!("{without:?}"));
        // clone events carry real (current-clock) timestamps but move
        // no lane: the stage end must join past the originals only
        let json = chrome_trace_json(&with);
        let summary = validate_chrome_trace(&json).expect("trace with clones validates");
        assert_eq!(summary.count("speculation"), 3);
        assert!(json.contains("task s0p0 a0 c1"), "clone span is named distinctly");
        assert!(json.contains("\"ordinal\":1"));
    }

    #[test]
    fn clone_rows_are_tagged_in_the_ascii_timeline() {
        let c = enabled_collector(1024);
        c.record_driver(EventKind::StageStart { stage: 0, kind: StageKind::Result, tasks: 1 });
        let s = scope(0, 0, 0);
        let clone = TaskScope { ordinal: 2, ..s };
        c.record(Some(s), EventKind::TaskStart);
        c.record(Some(clone), EventKind::TaskStart);
        c.record(Some(clone), EventKind::TaskSuccess);
        c.record(Some(s), EventKind::TaskSuccess);
        c.record_driver(EventKind::StageEnd { stage: 0, failed_attempts: 0 });
        let timeline = ascii_timeline(&c.snapshot());
        assert!(timeline.contains("a0 c2"), "{timeline}");
    }

    #[test]
    fn validator_rejects_non_monotone_ts() {
        let bad = r#"{"traceEvents":[
            {"name":"a","cat":"x","ph":"i","ts":5,"pid":0,"tid":0,"s":"t","args":{}},
            {"name":"b","cat":"x","ph":"i","ts":4,"pid":0,"tid":0,"s":"t","args":{}}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":7}").is_err());
    }

    #[test]
    fn failed_then_retried_attempt_appears_twice() {
        let c = enabled_collector(1024);
        c.record_driver(EventKind::StageStart { stage: 0, kind: StageKind::Result, tasks: 1 });
        let a0 = scope(0, 0, 0);
        let a1 = scope(0, 0, 1);
        c.record(Some(a0), EventKind::TaskStart);
        c.record(Some(a0), EventKind::TaskFailure { injected: true });
        c.record(Some(a1), EventKind::TaskStart);
        c.record(Some(a1), EventKind::TaskSuccess);
        c.record_driver(EventKind::StageEnd { stage: 0, failed_attempts: 1 });
        let t = c.snapshot();
        // attempt 1 starts after attempt 0 ends (same executor lane)
        let fail_vt =
            t.events.iter().find(|e| matches!(e.kind, EventKind::TaskFailure { .. })).unwrap().vt;
        let retry_start = t
            .events
            .iter()
            .find(|e| e.scope == Some(a1) && e.kind == EventKind::TaskStart)
            .unwrap()
            .vt;
        assert!(retry_start >= fail_vt, "retry serializes on the lane");
        let timeline = ascii_timeline(&t);
        assert!(timeline.contains("fail(injected)"), "{timeline}");
        assert!(timeline.contains("a1"), "{timeline}");
        let summary = validate_chrome_trace(&chrome_trace_json(&t)).unwrap();
        assert_eq!(summary.count("task"), 2, "both attempts exported");
    }
}
