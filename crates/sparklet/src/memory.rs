//! Memory accounting: per-executor byte budgets, task reservations, and
//! the evict → spill → backpressure ladder.
//!
//! The paper's substrate ran under hard per-executor memory limits; this
//! module gives `sparklet` the same constraint as a first-class, typed
//! budget instead of unbounded in-process maps. One [`MemoryManager`]
//! per [`crate::Context`] keeps a ledger of accounted bytes per *lane* —
//! one lane per virtual executor plus [`DRIVER_LANE`] for driver-side
//! collection buffers — against a [`MemoryBudget`]:
//!
//! * **Task reservations** (scheduler): before submitting a task the
//!   driver reserves the task's declared working-set bytes on its
//!   executor's lane. A reservation that cannot be granted *defers* the
//!   submission (backpressure) until running tasks release theirs; only
//!   a single reservation larger than the whole budget is an error
//!   ([`crate::SparkError::OutOfMemory`]).
//! * **Storage charges** (cache, shuffle): resident cached partitions
//!   and shuffle map-output buffers charge their lane; when a charge
//!   would exceed the budget the owner first evicts or spills
//!   (see [`crate::storage::CacheManager`], [`crate::spill::SpillStore`]).
//!
//! Accounting is always on — an unbounded manager still tracks peaks,
//! which is how the perf suite measures the unbounded high-water mark to
//! derive a budget from — but `MemoryAction` trace events are recorded
//! only when the budget is bounded, so traces of unbudgeted runs are
//! byte-identical to pre-budget traces.

use crate::trace::{EventKind, MemOp, TraceCollector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Ledger lane used for driver-side buffers (collected partial
/// clusters). Executor lanes are the executor ids themselves.
pub const DRIVER_LANE: usize = usize::MAX;

/// A per-executor byte budget. [`MemoryBudget::UNBOUNDED`] (the default)
/// disables enforcement while keeping the accounting live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    per_lane: u64,
}

impl MemoryBudget {
    /// No limit: every reservation and charge is granted.
    pub const UNBOUNDED: MemoryBudget = MemoryBudget { per_lane: u64::MAX };

    /// A hard per-executor (and per-driver-lane) budget in bytes.
    pub fn per_executor(bytes: u64) -> Self {
        MemoryBudget { per_lane: bytes.max(1) }
    }

    /// The per-lane byte limit (`u64::MAX` when unbounded).
    pub fn bytes(self) -> u64 {
        self.per_lane
    }

    /// Whether enforcement is active.
    pub fn is_bounded(self) -> bool {
        self.per_lane != u64::MAX
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        MemoryBudget::UNBOUNDED
    }
}

/// Outcome of a task reservation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// Reserved; the ledger was charged.
    Granted,
    /// Over budget right now — resubmit after a running task releases
    /// its reservation (scheduler backpressure).
    Deferred,
    /// The reservation alone exceeds the whole per-lane budget; no
    /// amount of waiting can grant it.
    TooLarge,
}

/// A point-in-time snapshot of the manager's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// High-water mark of total accounted bytes across all lanes.
    pub peak_bytes: u64,
    /// Largest per-lane high-water mark.
    pub max_lane_peak: u64,
    /// Bytes written to the spill tier.
    pub spilled_bytes: u64,
    /// Spilled blobs read back.
    pub spill_reads: u64,
    /// Bytes freed by evicting (dropping) cache entries.
    pub evicted_bytes: u64,
    /// Cache entries evicted outright.
    pub evictions: u64,
    /// Task submissions deferred because a reservation could not be
    /// granted.
    pub backpressure_waits: u64,
    /// Broadcast bytes shipped — metered but budget-exempt (broadcasts
    /// are shared read-only state, not per-task working memory).
    pub broadcast_bytes: u64,
    /// Total task working-set bytes ever granted (by
    /// [`MemoryManager::reserve_task`], forced or not, and by the quiet
    /// backpressure-drain path).
    pub task_reserved_bytes: u64,
    /// Total task working-set bytes released back by finished attempts.
    /// Once every submitted attempt has run to completion,
    /// `task_released_bytes == task_reserved_bytes` — the ledger
    /// conservation law the schedule explorer's oracle checks.
    pub task_released_bytes: u64,
}

#[derive(Default)]
struct Lane {
    used: u64,
    peak: u64,
}

struct Ledger {
    budget: MemoryBudget,
    lanes: HashMap<usize, Lane>,
    total_used: u64,
    stats: MemoryStats,
}

/// The per-context memory ledger. Cheap to share (`Arc`), internally a
/// single mutex — every operation is a few integer updates.
pub struct MemoryManager {
    inner: Mutex<Ledger>,
    tracer: Arc<TraceCollector>,
}

impl MemoryManager {
    /// A manager enforcing `budget`, reporting `MemoryAction` events to
    /// `tracer` when bounded.
    pub fn new(budget: MemoryBudget, tracer: Arc<TraceCollector>) -> Self {
        MemoryManager {
            inner: Mutex::new(Ledger {
                budget,
                lanes: HashMap::new(),
                total_used: 0,
                stats: MemoryStats::default(),
            }),
            tracer,
        }
    }

    /// An unbounded manager with no trace sink — for components used
    /// outside a [`crate::Context`] (direct `CacheManager` tests, etc.).
    pub fn unbounded() -> Arc<Self> {
        Arc::new(MemoryManager::new(MemoryBudget::UNBOUNDED, TraceCollector::disabled()))
    }

    /// The current budget.
    pub fn budget(&self) -> MemoryBudget {
        self.inner.lock().budget
    }

    /// Replace the budget. Applies to subsequent grants; bytes already
    /// accounted stay accounted (an over-budget ledger simply defers new
    /// work until releases catch up).
    pub fn set_budget(&self, budget: MemoryBudget) {
        self.inner.lock().budget = budget;
    }

    fn record(&self, bounded: bool, op: MemOp, lane: usize, bytes: u64) {
        if bounded {
            self.tracer.record_auto(EventKind::MemoryAction { op, lane, bytes });
        }
    }

    fn charge_locked(ledger: &mut Ledger, lane: usize, bytes: u64) {
        let l = ledger.lanes.entry(lane).or_default();
        l.used += bytes;
        l.peak = l.peak.max(l.used);
        ledger.stats.max_lane_peak = ledger.stats.max_lane_peak.max(l.peak);
        ledger.total_used += bytes;
        ledger.stats.peak_bytes = ledger.stats.peak_bytes.max(ledger.total_used);
    }

    fn uncharge_locked(ledger: &mut Ledger, lane: usize, bytes: u64) {
        let l = ledger.lanes.entry(lane).or_default();
        l.used = l.used.saturating_sub(bytes);
        ledger.total_used = ledger.total_used.saturating_sub(bytes);
    }

    /// Reserve `bytes` of task working memory on `lane`. `force` grants
    /// even over budget — the scheduler's starvation escape hatch (a
    /// lane with nothing in flight must always be able to run one task).
    pub fn reserve_task(&self, lane: usize, bytes: u64, force: bool) -> Grant {
        if bytes == 0 {
            return Grant::Granted;
        }
        let (grant, bounded) = {
            let mut ledger = self.inner.lock();
            let bounded = ledger.budget.is_bounded();
            let limit = ledger.budget.bytes();
            if bounded && bytes > limit {
                (Grant::TooLarge, bounded)
            } else {
                let used = ledger.lanes.get(&lane).map_or(0, |l| l.used);
                if bounded && !force && used + bytes > limit {
                    ledger.stats.backpressure_waits += 1;
                    (Grant::Deferred, bounded)
                } else {
                    Self::charge_locked(&mut ledger, lane, bytes);
                    ledger.stats.task_reserved_bytes += bytes;
                    (Grant::Granted, bounded)
                }
            }
        };
        if grant == Grant::Deferred {
            self.record(bounded, MemOp::Backpressure, lane, bytes);
        }
        grant
    }

    /// Release a task reservation made by [`MemoryManager::reserve_task`]
    /// or [`MemoryManager::reserve_task_quiet`].
    pub fn release_task(&self, lane: usize, bytes: u64) {
        if bytes > 0 {
            let mut ledger = self.inner.lock();
            Self::uncharge_locked(&mut ledger, lane, bytes);
            ledger.stats.task_released_bytes += bytes;
        }
    }

    /// Quiet retry of a deferred task reservation: charge if it fits,
    /// without bumping the backpressure counter or emitting trace
    /// events (the scheduler polls this after every release, and
    /// repeated polling would inflate both). A successful charge counts
    /// toward `task_reserved_bytes` like any granted reservation, so
    /// the reserved/released conservation law holds on either path.
    pub fn reserve_task_quiet(&self, lane: usize, bytes: u64) -> bool {
        if bytes == 0 {
            return true;
        }
        let mut ledger = self.inner.lock();
        let fits = !ledger.budget.is_bounded()
            || ledger.lanes.get(&lane).map_or(0, |l| l.used) + bytes <= ledger.budget.bytes();
        if fits {
            Self::charge_locked(&mut ledger, lane, bytes);
            ledger.stats.task_reserved_bytes += bytes;
        }
        fits
    }

    /// Charge storage bytes if they fit (or the budget is unbounded).
    /// Returns `false` — without charging — when bounded and over
    /// budget; the caller should evict/spill and retry or force.
    pub fn try_charge(&self, lane: usize, bytes: u64) -> bool {
        let mut ledger = self.inner.lock();
        let fits = !ledger.budget.is_bounded()
            || ledger.lanes.get(&lane).map_or(0, |l| l.used) + bytes <= ledger.budget.bytes();
        if fits {
            Self::charge_locked(&mut ledger, lane, bytes);
        }
        fits
    }

    /// Charge storage bytes unconditionally (used after spilling made
    /// room, or when no spill codec exists and correctness requires the
    /// bytes to stay resident).
    pub fn force_charge(&self, lane: usize, bytes: u64) {
        Self::charge_locked(&mut self.inner.lock(), lane, bytes);
    }

    /// Return previously charged storage bytes.
    pub fn uncharge(&self, lane: usize, bytes: u64) {
        Self::uncharge_locked(&mut self.inner.lock(), lane, bytes);
    }

    /// Account an eviction: `bytes` were freed by dropping an entry.
    pub fn note_evict(&self, lane: usize, bytes: u64) {
        let bounded = {
            let mut ledger = self.inner.lock();
            Self::uncharge_locked(&mut ledger, lane, bytes);
            ledger.stats.evicted_bytes += bytes;
            ledger.stats.evictions += 1;
            ledger.budget.is_bounded()
        };
        self.record(bounded, MemOp::Evict, lane, bytes);
    }

    /// Account a spill: `bytes` moved from the ledger to the spill tier.
    pub fn note_spill(&self, lane: usize, bytes: u64) {
        let bounded = {
            let mut ledger = self.inner.lock();
            Self::uncharge_locked(&mut ledger, lane, bytes);
            ledger.stats.spilled_bytes += bytes;
            ledger.budget.is_bounded()
        };
        self.record(bounded, MemOp::Spill, lane, bytes);
    }

    /// Account a spilled blob being read back (the caller re-charges
    /// residency separately if it re-admits the data).
    pub fn note_spill_read(&self, lane: usize, bytes: u64) {
        let bounded = {
            let mut ledger = self.inner.lock();
            ledger.stats.spill_reads += 1;
            ledger.budget.is_bounded()
        };
        self.record(bounded, MemOp::SpillRead, lane, bytes);
    }

    /// Meter broadcast bytes: exempt from the budget (broadcasts are
    /// shared read-only state) but visible in [`MemoryStats`].
    pub fn meter_broadcast(&self, bytes: u64) {
        self.inner.lock().stats.broadcast_bytes += bytes;
    }

    /// Bytes currently accounted on a lane.
    pub fn lane_used(&self, lane: usize) -> u64 {
        self.inner.lock().lanes.get(&lane).map_or(0, |l| l.used)
    }

    /// A lane's high-water mark.
    pub fn lane_peak(&self, lane: usize) -> u64 {
        self.inner.lock().lanes.get(&lane).map_or(0, |l| l.peak)
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> MemoryStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounded(bytes: u64) -> MemoryManager {
        MemoryManager::new(MemoryBudget::per_executor(bytes), TraceCollector::disabled())
    }

    #[test]
    fn unbounded_grants_everything_and_tracks_peaks() {
        let m = MemoryManager::unbounded();
        assert_eq!(m.reserve_task(0, 1 << 40, false), Grant::Granted);
        assert_eq!(m.reserve_task(1, 100, false), Grant::Granted);
        let s = m.stats();
        assert_eq!(s.peak_bytes, (1 << 40) + 100);
        assert_eq!(s.max_lane_peak, 1 << 40);
        m.release_task(0, 1 << 40);
        m.release_task(1, 100);
        assert_eq!(m.lane_used(0), 0);
        // peaks are high-water marks, not current usage
        assert_eq!(m.stats().peak_bytes, (1 << 40) + 100);
    }

    #[test]
    fn bounded_defers_then_grants_after_release() {
        let m = bounded(100);
        assert_eq!(m.reserve_task(0, 60, false), Grant::Granted);
        assert_eq!(m.reserve_task(0, 60, false), Grant::Deferred);
        // lanes are independent budgets
        assert_eq!(m.reserve_task(1, 60, false), Grant::Granted);
        m.release_task(0, 60);
        assert_eq!(m.reserve_task(0, 60, false), Grant::Granted);
        assert_eq!(m.stats().backpressure_waits, 1);
    }

    #[test]
    fn single_reservation_over_budget_is_too_large_even_forced_lane_is_empty() {
        let m = bounded(100);
        assert_eq!(m.reserve_task(0, 101, false), Grant::TooLarge);
        // force overrides crowding, never the too-large rule
        assert_eq!(m.reserve_task(0, 101, true), Grant::TooLarge);
        assert_eq!(m.reserve_task(0, 90, false), Grant::Granted);
        assert_eq!(m.reserve_task(0, 90, true), Grant::Granted);
        assert_eq!(m.lane_used(0), 180);
    }

    #[test]
    fn storage_charges_and_spill_accounting_balance() {
        let m = bounded(100);
        assert!(m.try_charge(0, 80));
        assert!(!m.try_charge(0, 40));
        m.note_spill(0, 80);
        assert_eq!(m.lane_used(0), 0);
        assert!(m.try_charge(0, 40));
        m.note_evict(0, 40);
        let s = m.stats();
        assert_eq!(s.spilled_bytes, 80);
        assert_eq!(s.evicted_bytes, 40);
        assert_eq!(s.evictions, 1);
        assert_eq!(m.lane_used(0), 0);
    }

    #[test]
    fn task_ledger_conserves_reserved_and_released() {
        let m = bounded(100);
        assert_eq!(m.reserve_task(0, 60, false), Grant::Granted);
        assert_eq!(m.reserve_task(0, 60, false), Grant::Deferred, "deferred counts nothing");
        assert!(!m.reserve_task_quiet(0, 60), "quiet path refuses over budget");
        m.release_task(0, 60);
        assert!(m.reserve_task_quiet(0, 60), "quiet path charges when it fits");
        assert_eq!(m.reserve_task(1, 90, true), Grant::Granted, "forced grants count too");
        m.release_task(0, 60);
        m.release_task(1, 90);
        let s = m.stats();
        assert_eq!(s.task_reserved_bytes, 60 + 60 + 90);
        assert_eq!(s.task_released_bytes, s.task_reserved_bytes, "conservation at quiescence");
        // zero-byte reservations are free on both sides
        assert_eq!(m.reserve_task(0, 0, false), Grant::Granted);
        m.release_task(0, 0);
        assert_eq!(m.stats().task_reserved_bytes, 210);
        assert_eq!(m.stats().task_released_bytes, 210);
    }

    #[test]
    fn broadcast_is_metered_but_exempt() {
        let m = bounded(10);
        m.meter_broadcast(1_000_000);
        assert_eq!(m.stats().broadcast_bytes, 1_000_000);
        // the broadcast did not consume budget
        assert!(m.try_charge(0, 10));
    }
}
