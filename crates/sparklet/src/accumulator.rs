//! Accumulators — write-only shared variables.
//!
//! The paper uses an accumulator to bring partial clusters back to the
//! driver: "Because it can be used as 'Writable' variables in executors,
//! we use it to implement bringing back the partial clusters." Our
//! implementation keeps Spark's action-accumulator guarantee: updates
//! made by a task attempt are buffered and merged into the driver value
//! **only when that attempt succeeds**; updates from failed/retried
//! attempts are discarded, so values are exactly-once per task even with
//! fault injection.

use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

type AnyBox = Box<dyn Any + Send>;
type ApplyFn = Arc<dyn Fn(&mut AnyBox, AnyBox) + Send + Sync>;

/// One buffered update produced inside a task.
pub(crate) struct PendingUpdate {
    id: usize,
    update: AnyBox,
    apply: ApplyFn,
}

thread_local! {
    /// Buffer installed by the executor worker for the current task.
    static TASK_BUFFER: RefCell<Option<Vec<PendingUpdate>>> = const { RefCell::new(None) };
}

/// Install a fresh buffer for the task about to run on this thread.
pub(crate) fn begin_task_buffer() {
    TASK_BUFFER.with(|b| *b.borrow_mut() = Some(Vec::new()));
}

/// Take the buffer after the task finished (successfully or not).
pub(crate) fn take_task_buffer() -> Vec<PendingUpdate> {
    TASK_BUFFER.with(|b| b.borrow_mut().take()).unwrap_or_default()
}

/// Driver-side store of accumulator values.
#[derive(Default)]
pub struct AccumulatorRegistry {
    values: Mutex<HashMap<usize, AnyBox>>,
}

impl AccumulatorRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, id: usize, init: AnyBox) {
        self.values.lock().insert(id, init);
    }

    fn apply(&self, id: usize, update: AnyBox, apply: &ApplyFn) {
        let mut v = self.values.lock();
        let slot = v.get_mut(&id).expect("accumulator registered");
        apply(slot, update);
    }

    /// Merge a batch of buffered updates from a successful task.
    pub(crate) fn apply_all(&self, updates: Vec<PendingUpdate>) {
        let mut v = self.values.lock();
        for u in updates {
            let slot = v.get_mut(&u.id).expect("accumulator registered");
            (u.apply)(slot, u.update);
        }
    }

    fn read<T: Clone + 'static>(&self, id: usize) -> T {
        let v = self.values.lock();
        v.get(&id).and_then(|b| b.downcast_ref::<T>()).expect("accumulator type matches").clone()
    }

    fn take_value<T: Default + 'static>(&self, id: usize) -> T {
        let mut v = self.values.lock();
        let slot = v.get_mut(&id).and_then(|b| b.downcast_mut::<T>());
        std::mem::take(slot.expect("accumulator type matches"))
    }
}

/// A write-only shared variable: executors `add`, only the driver reads.
///
/// `T` is the driver-side value, `U` the per-update payload.
pub struct Accumulator<T, U = T> {
    id: usize,
    registry: Arc<AccumulatorRegistry>,
    apply: ApplyFn,
    _pd: PhantomData<fn(U) -> T>,
}

impl<T, U> Clone for Accumulator<T, U> {
    fn clone(&self) -> Self {
        Accumulator {
            id: self.id,
            registry: Arc::clone(&self.registry),
            apply: Arc::clone(&self.apply),
            _pd: PhantomData,
        }
    }
}

impl<T, U> Accumulator<T, U>
where
    T: Send + 'static,
    U: Send + 'static,
{
    /// Create and register an accumulator. Usually called through
    /// [`crate::Context`] helpers.
    pub(crate) fn create(
        id: usize,
        registry: Arc<AccumulatorRegistry>,
        init: T,
        fold: impl Fn(&mut T, U) + Send + Sync + 'static,
    ) -> Self {
        registry.register(id, Box::new(init));
        let apply: ApplyFn = Arc::new(move |slot: &mut AnyBox, update: AnyBox| {
            let value = slot.downcast_mut::<T>().expect("accumulator value type");
            let update = *update.downcast::<U>().expect("accumulator update type");
            fold(value, update);
        });
        Accumulator { id, registry, apply, _pd: PhantomData }
    }

    /// Add an update. Inside a task this is buffered until the attempt
    /// succeeds; on the driver it applies immediately.
    pub fn add(&self, update: U) {
        let leftover = TASK_BUFFER.with(|b| {
            let mut b = b.borrow_mut();
            match b.as_mut() {
                Some(buf) => {
                    buf.push(PendingUpdate {
                        id: self.id,
                        update: Box::new(update),
                        apply: Arc::clone(&self.apply),
                    });
                    None
                }
                None => Some(update),
            }
        });
        if let Some(update) = leftover {
            self.registry.apply(self.id, Box::new(update), &self.apply);
        }
    }
}

impl<T, U> Accumulator<T, U>
where
    T: Clone + Send + 'static,
{
    /// Read the driver-side value (Spark's `acc.value`).
    pub fn value(&self) -> T {
        self.registry.read(self.id)
    }
}

impl<T, U> Accumulator<T, U>
where
    T: Default + Send + 'static,
{
    /// Drain the driver-side value, leaving `T::default()` behind.
    ///
    /// The overlapped-collection primitive: install a fold that does
    /// the driver's prep work as each task's updates are merged (the
    /// scheduler applies them on the driver thread the moment a task
    /// succeeds, while late tasks still run), then `take` the finished
    /// value after the job — no clone, no post-barrier scan.
    pub fn take(&self) -> T {
        self.registry.take_value(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(reg: &Arc<AccumulatorRegistry>, id: usize) -> Accumulator<u64> {
        Accumulator::create(id, Arc::clone(reg), 0u64, |a, b| *a += b)
    }

    #[test]
    fn driver_side_adds_apply_immediately() {
        let reg = Arc::new(AccumulatorRegistry::new());
        let acc = counter(&reg, 0);
        acc.add(5);
        acc.add(7);
        assert_eq!(acc.value(), 12);
    }

    #[test]
    fn task_buffered_updates_apply_on_success_only() {
        let reg = Arc::new(AccumulatorRegistry::new());
        let acc = counter(&reg, 0);

        // simulate a failed attempt: buffer then drop
        begin_task_buffer();
        acc.add(100);
        let dropped = take_task_buffer();
        assert_eq!(dropped.len(), 1);
        drop(dropped);
        assert_eq!(acc.value(), 0, "failed attempt contributes nothing");

        // successful attempt: buffer then merge
        begin_task_buffer();
        acc.add(3);
        acc.add(4);
        let updates = take_task_buffer();
        reg.apply_all(updates);
        assert_eq!(acc.value(), 7);
    }

    #[test]
    fn collection_accumulator_pattern() {
        let reg = Arc::new(AccumulatorRegistry::new());
        let acc: Accumulator<Vec<String>, String> =
            Accumulator::create(1, Arc::clone(&reg), Vec::new(), |v, s| v.push(s));
        acc.add("a".into());
        acc.add("b".into());
        assert_eq!(acc.value(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn clones_share_the_same_slot() {
        let reg = Arc::new(AccumulatorRegistry::new());
        let acc = counter(&reg, 2);
        let acc2 = acc.clone();
        acc.add(1);
        acc2.add(2);
        assert_eq!(acc.value(), 3);
    }

    #[test]
    fn multiple_accumulators_are_independent() {
        let reg = Arc::new(AccumulatorRegistry::new());
        let a = counter(&reg, 0);
        let b = counter(&reg, 1);
        a.add(1);
        b.add(10);
        assert_eq!(a.value(), 1);
        assert_eq!(b.value(), 10);
    }

    #[test]
    fn take_without_begin_is_empty() {
        assert!(take_task_buffer().is_empty());
    }
}
