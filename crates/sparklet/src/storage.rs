//! Cached-partition storage (the engine's "memory store").
//!
//! Spark's headline feature over MapReduce — and a theme the paper's
//! background section dwells on — is keeping RDDs in memory for reuse.
//! `CacheManager` stores materialized partitions keyed by
//! `(rdd, partition)`, tagged with the executor that produced them so a
//! simulated executor loss evicts exactly its partitions, which are then
//! rebuilt from lineage on next access.
//!
//! Entries are **size-accounted** against the owning executor's lane in
//! the [`MemoryManager`]. When a put (or a spill read-back) would exceed
//! a bounded budget, the cache walks the eviction ladder on that lane,
//! least-recently-used first:
//!
//! 1. **Spill** — entries put through [`crate::rdd::Rdd::cache_spillable`]
//!    carry a byte codec; their data moves to the [`SpillStore`] and is
//!    read back (checksum-verified) on the next `get`.
//! 2. **Evict** — codec-less entries are dropped outright; lineage
//!    recomputes them on next access (Spark's `MEMORY_ONLY`).
//! 3. **Skip** — if no unpinned victim can make room, the new entry is
//!    simply not cached (correct, just slower).
//!
//! **Determinism.** The LRU stamp is a logical access counter, so the
//! eviction decision is a pure function of the cache's *operation
//! sequence*, never of wall-clock time or worker-thread identity.
//! Victims are chosen per-executor with `(stamp, rdd, partition)`
//! ordering; since tasks are bound to executors by `partition %
//! num_executors` and the driver serializes stages, any workload that
//! keeps at most one task in flight per executor (the DBSCAN pipeline's
//! layout) produces the same eviction order at every worker-thread
//! count. Pinned entries (`pin`/`unpin`) are never victims.

use crate::memory::MemoryManager;
use crate::spill::{SpillHandle, SpillStore};
use crate::task::TaskError;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

pub(crate) type CachedPartition = Arc<dyn Any + Send + Sync>;

/// Byte codec attached to spillable cache entries (type-erased; built
/// by [`crate::rdd::Rdd::cache_spillable`] from [`crate::spill::Spillable`]).
pub(crate) trait SpillCodec: Send + Sync {
    /// Encode the partition to bytes (`None` on type mismatch).
    fn encode(&self, data: &CachedPartition) -> Option<Vec<u8>>;
    /// Decode bytes back to a partition (`None` on malformed input).
    fn decode(&self, bytes: &[u8]) -> Option<CachedPartition>;
}

/// What a [`CacheManager`] needs: the ledger it accounts against and
/// the spill tier it overflows into. No hidden defaults — the context
/// passes its own manager/store, tests make their intent explicit.
pub struct CacheConfig {
    /// Ledger to account entry bytes against.
    pub memory: Arc<MemoryManager>,
    /// Disk tier for spilled entries.
    pub spill: Arc<SpillStore>,
}

impl CacheConfig {
    /// An unbounded, untraced configuration (tests, standalone use).
    pub fn unbounded() -> Self {
        CacheConfig {
            memory: MemoryManager::unbounded(),
            spill: Arc::new(SpillStore::new().expect("create spill dir")),
        }
    }
}

enum EntryState {
    Resident(CachedPartition),
    Spilled(SpillHandle),
}

struct Entry {
    executor: usize,
    bytes: u64,
    /// Logical access stamp (see module docs for the determinism
    /// argument).
    stamp: u64,
    pins: u32,
    state: EntryState,
    codec: Option<Arc<dyn SpillCodec>>,
}

#[derive(Default, Clone, Copy)]
struct Counters {
    hits: u64,
    misses: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<(usize, usize), Entry>,
    per_executor: HashMap<usize, Counters>,
    /// Counters of killed executors, folded in so totals stay exact
    /// across executor deaths.
    retired: Counters,
    clock: u64,
}

/// In-memory store of cached RDD partitions, size-accounted with
/// LRU-with-pinning eviction and a disk spill tier.
pub struct CacheManager {
    inner: Mutex<Inner>,
    memory: Arc<MemoryManager>,
    spill: Arc<SpillStore>,
}

impl CacheManager {
    /// Fresh, empty cache accounting against `config`'s ledger.
    pub fn new(config: CacheConfig) -> Self {
        CacheManager {
            inner: Mutex::new(Inner::default()),
            memory: config.memory,
            spill: config.spill,
        }
    }

    /// Walk the eviction ladder on `lane` until `bytes` fit (or no
    /// unpinned victim remains). Returns whether the charge was made.
    fn make_room(
        &self,
        inner: &mut Inner,
        lane: usize,
        bytes: u64,
        except: (usize, usize),
    ) -> bool {
        loop {
            if self.memory.try_charge(lane, bytes) {
                return true;
            }
            // LRU victim on this lane: oldest stamp, then (rdd, part)
            // for a canonical tiebreak
            let victim = inner
                .entries
                .iter()
                .filter(|(k, e)| {
                    **k != except
                        && e.executor == lane
                        && e.pins == 0
                        && matches!(e.state, EntryState::Resident(_))
                })
                .min_by_key(|(k, e)| (e.stamp, k.0, k.1))
                .map(|(k, _)| *k);
            let Some(key) = victim else {
                return false;
            };
            let e = inner.entries.get_mut(&key).expect("victim exists");
            let spilled = match (&e.state, &e.codec) {
                (EntryState::Resident(data), Some(codec)) => {
                    codec.encode(data).and_then(|blob| self.spill.spill(&blob).ok())
                }
                _ => None,
            };
            match spilled {
                Some(handle) => {
                    let freed = e.bytes;
                    e.state = EntryState::Spilled(handle);
                    self.memory.note_spill(lane, freed);
                }
                None => {
                    let freed = e.bytes;
                    inner.entries.remove(&key);
                    self.memory.note_evict(lane, freed);
                }
            }
        }
    }

    /// Look up a cached partition, counting hit/miss per executor.
    /// Spilled entries are read back (checksum-verified) and re-admitted
    /// if room allows; corruption surfaces as a typed storage error and
    /// the broken entry is dropped so lineage can recompute it.
    pub(crate) fn get(
        &self,
        rdd: usize,
        part: usize,
    ) -> Result<Option<CachedPartition>, TaskError> {
        let accessor = crate::task::current_executor();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        let Some(e) = inner.entries.get_mut(&(rdd, part)) else {
            inner.per_executor.entry(accessor).or_default().misses += 1;
            return Ok(None);
        };
        e.stamp = stamp;
        match &e.state {
            EntryState::Resident(data) => {
                let data = data.clone();
                inner.per_executor.entry(accessor).or_default().hits += 1;
                Ok(Some(data))
            }
            EntryState::Spilled(handle) => {
                let handle = *handle;
                let lane = e.executor;
                let bytes = e.bytes;
                let codec = e.codec.clone().expect("spilled entries always carry a codec");
                let blob = match self.spill.read(handle) {
                    Ok(b) => b,
                    Err(err) => {
                        // drop the broken entry; the caller's retry
                        // recomputes it from lineage
                        inner.entries.remove(&(rdd, part));
                        self.spill.remove(handle);
                        self.memory.note_evict(lane, 0);
                        return Err(TaskError::storage(format!(
                            "cached partition (rdd {rdd}, part {part}) lost in spill tier: {err}"
                        )));
                    }
                };
                let Some(data) = codec.decode(&blob) else {
                    inner.entries.remove(&(rdd, part));
                    self.spill.remove(handle);
                    self.memory.note_evict(lane, 0);
                    return Err(TaskError::storage(format!(
                        "cached partition (rdd {rdd}, part {part}) failed to decode after spill read-back"
                    )));
                };
                self.memory.note_spill_read(lane, blob.len() as u64);
                // re-admit if the lane has (or can make) room; otherwise
                // serve the data but leave the entry on disk
                let e = inner.entries.get_mut(&(rdd, part)).expect("entry still present");
                e.pins += 1;
                let admitted = self.make_room(&mut inner, lane, bytes, (rdd, part));
                let e = inner.entries.get_mut(&(rdd, part)).expect("pinned entry survives");
                e.pins -= 1;
                if admitted {
                    e.state = EntryState::Resident(data.clone());
                    self.spill.remove(handle);
                }
                inner.per_executor.entry(accessor).or_default().hits += 1;
                Ok(Some(data))
            }
        }
    }

    /// Store a partition produced on `executor`, accounting `bytes`
    /// against its lane. Entries with a `codec` spill under pressure;
    /// codec-less entries are evicted to lineage. Returns whether the
    /// entry was admitted (a full lane with no evictable victim skips
    /// caching rather than failing).
    pub(crate) fn put(
        &self,
        rdd: usize,
        part: usize,
        executor: usize,
        data: CachedPartition,
        bytes: u64,
        codec: Option<Arc<dyn SpillCodec>>,
    ) -> bool {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        // overwrite (task retry recomputed the partition): release the
        // old entry's accounting first
        if let Some(old) = inner.entries.remove(&(rdd, part)) {
            match old.state {
                EntryState::Resident(_) => self.memory.uncharge(old.executor, old.bytes),
                EntryState::Spilled(h) => self.spill.remove(h),
            }
        }
        if !self.make_room(&mut inner, executor, bytes, (rdd, part)) {
            return false;
        }
        inner.entries.insert(
            (rdd, part),
            Entry { executor, bytes, stamp, pins: 0, state: EntryState::Resident(data), codec },
        );
        true
    }

    /// Pin an entry: pinned entries are never eviction victims. Returns
    /// whether the entry exists.
    pub fn pin(&self, rdd: usize, part: usize) -> bool {
        match self.inner.lock().entries.get_mut(&(rdd, part)) {
            Some(e) => {
                e.pins += 1;
                true
            }
            None => false,
        }
    }

    /// Release one pin.
    pub fn unpin(&self, rdd: usize, part: usize) {
        if let Some(e) = self.inner.lock().entries.get_mut(&(rdd, part)) {
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Evict all partitions of an RDD (Spark's `unpersist`), returning
    /// their accounting. Returns the number evicted.
    pub fn unpersist(&self, rdd: usize) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner.entries.keys().filter(|(r, _)| *r == rdd).copied().collect();
        for key in &keys {
            let e = inner.entries.remove(key).expect("key listed");
            match e.state {
                EntryState::Resident(_) => self.memory.uncharge(e.executor, e.bytes),
                EntryState::Spilled(h) => self.spill.remove(h),
            }
        }
        keys.len()
    }

    /// Evict everything cached by `executor` (executor loss), releasing
    /// its ledger bytes, deleting its spill files, and folding its
    /// hit/miss counters into the retired totals so global counts stay
    /// exact. Returns the number evicted.
    pub fn kill_executor(&self, executor: usize) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<_> =
            inner.entries.iter().filter(|(_, e)| e.executor == executor).map(|(k, _)| *k).collect();
        for key in &keys {
            let e = inner.entries.remove(key).expect("key listed");
            match e.state {
                EntryState::Resident(_) => self.memory.uncharge(executor, e.bytes),
                EntryState::Spilled(h) => self.spill.remove(h),
            }
        }
        // reconcile counters: a dead executor's hits/misses move to the
        // retired bucket (totals unchanged, per-executor view reset)
        if let Some(c) = inner.per_executor.remove(&executor) {
            inner.retired.hits += c.hits;
            inner.retired.misses += c.misses;
        }
        keys.len()
    }

    /// Number of cached partitions (resident + spilled).
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently resident (excludes spilled entries).
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .lock()
            .entries
            .values()
            .filter(|e| matches!(e.state, EntryState::Resident(_)))
            .map(|e| e.bytes)
            .sum()
    }

    /// Entries currently parked in the spill tier.
    pub fn spilled_entries(&self) -> usize {
        self.inner
            .lock()
            .entries
            .values()
            .filter(|e| matches!(e.state, EntryState::Spilled(_)))
            .count()
    }

    /// Cache hits since creation (all executors, dead ones included).
    pub fn hits(&self) -> u64 {
        let inner = self.inner.lock();
        inner.retired.hits + inner.per_executor.values().map(|c| c.hits).sum::<u64>()
    }

    /// Cache misses since creation (all executors, dead ones included).
    pub fn misses(&self) -> u64 {
        let inner = self.inner.lock();
        inner.retired.misses + inner.per_executor.values().map(|c| c.misses).sum::<u64>()
    }

    /// Hits attributed to a live executor (0 after it is killed).
    pub fn executor_hits(&self, executor: usize) -> u64 {
        self.inner.lock().per_executor.get(&executor).map_or(0, |c| c.hits)
    }

    /// Misses attributed to a live executor (0 after it is killed).
    pub fn executor_misses(&self, executor: usize) -> u64 {
        self.inner.lock().per_executor.get(&executor).map_or(0, |c| c.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{MemoryBudget, MemoryManager};
    use crate::trace::TraceCollector;

    fn data(v: Vec<i32>) -> CachedPartition {
        Arc::new(v)
    }

    fn bounded(bytes: u64) -> (CacheManager, Arc<MemoryManager>) {
        let memory = Arc::new(MemoryManager::new(
            MemoryBudget::per_executor(bytes),
            TraceCollector::disabled(),
        ));
        let spill = Arc::new(SpillStore::new().unwrap());
        (CacheManager::new(CacheConfig { memory: Arc::clone(&memory), spill }), memory)
    }

    struct VecI32Codec;
    impl SpillCodec for VecI32Codec {
        fn encode(&self, data: &CachedPartition) -> Option<Vec<u8>> {
            data.downcast_ref::<Vec<i32>>().map(crate::spill::encode)
        }
        fn decode(&self, bytes: &[u8]) -> Option<CachedPartition> {
            crate::spill::decode::<Vec<i32>>(bytes).map(|v| Arc::new(v) as CachedPartition)
        }
    }

    #[test]
    fn put_get_counts_hits_and_misses() {
        let c = CacheManager::new(CacheConfig::unbounded());
        assert!(c.get(1, 0).unwrap().is_none());
        assert!(c.put(1, 0, 3, data(vec![1, 2]), 8, None));
        let got = c.get(1, 0).unwrap().unwrap();
        assert_eq!(got.downcast_ref::<Vec<i32>>().unwrap(), &vec![1, 2]);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn unpersist_removes_only_that_rdd() {
        let c = CacheManager::new(CacheConfig::unbounded());
        c.put(1, 0, 0, data(vec![]), 0, None);
        c.put(1, 1, 0, data(vec![]), 0, None);
        c.put(2, 0, 0, data(vec![]), 0, None);
        assert_eq!(c.unpersist(1), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(2, 0).unwrap().is_some());
    }

    #[test]
    fn kill_executor_evicts_its_partitions() {
        let c = CacheManager::new(CacheConfig::unbounded());
        c.put(1, 0, 0, data(vec![]), 0, None);
        c.put(1, 1, 1, data(vec![]), 0, None);
        assert_eq!(c.kill_executor(0), 1);
        assert!(c.get(1, 0).unwrap().is_none());
        assert!(c.get(1, 1).unwrap().is_some());
    }

    #[test]
    fn empty_cache_reports_empty() {
        let c = CacheManager::new(CacheConfig::unbounded());
        assert!(c.is_empty());
        c.put(0, 0, 0, data(vec![]), 0, None);
        assert!(!c.is_empty());
    }

    #[test]
    fn kill_executor_reconciles_bytes_and_counters() {
        let (c, memory) = bounded(1000);
        c.put(1, 0, 0, data(vec![1]), 400, None);
        c.put(1, 2, 0, data(vec![2]), 400, None);
        c.put(1, 1, 1, data(vec![3]), 300, None);
        // attribute some traffic to executor 0 (driver thread counts as
        // executor 0 without a task scope)
        assert!(c.get(1, 0).unwrap().is_some());
        assert!(c.get(9, 9).unwrap().is_none());
        assert_eq!(memory.lane_used(0), 800);
        let (hits, misses) = (c.hits(), c.misses());
        assert_eq!(c.kill_executor(0), 2);
        // byte accounting reconciled: lane 0 drained, lane 1 untouched
        assert_eq!(memory.lane_used(0), 0);
        assert_eq!(memory.lane_used(1), 300);
        // counter totals survive the death; per-executor view resets
        assert_eq!(c.hits(), hits);
        assert_eq!(c.misses(), misses);
        assert_eq!(c.executor_hits(0), 0);
        assert_eq!(c.executor_misses(0), 0);
        assert_eq!(c.resident_bytes(), 300);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_respects_pins() {
        // budget fits two 100-byte entries per lane; all on executor 0
        let (c, _m) = bounded(200);
        assert!(c.put(1, 0, 0, data(vec![0]), 100, None));
        assert!(c.put(1, 1, 0, data(vec![1]), 100, None));
        // touch (1,0) so (1,1) becomes the LRU victim
        assert!(c.get(1, 0).unwrap().is_some());
        assert!(c.put(1, 2, 0, data(vec![2]), 100, None));
        assert!(c.get(1, 1).unwrap().is_none(), "LRU entry evicted");
        assert!(c.get(1, 0).unwrap().is_some(), "recently-used entry kept");
        // pinning protects the LRU entry: the next-oldest goes instead
        c.pin(1, 0);
        assert!(c.put(1, 3, 0, data(vec![3]), 100, None));
        assert!(c.get(1, 0).unwrap().is_some(), "pinned entry survives");
        assert!(c.get(1, 2).unwrap().is_none(), "unpinned next-LRU evicted");
        c.unpin(1, 0);
    }

    #[test]
    fn spillable_entries_spill_and_read_back_byte_identical() {
        let (c, m) = bounded(200);
        let codec: Arc<dyn SpillCodec> = Arc::new(VecI32Codec);
        let v0: Vec<i32> = (0..10).collect();
        let v1: Vec<i32> = (100..120).collect();
        assert!(c.put(1, 0, 0, Arc::new(v0.clone()), 150, Some(Arc::clone(&codec))));
        // second put forces the first to spill, not drop
        assert!(c.put(1, 1, 0, Arc::new(v1.clone()), 150, Some(codec)));
        assert_eq!(c.spilled_entries(), 1);
        assert!(m.stats().spilled_bytes > 0);
        assert_eq!(m.stats().evictions, 0);
        // read-back is byte-identical and re-admits (spilling the other)
        let got = c.get(1, 0).unwrap().unwrap();
        assert_eq!(got.downcast_ref::<Vec<i32>>().unwrap(), &v0);
        assert_eq!(m.stats().spill_reads, 1);
        let got = c.get(1, 1).unwrap().unwrap();
        assert_eq!(got.downcast_ref::<Vec<i32>>().unwrap(), &v1);
    }

    #[test]
    fn oversized_entry_is_skipped_not_fatal() {
        let (c, m) = bounded(100);
        assert!(!c.put(1, 0, 0, data(vec![1; 64]), 500, None), "over-budget put skips caching");
        assert!(c.get(1, 0).unwrap().is_none());
        assert_eq!(m.lane_used(0), 0);
    }

    #[test]
    fn read_after_kill_executor_surfaces_a_clean_miss() {
        // kill_executor deletes a dead executor's spilled blobs from
        // disk; a later lookup of that partition must be a plain cache
        // miss (triggering recompute), with the handle gone from the
        // store and a direct read yielding the typed Missing error
        let memory = Arc::new(MemoryManager::new(
            MemoryBudget::per_executor(200),
            TraceCollector::disabled(),
        ));
        let spill = Arc::new(SpillStore::new().unwrap());
        let c = CacheManager::new(CacheConfig { memory, spill: Arc::clone(&spill) });
        let codec: Arc<dyn SpillCodec> = Arc::new(VecI32Codec);
        // two puts on executor 0 under a one-entry budget: the first spills
        assert!(c.put(1, 0, 0, data(vec![1, 2, 3]), 150, Some(Arc::clone(&codec))));
        assert!(c.put(1, 1, 0, data(vec![4]), 150, Some(codec)));
        assert_eq!(c.spilled_entries(), 1);
        let handle = spill.handles()[0];

        c.kill_executor(0);
        assert!(spill.is_empty(), "dead executor's blobs removed from disk");
        assert_eq!(spill.read(handle), Err(crate::spill::SpillError::Missing { id: handle.id() }));
        // both partitions (resident and spilled alike) are clean misses now
        assert!(c.get(1, 0).unwrap().is_none());
        assert!(c.get(1, 1).unwrap().is_none());
        assert_eq!(c.spilled_entries(), 0);
    }

    #[test]
    fn corrupted_spill_surfaces_typed_error_and_heals() {
        let memory = Arc::new(MemoryManager::new(
            MemoryBudget::per_executor(200),
            TraceCollector::disabled(),
        ));
        let spill = Arc::new(SpillStore::new().unwrap());
        let c = CacheManager::new(CacheConfig { memory, spill: Arc::clone(&spill) });
        let codec: Arc<dyn SpillCodec> = Arc::new(VecI32Codec);
        assert!(c.put(1, 0, 0, data(vec![1, 2, 3]), 150, Some(Arc::clone(&codec))));
        assert!(c.put(1, 1, 0, data(vec![4]), 150, Some(codec)));
        assert_eq!(c.spilled_entries(), 1);
        // corrupt the spilled blob on disk
        let handle = spill.handles()[0];
        let path = spill.path_of(handle);
        let bytes = std::fs::read(&path).unwrap();
        let mut broken = bytes.clone();
        let last = broken.len() - 1;
        broken[last] ^= 0xff;
        std::fs::write(&path, broken).unwrap();
        let err = c.get(1, 0).unwrap_err();
        assert!(err.to_string().contains("spill"), "typed storage error: {err}");
        // the broken entry is gone; a recompute can re-cache it
        assert!(c.get(1, 0).unwrap().is_none());
    }
}
