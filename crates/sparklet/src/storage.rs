//! Cached-partition storage (the engine's "memory store").
//!
//! Spark's headline feature over MapReduce — and a theme the paper's
//! background section dwells on — is keeping RDDs in memory for reuse.
//! `CacheManager` stores materialized partitions keyed by
//! `(rdd, partition)`, tagged with the executor that produced them so a
//! simulated executor loss evicts exactly its partitions, which are then
//! rebuilt from lineage on next access.

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type CachedPartition = Arc<dyn Any + Send + Sync>;

/// In-memory store of cached RDD partitions.
#[derive(Default)]
pub struct CacheManager {
    entries: Mutex<HashMap<(usize, usize), (usize, CachedPartition)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheManager {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a cached partition, counting hit/miss.
    pub(crate) fn get(&self, rdd: usize, part: usize) -> Option<CachedPartition> {
        let e = self.entries.lock();
        match e.get(&(rdd, part)) {
            Some((_, data)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(data.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a partition produced on `executor`.
    pub(crate) fn put(&self, rdd: usize, part: usize, executor: usize, data: CachedPartition) {
        self.entries.lock().insert((rdd, part), (executor, data));
    }

    /// Evict all partitions of an RDD (Spark's `unpersist`). Returns the
    /// number evicted.
    pub fn unpersist(&self, rdd: usize) -> usize {
        let mut e = self.entries.lock();
        let before = e.len();
        e.retain(|(r, _), _| *r != rdd);
        before - e.len()
    }

    /// Evict everything cached by `executor` (executor loss). Returns the
    /// number evicted.
    pub fn kill_executor(&self, executor: usize) -> usize {
        let mut e = self.entries.lock();
        let before = e.len();
        e.retain(|_, (ex, _)| *ex != executor);
        before - e.len()
    }

    /// Number of cached partitions.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(v: Vec<i32>) -> CachedPartition {
        Arc::new(v)
    }

    #[test]
    fn put_get_counts_hits_and_misses() {
        let c = CacheManager::new();
        assert!(c.get(1, 0).is_none());
        c.put(1, 0, 3, data(vec![1, 2]));
        let got = c.get(1, 0).unwrap();
        assert_eq!(got.downcast_ref::<Vec<i32>>().unwrap(), &vec![1, 2]);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn unpersist_removes_only_that_rdd() {
        let c = CacheManager::new();
        c.put(1, 0, 0, data(vec![]));
        c.put(1, 1, 0, data(vec![]));
        c.put(2, 0, 0, data(vec![]));
        assert_eq!(c.unpersist(1), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(2, 0).is_some());
    }

    #[test]
    fn kill_executor_evicts_its_partitions() {
        let c = CacheManager::new();
        c.put(1, 0, 0, data(vec![]));
        c.put(1, 1, 1, data(vec![]));
        assert_eq!(c.kill_executor(0), 1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(1, 1).is_some());
    }

    #[test]
    fn empty_cache_reports_empty() {
        let c = CacheManager::new();
        assert!(c.is_empty());
        c.put(0, 0, 0, data(vec![]));
        assert!(!c.is_empty());
    }
}
