//! Cluster configuration.

use crate::fault::FaultPlan;
use crate::memory::MemoryBudget;
use crate::schedule::{Fifo, SchedulePolicy};
use std::sync::Arc;

/// Straggler model for the virtual-cluster time simulation.
///
/// The paper's complexity analysis includes `t_straggling^ave`, "the
/// average wait time for \[the\] framework to allow all stragglers to
/// finish". We model it as: with probability `prob`, a task's simulated
/// duration is multiplied by `slowdown` (deterministically derived from
/// the task identity and the config seed, so runs are reproducible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerConfig {
    /// Probability that a task straggles.
    pub prob: f64,
    /// Multiplicative slowdown applied to straggling tasks.
    pub slowdown: f64,
}

impl StragglerConfig {
    /// No stragglers (the default).
    pub const NONE: StragglerConfig = StragglerConfig { prob: 0.0, slowdown: 1.0 };
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig::NONE
    }
}

/// Speculative-execution configuration: when and whether the scheduler
/// races a clone attempt against an in-flight straggler.
///
/// Detection is quantile-gated: once at least
/// [`SpeculationConfig::min_completions`] attempts *and*
/// [`SpeculationConfig::quantile_pct`] percent of the stage's tasks
/// have committed, any in-flight original whose elapsed time exceeds
/// [`SpeculationConfig::multiplier_pct`] percent of the median
/// committed-attempt duration is cloned (at most one clone per
/// attempt). The first reply to arrive commits the partition; the
/// twin's reply is recognized by its clone ordinal and discarded.
/// Thresholds are integer percentages so the type stays `Copy + Eq`
/// (it is embedded in `Resources`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpeculationConfig {
    /// Master switch (off by default — the scheduler then behaves
    /// exactly as before speculation existed).
    pub enabled: bool,
    /// Straggler threshold as a percentage of the stage's median
    /// committed-attempt duration (200 = clone anything slower than
    /// 2× the median).
    pub multiplier_pct: u32,
    /// Percentage of the stage's tasks that must have committed before
    /// detection engages (the median is meaningless earlier).
    pub quantile_pct: u32,
    /// Minimum committed attempts before detection engages, whatever
    /// the quantile says (guards tiny stages).
    pub min_completions: usize,
}

impl SpeculationConfig {
    /// Speculation disabled (the default).
    pub const OFF: SpeculationConfig = SpeculationConfig {
        enabled: false,
        multiplier_pct: 200,
        quantile_pct: 50,
        min_completions: 2,
    };

    /// Speculation enabled with the default thresholds (clone past 2×
    /// the median, once half the stage plus two tasks have committed).
    pub fn on() -> Self {
        SpeculationConfig { enabled: true, ..Self::OFF }
    }

    /// Builder-style: set the median multiplier, in percent.
    pub fn with_multiplier_pct(mut self, pct: u32) -> Self {
        self.multiplier_pct = pct.max(100);
        self
    }

    /// The detection threshold as a multiplier (`multiplier_pct / 100`).
    pub fn multiplier(&self) -> f64 {
        f64::from(self.multiplier_pct) / 100.0
    }

    /// The completion quantile as a fraction (`quantile_pct / 100`).
    pub fn quantile(&self) -> f64 {
        f64::from(self.quantile_pct) / 100.0
    }
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig::OFF
    }
}

/// Configuration of the structured tracing subsystem
/// ([`crate::trace`]). Disabled by default: the task hot path then
/// costs one relaxed atomic load and allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether events are recorded.
    pub enabled: bool,
    /// Maximum buffered events; the oldest are dropped (and counted)
    /// past this.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity (events), ample for any test-scale run.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Tracing on, with the default capacity.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true, capacity: Self::DEFAULT_CAPACITY }
    }

    /// Tracing on, with an explicit event capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig { enabled: true, capacity }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { enabled: false, capacity: Self::DEFAULT_CAPACITY }
    }
}

/// Configuration of a [`crate::Context`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of (virtual) executors. Tasks are bound to executors by
    /// `partition % num_executors`, mirroring the paper's setup where
    /// each core processes its own contiguous partition.
    pub num_executors: usize,
    /// Real worker threads backing the executors. Defaults to
    /// `min(num_executors, available_parallelism)`; per-task busy time is
    /// measured regardless, so virtual executor counts may exceed this.
    pub worker_threads: usize,
    /// Maximum attempts per task (1 = no retry).
    pub max_task_attempts: usize,
    /// Maximum fetch-failure recovery rounds per stage (lineage
    /// recomputation of lost map outputs), separate from the per-task
    /// attempt budget.
    pub max_stage_retries: usize,
    /// Injected-fault schedule (see [`FaultPlan`]).
    pub fault: FaultPlan,
    /// Straggler model for simulated makespans.
    pub straggler: StragglerConfig,
    /// Seed for all deterministic pseudo-randomness in the engine.
    pub seed: u64,
    /// Structured event tracing (off by default).
    pub trace: TraceConfig,
    /// Per-executor memory budget (unbounded by default; see
    /// [`crate::memory::MemoryManager`] for the eviction / spill /
    /// backpressure ladder a bounded budget engages).
    pub memory: MemoryBudget,
    /// Scheduling-decision policy ([`Fifo`] by default — production
    /// order; see [`crate::schedule`] and [`crate::explore`]).
    pub schedule: Arc<dyn SchedulePolicy>,
    /// Speculative execution (off by default; see [`SpeculationConfig`]).
    pub speculation: SpeculationConfig,
}

impl ClusterConfig {
    /// A local cluster with `n` executors, one worker thread per executor
    /// (capped by the host's parallelism).
    pub fn local(n: usize) -> Self {
        let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        ClusterConfig {
            num_executors: n.max(1),
            worker_threads: n.clamp(1, host),
            max_task_attempts: 4,
            max_stage_retries: 4,
            fault: FaultPlan::none(),
            straggler: StragglerConfig::NONE,
            seed: 0x5eed,
            trace: TraceConfig::default(),
            memory: MemoryBudget::UNBOUNDED,
            schedule: Arc::new(Fifo),
            speculation: SpeculationConfig::OFF,
        }
    }

    /// A *virtual* cluster with `n` executors backed by all host threads:
    /// task times are measured for real, while makespans for `n` cores
    /// come from the [`crate::sim`] model. Used for the paper's 64–512
    /// core experiments.
    pub fn virtual_cluster(n: usize) -> Self {
        let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
        ClusterConfig { worker_threads: host, ..ClusterConfig::local(n) }
    }

    /// Builder-style: set the fault schedule. Accepts a full
    /// [`FaultPlan`] or a legacy [`crate::FaultConfig`] (which injects
    /// task failures only).
    pub fn with_fault(mut self, fault: impl Into<FaultPlan>) -> Self {
        self.fault = fault.into();
        self
    }

    /// Builder-style: set the per-stage fetch-failure recovery budget.
    pub fn with_max_stage_retries(mut self, n: usize) -> Self {
        self.max_stage_retries = n.max(1);
        self
    }

    /// Builder-style: set the straggler model.
    pub fn with_straggler(mut self, s: StragglerConfig) -> Self {
        self.straggler = s;
        self
    }

    /// Builder-style: set the retry budget.
    pub fn with_max_attempts(mut self, n: usize) -> Self {
        self.max_task_attempts = n.max(1);
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: enable tracing with the default capacity.
    pub fn with_tracing(mut self) -> Self {
        self.trace = TraceConfig::enabled();
        self
    }

    /// Builder-style: set the full trace configuration.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style: set the memory budget.
    pub fn with_memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// Builder-style: set a per-executor memory budget in bytes.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory = MemoryBudget::per_executor(bytes);
        self
    }

    /// Builder-style: set the scheduling-decision policy.
    pub fn with_schedule(mut self, schedule: Arc<dyn SchedulePolicy>) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder-style: set the speculative-execution configuration.
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = speculation;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::local(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_clamps_to_host() {
        let c = ClusterConfig::local(10_000);
        assert_eq!(c.num_executors, 10_000);
        assert!(c.worker_threads <= 10_000);
        assert!(c.worker_threads >= 1);
    }

    #[test]
    fn zero_executors_becomes_one() {
        let c = ClusterConfig::local(0);
        assert_eq!(c.num_executors, 1);
        assert_eq!(c.worker_threads, 1);
    }

    #[test]
    fn builders_apply() {
        let c = ClusterConfig::local(2)
            .with_max_attempts(0)
            .with_seed(99)
            .with_straggler(StragglerConfig { prob: 0.5, slowdown: 3.0 });
        assert_eq!(c.max_task_attempts, 1, "attempt budget is at least 1");
        assert_eq!(c.seed, 99);
        assert_eq!(c.straggler.prob, 0.5);
    }

    #[test]
    fn fault_builder_accepts_legacy_config_and_full_plan() {
        let c = ClusterConfig::local(2).with_fault(crate::fault::FaultConfig::always_first(2));
        assert_eq!(c.fault.task_failure.max_per_task, 2);
        let plan = FaultPlan::none().with_fetch_failures(crate::fault::FaultRule::always_first(1));
        let c = ClusterConfig::local(2).with_fault(plan).with_max_stage_retries(0);
        assert!(c.fault.fetch_failure.is_active());
        assert_eq!(c.max_stage_retries, 1, "stage-retry budget is at least 1");
    }

    #[test]
    fn trace_builders_apply() {
        let c = ClusterConfig::local(2);
        assert!(!c.trace.enabled, "tracing is opt-in");
        let c = c.with_tracing();
        assert!(c.trace.enabled);
        assert_eq!(c.trace.capacity, TraceConfig::DEFAULT_CAPACITY);
        let c = c.with_trace(TraceConfig::with_capacity(128));
        assert_eq!(c.trace.capacity, 128);
    }

    #[test]
    fn schedule_defaults_to_fifo_and_is_swappable() {
        let c = ClusterConfig::local(2);
        assert!(!c.schedule.reorders(), "production default is pass-through");
        let c = c.with_schedule(Arc::new(crate::schedule::Seeded::new(3)));
        assert!(c.schedule.reorders());
        assert_eq!(c.schedule.keyed_seed(), Some(3));
    }

    #[test]
    fn speculation_defaults_off_and_builders_apply() {
        let c = ClusterConfig::local(2);
        assert!(!c.speculation.enabled, "speculation is opt-in");
        let c = c.with_speculation(SpeculationConfig::on().with_multiplier_pct(150));
        assert!(c.speculation.enabled);
        assert_eq!(c.speculation.multiplier_pct, 150);
        assert!((c.speculation.multiplier() - 1.5).abs() < 1e-12);
        assert!((SpeculationConfig::OFF.quantile() - 0.5).abs() < 1e-12);
        // sub-100% multipliers would clone faster-than-median tasks
        assert_eq!(SpeculationConfig::on().with_multiplier_pct(10).multiplier_pct, 100);
        // virtual_cluster inherits via `..local(n)`
        assert!(!ClusterConfig::virtual_cluster(8).speculation.enabled);
    }

    #[test]
    fn virtual_cluster_uses_host_threads() {
        let c = ClusterConfig::virtual_cluster(512);
        assert_eq!(c.num_executors, 512);
        assert!(c.worker_threads < 512 || c.worker_threads >= 1);
    }
}
