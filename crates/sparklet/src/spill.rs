//! The disk spill tier: checksummed scratch files in local tmp.
//!
//! When the [`crate::memory::MemoryManager`] cannot keep a cached
//! partition or a shuffle map-output buffer resident, the owning
//! component encodes it to bytes and parks it here. Files carry a
//! self-describing header (magic, payload length, FNV-1a checksum) so a
//! read-back is verified byte-identical to what was written — torn or
//! corrupted files surface as a typed [`SpillError`] instead of decoded
//! garbage. The store owns its directory and removes it on drop.
//!
//! Spilling requires a byte representation. The engine does not assume
//! serde: the [`Spillable`] trait is a minimal fixed-layout codec
//! (little-endian scalars, length-prefixed sequences) implemented for
//! the primitive types, tuples and `Vec`s that flow through shuffles and
//! caches; user types opt in by implementing it. Components fall back to
//! eviction-with-lineage-recompute (cache) or force-charging (shuffle)
//! when no codec is available.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Marks the start of a spill file; guards against reading a foreign
/// file as a spill blob.
const MAGIC: u32 = 0x53504c31; // "SPL1"

/// FNV-1a 64-bit, the checksum of the payload bytes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Identifies one spilled blob in a [`SpillStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillHandle {
    id: u64,
}

impl SpillHandle {
    /// The blob's id (stable for the life of the store).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Why a spill operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// The underlying file operation failed.
    Io(String),
    /// The handle does not name a live blob (already removed, or from
    /// another store).
    Missing {
        /// The offending handle id.
        id: u64,
    },
    /// Read-back did not verify: the header was malformed or the
    /// payload checksum disagreed with what was written.
    Corrupt {
        /// The corrupted blob's id.
        id: u64,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(m) => write!(f, "spill i/o error: {m}"),
            SpillError::Missing { id } => write!(f, "spill blob {id} is not in the store"),
            SpillError::Corrupt { id } => {
                write!(f, "spill blob {id} failed checksum verification on read-back")
            }
        }
    }
}

impl std::error::Error for SpillError {}

/// A directory of checksummed spill files, one per blob.
pub struct SpillStore {
    dir: PathBuf,
    next_id: AtomicU64,
    /// Live blobs: id -> (payload length, checksum). Read-back verifies
    /// against both the header and this table.
    live: Mutex<HashMap<u64, (u64, u64)>>,
}

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillStore {
    /// Create a store with a fresh private directory under the system
    /// temp dir.
    pub fn new() -> Result<Self, SpillError> {
        let dir = std::env::temp_dir().join(format!(
            "sparklet-spill-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).map_err(|e| SpillError::Io(e.to_string()))?;
        Ok(SpillStore { dir, next_id: AtomicU64::new(0), live: Mutex::new(HashMap::new()) })
    }

    /// Number of live blobs.
    pub fn len(&self) -> usize {
        self.live.lock().len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.live.lock().is_empty()
    }

    /// The on-disk path of a blob — exposed so tests and tools can
    /// inspect (or deliberately corrupt) spill files.
    pub fn path_of(&self, handle: SpillHandle) -> PathBuf {
        self.dir.join(format!("spill-{:08}.bin", handle.id))
    }

    /// Live handles, in id order — exposed so tests and tools can walk
    /// the store's contents.
    pub fn handles(&self) -> Vec<SpillHandle> {
        let mut ids: Vec<u64> = self.live.lock().keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| SpillHandle { id }).collect()
    }

    /// Write `payload` as a new checksummed blob.
    pub fn spill(&self, payload: &[u8]) -> Result<SpillHandle, SpillError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let handle = SpillHandle { id };
        let sum = fnv1a64(payload);
        let mut f =
            fs::File::create(self.path_of(handle)).map_err(|e| SpillError::Io(e.to_string()))?;
        f.write_all(&MAGIC.to_le_bytes()).map_err(|e| SpillError::Io(e.to_string()))?;
        f.write_all(&(payload.len() as u64).to_le_bytes())
            .map_err(|e| SpillError::Io(e.to_string()))?;
        f.write_all(&sum.to_le_bytes()).map_err(|e| SpillError::Io(e.to_string()))?;
        f.write_all(payload).map_err(|e| SpillError::Io(e.to_string()))?;
        self.live.lock().insert(id, (payload.len() as u64, sum));
        Ok(handle)
    }

    /// Read a blob back, verifying length and checksum. The blob stays
    /// in the store until [`SpillStore::remove`].
    pub fn read(&self, handle: SpillHandle) -> Result<Vec<u8>, SpillError> {
        let (len, sum) =
            *self.live.lock().get(&handle.id).ok_or(SpillError::Missing { id: handle.id })?;
        let mut f =
            fs::File::open(self.path_of(handle)).map_err(|e| SpillError::Io(e.to_string()))?;
        let mut header = [0u8; 20];
        f.read_exact(&mut header).map_err(|_| SpillError::Corrupt { id: handle.id })?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let hlen = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let hsum = u64::from_le_bytes(header[12..20].try_into().unwrap());
        if magic != MAGIC || hlen != len || hsum != sum {
            return Err(SpillError::Corrupt { id: handle.id });
        }
        let mut payload = Vec::with_capacity(len as usize);
        f.read_to_end(&mut payload).map_err(|e| SpillError::Io(e.to_string()))?;
        if payload.len() as u64 != len || fnv1a64(&payload) != sum {
            return Err(SpillError::Corrupt { id: handle.id });
        }
        Ok(payload)
    }

    /// Delete a blob and its file. Missing handles are ignored (the
    /// caller may race with `kill_executor` cleanup).
    pub fn remove(&self, handle: SpillHandle) {
        if self.live.lock().remove(&handle.id).is_some() {
            let _ = fs::remove_file(self.path_of(handle));
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

// ---- byte codec --------------------------------------------------------

/// A minimal fixed-layout byte codec: little-endian scalars,
/// length-prefixed sequences. `decode` is total — malformed input yields
/// `None`, never a panic — so spill corruption that slips past the
/// checksum still surfaces as a typed failure.
pub trait Spillable: Sized {
    /// Append this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);
    /// Decode one value from the front of `input`, advancing it.
    fn decode_from(input: &mut &[u8]) -> Option<Self>;
}

/// Encode a value to a standalone byte blob.
pub fn encode<T: Spillable>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode_into(&mut out);
    out
}

/// Decode a standalone blob produced by [`encode`]. Trailing bytes are
/// an error (the blob must round-trip exactly).
pub fn decode<T: Spillable>(mut input: &[u8]) -> Option<T> {
    let v = T::decode_from(&mut input)?;
    if input.is_empty() {
        Some(v)
    } else {
        None
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Some(head)
}

macro_rules! spillable_le {
    ($($t:ty),*) => {$(
        impl Spillable for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode_from(input: &mut &[u8]) -> Option<Self> {
                let b = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(b.try_into().ok()?))
            }
        }
    )*};
}

spillable_le!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Spillable for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        u64::decode_from(input).map(|v| v as usize)
    }
}

impl Spillable for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        match take(input, 1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Spillable for char {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u32).encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        char::from_u32(u32::decode_from(input)?)
    }
}

impl Spillable for () {
    fn encode_into(&self, _out: &mut Vec<u8>) {}
    fn decode_from(_input: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl Spillable for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let len = u64::decode_from(input)? as usize;
        let b = take(input, len)?;
        String::from_utf8(b.to_vec()).ok()
    }
}

impl<T: Spillable> Spillable for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode_into(out);
        for v in self {
            v.encode_into(out);
        }
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let len = u64::decode_from(input)? as usize;
        // cap the preallocation: a corrupted length must not OOM us
        let mut out = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            out.push(T::decode_from(input)?);
        }
        Some(out)
    }
}

impl<A: Spillable, B: Spillable> Spillable for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode_from(input)?, B::decode_from(input)?))
    }
}

impl<A: Spillable, B: Spillable, C: Spillable> Spillable for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode_from(input)?, B::decode_from(input)?, C::decode_from(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_read_back_is_byte_identical() {
        let store = SpillStore::new().unwrap();
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        let h = store.spill(&payload).unwrap();
        assert_eq!(store.read(h).unwrap(), payload);
        // repeatable: the blob stays until removed
        assert_eq!(store.read(h).unwrap(), payload);
        store.remove(h);
        assert!(matches!(store.read(h), Err(SpillError::Missing { .. })));
        assert!(store.is_empty());
    }

    #[test]
    fn corrupted_payload_is_a_typed_error() {
        let store = SpillStore::new().unwrap();
        let h = store.spill(&[7u8; 256]).unwrap();
        let path = store.path_of(h);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip one payload byte
        fs::write(&path, bytes).unwrap();
        assert_eq!(store.read(h), Err(SpillError::Corrupt { id: h.id() }));
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let store = SpillStore::new().unwrap();
        let h = store.spill(&[1u8; 512]).unwrap();
        let path = store.path_of(h);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..40]).unwrap();
        assert!(matches!(store.read(h), Err(SpillError::Corrupt { .. })));
    }

    #[test]
    fn zero_length_blob_round_trips() {
        // an empty partition is a legal spill: header-only file, zero
        // checksum, read-back yields an empty vec — not an error
        let store = SpillStore::new().unwrap();
        let h = store.spill(&[]).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.read(h).unwrap(), Vec::<u8>::new());
        // the file really is just the fixed header on disk
        let on_disk = fs::metadata(store.path_of(h)).unwrap().len();
        assert_eq!(on_disk, 4 + 8 + 8, "header-only file: magic + len + checksum");
        store.remove(h);
        assert!(store.is_empty());
    }

    #[test]
    fn read_after_remove_race_is_missing_not_corrupt() {
        // `remove` is how kill_executor cleans up; a stale reader racing
        // it must see a typed Missing error, never Corrupt or a panic,
        // and removing twice is fine (the second caller lost the race)
        let store = SpillStore::new().unwrap();
        let h = store.spill(&[9u8; 64]).unwrap();
        store.remove(h);
        assert_eq!(store.read(h), Err(SpillError::Missing { id: h.id() }));
        store.remove(h); // idempotent
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_spill_and_read_from_two_threads() {
        // one worker spills while another reads back already-spilled
        // handles: every read must be byte-identical, ids must never
        // collide, and the live table must end consistent
        let store = SpillStore::new().unwrap();
        let payload =
            |i: u32| -> Vec<u8> { (0..200u32).flat_map(|j| (i ^ j).to_le_bytes()).collect() };
        const N: u32 = 64;
        let (tx, rx) = std::sync::mpsc::channel::<(u32, SpillHandle)>();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    let h = store.spill(&payload(i)).unwrap();
                    tx.send((i, h)).unwrap();
                }
                drop(tx);
            });
            s.spawn(|| {
                let mut seen = std::collections::HashSet::new();
                for (i, h) in rx {
                    assert!(seen.insert(h.id()), "spill ids must be unique");
                    // interleave two reads per handle to widen the race window
                    assert_eq!(store.read(h).unwrap(), payload(i));
                    assert_eq!(store.read(h).unwrap(), payload(i));
                }
                assert_eq!(seen.len(), N as usize);
            });
        });
        assert_eq!(store.len(), N as usize);
        for h in store.handles() {
            store.remove(h);
        }
        assert!(store.is_empty());
    }

    #[test]
    fn codec_round_trips_and_rejects_malformed_input() {
        let v: Vec<(u32, Vec<u64>)> = vec![(1, vec![2, 3]), (4, vec![]), (5, vec![u64::MAX])];
        let bytes = encode(&v);
        assert_eq!(decode::<Vec<(u32, Vec<u64>)>>(&bytes).unwrap(), v);
        // truncation, trailing garbage, and wrong-type decode all fail
        assert!(decode::<Vec<(u32, Vec<u64>)>>(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode::<Vec<(u32, Vec<u64>)>>(&extra).is_none());
        let s = encode(&String::from("héllo"));
        assert_eq!(decode::<String>(&s).unwrap(), "héllo");
    }
}
