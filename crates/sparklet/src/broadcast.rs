//! Broadcast variables.
//!
//! The paper: "it is necessary for executors to know some parameters and
//! variables, such as eps, minimum number of points, partition
//! information, and especially, the kdtree" — all shipped once per
//! executor as read-only broadcast values. In-process, a broadcast is an
//! `Arc`, but the context still accounts the logical bytes a real
//! cluster would move (`size_hint x num_executors`), so the cost model
//! of the paper's design is visible in reports.

use std::ops::Deref;
use std::sync::Arc;

/// A read-only value shared with every executor.
#[derive(Debug)]
pub struct Broadcast<T: ?Sized> {
    pub(crate) id: usize,
    pub(crate) size_hint: usize,
    pub(crate) value: Arc<T>,
}

impl<T> Broadcast<T> {
    pub(crate) fn new(id: usize, value: T, size_hint: usize) -> Self {
        Broadcast { id, size_hint, value: Arc::new(value) }
    }

    /// The broadcast id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Logical serialized size in bytes (as declared at creation).
    pub fn size_hint(&self) -> usize {
        self.size_hint
    }

    /// Access the shared value (Spark's `bcast.value()`).
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T: ?Sized> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Broadcast { id: self.id, size_hint: self.size_hint, value: Arc::clone(&self.value) }
    }
}

impl<T: ?Sized> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_value_agree() {
        let b = Broadcast::new(0, vec![1, 2, 3], 24);
        assert_eq!(b.value(), &vec![1, 2, 3]);
        assert_eq!(b.len(), 3); // deref to Vec
        assert_eq!(b.size_hint(), 24);
        assert_eq!(b.id(), 0);
    }

    #[test]
    fn clone_shares_the_value() {
        let b = Broadcast::new(1, String::from("x"), 1);
        let c = b.clone();
        assert!(Arc::ptr_eq(&b.value, &c.value));
    }
}
