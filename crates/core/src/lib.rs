//! # dbscan-core — the paper's algorithms
//!
//! Implements *"A Novel Scalable DBSCAN Algorithm with Spark"* (Han,
//! Agrawal, Liao, Choudhary — IPDPSW 2016) on the workspace's from-scratch
//! substrates:
//!
//! * [`SequentialDbscan`] — Algorithm 1 (Ester et al.'s DBSCAN with a
//!   queue-based expansion), the correctness oracle and the `T_s`
//!   baseline for every speedup figure.
//! * [`SparkDbscan`] — Algorithms 2–4: the driver builds and broadcasts
//!   the kd-tree; each executor clusters **only the contiguous index
//!   range it owns**, with *zero* executor↔executor communication,
//!   placing **SEED** markers (foreign-partition points) in its partial
//!   clusters; partial clusters return through an accumulator and the
//!   driver merges them by locating each SEED's *master* cluster.
//! * [`MrDbscan`] — the paper's own MapReduce baseline (Fig. 7), running
//!   the same local-clustering logic behind a real disk-spilling
//!   MapReduce engine.
//! * [`ShuffleDbscan`] — an ablation baseline that does what the paper
//!   refused to do: propagate cluster labels through shuffles, so the
//!   cost of *not* having SEEDs is measurable.
//! * [`validate`] — Adjusted Rand Index and core-point-exact equivalence
//!   checks between clusterings (DBSCAN border points are legitimately
//!   assignment-order dependent).
//!
//! ## Fidelity and hardening
//!
//! The paper's Algorithm 3 places *at most one SEED per foreign partition
//! per partial cluster*, and Algorithm 4 merges in a single pass. Both
//! are kept as the literal defaults ([`SeedPolicy::OnePerPartition`],
//! [`MergeStrategy::PaperSinglePass`]); both can lose merges in corner
//! cases (transitive chains over ≥3 partitions, one cluster touching two
//! disconnected foreign clusters). [`SeedPolicy::PerBoundaryEdge`] +
//! [`MergeStrategy::UnionFind`] is provably equivalent to sequential
//! DBSCAN on core points (property-tested in `tests/`).

pub mod estimate;
pub mod explore;
pub mod filter;
pub mod incremental;
pub mod label;
pub mod model;
pub mod mr;
pub mod mr_iterative;
pub mod params;
pub mod partitioned;
pub mod reorder;
pub mod resources;
pub mod runner;
pub mod sequential;
pub mod shuffle_baseline;
pub mod unionfind;
pub mod validate;

pub use estimate::{k_distances, knee_index, suggest_eps};
pub use explore::{clustering_fingerprint, DbscanExploreJob};
pub use filter::filter_small_partials;
pub use incremental::IncrementalDbscan;
pub use label::{Clustering, Label};
pub use model::{PartialCluster, PartitionRanges};
pub use mr::{MrDbscan, MrDbscanResult};
pub use mr_iterative::{MrDbscanIterative, MrIterativeResult, PointState};
pub use params::{DbscanParams, ParamError};
pub use partitioned::driver::{SparkDbscan, SparkDbscanResult, Timings};
pub use partitioned::executor_side::{
    local_partial_clusters, local_partial_clusters_scratch, local_partial_clusters_source,
    ExecutorScratch, ExecutorStats, LocalClustering, NeighborSource, TreeNeighborSource,
};
pub use partitioned::merge::{
    extract_seed_edges, merge_partial_clusters, merge_partial_clusters_threaded,
    merge_unionfind_report, merge_with_edges, MergeOutcome, MergePhase, MergeReport, MergeStrategy,
};
pub use partitioned::planner::{plan_partitions, Balance, CostPlan};
pub use partitioned::SeedPolicy;
pub use reorder::{apply_permutation, zorder_permutation};
pub use resources::Resources;
pub use runner::{DbscanRunner, RunEnv, RunOutcome, RunTimings, RunnerError};
pub use sequential::SequentialDbscan;
pub use shuffle_baseline::{ShuffleDbscan, ShuffleDbscanResult};
pub use unionfind::DisjointSet;
pub use validate::{adjusted_rand_index, core_labels_equivalent, ComparisonReport};
