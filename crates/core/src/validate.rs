//! Clustering validation.
//!
//! The paper states "all parallel executions generate the same result as
//! the serial execution" and validates against Patwary et al. Exact
//! label equality is too strict for DBSCAN in general — border points
//! are legitimately assignment-order dependent — so we provide:
//!
//! * [`core_labels_equivalent`]: the partition induced on **core
//!   points** must be identical (this *is* deterministic for DBSCAN);
//! * [`adjusted_rand_index`]: overall agreement including borders and
//!   noise (noise points are treated as singleton clusters).

use crate::label::{Clustering, Label};
use std::collections::HashMap;

/// Summary comparison between two clusterings of the same points.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// Adjusted Rand Index in `[-1, 1]`; 1.0 = identical partitions.
    pub ari: f64,
    /// Whether core points are partitioned identically.
    pub core_equivalent: bool,
    /// Cluster counts of both sides.
    pub clusters: (usize, usize),
    /// Noise counts of both sides.
    pub noise: (usize, usize),
}

/// Compare two clusterings.
pub fn compare(a: &Clustering, b: &Clustering) -> ComparisonReport {
    ComparisonReport {
        ari: adjusted_rand_index(a, b),
        core_equivalent: core_labels_equivalent(a, b),
        clusters: (a.num_clusters(), b.num_clusters()),
        noise: (a.noise_count(), b.noise_count()),
    }
}

/// Whether the two clusterings agree on core points: same core sets, and
/// the partition restricted to core points is identical up to renaming.
pub fn core_labels_equivalent(a: &Clustering, b: &Clustering) -> bool {
    if a.len() != b.len() || a.core != b.core {
        return false;
    }
    let mut a_to_b: HashMap<Label, Label> = HashMap::new();
    let mut b_to_a: HashMap<Label, Label> = HashMap::new();
    for i in 0..a.len() {
        if !a.core[i] {
            continue;
        }
        let (la, lb) = (a.labels[i], b.labels[i]);
        if !la.is_cluster() || !lb.is_cluster() {
            return false; // a core point must always be clustered
        }
        if *a_to_b.entry(la).or_insert(lb) != lb {
            return false;
        }
        if *b_to_a.entry(lb).or_insert(la) != la {
            return false;
        }
    }
    true
}

/// Map labels to dense ids, giving each noise point its own singleton
/// cluster.
fn dense_ids(c: &Clustering) -> Vec<usize> {
    let mut map: HashMap<u32, usize> = HashMap::new();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(c.len());
    for l in &c.labels {
        match l {
            Label::Cluster(id) => {
                let v = *map.entry(*id).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
                out.push(v);
            }
            Label::Noise => {
                out.push(next);
                next += 1;
            }
        }
    }
    out
}

/// Adjusted Rand Index between two clusterings (noise = singletons).
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ia = dense_ids(a);
    let ib = dense_ids(b);

    // contingency table
    let mut table: HashMap<(usize, usize), u64> = HashMap::new();
    let mut row: HashMap<usize, u64> = HashMap::new();
    let mut col: HashMap<usize, u64> = HashMap::new();
    for i in 0..n {
        *table.entry((ia[i], ib[i])).or_insert(0) += 1;
        *row.entry(ia[i]).or_insert(0) += 1;
        *col.entry(ib[i]).or_insert(0) += 1;
    }
    let c2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.values().map(|&v| c2(v)).sum();
    let sum_a: f64 = row.values().map(|&v| c2(v)).sum();
    let sum_b: f64 = col.values().map(|&v| c2(v)).sum();
    let total = c2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < f64::EPSILON {
        return 1.0; // both partitions trivial (all same or all singleton)
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustering(labels: Vec<Label>, core: Vec<bool>) -> Clustering {
        Clustering { labels, core }
    }

    fn simple(ids: &[i64]) -> Clustering {
        // -1 = noise; core = all cluster members
        let labels: Vec<Label> = ids
            .iter()
            .map(|&i| if i < 0 { Label::Noise } else { Label::Cluster(i as u32) })
            .collect();
        let core = labels.iter().map(|l| l.is_cluster()).collect();
        clustering(labels, core)
    }

    #[test]
    fn identical_clusterings_have_ari_one() {
        let a = simple(&[0, 0, 1, 1, -1]);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        assert!(core_labels_equivalent(&a, &a));
    }

    #[test]
    fn relabeled_clusterings_are_equivalent() {
        let a = simple(&[0, 0, 1, 1]);
        let b = simple(&[5, 5, 2, 2]);
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        assert!(core_labels_equivalent(&a, &b));
    }

    #[test]
    fn merged_clusters_are_not_equivalent() {
        let a = simple(&[0, 0, 1, 1]);
        let b = simple(&[0, 0, 0, 0]);
        assert!(adjusted_rand_index(&a, &b) < 1.0);
        assert!(!core_labels_equivalent(&a, &b));
    }

    #[test]
    fn split_cluster_not_equivalent() {
        let a = simple(&[0, 0, 0, 0]);
        let b = simple(&[0, 0, 1, 1]);
        assert!(!core_labels_equivalent(&a, &b));
    }

    #[test]
    fn border_disagreement_is_tolerated_by_core_check() {
        // point 2 is a border point (non-core) assigned differently
        let a = clustering(
            vec![Label::Cluster(0), Label::Cluster(1), Label::Cluster(0)],
            vec![true, true, false],
        );
        let b = clustering(
            vec![Label::Cluster(0), Label::Cluster(1), Label::Cluster(1)],
            vec![true, true, false],
        );
        assert!(core_labels_equivalent(&a, &b));
        assert!(adjusted_rand_index(&a, &b) < 1.0, "ARI still sees the difference");
    }

    #[test]
    fn differing_core_flags_fail_equivalence() {
        let a = clustering(vec![Label::Cluster(0)], vec![true]);
        let b = clustering(vec![Label::Cluster(0)], vec![false]);
        assert!(!core_labels_equivalent(&a, &b));
    }

    #[test]
    fn unclustered_core_point_fails_equivalence() {
        let a = clustering(vec![Label::Noise], vec![true]);
        assert!(!core_labels_equivalent(&a, &a.clone()) || a.labels[0] == Label::Noise);
        let b = clustering(vec![Label::Cluster(0)], vec![true]);
        assert!(!core_labels_equivalent(&a, &b));
    }

    #[test]
    fn noise_as_singletons_in_ari() {
        // two all-noise clusterings over distinct points: every point its
        // own singleton in both -> identical partitions
        let a = simple(&[-1, -1, -1]);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
    }

    #[test]
    fn ari_penalizes_noise_vs_cluster() {
        let a = simple(&[0, 0, 0, 0, 0, 0]);
        let b = simple(&[0, 0, 0, -1, -1, -1]);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari < 0.6, "ari {ari}");
    }

    #[test]
    fn compare_builds_full_report() {
        let a = simple(&[0, 0, 1, -1]);
        let b = simple(&[1, 1, 0, -1]);
        let r = compare(&a, &b);
        assert_eq!(r.ari, 1.0);
        assert!(r.core_equivalent);
        assert_eq!(r.clusters, (2, 2));
        assert_eq!(r.noise, (1, 1));
    }

    #[test]
    fn tiny_inputs() {
        let a = simple(&[0]);
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        let e = Clustering::all_noise(0);
        assert_eq!(adjusted_rand_index(&e, &e), 1.0);
    }
}
