//! Iterative (label-propagation) DBSCAN on MapReduce — the shape of the
//! published MapReduce DBSCANs the paper cites (Fu et al. 2011,
//! MR-IDBSCAN), and the reason the paper's §II calls MapReduce
//! "inefficien\[t\] for iterative algorithms": cluster labels converge
//! over multiple map-reduce *rounds*, and every round the full state —
//! point labels **and adjacency lists** — is serialized, spilled to
//! local disk, sorted, and read back. There is no broadcast and no
//! in-memory reuse between rounds; that is precisely the data path the
//! Spark design replaces with one communication-free pass plus SEEDs.
//!
//! Round job:
//! * **map** over state records `(u, label, adj, core)`: re-emit the
//!   state under key `u`, and for every neighbour `v` of a labeled core
//!   point emit a `(v, Label(l))` message.
//! * **reduce** per point: fold the incoming labels into the state's
//!   label (min), count changes in a counter.
//!
//! Rounds repeat until no label changes (graph-diameter many rounds).

use crate::label::{Clustering, Label};
use crate::params::DbscanParams;
use dbscan_spatial::{Dataset, KdTree, SpatialIndex};
use mapred::{Counters, Emitter, JobConfig, MapReduceJob, Mapper, MrResult, Reducer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

const UNLABELED: u32 = u32::MAX;

/// One point's full state, round-tripped through disk every round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointState {
    /// Point index.
    pub id: u32,
    /// Current cluster label (`u32::MAX` = unlabeled).
    pub label: u32,
    /// eps-neighbourhood (empty for non-core points, which must not
    /// propagate).
    pub adj: Vec<u32>,
    /// Whether the point is a core point.
    pub core: bool,
}

/// Message types flowing through the shuffle.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Msg {
    State(PointState),
    Label(u32),
}

/// Result of an iterative MapReduce DBSCAN run.
#[derive(Debug, Clone)]
pub struct MrIterativeResult {
    /// The global clustering.
    pub clustering: Clustering,
    /// Label-propagation rounds executed.
    pub rounds: usize,
    /// Total bytes spilled to disk across all rounds.
    pub spilled_bytes: u64,
    /// Total bytes read back from disk across all rounds.
    pub shuffled_bytes: u64,
    /// Whole run (setup + all rounds + finalization).
    pub total: Duration,
    /// Busy time of every map task across all rounds.
    pub map_task_times: Vec<Duration>,
    /// Busy time of every reduce task across all rounds.
    pub reduce_task_times: Vec<Duration>,
    /// Setup time (kd-tree + initial adjacency/core computation).
    pub setup: Duration,
}

/// Iterative MapReduce DBSCAN (the Fig. 7 baseline).
#[derive(Debug, Clone)]
pub struct MrDbscanIterative {
    params: DbscanParams,
    num_reducers: usize,
    max_rounds: usize,
}

impl MrDbscanIterative {
    /// Configure for `num_reducers` reduce partitions.
    pub fn new(params: DbscanParams, num_reducers: usize) -> Self {
        MrDbscanIterative { params, num_reducers: num_reducers.max(1), max_rounds: 64 }
    }

    /// Bound the number of rounds (safety valve).
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = r.max(1);
        self
    }

    /// Run with `slots` concurrent map/reduce slots.
    ///
    /// Note: code comparing implementations should prefer the uniform
    /// [`crate::runner::DbscanRunner`] facade; this inherent method
    /// remains the way to get the full [`MrIterativeResult`].
    pub fn run(&self, data: Arc<Dataset>, slots: usize) -> MrResult<MrIterativeResult> {
        let total_start = Instant::now();
        let n = data.len();

        // ---- setup: core flags + adjacency (the "job 0" a real MR
        // deployment would run once and write to HDFS) ----
        let tree = KdTree::build(Arc::clone(&data));
        let mut state: Vec<PointState> = Vec::with_capacity(n);
        for (id, row) in data.iter() {
            let nb = tree.range(row, self.params.eps);
            let core = nb.len() >= self.params.min_pts;
            let adj: Vec<u32> = if core {
                nb.iter().map(|p| p.0).filter(|&q| q != id.0).collect()
            } else {
                Vec::new()
            };
            state.push(PointState {
                id: id.0,
                label: if core { id.0 } else { UNLABELED },
                adj,
                core,
            });
        }
        let setup = total_start.elapsed();

        let mut rounds = 0usize;
        let mut spilled = 0u64;
        let mut shuffled = 0u64;
        let mut map_task_times = Vec::new();
        let mut reduce_task_times = Vec::new();

        while rounds < self.max_rounds {
            rounds += 1;
            // split the state across map tasks (what reading the
            // previous round's HDFS output would produce)
            let split_size = n.div_ceil(slots.max(1)).max(1);
            let splits: Vec<Vec<PointState>> =
                state.chunks(split_size).map(|c| c.to_vec()).collect();

            let config = JobConfig::with_slots(slots).num_reducers(self.num_reducers);
            let job = MapReduceJob::new(PropagateMapper, MinLabelReducer, config).run(splits)?;
            spilled += job.counters.spilled_bytes.load(std::sync::atomic::Ordering::Relaxed);
            shuffled += job.counters.shuffled_bytes.load(std::sync::atomic::Ordering::Relaxed);
            map_task_times.extend(job.map_task_times.iter().copied());
            reduce_task_times.extend(job.reduce_task_times.iter().copied());
            let changed = job.counters.get("labels_changed");

            let mut next: Vec<PointState> = job.outputs;
            next.sort_unstable_by_key(|s| s.id);
            state = next;
            if changed == 0 {
                break;
            }
        }

        // ---- finalize: states -> clustering ----
        let mut labels = vec![Label::Noise; n];
        let mut core = vec![false; n];
        let mut dense: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut next_id = 0u32;
        for s in &state {
            core[s.id as usize] = s.core;
            if s.label != UNLABELED {
                let id = *dense.entry(s.label).or_insert_with(|| {
                    let v = next_id;
                    next_id += 1;
                    v
                });
                labels[s.id as usize] = Label::Cluster(id);
            }
        }

        Ok(MrIterativeResult {
            clustering: Clustering { labels, core },
            rounds,
            spilled_bytes: spilled,
            shuffled_bytes: shuffled,
            total: total_start.elapsed(),
            map_task_times,
            reduce_task_times,
            setup,
        })
    }
}

struct PropagateMapper;

impl Mapper for PropagateMapper {
    type In = PointState;
    type KOut = u32;
    type VOut = Msg;

    fn map(&self, s: PointState, emit: &mut Emitter<u32, Msg>, _c: &Counters) {
        if s.label != UNLABELED {
            for &v in &s.adj {
                emit.emit(v, Msg::Label(s.label));
            }
        }
        emit.emit(s.id, Msg::State(s));
    }
}

struct MinLabelReducer;

impl Reducer for MinLabelReducer {
    type KIn = u32;
    type VIn = Msg;
    type Out = PointState;

    fn reduce(&self, _key: u32, msgs: Vec<Msg>, out: &mut Vec<PointState>, counters: &Counters) {
        let mut state: Option<PointState> = None;
        let mut best = UNLABELED;
        for m in msgs {
            match m {
                Msg::State(s) => state = Some(s),
                Msg::Label(l) => best = best.min(l),
            }
        }
        let mut s = state.expect("every point has exactly one state record");
        if best < s.label {
            s.label = best;
            counters.incr("labels_changed", 1);
        }
        out.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialDbscan;
    use crate::validate::core_labels_equivalent;

    fn blobs() -> Arc<Dataset> {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..20 {
                rows.push(vec![c as f64 * 40.0 + i as f64 * 0.02]);
            }
        }
        rows.push(vec![500.0]); // noise
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn matches_sequential_core_structure() {
        let data = blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let r = MrDbscanIterative::new(params, 3).run(Arc::clone(&data), 2).unwrap();
        let seq = SequentialDbscan::new(params).run(data);
        assert_eq!(r.clustering.num_clusters(), 3);
        assert_eq!(r.clustering.noise_count(), 1);
        assert!(core_labels_equivalent(&r.clustering, &seq));
    }

    #[test]
    fn every_round_pays_disk_io() {
        let data = blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let r = MrDbscanIterative::new(params, 2).run(data, 2).unwrap();
        assert!(r.rounds >= 2, "at least one propagation + one fixpoint check");
        // spilled bytes scale with rounds x state size
        assert!(r.spilled_bytes > 0);
        assert!(r.shuffled_bytes >= r.spilled_bytes);
        assert!(!r.map_task_times.is_empty());
        assert!(r.total >= r.setup);
    }

    #[test]
    fn chain_needs_multiple_rounds() {
        // a 1-d chain has large hop-diameter: min label creeps one
        // neighborhood per round
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.1, 2).unwrap();
        let r = MrDbscanIterative::new(params, 2).run(data, 2).unwrap();
        assert!(r.rounds >= 5, "only {} rounds for a 30-long chain", r.rounds);
        assert_eq!(r.clustering.num_clusters(), 1);
    }

    #[test]
    fn max_rounds_caps_iteration() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.1, 2).unwrap();
        let r = MrDbscanIterative::new(params, 2).max_rounds(2).run(data, 2).unwrap();
        assert_eq!(r.rounds, 2);
    }

    #[test]
    fn all_noise_converges_in_one_round() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 100.0]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.0, 2).unwrap();
        let r = MrDbscanIterative::new(params, 2).run(data, 2).unwrap();
        assert_eq!(r.rounds, 1);
        assert_eq!(r.clustering.noise_count(), 10);
    }
}
