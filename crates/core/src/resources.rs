//! One typed bundle for every resource knob.
//!
//! The driver grew its tuning surface piecemeal: partition balance on
//! [`SparkDbscan::balance`], kd-tree build threads on
//! [`SparkDbscan::build_config`] (seeded from the `DBSCAN_BUILD_THREADS`
//! environment variable), merge workers on
//! [`SparkDbscan::merge_threads`], and — new with the memory-budgeted
//! storage engine — a per-executor byte budget on the engine context.
//! [`Resources`] consolidates them into one `#[non_exhaustive]` value
//! that [`SparkDbscan::resources`] and
//! [`crate::runner::RunEnv::with_resources`] both accept, with
//! [`Resources::from_env`] as the single documented place environment
//! variables are read:
//!
//! | variable | field | meaning |
//! |---|---|---|
//! | `DBSCAN_BUILD_THREADS` | `build.threads` | driver-phase worker count (`0` = auto) |
//! | `DBSCAN_MEM_BUDGET` | `memory` | per-executor byte budget (unset = unbounded) |
//! | `DBSCAN_KERNEL` | `build.kernel.layout` | `scalar` or `lanes` leaf-scan layout |
//! | `DBSCAN_KERNEL_LANES` | `build.kernel.lanes` | lane width (rounded to 4/8/16) |
//! | `DBSCAN_QUERY_BATCH` | `build.kernel.batch` | frontier chunk size (`0` = per-query) |
//! | `DBSCAN_COUNT_FAST_PATH` | `build.kernel.count_fast_path` | `min_pts` early-exit counting |
//!
//! Every field is benign to vary: clustering labels are identical for
//! any `Resources` value (budgets spill, never drop data; thread counts
//! are byte-deterministic by construction), only speed and memory
//! footprint change.
//!
//! [`SparkDbscan::balance`]: crate::partitioned::driver::SparkDbscan::balance
//! [`SparkDbscan::build_config`]: crate::partitioned::driver::SparkDbscan::build_config
//! [`SparkDbscan::merge_threads`]: crate::partitioned::driver::SparkDbscan::merge_threads
//! [`SparkDbscan::resources`]: crate::partitioned::driver::SparkDbscan::resources

use crate::partitioned::planner::Balance;
use dbscan_spatial::BuildConfig;
use sparklet::{MemoryBudget, SpeculationConfig};

/// Execution-resource configuration shared by the driver builders and
/// the [`crate::runner::RunEnv`] facade. Construct with
/// [`Resources::new`] (library defaults) or [`Resources::from_env`]
/// (defaults overlaid with the documented environment variables), then
/// chain `with_*` setters. `#[non_exhaustive]` so new knobs can ride
/// along without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Resources {
    /// How index ranges are balanced across partitions.
    pub balance: Balance,
    /// Driver-side kd-tree bulk-build configuration (also the default
    /// worker count for the parallel merge).
    pub build: BuildConfig,
    /// Worker count for the parallel union-find merge (0 = follow
    /// `build`).
    pub merge_threads: usize,
    /// Per-executor engine memory budget (unbounded by default). Applied
    /// to the engine context at run start when bounded.
    pub memory: MemoryBudget,
    /// Speculative-execution policy for engine stages (off by default).
    /// Applied to the engine context at run start when enabled. Benign
    /// like every other field: the first-commit-wins protocol keeps
    /// labels identical with speculation on or off.
    pub speculation: SpeculationConfig,
}

impl Resources {
    /// Library defaults: equal-count balance, auto build threads, merge
    /// following the build config, unbounded memory.
    pub fn new() -> Self {
        Resources {
            balance: Balance::Count,
            build: BuildConfig::default(),
            merge_threads: 0,
            memory: MemoryBudget::UNBOUNDED,
            speculation: SpeculationConfig::OFF,
        }
    }

    /// Defaults overlaid with the environment: `DBSCAN_BUILD_THREADS`
    /// sets the build worker count, `DBSCAN_MEM_BUDGET` (bytes) sets a
    /// bounded per-executor memory budget, and the `DBSCAN_KERNEL*` /
    /// `DBSCAN_QUERY_BATCH` / `DBSCAN_COUNT_FAST_PATH` family (parsed by
    /// [`dbscan_spatial::KernelConfig::from_env`]) selects the leaf-scan
    /// kernel. Unset or unparsable variables leave the default in place.
    pub fn from_env() -> Self {
        let mut r = Self::from_env_values(
            std::env::var("DBSCAN_BUILD_THREADS").ok().as_deref(),
            std::env::var("DBSCAN_MEM_BUDGET").ok().as_deref(),
        );
        r.build = r.build.with_kernel(dbscan_spatial::KernelConfig::from_env());
        r
    }

    /// The pure core of [`Resources::from_env`], taking the raw variable
    /// values so tests can exercise the parsing contract without touching
    /// the process environment (`std::env::set_var` is unsound under
    /// threaded test runners).
    ///
    /// The contract, for any input including junk, overflow and empty
    /// strings — this function never panics and never errors:
    ///
    /// * `build_threads`: whitespace-trimmed string of ASCII digits
    ///   parsed as `usize`, else the default (`0` = auto). `0` is a
    ///   *valid* value meaning auto.
    /// * `mem_budget`: whitespace-trimmed string of ASCII digits parsed
    ///   as a `u64` byte count, else the default (unbounded). A parsed
    ///   `0` clamps to a 1-byte bounded budget
    ///   ([`MemoryBudget::per_executor`] keeps budgets non-zero).
    ///
    /// Parsing is strictly digit-only: unlike Rust's integer `FromStr`,
    /// a leading `+` (or any other non-digit) rejects the value. An
    /// environment variable carrying `+8` is far likelier a templating
    /// bug than an intentional sign, and silently accepting it would
    /// make the contract depend on `FromStr` quirks.
    pub fn from_env_values(build_threads: Option<&str>, mem_budget: Option<&str>) -> Self {
        let mut r = Resources::new();
        if let Some(t) = build_threads.and_then(parse_env_uint::<usize>) {
            r.build = r.build.with_threads(t);
        }
        r.memory = parse_mem_budget(mem_budget);
        r
    }

    /// Set the partition balance policy.
    pub fn with_balance(mut self, balance: Balance) -> Self {
        self.balance = balance;
        self
    }

    /// Set the kd-tree build configuration.
    pub fn with_build(mut self, build: BuildConfig) -> Self {
        self.build = build;
        self
    }

    /// Set the merge worker count (0 = follow the build config).
    pub fn with_merge_threads(mut self, threads: usize) -> Self {
        self.merge_threads = threads;
        self
    }

    /// Set the engine memory budget.
    pub fn with_memory(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// Set a bounded per-executor memory budget in bytes.
    pub fn with_memory_budget(self, bytes: u64) -> Self {
        self.with_memory(MemoryBudget::per_executor(bytes))
    }

    /// Set the speculative-execution policy for engine stages.
    pub fn with_speculation(mut self, speculation: SpeculationConfig) -> Self {
        self.speculation = speculation;
        self
    }

    /// Whether this is exactly the library default ([`Resources::new`]).
    /// The runner facade uses this to leave a hand-configured
    /// [`crate::partitioned::driver::SparkDbscan`] untouched.
    pub fn is_default(&self) -> bool {
        *self == Resources::new()
    }
}

impl Default for Resources {
    fn default() -> Self {
        Resources::new()
    }
}

/// Strict digit-only unsigned parsing for environment values: optional
/// surrounding whitespace around a non-empty run of ASCII digits,
/// nothing else. Rejects the leading `+` that integer `FromStr` would
/// accept (see [`Resources::from_env_values`]).
fn parse_env_uint<T: std::str::FromStr>(v: &str) -> Option<T> {
    let t = v.trim();
    if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    t.parse::<T>().ok()
}

/// `DBSCAN_MEM_BUDGET` parser: a byte count bounds the budget; unset or
/// unparsable leaves it unbounded.
fn parse_mem_budget(var: Option<&str>) -> MemoryBudget {
    match var.and_then(parse_env_uint::<u64>) {
        Some(bytes) => MemoryBudget::per_executor(bytes),
        None => MemoryBudget::UNBOUNDED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded_auto() {
        let r = Resources::new();
        assert!(r.is_default());
        assert_eq!(r.balance, Balance::Count);
        assert_eq!(r.merge_threads, 0);
        assert!(!r.memory.is_bounded());
        assert_eq!(r, Resources::default());
    }

    #[test]
    fn builders_compose() {
        let r = Resources::new()
            .with_balance(Balance::Cost)
            .with_merge_threads(4)
            .with_memory_budget(1 << 20)
            .with_build(BuildConfig::default().with_threads(2));
        assert!(!r.is_default());
        assert_eq!(r.balance, Balance::Cost);
        assert_eq!(r.merge_threads, 4);
        assert_eq!(r.memory.bytes(), 1 << 20);
        assert_eq!(r.build.threads, 2);
    }

    #[test]
    fn mem_budget_variable_parses_bytes_or_stays_unbounded() {
        assert_eq!(parse_mem_budget(Some("65536")), MemoryBudget::per_executor(65536));
        assert_eq!(parse_mem_budget(Some(" 1024 ")), MemoryBudget::per_executor(1024));
        assert_eq!(parse_mem_budget(Some("lots")), MemoryBudget::UNBOUNDED);
        assert_eq!(parse_mem_budget(None), MemoryBudget::UNBOUNDED);
        // no env set under test: from_env mirrors the defaults
        assert!(!Resources::from_env().memory.is_bounded());
    }

    #[test]
    fn env_parsing_is_strictly_digit_only() {
        // signs that integer FromStr would happily accept are rejected
        assert_eq!(Resources::from_env_values(Some("+8"), None).build.threads, 0);
        assert_eq!(parse_mem_budget(Some("+4096")), MemoryBudget::UNBOUNDED);
        assert_eq!(parse_mem_budget(Some("-1")), MemoryBudget::UNBOUNDED);
        // inner whitespace and radix prefixes are junk too
        assert_eq!(Resources::from_env_values(Some("1 2"), None).build.threads, 0);
        assert_eq!(parse_mem_budget(Some("0x40")), MemoryBudget::UNBOUNDED);
        // plain digits (with surrounding whitespace) still parse
        assert_eq!(Resources::from_env_values(Some(" 8 "), None).build.threads, 8);
    }

    #[test]
    fn speculation_defaults_off_and_builder_applies() {
        assert_eq!(Resources::new().speculation, SpeculationConfig::OFF);
        let r = Resources::new().with_speculation(SpeculationConfig::on());
        assert!(r.speculation.enabled);
        assert!(!r.is_default());
    }

    #[test]
    fn kernel_config_rides_the_build_config() {
        use dbscan_spatial::{KernelConfig, KernelLayout};
        let k = KernelConfig::scalar().with_batch(16);
        let r = Resources::new().with_build(BuildConfig::default().with_kernel(k));
        assert_eq!(r.build.kernel, k);
        assert_eq!(r.build.kernel.layout, KernelLayout::Scalar);
        // no kernel env set under test: from_env keeps the default
        assert_eq!(Resources::from_env().build.kernel, KernelConfig::default());
        // the pure parsing core never reads kernel variables — its
        // pinned two-argument signature stays untouched
        assert_eq!(Resources::from_env_values(None, None).build.kernel, KernelConfig::default());
    }
}
