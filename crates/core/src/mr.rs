//! DBSCAN on the MapReduce engine — the paper's Fig. 7 baseline.
//!
//! "As we are not able to get source code from the other research teams,
//! we have implemented our own DBSCAN with MapReduce approach." Ours
//! mirrors that: the *same* local clustering and merge code as the Spark
//! version, but the data path is MapReduce's — every point is emitted as
//! an intermediate `(partition, (index, coords))` record that is
//! serialized, **spilled to disk**, sorted, and re-read by the reducers;
//! partial clusters come back as reducer output and merge in the driver.
//! The per-record serialization + disk round-trip is exactly the
//! overhead the paper blames for MapReduce's 9–16x slowdown.

use crate::label::Clustering;
use crate::model::{PartialCluster, PartitionRanges};
use crate::params::DbscanParams;
use crate::partitioned::executor_side::local_partial_clusters;
use crate::partitioned::merge::{merge_partial_clusters, MergeStrategy};
use crate::partitioned::SeedPolicy;
use dbscan_spatial::{Dataset, KdTree, PointId, SpatialIndex};
use mapred::{Counters, Emitter, JobConfig, MapReduceJob, Mapper, MrResult, PhaseMetrics, Reducer};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of an [`MrDbscan`] run.
#[derive(Debug, Clone)]
pub struct MrDbscanResult {
    /// The global clustering.
    pub clustering: Clustering,
    /// Partial clusters produced by the reducers.
    pub num_partial_clusters: usize,
    /// MapReduce phase timings (map / shuffle / reduce).
    pub phases: PhaseMetrics,
    /// Driver-side merge time.
    pub merge: Duration,
    /// Whole run, including kd-tree construction.
    pub total: Duration,
    /// Bytes spilled to local disk by map tasks.
    pub spilled_bytes: u64,
    /// Bytes read back from disk by reducers.
    pub shuffled_bytes: u64,
    /// Per-map-task busy times (for makespan simulation).
    pub map_task_times: Vec<Duration>,
    /// Per-reduce-task busy times (for makespan simulation).
    pub reduce_task_times: Vec<Duration>,
}

/// The MapReduce DBSCAN baseline.
#[derive(Debug, Clone)]
pub struct MrDbscan {
    params: DbscanParams,
    num_partitions: usize,
    seed_policy: SeedPolicy,
    merge_strategy: MergeStrategy,
}

impl MrDbscan {
    /// Configure for `num_partitions` reduce partitions (the "cores" of
    /// Fig. 7).
    pub fn new(params: DbscanParams, num_partitions: usize) -> Self {
        MrDbscan {
            params,
            num_partitions: num_partitions.max(1),
            seed_policy: SeedPolicy::OnePerPartition,
            merge_strategy: MergeStrategy::PaperSinglePass,
        }
    }

    /// Use the hardened exact configuration.
    pub fn exact(mut self) -> Self {
        self.seed_policy = SeedPolicy::PerBoundaryEdge;
        self.merge_strategy = MergeStrategy::UnionFind;
        self
    }

    /// Run with `slots` concurrent map/reduce slots.
    ///
    /// Note: code comparing implementations should prefer the uniform
    /// [`crate::runner::DbscanRunner`] facade; this inherent method
    /// remains the way to get the full [`MrDbscanResult`].
    pub fn run(&self, data: Arc<Dataset>, slots: usize) -> MrResult<MrDbscanResult> {
        let total_start = Instant::now();
        let n = data.len();
        let ranges = PartitionRanges::new(n, self.num_partitions);

        // driver-side index build (Hadoop would ship this via the
        // distributed cache)
        let tree = Arc::new(KdTree::build(Arc::clone(&data)));

        let mapper = RouteMapper { ranges: ranges.clone(), data: Arc::clone(&data) };
        let reducer = ClusterReducer {
            tree: Arc::clone(&tree),
            ranges: ranges.clone(),
            params: self.params,
            seed_policy: self.seed_policy,
        };
        let config = JobConfig::with_slots(slots).num_reducers(self.num_partitions);

        // input splits: the point indices, chopped per map slot
        let ids: Vec<u32> = (0..n as u32).collect();
        let split_size = n.div_ceil(slots.max(1)).max(1);
        let splits: Vec<Vec<u32>> = ids.chunks(split_size).map(|c| c.to_vec()).collect();

        let job = MapReduceJob::new(mapper, reducer, config).run(splits)?;

        // driver-side merge of the reducers' partial clusters
        let mut partials: Vec<PartialCluster> = Vec::new();
        let mut core_flags = vec![false; n];
        for (mut clusters, cores) in job.outputs {
            partials.append(&mut clusters);
            for c in cores {
                core_flags[c as usize] = true;
            }
        }
        let num_partial_clusters = partials.len();
        let t = Instant::now();
        let outcome = merge_partial_clusters(n, &partials, self.merge_strategy, &core_flags);
        let merge = t.elapsed();
        let mut clustering = outcome.clustering;
        clustering.core = core_flags;

        Ok(MrDbscanResult {
            clustering,
            num_partial_clusters,
            phases: job.metrics,
            merge,
            total: total_start.elapsed(),
            spilled_bytes: job.counters.spilled_bytes.load(std::sync::atomic::Ordering::Relaxed),
            shuffled_bytes: job.counters.shuffled_bytes.load(std::sync::atomic::Ordering::Relaxed),
            map_task_times: job.map_task_times,
            reduce_task_times: job.reduce_task_times,
        })
    }
}

/// Map: route every point (with its coordinates) to its partition — the
/// record that pays the serialization + disk toll.
struct RouteMapper {
    ranges: PartitionRanges,
    data: Arc<Dataset>,
}

impl Mapper for RouteMapper {
    type In = u32;
    type KOut = u32;
    type VOut = (u32, Vec<f64>);

    fn map(&self, idx: u32, emit: &mut Emitter<u32, (u32, Vec<f64>)>, _c: &Counters) {
        let part = self.ranges.partition_of(idx) as u32;
        emit.emit(part, (idx, self.data.point(PointId(idx)).to_vec()));
    }
}

/// Reduce: local clustering of one partition (same code the Spark
/// executors run), emitting partial clusters + core points.
struct ClusterReducer {
    tree: Arc<KdTree>,
    ranges: PartitionRanges,
    params: DbscanParams,
    seed_policy: SeedPolicy,
}

impl Reducer for ClusterReducer {
    type KIn = u32;
    type VIn = (u32, Vec<f64>);
    type Out = (Vec<PartialCluster>, Vec<u32>);

    fn reduce(
        &self,
        partition: u32,
        values: Vec<(u32, Vec<f64>)>,
        out: &mut Vec<Self::Out>,
        counters: &Counters,
    ) {
        counters.incr("points_received", values.len() as u64);
        let dataset = self.tree.dataset();
        let local = local_partial_clusters(
            |q, buf| {
                self.tree.range_into(dataset.point(PointId(q)), self.params.eps, buf);
            },
            self.params,
            &self.ranges,
            partition as usize,
            self.seed_policy,
        );
        out.push((local.clusters, local.core_points));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialDbscan;
    use crate::validate::core_labels_equivalent;

    fn blobs() -> Arc<Dataset> {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..30 {
                rows.push(vec![c as f64 * 50.0 + i as f64 * 0.01, 0.0]);
            }
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn matches_sequential() {
        let data = blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let r = MrDbscan::new(params, 4).run(Arc::clone(&data), 2).unwrap();
        let seq = SequentialDbscan::new(params).run(data);
        assert_eq!(r.clustering.num_clusters(), 3);
        assert!(core_labels_equivalent(&r.clustering, &seq));
    }

    #[test]
    fn intermediates_really_hit_disk() {
        let data = blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let r = MrDbscan::new(params, 2).run(data, 2).unwrap();
        assert!(r.spilled_bytes > 0, "points serialized to spill files");
        assert!(r.shuffled_bytes >= r.spilled_bytes, "reducers read them back");
        assert!(r.phases.total >= r.phases.map);
    }

    #[test]
    fn cluster_spanning_partitions_merges() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.5, 2).unwrap();
        let r = MrDbscan::new(params, 3).run(data, 3).unwrap();
        assert_eq!(r.num_partial_clusters, 3);
        assert_eq!(r.clustering.num_clusters(), 1);
    }

    #[test]
    fn empty_dataset() {
        let data = Arc::new(Dataset::empty(2));
        let r = MrDbscan::new(DbscanParams::paper(), 2).run(data, 2).unwrap();
        assert!(r.clustering.is_empty());
    }

    #[test]
    fn exact_mode_matches_sequential_many_partitions() {
        let rows: Vec<Vec<f64>> =
            (0..90).map(|i| vec![(i % 45) as f64, (i / 45) as f64 * 0.2]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.2, 3).unwrap();
        let r = MrDbscan::new(params, 6).exact().run(Arc::clone(&data), 3).unwrap();
        let seq = SequentialDbscan::new(params).run(data);
        assert!(core_labels_equivalent(&r.clustering, &seq));
    }
}
