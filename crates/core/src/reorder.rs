//! Spatial pre-partitioning — the paper's stated future work.
//!
//! "We did not partition data points based on the neighborhood
//! relationship in our work and that might cause workload to be
//! unbalanced. So, in the future, we will consider partitioning the
//! input data points before they are assigned to executors."
//!
//! This module implements that: reorder the points along a **Z-order
//! (Morton) curve** before handing out contiguous index ranges, so each
//! executor's range is spatially coherent. Clusters then mostly live
//! inside one partition: far fewer partial clusters, far fewer SEEDs,
//! and a cheaper driver merge — quantified by ablation A4.
//!
//! The permutation is driver-side and cheap (`O(n log n)`); labels are
//! mapped back to the original point order afterwards, so callers see
//! no difference except performance.

use dbscan_spatial::Dataset;

/// Bits of quantization per dimension for the Morton key. With d = 10
/// the key uses 60 bits of a `u64`; with fewer dimensions, more bits
/// per axis are used automatically up to this total budget.
const TOTAL_KEY_BITS: u32 = 60;

/// Morton key of one point, given per-axis bounds.
fn morton_key(row: &[f64], lo: &[f64], hi: &[f64], bits_per_dim: u32) -> u64 {
    let d = row.len();
    let levels = (1u64 << bits_per_dim) - 1;
    let mut cells = Vec::with_capacity(d);
    for k in 0..d {
        let span = (hi[k] - lo[k]).max(f64::MIN_POSITIVE);
        let t = ((row[k] - lo[k]) / span).clamp(0.0, 1.0);
        cells.push((t * levels as f64) as u64);
    }
    // interleave bits round-robin across dimensions, most significant
    // bit first so the key orders space hierarchically
    let mut key = 0u64;
    for level in (0..bits_per_dim).rev() {
        for &c in &cells {
            key = (key << 1) | ((c >> level) & 1);
        }
    }
    key
}

/// Compute the Z-order permutation of a dataset: `perm[new] = old`.
pub fn zorder_permutation(data: &Dataset) -> Vec<u32> {
    let n = data.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let Some((lo, hi)) = data.bounds() else {
        return perm;
    };
    let bits_per_dim = (TOTAL_KEY_BITS / data.dim() as u32).clamp(1, 16);
    let mut keys: Vec<u64> = Vec::with_capacity(n);
    for (_, row) in data.iter() {
        keys.push(morton_key(row, &lo, &hi, bits_per_dim));
    }
    perm.sort_by_key(|&i| keys[i as usize]);
    perm
}

/// Apply a permutation, producing the reordered dataset and the inverse
/// map (`inverse[old] = new`).
pub fn apply_permutation(data: &Dataset, perm: &[u32]) -> (Dataset, Vec<u32>) {
    assert_eq!(perm.len(), data.len(), "permutation must cover the dataset");
    let mut out = Dataset::empty(data.dim());
    let mut inverse = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        out.push(data.row(old as usize));
        inverse[old as usize] = new as u32;
    }
    (out, inverse)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        // two blobs interleaved in index order
        let mut rows = Vec::new();
        for i in 0..40 {
            if i % 2 == 0 {
                rows.push(vec![i as f64 * 0.01, 0.0]);
            } else {
                rows.push(vec![100.0 + i as f64 * 0.01, 100.0]);
            }
        }
        Dataset::from_rows(rows)
    }

    #[test]
    fn permutation_is_a_bijection() {
        let ds = blobs();
        let perm = zorder_permutation(&ds);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..40).collect::<Vec<u32>>());
    }

    #[test]
    fn zorder_groups_blobs_contiguously() {
        let ds = blobs();
        let perm = zorder_permutation(&ds);
        // after reordering, the first 20 positions hold one blob and the
        // last 20 the other (each blob is tiny vs their separation)
        let first_half_blob: Vec<bool> =
            perm[..20].iter().map(|&i| ds.row(i as usize)[0] < 50.0).collect();
        assert!(
            first_half_blob.iter().all(|&b| b) || first_half_blob.iter().all(|&b| !b),
            "blob split across the curve: {first_half_blob:?}"
        );
    }

    #[test]
    fn apply_permutation_reorders_and_inverts() {
        let ds = blobs();
        let perm = zorder_permutation(&ds);
        let (re, inverse) = apply_permutation(&ds, &perm);
        assert_eq!(re.len(), ds.len());
        for (old, &inv) in inverse.iter().enumerate() {
            let new = inv as usize;
            assert_eq!(re.row(new), ds.row(old), "old={old} new={new}");
        }
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::empty(3);
        let perm = zorder_permutation(&ds);
        assert!(perm.is_empty());
        let (re, inv) = apply_permutation(&ds, &perm);
        assert!(re.is_empty());
        assert!(inv.is_empty());
    }

    #[test]
    fn single_point() {
        let ds = Dataset::from_rows(vec![vec![5.0, 5.0]]);
        let perm = zorder_permutation(&ds);
        assert_eq!(perm, vec![0]);
    }

    #[test]
    fn high_dimensional_keys_still_order() {
        // d = 10 like the paper: two 10-d blobs must separate on the curve
        let mut rows = Vec::new();
        for i in 0..30 {
            let offset = if i % 2 == 0 { 0.0 } else { 500.0 };
            rows.push((0..10).map(|k| offset + (i * k) as f64 * 0.001).collect());
        }
        let ds = Dataset::from_rows(rows);
        let perm = zorder_permutation(&ds);
        let halves: Vec<bool> = perm[..15].iter().map(|&i| ds.row(i as usize)[0] < 250.0).collect();
        assert!(halves.iter().all(|&b| b) || halves.iter().all(|&b| !b));
    }
}
