//! One front door for five DBSCAN implementations.
//!
//! The workspace grew five entrypoints with five different shapes:
//! [`SparkDbscan::run`] (infallible, engine context, rich result),
//! [`ShuffleDbscan::run`] (fallible, engine context),
//! [`SequentialDbscan::run`] / `run_with_index` (infallible, no
//! substrate), and the two MapReduce baselines (fallible, slot count
//! instead of a context). Benchmarks, examples and tests that want to
//! compare implementations had to special-case every one.
//!
//! [`DbscanRunner`] unifies them: every implementation takes the same
//! [`RunEnv`] (an optional engine [`Context`] plus a slot count) and
//! returns the same [`RunOutcome`] — the clustering, a coarse
//! [`RunTimings`] decomposition, and the engine's [`TraceHandle`] when
//! the run went through sparklet. The implementation-specific result
//! structs remain available through the original inherent `run`
//! methods; the trait is the lowest common denominator, not a
//! replacement for them.

use crate::label::Clustering;
use crate::mr::MrDbscan;
use crate::mr_iterative::MrDbscanIterative;
use crate::partitioned::driver::SparkDbscan;
use crate::resources::Resources;
use crate::sequential::SequentialDbscan;
use crate::shuffle_baseline::ShuffleDbscan;
use dbscan_spatial::Dataset;
use mapred::MrError;
use sparklet::{Context, SparkError, TraceHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The substrate a [`DbscanRunner`] executes on.
///
/// Engine-backed runners need `ctx`; MapReduce runners need `slots`;
/// the sequential oracle needs neither. Carrying both in one struct
/// lets call sites build the environment once and hand it to any
/// runner.
#[derive(Clone, Copy)]
pub struct RunEnv<'a> {
    /// The sparklet context, if one is available. Runners that require
    /// an engine fail with [`RunnerError::MissingContext`] when `None`.
    pub ctx: Option<&'a Context>,
    /// Concurrent map/reduce slots for the MapReduce baselines.
    pub slots: usize,
    /// Execution-resource bundle (threads, balance, memory budget).
    /// Runners that understand it apply a non-default value over their
    /// own configuration; [`Resources::default`] leaves a
    /// hand-configured runner untouched.
    pub resources: Resources,
}

impl<'a> RunEnv<'a> {
    /// An environment backed by a sparklet context; MapReduce slots
    /// default to the context's executor count.
    pub fn engine(ctx: &'a Context) -> Self {
        RunEnv { ctx: Some(ctx), slots: ctx.num_executors(), resources: Resources::default() }
    }

    /// An engine-less environment (sequential and MapReduce runners
    /// only).
    pub fn standalone(slots: usize) -> Self {
        RunEnv { ctx: None, slots: slots.max(1), resources: Resources::default() }
    }

    /// Override the environment's resource bundle.
    pub fn with_resources(mut self, resources: Resources) -> Self {
        self.resources = resources;
        self
    }
}

/// Coarse wall-clock decomposition shared by every runner.
///
/// Implementations report what they can measure and leave the rest
/// zero; invariant: `setup + executor + merge <= total` (driver-side
/// glue makes up the difference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunTimings {
    /// Whole run.
    pub total: Duration,
    /// Driver-side preparation (reordering, index construction,
    /// adjacency precomputation).
    pub setup: Duration,
    /// Parallel phase (executor wall time, or summed MapReduce task
    /// busy time).
    pub executor: Duration,
    /// Driver-side merge of partial results.
    pub merge: Duration,
    /// Merge sub-phase: SEED-edge extraction (zero when the runner does
    /// not decompose its merge).
    pub merge_extract: Duration,
    /// Merge sub-phase: union + label assembly (zero when the runner
    /// does not decompose its merge).
    pub merge_union: Duration,
    /// Peak accounted engine-memory bytes (zero for engine-less runners).
    pub peak_memory_bytes: u64,
    /// Bytes moved to the spill tier under memory pressure (zero for
    /// engine-less runners or unbounded budgets).
    pub spilled_bytes: u64,
    /// Bytes freed by evicting cache entries (zero for engine-less
    /// runners or unbounded budgets).
    pub evicted_bytes: u64,
}

/// What every [`DbscanRunner`] returns.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The global clustering.
    pub clustering: Clustering,
    /// Coarse timing decomposition.
    pub timings: RunTimings,
    /// Handle onto the engine's trace collector — `Some` exactly when
    /// the run executed on a sparklet [`Context`] (enabled or not; use
    /// [`TraceHandle::enabled`] to distinguish).
    pub trace: Option<TraceHandle>,
}

/// Unified error type for the runner facade.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunnerError {
    /// The sparklet engine failed the job.
    Engine(SparkError),
    /// The MapReduce engine failed the job.
    MapReduce(MrError),
    /// The runner requires an engine [`Context`] but
    /// [`RunEnv::ctx`] was `None`. Carries the runner's name.
    MissingContext(&'static str),
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunnerError::Engine(e) => write!(f, "engine error: {e}"),
            RunnerError::MapReduce(e) => write!(f, "mapreduce error: {e}"),
            RunnerError::MissingContext(who) => {
                write!(f, "{who} requires a sparklet Context (RunEnv::engine)")
            }
        }
    }
}

impl std::error::Error for RunnerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunnerError::Engine(e) => Some(e),
            RunnerError::MapReduce(e) => Some(e),
            RunnerError::MissingContext(_) => None,
        }
    }
}

impl From<SparkError> for RunnerError {
    fn from(e: SparkError) -> Self {
        RunnerError::Engine(e)
    }
}

impl From<MrError> for RunnerError {
    fn from(e: MrError) -> Self {
        RunnerError::MapReduce(e)
    }
}

/// A DBSCAN implementation runnable through the common facade.
pub trait DbscanRunner {
    /// Short stable name for tables and trace labels.
    fn name(&self) -> &'static str;

    /// Cluster `data` in `env`.
    ///
    /// # Errors
    /// [`RunnerError::MissingContext`] when an engine-backed runner is
    /// given an engine-less [`RunEnv`]; otherwise whatever the
    /// underlying substrate reports.
    fn run_dbscan(&self, env: &RunEnv<'_>, data: Arc<Dataset>) -> Result<RunOutcome, RunnerError>;
}

impl DbscanRunner for SequentialDbscan {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn run_dbscan(&self, _env: &RunEnv<'_>, data: Arc<Dataset>) -> Result<RunOutcome, RunnerError> {
        let t = Instant::now();
        let clustering = self.run(data);
        let total = t.elapsed();
        Ok(RunOutcome {
            clustering,
            timings: RunTimings { total, executor: total, ..RunTimings::default() },
            trace: None,
        })
    }
}

impl DbscanRunner for SparkDbscan {
    fn name(&self) -> &'static str {
        "spark"
    }

    fn run_dbscan(&self, env: &RunEnv<'_>, data: Arc<Dataset>) -> Result<RunOutcome, RunnerError> {
        let ctx = env.ctx.ok_or(RunnerError::MissingContext("SparkDbscan"))?;
        // a non-default environment bundle overrides this runner's own
        // resource knobs; the default leaves hand-tuned builders alone
        let r = if env.resources.is_default() {
            self.run(ctx, data)
        } else {
            self.clone().resources(env.resources).run(ctx, data)
        };
        Ok(RunOutcome {
            clustering: r.clustering,
            timings: RunTimings {
                total: r.timings.total,
                setup: r.timings.reorder + r.timings.plan + r.timings.kdtree_build,
                executor: r.timings.executor_wall,
                merge: r.timings.merge,
                merge_extract: r.timings.merge_extract,
                merge_union: r.timings.merge_union,
                peak_memory_bytes: r.memory.peak_bytes,
                spilled_bytes: r.memory.spilled_bytes,
                evicted_bytes: r.memory.evicted_bytes,
            },
            trace: Some(ctx.trace()),
        })
    }
}

impl DbscanRunner for ShuffleDbscan {
    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn run_dbscan(&self, env: &RunEnv<'_>, data: Arc<Dataset>) -> Result<RunOutcome, RunnerError> {
        let ctx = env.ctx.ok_or(RunnerError::MissingContext("ShuffleDbscan"))?;
        let r = self.run(ctx, data)?;
        Ok(RunOutcome {
            clustering: r.clustering,
            timings: RunTimings { total: r.total, executor: r.total, ..RunTimings::default() },
            trace: Some(ctx.trace()),
        })
    }
}

impl DbscanRunner for MrDbscan {
    fn name(&self) -> &'static str {
        "mapreduce"
    }

    fn run_dbscan(&self, env: &RunEnv<'_>, data: Arc<Dataset>) -> Result<RunOutcome, RunnerError> {
        let r = self.run(data, env.slots)?;
        Ok(RunOutcome {
            clustering: r.clustering,
            timings: RunTimings {
                total: r.total,
                setup: r.total.saturating_sub(
                    r.phases.map + r.phases.shuffle_sort + r.phases.reduce + r.merge,
                ),
                executor: r.phases.map + r.phases.shuffle_sort + r.phases.reduce,
                merge: r.merge,
                ..RunTimings::default()
            },
            trace: None,
        })
    }
}

impl DbscanRunner for MrDbscanIterative {
    fn name(&self) -> &'static str {
        "mapreduce-iterative"
    }

    fn run_dbscan(&self, env: &RunEnv<'_>, data: Arc<Dataset>) -> Result<RunOutcome, RunnerError> {
        let r = self.run(data, env.slots)?;
        let busy: Duration =
            r.map_task_times.iter().chain(r.reduce_task_times.iter()).copied().sum();
        Ok(RunOutcome {
            clustering: r.clustering,
            timings: RunTimings {
                total: r.total,
                setup: r.setup,
                executor: busy,
                ..RunTimings::default()
            },
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DbscanParams;
    use crate::validate::core_labels_equivalent;
    use sparklet::ClusterConfig;

    fn blobs() -> Arc<Dataset> {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..30 {
                rows.push(vec![c as f64 * 100.0 + i as f64 * 0.01, (i % 5) as f64 * 0.01]);
            }
        }
        Arc::new(Dataset::from_rows(rows))
    }

    fn params() -> DbscanParams {
        DbscanParams::new(0.5, 4).unwrap()
    }

    #[test]
    fn all_five_runners_agree_through_the_facade() {
        let data = blobs();
        let ctx = Context::new(ClusterConfig::local(4));
        let env = RunEnv::engine(&ctx);
        let oracle = SequentialDbscan::new(params()).run(Arc::clone(&data));

        let runners: Vec<Box<dyn DbscanRunner>> = vec![
            Box::new(SequentialDbscan::new(params())),
            Box::new(SparkDbscan::new(params()).exact()),
            Box::new(ShuffleDbscan::new(params())),
            Box::new(MrDbscan::new(params(), 4).exact()),
            Box::new(MrDbscanIterative::new(params(), 4)),
        ];
        for r in &runners {
            let out = r.run_dbscan(&env, Arc::clone(&data)).unwrap_or_else(|e| {
                panic!("{} failed: {e}", r.name());
            });
            assert_eq!(out.clustering.num_clusters(), 3, "{}", r.name());
            assert!(core_labels_equivalent(&out.clustering, &oracle), "{}", r.name());
            assert!(out.timings.total >= out.timings.merge, "{}", r.name());
        }
    }

    #[test]
    fn engine_runners_refuse_standalone_env() {
        let data = blobs();
        let env = RunEnv::standalone(2);
        let err = SparkDbscan::new(params()).run_dbscan(&env, Arc::clone(&data)).unwrap_err();
        assert!(matches!(err, RunnerError::MissingContext("SparkDbscan")));
        assert!(err.to_string().contains("SparkDbscan"));
        let err = ShuffleDbscan::new(params()).run_dbscan(&env, data).unwrap_err();
        assert!(matches!(err, RunnerError::MissingContext("ShuffleDbscan")));
    }

    #[test]
    fn standalone_env_runs_sequential_and_mapreduce() {
        let data = blobs();
        let env = RunEnv::standalone(2);
        let seq = SequentialDbscan::new(params()).run_dbscan(&env, Arc::clone(&data)).unwrap();
        assert!(seq.trace.is_none());
        assert!(seq.timings.total >= seq.timings.executor);
        let mr = MrDbscan::new(params(), 2).run_dbscan(&env, data).unwrap();
        assert!(mr.trace.is_none());
        assert_eq!(mr.clustering.num_clusters(), 3);
    }

    #[test]
    fn engine_run_returns_a_trace_handle() {
        let data = blobs();
        let ctx = Context::new(ClusterConfig::local(2).with_tracing());
        let env = RunEnv::engine(&ctx);
        let out = SparkDbscan::new(params()).run_dbscan(&env, data).unwrap();
        let trace = out.trace.expect("engine runs carry a trace handle");
        assert!(trace.enabled());
        let snap = trace.snapshot();
        assert!(!snap.events.is_empty());
    }

    #[test]
    fn runner_errors_chain_sources() {
        let e = RunnerError::from(MrError::InvalidConfig("bad".into()));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("mapreduce"));
    }
}
