//! The design the paper argues *against*: DBSCAN by propagating cluster
//! labels through shuffles.
//!
//! "After we update one data point's state in one executor we need to
//! spread this \[update\] across the cluster. So this will introduce
//! shuffle operations which are very expensive in Spark." This module
//! implements exactly that strawman so ablation A3 can price it: core
//! points start labeled with their own index; every round, labels flow
//! along core→neighbor edges via `group_by_key` + `reduce_by_key(min)`
//! until a fixpoint — standard min-label connected components. Correct
//! (core components match sequential DBSCAN), but every round moves the
//! whole label/edge state through the shuffle machinery.

use crate::label::{Clustering, Label};
use crate::params::DbscanParams;
use dbscan_spatial::{Dataset, KdTree, PointId, SpatialIndex};
use sparklet::{Context, SparkResult};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const UNLABELED: u32 = u32::MAX;

/// Result of a [`ShuffleDbscan`] run.
#[derive(Debug, Clone)]
pub struct ShuffleDbscanResult {
    /// The global clustering.
    pub clustering: Clustering,
    /// Label-propagation rounds until fixpoint.
    pub rounds: usize,
    /// Records moved through shuffles by this run.
    pub shuffle_records: u64,
    /// Estimated bytes moved through shuffles by this run.
    pub shuffle_bytes: u64,
    /// Whole run.
    pub total: Duration,
}

/// Label-propagation DBSCAN (the shuffle-based strawman).
#[derive(Debug, Clone)]
pub struct ShuffleDbscan {
    params: DbscanParams,
    num_partitions: Option<usize>,
    max_rounds: usize,
}

/// A message in the propagation round: either a point's current label or
/// one of its outgoing core edges.
#[derive(Clone)]
enum Item {
    LabelOf(u32),
    EdgeTo(u32),
}

impl ShuffleDbscan {
    /// Configure the strawman.
    pub fn new(params: DbscanParams) -> Self {
        ShuffleDbscan { params, num_partitions: None, max_rounds: 64 }
    }

    /// Override the partition count.
    pub fn partitions(mut self, p: usize) -> Self {
        self.num_partitions = Some(p.max(1));
        self
    }

    /// Bound the number of propagation rounds (safety valve).
    pub fn max_rounds(mut self, r: usize) -> Self {
        self.max_rounds = r.max(1);
        self
    }

    /// Run on `ctx` over `data`.
    ///
    /// Note: code comparing implementations should prefer the uniform
    /// [`crate::runner::DbscanRunner`] facade; this inherent method
    /// remains the way to get the full [`ShuffleDbscanResult`].
    pub fn run(&self, ctx: &Context, data: Arc<Dataset>) -> SparkResult<ShuffleDbscanResult> {
        let start = Instant::now();
        let n = data.len();
        let p = self.num_partitions.unwrap_or_else(|| ctx.num_executors()).max(1);
        let records_before = ctx.shuffle_records();
        let bytes_before = ctx.shuffle_bytes();

        let tree = ctx.broadcast_sized(KdTree::build(Arc::clone(&data)), data.size_bytes());
        let eps = self.params.eps;
        let min_pts = self.params.min_pts;

        // core flags + core->neighbor edges, computed narrowly
        let t1 = tree.clone();
        let d1 = Arc::clone(&data);
        let info = ctx
            .range(0, n as u64, p)
            .map(move |u| {
                let u = u as u32;
                let nb = t1.value().range(d1.point(PointId(u)), eps);
                let is_core = nb.len() >= min_pts;
                let edges: Vec<u32> = if is_core {
                    nb.iter().map(|q| q.0).filter(|&q| q != u).collect()
                } else {
                    Vec::new()
                };
                (u, is_core, edges)
            })
            .cache();
        let core_info: Vec<(u32, bool, Vec<u32>)> = info.collect()?;
        let mut core = vec![false; n];
        for (u, is_core, _) in &core_info {
            core[*u as usize] = *is_core;
        }

        // initial labels: a core point starts as its own label
        let mut labels: HashMap<u32, u32> = core_info
            .iter()
            .map(|(u, is_core, _)| (*u, if *is_core { *u } else { UNLABELED }))
            .collect();

        let edges = info.flat_map(|(u, _, es)| {
            es.into_iter().map(move |v| (u, Item::EdgeTo(v))).collect::<Vec<_>>()
        });

        // propagation rounds, each paying two shuffles
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            let labels_rdd = ctx.parallelize(
                labels.iter().map(|(&u, &l)| (u, Item::LabelOf(l))).collect::<Vec<_>>(),
                p,
            );
            let next: Vec<(u32, u32)> = labels_rdd
                .union(&edges)
                .group_by_key(p)
                .flat_map(|(u, items)| {
                    let mut label = UNLABELED;
                    let mut outs: Vec<u32> = Vec::new();
                    for it in &items {
                        match it {
                            Item::LabelOf(l) => label = label.min(*l),
                            Item::EdgeTo(v) => outs.push(*v),
                        }
                    }
                    let mut msgs = Vec::with_capacity(outs.len() + 1);
                    msgs.push((u, label));
                    if label != UNLABELED {
                        for v in outs {
                            msgs.push((v, label));
                        }
                    }
                    msgs
                })
                .reduce_by_key(p, |a, b| a.min(b))
                .collect()?;

            let mut changed = false;
            for (u, l) in next {
                let slot = labels.entry(u).or_insert(UNLABELED);
                if l < *slot {
                    *slot = l;
                    changed = true;
                }
            }
            if !changed || rounds >= self.max_rounds {
                break;
            }
        }

        // assemble: non-core points keep a label only if some core
        // neighbor reached them (border); otherwise noise
        let mut final_labels = vec![Label::Noise; n];
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut next_id = 0u32;
        for (u, l) in &labels {
            if *l == UNLABELED {
                continue;
            }
            let id = *dense.entry(*l).or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                id
            });
            final_labels[*u as usize] = Label::Cluster(id);
        }

        Ok(ShuffleDbscanResult {
            clustering: Clustering { labels: final_labels, core },
            rounds,
            shuffle_records: ctx.shuffle_records() - records_before,
            shuffle_bytes: ctx.shuffle_bytes() - bytes_before,
            total: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialDbscan;
    use crate::validate::core_labels_equivalent;
    use sparklet::ClusterConfig;

    fn blobs() -> Arc<Dataset> {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..25 {
                rows.push(vec![c as f64 * 40.0 + i as f64 * 0.02]);
            }
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn matches_sequential_core_structure() {
        let data = blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let r = ShuffleDbscan::new(params).run(&ctx, Arc::clone(&data)).unwrap();
        let seq = SequentialDbscan::new(params).run(data);
        assert_eq!(r.clustering.num_clusters(), 3);
        assert!(core_labels_equivalent(&r.clustering, &seq));
    }

    #[test]
    fn pays_for_shuffles() {
        let data = blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let r = ShuffleDbscan::new(params).run(&ctx, data).unwrap();
        assert!(r.shuffle_records > 0, "the whole point of the strawman");
        assert!(r.shuffle_bytes > 0);
        assert!(r.rounds >= 1);
    }

    #[test]
    fn chain_converges_across_partitions() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let r = ShuffleDbscan::new(params).run(&ctx, data).unwrap();
        assert_eq!(r.clustering.num_clusters(), 1);
        assert_eq!(r.clustering.noise_count(), 0);
    }

    #[test]
    fn all_noise_dataset() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 100.0]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.0, 2).unwrap();
        let ctx = Context::new(ClusterConfig::local(2));
        let r = ShuffleDbscan::new(params).run(&ctx, data).unwrap();
        assert_eq!(r.clustering.num_clusters(), 0);
        assert_eq!(r.clustering.noise_count(), 10);
    }

    #[test]
    fn max_rounds_is_respected() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ctx = Context::new(ClusterConfig::local(2));
        let r = ShuffleDbscan::new(params).max_rounds(2).run(&ctx, data).unwrap();
        assert_eq!(r.rounds, 2, "stopped early");
    }
}
