//! Parameter estimation: the k-distance heuristic of the original
//! DBSCAN paper (Ester et al. 1996, §4.2).
//!
//! The paper takes `eps = 25, minpts = 5` as given (Table I); a
//! downstream user of this library usually has neither. The classic
//! recipe: pick `k = minpts - 1`, plot every point's distance to its
//! k-th nearest neighbour in descending order, and set `eps` at the
//! "valley"/knee of that curve — points left of the knee are noise,
//! points right of it cluster members.

use dbscan_spatial::{BkdTree, Dataset, QueryScratch};
use std::sync::Arc;

/// Distance from each point to its `k`-th nearest neighbour (excluding
/// the point itself), sorted **descending** — the classic k-distance
/// plot, ready to inspect or feed to [`knee_index`].
pub fn k_distances(data: &Arc<Dataset>, k: usize) -> Vec<f64> {
    assert!(k >= 1, "k must be at least 1");
    let n = data.len();
    if n <= k {
        return vec![f64::INFINITY; n];
    }
    let tree = BkdTree::build(Arc::clone(data));
    let mut out = Vec::with_capacity(n);
    let mut neighbors = Vec::new();
    let mut scratch = QueryScratch::new();

    // initial search radius: from a global density guess, grown per
    // query until at least k+1 matches (the point itself included)
    let (lo, hi) = data.bounds().expect("non-empty");
    let diag = dbscan_spatial::euclidean(&lo, &hi).max(f64::MIN_POSITIVE);
    let mut radius_guess = diag * (k as f64 / n as f64).powf(1.0 / data.dim() as f64);
    if radius_guess <= 0.0 || !radius_guess.is_finite() {
        radius_guess = diag / 16.0;
    }

    for (_, row) in data.iter() {
        let mut r = radius_guess;
        loop {
            neighbors.clear();
            tree.range_into_scratch(row, r, &mut scratch, &mut neighbors);
            if neighbors.len() > k || r >= diag {
                break;
            }
            r *= 2.0;
        }
        let mut dists: Vec<f64> =
            neighbors.iter().map(|&q| dbscan_spatial::euclidean(row, data.point(q))).collect();
        dists.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        // dists[0] == 0.0 is the point itself; k-th neighbour is dists[k]
        out.push(dists.get(k).copied().unwrap_or(diag));
    }
    out.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite distances"));
    out
}

/// Index of the knee of a descending curve: the point farthest below
/// the straight line from the first to the last sample (the standard
/// "kneedle"-style geometric criterion).
pub fn knee_index(sorted_desc: &[f64]) -> usize {
    let n = sorted_desc.len();
    if n < 3 {
        return 0;
    }
    let (y0, y1) = (sorted_desc[0], sorted_desc[n - 1]);
    let mut best = 0usize;
    let mut best_gap = f64::NEG_INFINITY;
    for (i, &y) in sorted_desc.iter().enumerate() {
        let t = i as f64 / (n - 1) as f64;
        let line = y0 + (y1 - y0) * t;
        let gap = line - y; // how far the curve sags below the chord
        if gap > best_gap {
            best_gap = gap;
            best = i;
        }
    }
    best
}

/// Suggest an `eps` for the given `min_pts` via the k-distance knee.
/// Returns `None` for datasets too small to estimate (fewer than
/// `min_pts + 1` points).
pub fn suggest_eps(data: &Arc<Dataset>, min_pts: usize) -> Option<f64> {
    let k = min_pts.saturating_sub(1).max(1);
    if data.len() <= k + 1 {
        return None;
    }
    let dists = k_distances(data, k);
    let knee = knee_index(&dists);
    let eps = dists[knee];
    eps.is_finite().then_some(eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DbscanParams;
    use crate::sequential::SequentialDbscan;

    fn blobs_with_noise() -> Arc<Dataset> {
        let mut rows = Vec::new();
        // three tight blobs with in-blob spacing ~0.1
        for c in 0..3 {
            for i in 0..30 {
                rows.push(vec![c as f64 * 100.0 + (i % 6) as f64 * 0.1, (i / 6) as f64 * 0.1]);
            }
        }
        // scattered noise, nearest-neighbour distances ~20+
        for i in 0..9 {
            rows.push(vec![i as f64 * 37.0 + 11.0, 300.0 + i as f64 * 23.0]);
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn k_distances_are_descending_and_sane() {
        let data = blobs_with_noise();
        let d = k_distances(&data, 3);
        assert_eq!(d.len(), data.len());
        for w in d.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // blob members' 3-distances are small, noise's are large
        assert!(d[0] > 5.0, "largest k-distance {} should be noise-scale", d[0]);
        assert!(d[d.len() - 1] < 1.0, "smallest k-distance should be blob-scale");
    }

    #[test]
    fn knee_separates_noise_from_members() {
        let data = blobs_with_noise();
        let d = k_distances(&data, 3);
        let knee = knee_index(&d);
        // 9 noise points: the knee must sit near that prefix
        assert!(knee <= 20, "knee at {knee} of {}", d.len());
    }

    #[test]
    fn suggested_eps_makes_dbscan_work() {
        let data = blobs_with_noise();
        let eps = suggest_eps(&data, 4).expect("estimable");
        let clustering =
            SequentialDbscan::new(DbscanParams::new(eps, 4).unwrap()).run(Arc::clone(&data));
        assert_eq!(clustering.num_clusters(), 3, "eps={eps}");
        assert!(clustering.noise_count() >= 7, "eps={eps} noise={}", clustering.noise_count());
    }

    #[test]
    fn tiny_datasets_return_none() {
        let data = Arc::new(Dataset::from_rows(vec![vec![0.0], vec![1.0]]));
        assert!(suggest_eps(&data, 4).is_none());
    }

    #[test]
    fn knee_of_short_inputs() {
        assert_eq!(knee_index(&[]), 0);
        assert_eq!(knee_index(&[1.0, 0.5]), 0);
    }

    #[test]
    fn knee_finds_sharp_corner() {
        // flat-high then flat-low: knee at the drop
        let mut curve = vec![10.0; 5];
        curve.extend(vec![1.0; 20]);
        let k = knee_index(&curve);
        assert!((4..=6).contains(&k), "knee at {k}");
    }
}
