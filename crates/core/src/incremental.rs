//! Incremental DBSCAN (insertions) — Ester et al. 1998, the direction
//! the paper's related work points at (MR-IDBSCAN is the incremental
//! MapReduce variant the paper cites as \[14\]).
//!
//! Maintains a clustering under point insertions without re-running the
//! whole algorithm. Insertion can only change things in the new point's
//! neighbourhood: the points of `N_eps(p)` gain one neighbour each, so
//! only they can *become* core. The update rule (Ester et al.'s case
//! analysis):
//!
//! * no core point in `N_eps(p)` → `p` is noise;
//! * otherwise `p` joins the cluster(s) of those cores — if several
//!   distinct clusters are reachable through cores, the insertion
//!   **merges** them;
//! * every point that *became* core through `p` additionally absorbs its
//!   whole neighbourhood (noise → border) and merges with any other
//!   core's cluster it can reach.
//!
//! Equivalence with a from-scratch run is property-tested (core points
//! and their partition must match exactly; border assignment is
//! order-dependent in DBSCAN and may differ).

use crate::label::{Clustering, Label};
use crate::params::DbscanParams;
use crate::unionfind::DisjointSet;
use dbscan_spatial::Dataset;
use std::collections::HashMap;

/// A dynamic grid index (cell side = eps) supporting insertion — the
/// static indexes in `dbscan-spatial` are bulk-built, an incremental
/// structure needs cheap inserts.
#[derive(Debug, Default)]
struct DynamicGrid {
    cell: f64,
    cells: HashMap<Vec<i64>, Vec<u32>>,
}

impl DynamicGrid {
    fn new(cell: f64) -> Self {
        DynamicGrid { cell: cell.max(f64::MIN_POSITIVE), cells: HashMap::new() }
    }

    fn key(&self, row: &[f64]) -> Vec<i64> {
        row.iter().map(|&v| (v / self.cell).floor() as i64).collect()
    }

    fn insert(&mut self, id: u32, row: &[f64]) {
        self.cells.entry(self.key(row)).or_default().push(id);
    }

    /// Ids within `eps` of `query` (eps == cell side).
    ///
    /// Two traversal strategies: enumerate the 3^d neighbouring cells
    /// (cheap in low dimensions), or — when 3^d dwarfs the number of
    /// occupied cells, as it does at the paper's d = 10 — scan the
    /// occupied cells and keep those within Chebyshev distance 1 of the
    /// query's cell.
    fn neighbors(&self, data: &Dataset, query: &[f64], eps: f64, out: &mut Vec<u32>) {
        out.clear();
        let center = self.key(query);
        let d = center.len();
        let thr = eps * eps;
        let mut scan_ids = |ids: &[u32]| {
            for &i in ids {
                if dbscan_spatial::squared_euclidean(query, data.row(i as usize)) <= thr {
                    out.push(i);
                }
            }
        };

        let enumerable = d < 12 && 3usize.pow(d as u32) <= self.cells.len() * 4;
        if !enumerable {
            for (key, ids) in &self.cells {
                if key.iter().zip(&center).all(|(k, c)| (k - c).abs() <= 1) {
                    scan_ids(ids);
                }
            }
            return;
        }

        let mut offset = vec![-1i64; d];
        loop {
            let key: Vec<i64> = center.iter().zip(&offset).map(|(c, o)| c + o).collect();
            if let Some(ids) = self.cells.get(&key) {
                scan_ids(ids);
            }
            let mut k = 0;
            loop {
                if k == d {
                    return;
                }
                offset[k] += 1;
                if offset[k] <= 1 {
                    break;
                }
                offset[k] = -1;
                k += 1;
            }
        }
    }
}

/// A DBSCAN clustering maintained under insertions.
pub struct IncrementalDbscan {
    params: DbscanParams,
    data: Dataset,
    grid: DynamicGrid,
    /// Raw cluster id per point (`u32::MAX` = noise); ids are unioned on
    /// merge and compressed on read.
    raw: Vec<u32>,
    core: Vec<bool>,
    clusters: DisjointSet,
}

const NOISE: u32 = u32::MAX;

impl IncrementalDbscan {
    /// Empty clustering for `dim`-dimensional points.
    pub fn new(params: DbscanParams, dim: usize) -> Self {
        IncrementalDbscan {
            params,
            data: Dataset::empty(dim),
            grid: DynamicGrid::new(params.eps),
            raw: Vec::new(),
            core: Vec::new(),
            clusters: DisjointSet::new(0),
        }
    }

    /// Number of points inserted so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no points were inserted yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Insert one point and update the clustering. Returns its id.
    ///
    /// Only points of `N_eps(p)` gain a neighbour, so only they (and `p`
    /// itself) can become core. Every point that *is now* core merges
    /// with the clusters of the **core** points in its neighbourhood —
    /// merging happens exclusively through core–core edges; a non-core
    /// `p` between two clusters becomes a border point of one of them
    /// and must *not* weld them (the mistake Ester et al.'s case
    /// analysis guards against, and exactly what our property test
    /// caught in an earlier draft).
    pub fn insert(&mut self, coords: &[f64]) -> u32 {
        let id = self.data.push(coords).0;
        self.grid.insert(id, coords);
        self.raw.push(NOISE);
        self.core.push(false);

        // neighbourhood of the new point (includes the point itself)
        let mut nb = Vec::new();
        self.grid.neighbors(&self.data, coords, self.params.eps, &mut nb);

        // flag everything that is core *after* the insertion, before any
        // cluster surgery (so mutual new cores see each other)
        let mut fresh_cores: Vec<u32> = Vec::new();
        let mut probe = Vec::new();
        for &q in &nb {
            if self.core[q as usize] {
                continue;
            }
            self.grid.neighbors(&self.data, self.data.row(q as usize), self.params.eps, &mut probe);
            if probe.len() >= self.params.min_pts {
                self.core[q as usize] = true;
                fresh_cores.push(q); // includes `id` itself when p is core
            }
        }

        // every fresh core: union the clusters of core neighbours that
        // already have one, found a cluster if none, absorb noise
        // neighbours as borders
        for &q in &fresh_cores {
            self.grid.neighbors(&self.data, self.data.row(q as usize), self.params.eps, &mut probe);
            let mut target: Option<u32> = None;
            for &r in &probe {
                if r != q && self.core[r as usize] && self.raw[r as usize] != NOISE {
                    let rr = self.find(self.raw[r as usize]);
                    target = Some(match target {
                        None => rr,
                        Some(t) => self.union(t, rr),
                    });
                }
            }
            let target = match target {
                Some(t) => t,
                None => self.new_cluster(),
            };
            self.raw[q as usize] = target;
            for &r in &probe {
                if self.raw[r as usize] == NOISE {
                    self.raw[r as usize] = target; // noise -> border
                }
            }
        }

        // p non-core and not absorbed above: border of any adjacent
        // clustered core, else noise
        if self.raw[id as usize] == NOISE {
            if let Some(&c) =
                nb.iter().find(|&&q| self.core[q as usize] && self.raw[q as usize] != NOISE)
            {
                self.raw[id as usize] = self.find(self.raw[c as usize]);
            }
        }
        id
    }

    fn new_cluster(&mut self) -> u32 {
        let id = self.clusters.len() as u32;
        // grow the disjoint set by one singleton
        let mut grown = DisjointSet::new(self.clusters.len() + 1);
        for i in 0..self.clusters.len() {
            let root = self.clusters.find(i);
            if root != i {
                grown.union(i, root);
            }
        }
        self.clusters = grown;
        id
    }

    fn find(&mut self, c: u32) -> u32 {
        self.clusters.find(c as usize) as u32
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        self.clusters.union(a as usize, b as usize);
        self.clusters.find(a as usize) as u32
    }

    /// Snapshot the current clustering (labels in insertion order).
    pub fn clustering(&mut self) -> Clustering {
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        let labels = (0..self.raw.len())
            .map(|i| {
                let r = self.raw[i];
                if r == NOISE {
                    Label::Noise
                } else {
                    let root = self.clusters.find(r as usize) as u32;
                    let id = *dense.entry(root).or_insert_with(|| {
                        let v = next;
                        next += 1;
                        v
                    });
                    Label::Cluster(id)
                }
            })
            .collect();
        Clustering { labels, core: self.core.clone() }
    }

    /// The points inserted so far.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialDbscan;
    use crate::validate::core_labels_equivalent;
    use std::sync::Arc;

    fn check_against_batch(rows: &[Vec<f64>], eps: f64, min_pts: usize) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let mut inc = IncrementalDbscan::new(params, rows[0].len());
        for r in rows {
            inc.insert(r);
        }
        let incremental = inc.clustering();
        let batch = SequentialDbscan::new(params).run(Arc::new(Dataset::from_rows(rows.to_vec())));
        assert!(
            core_labels_equivalent(&incremental, &batch),
            "incremental {:?} clusters vs batch {:?}",
            incremental.num_clusters(),
            batch.num_clusters()
        );
    }

    #[test]
    fn grows_a_cluster_point_by_point() {
        let params = DbscanParams::new(1.1, 3).unwrap();
        let mut inc = IncrementalDbscan::new(params, 1);
        assert!(inc.is_empty());
        inc.insert(&[0.0]);
        inc.insert(&[1.0]);
        assert_eq!(inc.clustering().num_clusters(), 0, "too sparse so far");
        inc.insert(&[2.0]);
        let c = inc.clustering();
        assert_eq!(c.num_clusters(), 1, "middle point became core");
        assert_eq!(c.noise_count(), 0);
        assert_eq!(inc.len(), 3);
    }

    #[test]
    fn bridging_point_merges_two_clusters() {
        let params = DbscanParams::new(1.1, 2).unwrap();
        let mut inc = IncrementalDbscan::new(params, 1);
        for x in [0.0, 1.0, 4.0, 5.0] {
            inc.insert(&[x]);
        }
        assert_eq!(inc.clustering().num_clusters(), 2);
        inc.insert(&[2.5]); // within 1.1 of neither? 2.5-1.0=1.5: no
        assert_eq!(inc.clustering().num_clusters(), 2);
        inc.insert(&[2.0]); // links 1.0 and 2.5
        inc.insert(&[3.0]); // links 2.5/2.0 and 4.0
        let c = inc.clustering();
        assert_eq!(c.num_clusters(), 1, "bridge merged the clusters: {:?}", c.labels);
    }

    #[test]
    fn matches_batch_on_blobs_any_insertion_order() {
        let mut rows = Vec::new();
        for c in 0..3 {
            for i in 0..15 {
                rows.push(vec![c as f64 * 30.0 + i as f64 * 0.3, (i % 4) as f64 * 0.3]);
            }
        }
        rows.push(vec![500.0, 500.0]);
        check_against_batch(&rows, 0.8, 3);
        // reversed order
        let mut rev = rows.clone();
        rev.reverse();
        check_against_batch(&rev, 0.8, 3);
        // interleaved order
        let inter: Vec<Vec<f64>> =
            (0..rows.len()).map(|i| rows[(i * 7) % rows.len()].clone()).collect();
        check_against_batch(&inter, 0.8, 3);
    }

    #[test]
    fn all_noise_stays_noise() {
        let params = DbscanParams::new(0.5, 3).unwrap();
        let mut inc = IncrementalDbscan::new(params, 2);
        for i in 0..10 {
            inc.insert(&[i as f64 * 50.0, 0.0]);
        }
        let c = inc.clustering();
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.noise_count(), 10);
    }

    #[test]
    fn duplicate_points_work() {
        let params = DbscanParams::new(0.1, 4).unwrap();
        let mut inc = IncrementalDbscan::new(params, 2);
        for _ in 0..6 {
            inc.insert(&[3.0, 3.0]);
        }
        let c = inc.clustering();
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.core_count(), 6);
    }
}
