//! DBSCAN workloads for the engine's schedule-space explorer.
//!
//! [`sparklet::Explorer`] fuzzes task interleavings and checks each run
//! against invariant oracles; this module supplies the DBSCAN side of
//! that contract. The paper's algorithm has no executor↔executor
//! communication, so its labels must be *byte-identical under every
//! schedule* — [`clustering_fingerprint`] turns a [`Clustering`] into
//! the canonical byte string the explorer's `label-identity` oracle
//! compares, and [`DbscanExploreJob`] packages a full
//! [`SparkDbscan`] exact-mode run (plus an accumulator merge-once
//! probe) as an [`ExploreJob`].

use crate::label::{Clustering, Label};
use crate::params::DbscanParams;
use crate::partitioned::driver::SparkDbscan;
use dbscan_spatial::Dataset;
use sparklet::{Context, ExploreJob, JobArtifacts, MergeOnceCheck, SparkResult};
use std::sync::Arc;

/// Canonical byte fingerprint of a clustering: cluster ids renumbered
/// in first-seen order, then each label as a little-endian `u32`
/// (`u32::MAX` for noise) followed by the core-point bitmap. Two
/// clusterings fingerprint equal iff they assign identical labels and
/// core flags after renumbering — the strongest output-identity check a
/// schedule is allowed to vary nothing of.
pub fn clustering_fingerprint(clustering: &Clustering) -> Vec<u8> {
    let canon = clustering.canonicalize();
    let mut bytes = Vec::with_capacity(canon.labels.len() * 4 + canon.core.len());
    for label in &canon.labels {
        let id = match label {
            Label::Cluster(c) => *c,
            Label::Noise => u32::MAX,
        };
        bytes.extend_from_slice(&id.to_le_bytes());
    }
    bytes.extend(canon.core.iter().map(|&c| u8::from(c)));
    bytes
}

/// A full exact-mode [`SparkDbscan`] run as an explorer workload.
///
/// Each invocation clusters `data` on the explorer's context and
/// fingerprints the result; alongside, a small counting job exercises
/// the accumulator path so the `accumulator-merge-once` oracle has a
/// declared expectation to verify even when fault plans force task
/// retries.
pub struct DbscanExploreJob {
    /// Points to cluster.
    pub data: Arc<Dataset>,
    /// DBSCAN parameters.
    pub params: DbscanParams,
    /// Spatial partition count for the partitioned run.
    pub partitions: usize,
}

impl DbscanExploreJob {
    /// A job clustering `data` with `params` over `partitions` slices.
    pub fn new(data: Arc<Dataset>, params: DbscanParams, partitions: usize) -> Self {
        DbscanExploreJob { data, params, partitions }
    }
}

impl ExploreJob for DbscanExploreJob {
    fn run(&self, ctx: &Context) -> SparkResult<JobArtifacts> {
        let result = SparkDbscan::new(self.params)
            .exact()
            .partitions(self.partitions)
            .run(ctx, Arc::clone(&self.data));

        // merge-once probe: one update per partition of a side job; the
        // accumulator must see each successful attempt exactly once no
        // matter how many retries or kills the schedule inflicted
        let parts = self.partitions.max(1) as u64;
        let hits = ctx.accumulator(0u64);
        ctx.range(0, parts, self.partitions.max(1)).foreach_partition({
            let hits = hits.clone();
            move |_, _| hits.add(1)
        })?;

        Ok(JobArtifacts {
            fingerprint: clustering_fingerprint(&result.clustering),
            merge_once: vec![MergeOnceCheck {
                name: "partition-hits".into(),
                expected: parts,
                observed: hits.value(),
            }],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Clustering {
        Clustering {
            labels: vec![
                Label::Cluster(7),
                Label::Cluster(7),
                Label::Noise,
                Label::Cluster(3),
                Label::Cluster(3),
            ],
            core: vec![true, true, false, true, false],
        }
    }

    #[test]
    fn fingerprint_is_invariant_under_cluster_renumbering() {
        let a = two_blobs();
        let mut b = two_blobs();
        // swap the arbitrary ids; the partition of points is unchanged
        for l in &mut b.labels {
            *l = match *l {
                Label::Cluster(7) => Label::Cluster(3),
                Label::Cluster(3) => Label::Cluster(7),
                other => other,
            };
        }
        assert_eq!(clustering_fingerprint(&a), clustering_fingerprint(&b));
    }

    #[test]
    fn fingerprint_distinguishes_labels_and_core_flags() {
        let a = two_blobs();
        let mut moved = two_blobs();
        moved.labels[2] = Label::Cluster(7);
        assert_ne!(clustering_fingerprint(&a), clustering_fingerprint(&moved));
        let mut demoted = two_blobs();
        demoted.core[0] = false;
        assert_ne!(clustering_fingerprint(&a), clustering_fingerprint(&demoted));
    }

    #[test]
    fn fingerprint_length_is_five_bytes_per_point() {
        assert_eq!(clustering_fingerprint(&two_blobs()).len(), 5 * 4 + 5);
    }
}
