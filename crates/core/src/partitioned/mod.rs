//! The paper's partitioned, communication-free DBSCAN (Algorithms 2–4).
//!
//! * [`executor_side`] — what runs inside each executor: local expansion
//!   over the partition's own index range plus SEED placement
//!   (Algorithms 2 and 3).
//! * [`merge`] — what runs in the driver after the accumulator returns
//!   all partial clusters: SEED-driven merging (Algorithm 4), plus the
//!   hardened union-find variant.
//! * [`driver`] — the full pipeline on the sparklet engine: broadcast of
//!   the kd-tree, `foreach`-style executor jobs, accumulator collection,
//!   driver-side merge, and the timing split reported in Figs. 6 and 8.
//! * [`planner`] — cost-balanced choice of the contiguous cut points
//!   (load balance on skewed data; the clustering itself is unchanged).

pub mod driver;
pub mod executor_side;
pub mod merge;
pub mod planner;

/// How many SEEDs an executor places per foreign partition per partial
/// cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SeedPolicy {
    /// The paper's Algorithm 3: at most **one** SEED per foreign
    /// partition per partial cluster; further foreign points from that
    /// partition are skipped entirely. Cheapest, but can drop a
    /// connecting edge when one partial cluster touches two disconnected
    /// clusters of the same foreign partition.
    #[default]
    OnePerPartition,
    /// Record **every** distinct foreign boundary point as a SEED.
    /// Slightly larger partial clusters; together with
    /// [`crate::MergeStrategy::UnionFind`] this is provably equivalent
    /// to sequential DBSCAN on core points.
    PerBoundaryEdge,
}
