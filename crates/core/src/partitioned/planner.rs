//! Cost-balanced partition planning.
//!
//! The paper's §III partitioning assigns each executor an *equal-count*
//! contiguous index range. On spatially skewed data that is a straggler
//! machine: a partition whose points sit inside a dense hotspot issues
//! eps-queries that scan far more candidates than a partition of
//! background points, and the stage runs at the speed of its slowest
//! task. Cost-aware decomposition (Wang, Gu & Shun, arXiv:1912.06255)
//! fixes this by balancing *estimated work* instead of point counts.
//!
//! This planner keeps the paper's contiguous index ranges — SEED
//! placement and merging (Algorithms 3–4) only require ranges to be
//! contiguous and ordered, so the clustering result is unchanged — and
//! only moves the cut points:
//!
//! 1. Bucket all points into a uniform grid of side `eps` (the same
//!    histogram a [`dbscan_spatial::GridIndex`] builds).
//! 2. Estimate each point's eps-query cost as the population of its
//!    3^d cell neighborhood — exactly the candidate set a grid-based
//!    range query would scan, and a faithful proxy for the kd-tree's
//!    leaf work. Above [`MAX_NEIGHBORHOOD_DIM`] dimensions the 3^d
//!    stencil is replaced by the point's own cell population.
//! 3. Walk the points in index order accumulating cost, and cut where
//!    the running total crosses each `j/p` fraction of the grand total.
//!
//! The plan is a pure function of `(dataset, eps, p)` — single-threaded,
//! index-ordered, no hashing-order dependence — so every thread count
//! produces the same [`PartitionRanges`] and clustering stays
//! reproducible.

use crate::model::PartitionRanges;
use dbscan_spatial::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the driver assigns contiguous index ranges to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Balance {
    /// The paper's equal-count split: partition `i` owns
    /// `[i*n/p, (i+1)*n/p)`.
    #[default]
    Count,
    /// Equalize *estimated eps-query work* per partition using the grid
    /// density histogram (see [`plan_partitions`]). Same clustering
    /// output, smaller stage tail on skewed data.
    Cost,
}

/// Dimensionality ceiling for the 3^d neighborhood stencil (3^6 = 729
/// cells); beyond it the estimator falls back to own-cell population.
pub const MAX_NEIGHBORHOOD_DIM: usize = 6;

/// A cost-balanced plan: the chosen cut points plus the planner's
/// per-partition cost prediction (for trace events and bench reports).
#[derive(Debug, Clone, PartialEq)]
pub struct CostPlan {
    /// Contiguous ranges equalizing estimated work.
    pub ranges: PartitionRanges,
    /// Predicted work units per partition (sum of member point costs).
    pub predicted: Vec<f64>,
}

impl CostPlan {
    /// Predicted max-over-mean work ratio — what the planner believes
    /// the stage's load balance will be. `1.0` is perfect.
    pub fn predicted_ratio(&self) -> f64 {
        let total: f64 = self.predicted.iter().sum();
        if self.predicted.is_empty() || total <= 0.0 {
            return 1.0;
        }
        let mean = total / self.predicted.len() as f64;
        self.predicted.iter().cloned().fold(0.0, f64::max) / mean
    }
}

/// Plan `p` contiguous partitions over `data` balancing estimated
/// eps-query cost. Deterministic; degrades to (approximately) the
/// equal-count split when density is uniform, and exactly to it when
/// the estimator cannot work (`n == 0`, or `eps` non-positive or
/// non-finite).
pub fn plan_partitions(data: &Dataset, eps: f64, p: usize) -> CostPlan {
    let n = data.len();
    let p = p.max(1);
    if n == 0 || eps <= 0.0 || !eps.is_finite() {
        return count_fallback(data, p);
    }

    // 1. density histogram: population per eps-cell
    let d = data.dim().max(1);
    let mut cells: HashMap<Vec<i64>, u64> = HashMap::new();
    for (_, row) in data.iter() {
        *cells.entry(cell_key(row, eps)).or_insert(0) += 1;
    }

    // 2. per-point cost, memoized per cell. The memo is filled in index
    //    order and each cell's mass is independent of every other, so
    //    HashMap iteration order never reaches the output.
    let mut mass: HashMap<Vec<i64>, f64> = HashMap::with_capacity(cells.len());
    let mut cost = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for (_, row) in data.iter() {
        let key = cell_key(row, eps);
        let c = match mass.get(&key) {
            Some(&m) => m,
            None => {
                let m = if d <= MAX_NEIGHBORHOOD_DIM {
                    neighborhood_mass(&cells, &key)
                } else {
                    cells[&key] as f64
                };
                mass.insert(key, m);
                m
            }
        };
        cost.push(c);
        total += c;
    }
    if total <= 0.0 || !total.is_finite() {
        return count_fallback(data, p);
    }

    // 3. cut where the cost prefix sum crosses each j/p of the total
    let mut cuts = vec![0u32; p + 1];
    cuts[p] = n as u32;
    let mut acc = 0.0f64;
    let mut j = 1;
    for (i, &c) in cost.iter().enumerate() {
        acc += c;
        while j < p && acc >= total * j as f64 / p as f64 {
            cuts[j] = (i + 1) as u32;
            j += 1;
        }
    }
    while j < p {
        cuts[j] = n as u32;
        j += 1;
    }
    let ranges = PartitionRanges::from_cuts(n, cuts);
    let predicted = (0..p)
        .map(|i| {
            let (a, b) = ranges.range(i);
            cost[a as usize..b as usize].iter().sum()
        })
        .collect();
    CostPlan { ranges, predicted }
}

/// The equal-count plan with per-partition predicted cost equal to the
/// point count (the planner's degenerate estimate).
fn count_fallback(data: &Dataset, p: usize) -> CostPlan {
    let ranges = PartitionRanges::new(data.len(), p);
    let predicted = (0..p).map(|i| ranges.range(i)).map(|(a, b)| (b - a) as f64).collect();
    CostPlan { ranges, predicted }
}

fn cell_key(row: &[f64], cell: f64) -> Vec<i64> {
    row.iter().map(|&v| (v / cell).floor() as i64).collect()
}

/// Population of the 3^d cells around (and including) `center` — the
/// candidate set an eps-query from inside `center` scans. Enumerated
/// with the same odometer as [`dbscan_spatial::GridIndex`].
fn neighborhood_mass(cells: &HashMap<Vec<i64>, u64>, center: &[i64]) -> f64 {
    let d = center.len();
    let mut offset = vec![-1i64; d];
    let mut sum = 0u64;
    loop {
        let key: Vec<i64> = center.iter().zip(&offset).map(|(c, o)| c + o).collect();
        if let Some(&m) = cells.get(&key) {
            sum += m;
        }
        let mut k = 0;
        loop {
            if k == d {
                return sum as f64;
            }
            offset[k] += 1;
            if offset[k] <= 1 {
                break;
            }
            offset[k] = -1;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn uniform_line(n: usize) -> Arc<Dataset> {
        Arc::new(Dataset::from_rows((0..n).map(|i| vec![i as f64, 0.0]).collect()))
    }

    /// Dense hotspot first, sparse background after — index order
    /// correlates with density, so equal-count is genuinely imbalanced.
    fn hotspot_then_background() -> Arc<Dataset> {
        let mut rows = Vec::new();
        for i in 0..200 {
            rows.push(vec![(i % 20) as f64 * 0.01, (i / 20) as f64 * 0.01]);
        }
        for i in 0..200 {
            rows.push(vec![100.0 + i as f64 * 5.0, 0.0]);
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn deterministic_across_calls() {
        let data = hotspot_then_background();
        let a = plan_partitions(&data, 0.5, 8);
        let b = plan_partitions(&data, 0.5, 8);
        assert_eq!(a.ranges, b.ranges);
        assert_eq!(a.predicted, b.predicted);
    }

    #[test]
    fn uniform_data_degrades_to_equal_count() {
        let n = 1000;
        let data = uniform_line(n);
        let plan = plan_partitions(&data, 1.5, 8);
        let even = PartitionRanges::new(n, 8);
        for i in 0..8 {
            let (a, b) = plan.ranges.range(i);
            let (ea, eb) = even.range(i);
            // boundary cells see smaller neighborhoods, so allow the
            // cuts a few indices of slack
            assert!((a as i64 - ea as i64).abs() <= 4, "partition {i}: {a} vs {ea}");
            assert!((b as i64 - eb as i64).abs() <= 4, "partition {i}: {b} vs {eb}");
        }
        assert!(plan.predicted_ratio() < 1.1);
    }

    #[test]
    fn skewed_data_shrinks_hotspot_partitions() {
        let data = hotspot_then_background();
        let plan = plan_partitions(&data, 0.5, 4);
        // the 200-point hotspot costs ~200 units per point, the
        // background ~1: almost all cuts land inside the hotspot
        let (a0, b0) = plan.ranges.range(0);
        assert_eq!(a0, 0);
        assert!(b0 < 100, "first partition should own a small slice of the hotspot, got {b0}");
        // predicted work is far better balanced than equal-count would be
        assert!(plan.predicted_ratio() < 1.5, "ratio {}", plan.predicted_ratio());
        // and the plan still partitions every index exactly once
        let mut covered = vec![0u8; data.len()];
        for i in 0..4 {
            let (a, b) = plan.ranges.range(i);
            for x in a..b {
                covered[x as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn degenerate_inputs_fall_back_to_equal_count() {
        let empty = Arc::new(Dataset::empty(2));
        assert_eq!(plan_partitions(&empty, 0.5, 4).ranges, PartitionRanges::new(0, 4));
        let data = uniform_line(10);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let plan = plan_partitions(&data, eps, 3);
            assert_eq!(plan.ranges, PartitionRanges::new(10, 3), "eps={eps}");
        }
    }

    #[test]
    fn more_partitions_than_points_is_fine() {
        let data = uniform_line(3);
        let plan = plan_partitions(&data, 1.0, 10);
        assert_eq!(plan.ranges.num_partitions(), 10);
        let total: u32 = (0..10).map(|i| plan.ranges.range(i)).map(|(a, b)| b - a).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn predicted_sums_to_total_cost() {
        let data = hotspot_then_background();
        let plan = plan_partitions(&data, 0.5, 8);
        let per_partition: f64 = plan.predicted.iter().sum();
        // recompute the grand total independently
        let full = plan_partitions(&data, 0.5, 1);
        assert!((per_partition - full.predicted[0]).abs() < 1e-6);
    }
}
