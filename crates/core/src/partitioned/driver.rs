//! The full pipeline on the sparklet engine — Algorithm 2 end to end.
//!
//! Driver: read/transform data, build the kd-tree, broadcast
//! `{kd-tree, eps, minpts, partition info}`. Executors: local clustering
//! with SEEDs, partial clusters returned through a collection
//! accumulator "right before the executor finishes its task". Driver
//! again: merge partial clusters (Algorithm 4). The result carries the
//! timing split (kd-tree build / executor / driver-merge) that Figures
//! 5, 6 and 8 report.

use crate::filter::filter_small_partials;
use crate::label::Clustering;
use crate::model::{PartialCluster, PartitionRanges};
use crate::params::DbscanParams;
use crate::partitioned::executor_side::{
    local_partial_clusters_source, ExecutorScratch, ExecutorStats, TreeNeighborSource,
};
use crate::partitioned::merge::{
    extract_seed_edges, merge_partial_clusters, merge_with_edges, MergeStrategy,
};
use crate::partitioned::planner::{plan_partitions, Balance};
use crate::partitioned::SeedPolicy;
use crate::reorder::{apply_permutation, zorder_permutation};
use crate::resources::Resources;
use dbscan_spatial::{
    BkdTree, BuildConfig, BuildReport, Dataset, KernelCounters, Metric, PruneConfig, QueryScratch,
};
use sparklet::{Context, JobMetrics, MemoryStats, SpillHandle, DRIVER_LANE};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Estimated executor working-set bytes per owned point (expansion
/// queue slot, membership entry, core flag, accumulator staging) —
/// declared to the scheduler as each task's memory reservation.
const POINT_WORKING_BYTES: u64 = 48;

/// Ledger bytes attributed to one collected partial cluster on the
/// driver lane (struct header + one `u32` per member).
fn partial_bytes(c: &PartialCluster) -> u64 {
    (std::mem::size_of::<PartialCluster>() + c.members.len() * std::mem::size_of::<u32>()) as u64
}

thread_local! {
    /// Per-worker reusable scratch: the kd-query traversal stack plus
    /// the epoch-stamped executor state. Worker threads persist across
    /// tasks (and runs), so steady-state tasks allocate nothing on the
    /// expansion hot path.
    static WORKER_SCRATCH: RefCell<(QueryScratch, ExecutorScratch)> =
        RefCell::new((QueryScratch::new(), ExecutorScratch::new()));
}

/// Wall-clock decomposition of one run (the quantities of Figs. 5/6/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timings {
    /// Driver: Z-order reordering (zero unless spatial partitioning is
    /// enabled).
    pub reorder: Duration,
    /// Driver: cost-balanced partition planning (zero under
    /// [`Balance::Count`]).
    pub plan: Duration,
    /// Driver: kd-tree construction (Fig. 5 numerator).
    pub kdtree_build: Duration,
    /// Executor phase wall time as seen by the driver.
    pub executor_wall: Duration,
    /// Sum of executor task busy times (CPU actually consumed).
    pub executor_busy: Duration,
    /// Driver: merging partial clusters (the growing component in
    /// Fig. 6).
    pub merge: Duration,
    /// Merge sub-phase: SEED-edge extraction (owner index + edge scan);
    /// zero for the paper-literal merge strategies.
    pub merge_extract: Duration,
    /// Merge sub-phase: union-find seal + label assembly; zero for the
    /// paper-literal merge strategies.
    pub merge_union: Duration,
    /// Whole run.
    pub total: Duration,
}

/// Result of a [`SparkDbscan`] run.
#[derive(Debug, Clone)]
pub struct SparkDbscanResult {
    /// The global clustering.
    pub clustering: Clustering,
    /// Number of partial clusters collected from the executors (the
    /// annotation above every Fig. 6 panel).
    pub num_partial_clusters: usize,
    /// Partial clusters dropped by the small-cluster filter (r1m mode).
    pub filtered_partials: usize,
    /// Timing decomposition.
    pub timings: Timings,
    /// Engine metrics of the executor job (per-task times feed the
    /// virtual-cluster speedup model).
    pub job: JobMetrics,
    /// Shuffle records moved during the run — the paper's design goal is
    /// that this is **zero**.
    pub shuffle_records: u64,
    /// Merge operations performed in the driver.
    pub merge_ops: usize,
    /// Per-partition executor instrumentation, sorted by partition.
    pub executor_stats: Vec<(u32, ExecutorStats)>,
    /// The planner's predicted work units per partition (only under
    /// [`Balance::Cost`]); compare against `executor_stats` to judge
    /// prediction quality.
    pub predicted_cost: Option<Vec<f64>>,
    /// Shard/critical-path decomposition of the kd-tree build (feeds
    /// the driver-phase Amdahl model in the perf suite).
    pub build: BuildReport,
    /// Engine memory-ledger counters as of run end (cumulative for the
    /// context: peaks, spilled/evicted bytes, backpressure waits).
    pub memory: MemoryStats,
}

/// The paper's parallel DBSCAN, configured via builder methods.
#[derive(Debug, Clone)]
pub struct SparkDbscan {
    params: DbscanParams,
    num_partitions: Option<usize>,
    seed_policy: SeedPolicy,
    merge_strategy: MergeStrategy,
    prune: PruneConfig,
    min_partial_size: Option<usize>,
    spatial_partitioning: bool,
    res: Resources,
}

impl SparkDbscan {
    /// Default configuration: paper-literal SEED policy and merge, one
    /// partition per executor, exact kd-tree queries, no filtering.
    /// Resource knobs come from [`Resources::from_env`]
    /// (`DBSCAN_BUILD_THREADS`, `DBSCAN_MEM_BUDGET`; auto/unbounded when
    /// unset) — the result is byte-identical for any `Resources` value.
    pub fn new(params: DbscanParams) -> Self {
        SparkDbscan {
            params,
            num_partitions: None,
            seed_policy: SeedPolicy::OnePerPartition,
            merge_strategy: MergeStrategy::PaperSinglePass,
            prune: PruneConfig::EXACT,
            min_partial_size: None,
            spatial_partitioning: false,
            res: Resources::from_env(),
        }
    }

    /// Replace the whole execution-resource bundle (balance, build
    /// threads, merge threads, memory budget) in one call — the typed
    /// alternative to chaining [`SparkDbscan::balance`],
    /// [`SparkDbscan::build_config`] and [`SparkDbscan::merge_threads`].
    pub fn resources(mut self, res: Resources) -> Self {
        self.res = res;
        self
    }

    /// Override the partition count (defaults to the context's executor
    /// count — the paper's "each core processes one partition").
    pub fn partitions(mut self, p: usize) -> Self {
        self.num_partitions = Some(p.max(1));
        self
    }

    /// Choose the SEED placement policy.
    pub fn seed_policy(mut self, s: SeedPolicy) -> Self {
        self.seed_policy = s;
        self
    }

    /// Choose the merge strategy.
    pub fn merge_strategy(mut self, m: MergeStrategy) -> Self {
        self.merge_strategy = m;
        self
    }

    /// Enable the paper's "kd-tree with pruning branches" used for the
    /// 1M-point runs: cap each neighborhood query.
    pub fn prune(mut self, p: PruneConfig) -> Self {
        self.prune = p;
        self
    }

    /// Drop partial clusters smaller than `min` before merging (the
    /// paper applies this to r1m: "we filter out those partial clusters
    /// whose size is too small").
    pub fn min_partial_size(mut self, min: usize) -> Self {
        self.min_partial_size = Some(min);
        self
    }

    /// Reorder the points along a Z-order curve before assigning index
    /// ranges, so partitions are spatially coherent — the paper's
    /// stated future work ("partitioning the input data points before
    /// they are assigned to executors"). Dramatically reduces partial
    /// clusters and merge work; results are returned in the original
    /// point order.
    pub fn spatial_partitioning(mut self, on: bool) -> Self {
        self.spatial_partitioning = on;
        self
    }

    /// Choose how index ranges are balanced across partitions:
    /// equal point counts (the paper, default) or equal estimated
    /// eps-query cost (see [`crate::partitioned::planner`]). Ranges stay
    /// contiguous either way, so the clustering result is identical —
    /// only task load balance changes.
    pub fn balance(mut self, b: Balance) -> Self {
        self.res.balance = b;
        self
    }

    /// The hardened exact configuration (see crate docs).
    pub fn exact(mut self) -> Self {
        self.seed_policy = SeedPolicy::PerBoundaryEdge;
        self.merge_strategy = MergeStrategy::UnionFind;
        self
    }

    /// Configure the driver-side kd-tree bulk build (worker count,
    /// bucket size, parallel cutoff). The tree is structurally
    /// identical for every configuration with the same bucket size.
    pub fn build_config(mut self, cfg: BuildConfig) -> Self {
        self.res.build = cfg;
        self
    }

    /// Worker count for the parallel union-find merge (0 = follow the
    /// build config). Labels are byte-identical at any count; the
    /// paper-literal merge strategies always run serial.
    pub fn merge_threads(mut self, threads: usize) -> Self {
        self.res.merge_threads = threads;
        self
    }

    /// Run the full pipeline on `ctx` over `data`.
    ///
    /// When the context has tracing enabled the driver phases appear in
    /// the trace as `kdtree_build` / `merge` spans alongside the
    /// engine's own stage/task events.
    ///
    /// Note: new code comparing implementations should prefer the
    /// uniform [`crate::runner::DbscanRunner`] facade; this inherent
    /// method remains the way to get the full [`SparkDbscanResult`].
    pub fn run(&self, ctx: &Context, data: Arc<Dataset>) -> SparkDbscanResult {
        let total_start = Instant::now();
        let trace = ctx.trace();
        if self.res.memory.is_bounded() {
            ctx.set_memory_budget(self.res.memory);
        }
        if self.res.speculation.enabled {
            ctx.set_speculation(self.res.speculation);
        }

        // optional future-work feature: spatially coherent partitions
        let (data, inverse, reorder) = if self.spatial_partitioning {
            let t = Instant::now();
            let perm = zorder_permutation(&data);
            let (reordered, inverse) = apply_permutation(&data, &perm);
            (Arc::new(reordered), Some(inverse), t.elapsed())
        } else {
            (data, None, Duration::ZERO)
        };
        let n = data.len();
        let p = self.num_partitions.unwrap_or_else(|| ctx.num_executors()).max(1);

        // ---- driver: partition planning ----
        let t = Instant::now();
        let (ranges, predicted_cost) = match self.res.balance {
            Balance::Count => (PartitionRanges::new(n, p), None),
            Balance::Cost => {
                trace.phase_start("partition_plan");
                let plan = plan_partitions(&data, self.params.eps, p);
                trace.phase_end("partition_plan");
                for (i, &c) in plan.predicted.iter().enumerate() {
                    let (a, b) = plan.ranges.range(i);
                    trace.plan_partition(i, (b - a) as u64, c.round() as u64);
                }
                (plan.ranges, Some(plan.predicted))
            }
        };
        let plan_time = t.elapsed();
        let shuffle_before = ctx.shuffle_records();

        // ---- driver: build + broadcast the kd-tree (parallel bulk
        // build; structurally identical at every thread count) ----
        let t = Instant::now();
        trace.phase_start("kdtree_build");
        let (tree, build_report) =
            BkdTree::build_with_report(Arc::clone(&data), Metric::Euclidean, self.res.build);
        // the shard decomposition is a pure function of (n, bucket,
        // cutoff) — never of the thread count — and the payloads carry
        // no wall times, so these events keep the trace byte-identical
        // across thread counts
        for (i, s) in build_report.shards.iter().enumerate() {
            trace.build_shard(i, s.len as u64);
        }
        trace.phase_end("kdtree_build");
        let kdtree_build = t.elapsed();
        // shipped_bytes, not size_bytes: the SoA leaf mirror is derived
        // locally from the broadcast coords, so the accounted payload
        // (and the trace) stays identical across kernel layouts
        let broadcast_size = data.size_bytes() + tree.shipped_bytes();
        let shared = ctx.broadcast_sized(
            SharedInfo {
                tree,
                params: self.params,
                ranges: ranges.clone(),
                seed_policy: self.seed_policy,
                prune: self.prune,
            },
            broadcast_size,
        );

        // ---- executors: local clustering, streamed to the driver ----
        // A single accumulator whose *fold* runs on the driver thread
        // the moment each task succeeds (the scheduler's drain
        // callback): partial clusters are appended and core flags are
        // written straight into the dense array the merge's edge
        // extraction reads — prep work overlapped with the tasks still
        // running, instead of deferred behind a full-stage barrier.
        // Exactly-once holds because folds only apply on task success.
        // Collected partials charge the driver's ledger lane; when a
        // bounded budget cannot hold the next one, the buffered batch is
        // parked in the spill tier and read back just before the merge.
        let memory = ctx.memory_manager();
        let spill = ctx.spill_store();
        let fold_memory = Arc::clone(&memory);
        let fold_spill = Arc::clone(&spill);
        let collected_acc =
            ctx.accumulator_with(Collected::default(), move |state: &mut Collected, feed: Feed| {
                match feed {
                    Feed::Partial(c) => {
                        let bytes = partial_bytes(&c);
                        if !fold_memory.try_charge(DRIVER_LANE, bytes) {
                            if !state.partials.is_empty() {
                                let batch: Vec<(u32, (u32, u32), Vec<u32>)> = state
                                    .partials
                                    .drain(..)
                                    .map(|p| (p.owner, p.range, p.members))
                                    .collect();
                                let blob = sparklet::spill::encode(&batch);
                                let h =
                                    fold_spill.spill(&blob).expect("driver spill tier writable");
                                state.spilled.push(h);
                                fold_memory.note_spill(DRIVER_LANE, state.charged);
                                state.charged = 0;
                            }
                            // the newcomer itself may exceed the lane
                            // budget alone; it must be buffered anyway
                            fold_memory.force_charge(DRIVER_LANE, bytes);
                        }
                        state.charged += bytes;
                        state.partials.push(c);
                    }
                    Feed::Cores(cs) => {
                        if state.core.len() < n {
                            state.core.resize(n, false);
                        }
                        for c in cs {
                            state.core[c as usize] = true;
                        }
                    }
                    Feed::Stats(part, stats) => state.stats.push((part, stats)),
                }
            });
        let acc = collected_acc.clone();
        let th = trace.clone();
        let bcast = shared.clone();

        // each task declares its working set up front so a bounded
        // budget can defer submissions instead of overcommitting lanes
        let hints: Vec<u64> = (0..p)
            .map(|i| {
                let (a, b) = ranges.range(i);
                (b - a) as u64 * POINT_WORKING_BYTES
            })
            .collect();

        let t = Instant::now();
        ctx.range(0, n as u64, p)
            .mem_hints(hints)
            .foreach_partition(move |part, _indices| {
                let info = bcast.value();
                // batched expansion and early-exit counting require the
                // exact tree path: under pruned queries they fall back
                // to the (byte-identical) scalar loop
                let kernel = if info.prune == PruneConfig::EXACT {
                    info.tree.kernel_config()
                } else {
                    info.tree.kernel_config().with_batch(0).with_count_fast_path(false)
                };
                // per-worker scratch: the query traversal stack and the
                // epoch-stamped expansion state persist across tasks,
                // so the hot path allocates nothing in steady state
                let local = WORKER_SCRATCH.with(|s| {
                    let (qscratch, escratch) = &mut *s.borrow_mut();
                    qscratch.counters = KernelCounters::default();
                    let mut source =
                        TreeNeighborSource::new(&info.tree, qscratch, info.params.eps, info.prune);
                    let mut local = local_partial_clusters_source(
                        &mut source,
                        info.params,
                        &info.ranges,
                        part,
                        info.seed_policy,
                        escratch,
                        kernel,
                    );
                    local.stats.kernel = qscratch.counters;
                    local
                });
                // work actually performed, in the planner's units
                // (candidates scanned ~ neighbors found across queries)
                th.task_work(local.stats.neighbors_found as u64);
                let k = local.stats.kernel;
                th.task_kernel(k.blocks_scanned, k.rows_scanned, k.range_hits, k.early_exits);
                // Algorithm 2 lines 26-28: send partial clusters to the
                // driver through the accumulator at closure end
                for c in local.clusters {
                    acc.add(Feed::Partial(c));
                }
                acc.add(Feed::Cores(local.core_points));
                acc.add(Feed::Stats(part as u32, local.stats));
            })
            .expect("executor job");
        let executor_wall = t.elapsed();
        let job = ctx.last_job().expect("job metrics recorded");

        // ---- driver: merge (Algorithm 4) ----
        let Collected { mut partials, spilled, charged, mut core, stats: mut executor_stats } =
            collected_acc.take();
        // re-admit spilled batches (checksum-verified) and settle the
        // driver lane: the merge working set is outside the budget domain
        for h in spilled {
            let blob = spill.read(h).expect("driver spill read-back");
            memory.note_spill_read(DRIVER_LANE, blob.len() as u64);
            spill.remove(h);
            let batch: Vec<(u32, (u32, u32), Vec<u32>)> =
                sparklet::spill::decode(&blob).expect("driver spill decode");
            partials.extend(batch.into_iter().map(|(owner, range, members)| PartialCluster {
                owner,
                range,
                members,
            }));
        }
        memory.uncharge(DRIVER_LANE, charged);
        // core flags gate the merge (only core SEEDs may weld clusters
        // together — see merge docs); empty partitions may leave the
        // lazily-sized array short
        core.resize(n, false);
        // The accumulator folds in task *completion* order, which
        // varies with scheduling and retries. The merge must be a pure
        // function of the data, so restore the canonical order first.
        partials.sort_by_key(|c| (c.owner, c.members.first().copied()));
        let before_filter = partials.len();
        if let Some(min) = self.min_partial_size {
            partials = filter_small_partials(partials, min);
        }
        let filtered = before_filter - partials.len();
        let num_partial_clusters = partials.len();

        let merge_threads = match self.res.merge_threads {
            0 => self.res.build.effective_threads(),
            t => t,
        };
        let t = Instant::now();
        trace.phase_start("merge");
        let (outcome, merge_extract, merge_union) = match self.merge_strategy {
            MergeStrategy::UnionFind => {
                let tx = Instant::now();
                trace.phase_start("merge_extract");
                let edges = extract_seed_edges(n, &partials, &core, merge_threads);
                trace.phase_end("merge_extract");
                let merge_extract = tx.elapsed();
                let tu = Instant::now();
                trace.phase_start("merge_union");
                let outcome = merge_with_edges(n, &partials, &edges, merge_threads);
                trace.phase_end("merge_union");
                (outcome, merge_extract, tu.elapsed())
            }
            // paper-literal strategies stay the serial baseline arm
            s => (merge_partial_clusters(n, &partials, s, &core), Duration::ZERO, Duration::ZERO),
        };
        trace.phase_end("merge");
        let merge = t.elapsed();

        let mut clustering = outcome.clustering;
        clustering.core = core;
        if let Some(inverse) = inverse {
            // map labels/cores back to the caller's point order
            let mut labels = clustering.labels.clone();
            let mut cores = clustering.core.clone();
            for old in 0..n {
                let new = inverse[old] as usize;
                labels[old] = clustering.labels[new];
                cores[old] = clustering.core[new];
            }
            clustering = crate::label::Clustering { labels, core: cores };
        }

        executor_stats.sort_by_key(|&(part, _)| part);

        SparkDbscanResult {
            clustering,
            num_partial_clusters,
            filtered_partials: filtered,
            timings: Timings {
                reorder,
                plan: plan_time,
                kdtree_build,
                executor_wall,
                executor_busy: job.executor_busy(),
                merge,
                merge_extract,
                merge_union,
                total: total_start.elapsed(),
            },
            job,
            shuffle_records: ctx.shuffle_records() - shuffle_before,
            merge_ops: outcome.merge_ops,
            executor_stats,
            predicted_cost,
            build: build_report,
            memory: ctx.memory_stats(),
        }
    }
}

/// Everything an executor needs, shipped once as a broadcast variable
/// ("eps, minimum number of points, partition information, and
/// especially, the kdtree").
struct SharedInfo {
    tree: BkdTree,
    params: DbscanParams,
    ranges: PartitionRanges,
    seed_policy: SeedPolicy,
    prune: PruneConfig,
}

/// Driver-side state grown by the streaming fold as each task finishes.
#[derive(Default)]
struct Collected {
    partials: Vec<PartialCluster>,
    /// Batches of partials parked in the spill tier by the fold when the
    /// driver lane ran out of budget, in spill order.
    spilled: Vec<SpillHandle>,
    /// Ledger bytes currently charged for `partials`.
    charged: u64,
    core: Vec<bool>,
    stats: Vec<(u32, ExecutorStats)>,
}

/// One streamed fragment of an executor's result.
enum Feed {
    Partial(PartialCluster),
    Cores(Vec<u32>),
    Stats(u32, ExecutorStats),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialDbscan;
    use crate::validate::core_labels_equivalent;
    use sparklet::ClusterConfig;

    fn blobs(k: usize, per: usize, spacing: f64) -> Arc<Dataset> {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                rows.push(vec![c as f64 * spacing + (i as f64) * 0.01, (i % 7) as f64 * 0.01]);
            }
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn matches_sequential_on_blobs() {
        let data = blobs(3, 40, 100.0);
        let params = DbscanParams::new(0.5, 4).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let result = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        assert_eq!(result.clustering.num_clusters(), 3);
        assert_eq!(result.clustering.canonicalize().labels, seq.canonicalize().labels);
        assert!(core_labels_equivalent(&result.clustering, &seq));
    }

    #[test]
    fn zero_shuffles_by_design() {
        let data = blobs(2, 30, 50.0);
        let ctx = Context::new(ClusterConfig::local(4));
        let result = SparkDbscan::new(DbscanParams::new(0.5, 3).unwrap()).run(&ctx, data);
        assert_eq!(result.shuffle_records, 0, "the paper's central design property");
    }

    #[test]
    fn cluster_spanning_partitions_is_merged_via_seeds() {
        // one long chain across 4 partitions -> 4 partial clusters, one
        // global cluster after the SEED merge
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.5, 2).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let result = SparkDbscan::new(params).partitions(4).run(&ctx, data);
        assert_eq!(result.num_partial_clusters, 4);
        assert!(result.merge_ops >= 3);
        assert_eq!(result.clustering.num_clusters(), 1);
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn partial_cluster_count_grows_with_partitions() {
        let rows: Vec<Vec<f64>> = (0..240).map(|i| vec![i as f64]).collect();
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.5, 2).unwrap();
        let ctx = Context::new(ClusterConfig::local(8));
        let mut counts = Vec::new();
        for p in [1, 2, 4, 8] {
            let r = SparkDbscan::new(params).partitions(p).run(&ctx, Arc::clone(&data));
            counts.push(r.num_partial_clusters);
            assert_eq!(r.clustering.num_clusters(), 1, "p={p}");
        }
        assert_eq!(counts, vec![1, 2, 4, 8], "Fig. 6's partial-cluster growth");
    }

    #[test]
    fn exact_mode_matches_sequential_even_with_many_partitions() {
        let data = blobs(4, 25, 30.0);
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ctx = Context::new(ClusterConfig::local(8));
        let r = SparkDbscan::new(params).partitions(8).exact().run(&ctx, Arc::clone(&data));
        let seq = SequentialDbscan::new(params).run(data);
        assert!(core_labels_equivalent(&r.clustering, &seq));
        assert_eq!(r.clustering.num_clusters(), seq.num_clusters());
    }

    #[test]
    fn timings_are_populated() {
        let data = blobs(2, 50, 60.0);
        let ctx = Context::new(ClusterConfig::local(2));
        let r = SparkDbscan::new(DbscanParams::new(0.5, 3).unwrap()).run(&ctx, data);
        assert!(r.timings.total >= r.timings.merge);
        assert!(r.timings.total >= r.timings.kdtree_build);
        assert!(r.timings.executor_wall > Duration::ZERO);
        assert!(r.timings.executor_busy > Duration::ZERO);
        assert_eq!(r.job.stages.len(), 1, "single result stage, no shuffle stages");
    }

    #[test]
    fn empty_dataset() {
        let data = Arc::new(Dataset::empty(2));
        let ctx = Context::new(ClusterConfig::local(2));
        let r = SparkDbscan::new(DbscanParams::paper()).run(&ctx, data);
        assert!(r.clustering.is_empty());
        assert_eq!(r.num_partial_clusters, 0);
    }

    #[test]
    fn more_partitions_than_points() {
        let data = Arc::new(Dataset::from_rows(vec![vec![0.0], vec![0.1], vec![0.2]]));
        let ctx = Context::new(ClusterConfig::local(2));
        let r = SparkDbscan::new(DbscanParams::new(0.5, 2).unwrap()).partitions(10).run(&ctx, data);
        assert_eq!(r.clustering.num_clusters(), 1);
    }

    #[test]
    fn min_partial_size_filters() {
        // chain + isolated dense pair; filter partials smaller than 3
        let mut rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        rows.push(vec![1000.0]);
        rows.push(vec![1000.3]);
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(1.5, 2).unwrap();
        let ctx = Context::new(ClusterConfig::local(2));
        let unfiltered = SparkDbscan::new(params).partitions(2).run(&ctx, Arc::clone(&data));
        assert_eq!(unfiltered.clustering.num_clusters(), 2);
        let filtered = SparkDbscan::new(params).partitions(2).min_partial_size(3).run(&ctx, data);
        assert_eq!(filtered.filtered_partials, 1);
        assert_eq!(filtered.clustering.num_clusters(), 1, "tiny cluster dropped to noise");
    }

    #[test]
    fn pruned_queries_still_find_dense_structure() {
        // pruning caps each neighborhood: clusters may split (it is an
        // approximation) but dense points must not become noise, and the
        // two far-apart blobs must never merge
        let data = blobs(2, 60, 100.0);
        let params = DbscanParams::new(0.6, 4).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let r = SparkDbscan::new(params)
            .prune(PruneConfig::cap_neighbors(10))
            .run(&ctx, Arc::clone(&data));
        assert!(r.clustering.num_clusters() >= 2);
        assert_eq!(r.clustering.noise_count(), 0, "every point is in a dense region");
        // no label appears in both blobs (indices interleave: blob =
        // row / 60 after construction order)
        let mut blob_of_label: std::collections::HashMap<_, usize> =
            std::collections::HashMap::new();
        for (i, l) in r.clustering.labels.iter().enumerate() {
            if let crate::label::Label::Cluster(c) = l {
                let blob = i / 60;
                assert_eq!(*blob_of_label.entry(*c).or_insert(blob), blob, "blobs merged");
            }
        }
    }

    /// Dense hotspot emitted first, sparse background after — index
    /// order correlates with density, the worst case for equal-count
    /// ranges.
    fn hotspot(n_hot: usize, n_bg: usize) -> Arc<Dataset> {
        let mut rows = Vec::new();
        for i in 0..n_hot {
            rows.push(vec![(i % 17) as f64 * 0.05, (i / 17) as f64 * 0.05]);
        }
        for i in 0..n_bg {
            rows.push(vec![500.0 + (i % 31) as f64 * 20.0, (i / 31) as f64 * 20.0]);
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn cost_balance_is_label_identical_to_count() {
        let data = hotspot(300, 300);
        let params = DbscanParams::new(0.6, 4).unwrap();
        let ctx = Context::new(ClusterConfig::local(8));
        let count = SparkDbscan::new(params).partitions(8).exact().run(&ctx, Arc::clone(&data));
        let cost = SparkDbscan::new(params)
            .partitions(8)
            .exact()
            .balance(Balance::Cost)
            .run(&ctx, Arc::clone(&data));
        assert_eq!(
            count.clustering.canonicalize().labels,
            cost.clustering.canonicalize().labels,
            "balance choice must not change the clustering"
        );
        assert_eq!(count.clustering.core, cost.clustering.core);
        assert!(cost.predicted_cost.is_some());
        assert!(count.predicted_cost.is_none());
        assert!(cost.timings.plan > Duration::ZERO);
    }

    #[test]
    fn cost_balance_reduces_query_imbalance() {
        let data = hotspot(400, 400);
        let params = DbscanParams::new(0.6, 4).unwrap();
        let ctx = Context::new(ClusterConfig::local(8));
        let imbalance = |r: &SparkDbscanResult| {
            let q: Vec<f64> =
                r.executor_stats.iter().map(|(_, s)| s.neighbors_found as f64).collect();
            let max = q.iter().cloned().fold(0.0, f64::max);
            max / (q.iter().sum::<f64>() / q.len() as f64)
        };
        let count = SparkDbscan::new(params).partitions(8).run(&ctx, Arc::clone(&data));
        let cost = SparkDbscan::new(params)
            .partitions(8)
            .balance(Balance::Cost)
            .run(&ctx, Arc::clone(&data));
        assert_eq!(count.executor_stats.len(), 8);
        assert!(
            imbalance(&cost) < imbalance(&count),
            "cost {} vs count {}",
            imbalance(&cost),
            imbalance(&count)
        );
    }

    #[test]
    fn executor_stats_are_collected_per_partition() {
        let data = blobs(2, 40, 80.0);
        let ctx = Context::new(ClusterConfig::local(4));
        let r = SparkDbscan::new(DbscanParams::new(0.5, 3).unwrap()).partitions(4).run(&ctx, data);
        assert_eq!(r.executor_stats.len(), 4);
        let parts: Vec<u32> = r.executor_stats.iter().map(|&(p, _)| p).collect();
        assert_eq!(parts, vec![0, 1, 2, 3], "sorted by partition");
        let total: usize = r.executor_stats.iter().map(|(_, s)| s.points_processed).sum();
        assert_eq!(total, 80, "every point processed exactly once");
    }

    #[test]
    fn survives_injected_task_failures() {
        let data = blobs(2, 40, 80.0);
        let params = DbscanParams::new(0.5, 3).unwrap();
        let cfg = ClusterConfig::local(4)
            .with_fault(sparklet::FaultConfig::always_first(1))
            .with_max_attempts(3);
        let ctx = Context::new(cfg);
        let r = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
        let seq = SequentialDbscan::new(params).run(data);
        // retried tasks must not duplicate accumulator contributions
        assert_eq!(r.clustering.canonicalize().labels, seq.canonicalize().labels);
        assert!(r.job.failed_attempts() > 0);
    }
}

#[cfg(test)]
mod spatial_partitioning_tests {
    use super::*;
    use crate::sequential::SequentialDbscan;
    use crate::validate::core_labels_equivalent;
    use sparklet::ClusterConfig;

    /// Interleaved blobs: worst case for index-range partitioning,
    /// best case for the Z-order future-work feature.
    fn interleaved_blobs() -> Arc<Dataset> {
        let mut rows = Vec::new();
        for i in 0..240 {
            let blob = i % 4;
            rows.push(vec![blob as f64 * 50.0 + (i / 4) as f64 * 0.01, blob as f64 * 50.0]);
        }
        Arc::new(Dataset::from_rows(rows))
    }

    #[test]
    fn results_are_in_original_order_and_correct() {
        let data = interleaved_blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ctx = Context::new(ClusterConfig::local(4));
        let plain = SparkDbscan::new(params).partitions(8).exact().run(&ctx, Arc::clone(&data));
        let zord = SparkDbscan::new(params)
            .partitions(8)
            .exact()
            .spatial_partitioning(true)
            .run(&ctx, Arc::clone(&data));
        let seq = SequentialDbscan::new(params).run(data);
        assert!(core_labels_equivalent(&plain.clustering, &seq));
        assert!(core_labels_equivalent(&zord.clustering, &seq), "reordering must be invisible");
        assert!(zord.timings.reorder > Duration::ZERO);
    }

    #[test]
    fn zorder_slashes_partial_clusters() {
        let data = interleaved_blobs();
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ctx = Context::new(ClusterConfig::local(8));
        let plain = SparkDbscan::new(params).partitions(8).run(&ctx, Arc::clone(&data));
        let zord =
            SparkDbscan::new(params).partitions(8).spatial_partitioning(true).run(&ctx, data);
        assert!(
            zord.num_partial_clusters < plain.num_partial_clusters,
            "z-order {} vs plain {}",
            zord.num_partial_clusters,
            plain.num_partial_clusters
        );
        assert!(zord.merge_ops <= plain.merge_ops);
    }
}
